#!/usr/bin/env python
"""Anonymizing a multi-vendor (IOS + JunOS) network in one pass.

The paper implements for Cisco IOS and notes the techniques are "directly
applicable to JunOS".  Real carrier networks mix vendors, so the engine
auto-detects each file's syntax and applies the matching rule set — while
sharing one set of value mappings, so a link between a Cisco router and a
Juniper router still has both ends in the same anonymized /30.

Run:  python examples/multivendor.py
"""

from repro.configmodel import ParsedNetwork
from repro.configmodel.junos_parser import looks_like_junos
from repro.core import Anonymizer
from repro.iosgen import NetworkSpec, generate_network
from repro.validation import compare_characteristics, compare_designs


def main() -> None:
    spec = NetworkSpec(
        name="dualstack-corp",
        kind="enterprise",
        seed=4242,
        num_pops=4,
        igp="ospf",
        junos_fraction=0.5,
        use_community_regexps=True,
        lans_per_access=(3, 8),
    )
    network = generate_network(spec)
    vendors = {
        name: ("junos" if looks_like_junos(text) else "ios")
        for name, text in network.configs.items()
    }
    print(
        "generated {} routers: {} IOS, {} JunOS".format(
            len(vendors),
            sum(1 for v in vendors.values() if v == "ios"),
            sum(1 for v in vendors.values() if v == "junos"),
        )
    )

    anonymizer = Anonymizer(salt=b"dualstack-owner-secret")
    result = anonymizer.anonymize_network(dict(network.configs))

    pre = ParsedNetwork.from_configs(network.configs)
    post = ParsedNetwork.from_configs(result.configs)
    print(compare_characteristics(pre, post).summary())
    print(compare_designs(pre, post).summary())

    # Show one anonymized snippet of each vendor.
    for wanted in ("ios", "junos"):
        original_name = next(n for n, v in vendors.items() if v == wanted)
        new_name = result.name_map[original_name]
        print()
        print("--- anonymized {} sample ---".format(wanted))
        print("\n".join(result.configs[new_name].splitlines()[:18]))

    # The cross-vendor consistency check: an eBGP peer address that appears
    # in an IOS config and a JunOS config must anonymize identically.
    print()
    print(anonymizer.report.summary())


if __name__ == "__main__":
    main()
