#!/usr/bin/env python
"""The Section 6.2/6.3 fingerprinting attacks, run for real.

The paper leaves open "whether address space usage fingerprints are
sufficiently unique to enable the identification of networks".  This
example answers it on a 31-network corpus: the attacker fingerprints every
candidate physical network (what Internet probing would yield), then tries
to match each anonymized config set back to its owner.

Run:  python examples/fingerprint_attack.py          (takes ~a minute)
"""

from repro.attacks import (
    fingerprint_uniqueness,
    peering_fingerprint,
    reidentification_experiment,
    subnet_fingerprint,
)
from repro.configmodel import ParsedNetwork
from repro.core import Anonymizer
from repro.iosgen import paper_dataset


def main() -> None:
    print("generating the 31-network corpus (scaled)...")
    networks = paper_dataset(seed=99, scale=0.05)

    pre, post = {}, {}
    for network in networks:
        anonymizer = Anonymizer(salt="owner-{}".format(network.name).encode())
        result = anonymizer.anonymize_network(dict(network.configs))
        pre[network.name] = ParsedNetwork.from_configs(network.configs)
        post[network.name] = ParsedNetwork.from_configs(result.configs)

    for label, fingerprint_fn in (
        ("subnet-size histogram (Section 6.2)", subnet_fingerprint),
        ("peering structure (Section 6.3)", peering_fingerprint),
    ):
        fingerprints = [fingerprint_fn(p) for p in pre.values()]
        uniqueness = fingerprint_uniqueness(fingerprints)
        attack = reidentification_experiment(pre, post, fingerprint_fn)
        print()
        print("--- {} ---".format(label))
        print("unique fingerprints: {}/{}".format(uniqueness.unique, uniqueness.total))
        print("entropy: {:.2f} bits".format(uniqueness.entropy_bits))
        print("largest collision group: {}".format(uniqueness.largest_collision_group))
        print(
            "re-identification: {}/{} correct ({} ambiguous)".format(
                attack.correct, attack.attempted, attack.ambiguous
            )
        )

    print()
    print(
        "Interpretation: structure preservation keeps these fingerprints\n"
        "intact by design, so when the attacker can measure every candidate\n"
        "network, re-identification succeeds exactly as often as the\n"
        "fingerprint is unique.  The defense is the paper's: most networks\n"
        "cannot be externally fingerprinted (firewalls, filtered probes,\n"
        "compartmentalization) — the fingerprint database can't be built."
    )


if __name__ == "__main__":
    main()
