#!/usr/bin/env python
"""The Section 6.1 iterative leak-closure methodology, mechanized.

"After anonymizing configs, we highlight for a human operator lines that
seem likely to leak information ... Lines they believe are dangerous are
used to add more rules to the anonymizer.  Our experience is that the
iteration closes quickly, requiring fewer than 5 iterations."

We start from a deliberately crippled anonymizer (only the `router bgp`
rule enabled of the 12 ASN rules), scan the output for surviving ASNs, let
an automated "operator" enable the rules whose patterns match the
highlighted lines, and repeat until clean.

Run:  python examples/iterative_closure.py
"""

from repro.attacks import iterative_closure
from repro.iosgen import NetworkSpec, generate_network


def main() -> None:
    spec = NetworkSpec(
        name="victim-isp",
        kind="backbone",
        seed=31337,
        num_pops=3,
        access_per_pop=2,
        local_asn=7132,
        num_ebgp_peers=3,
        use_aspath_range_regexps=True,
        use_community_regexps=True,
        use_rfc1918=False,
        public_block=(0x06000000, 8),
        lans_per_access=(2, 5),
        static_burst=(2, 8),
    )
    network = generate_network(spec)
    print(
        "corpus: {} routers, {} lines".format(
            len(network.configs),
            sum(len(t.splitlines()) for t in network.configs.values()),
        )
    )
    print("starting rule set: R10 (router bgp) only\n")

    history = iterative_closure(
        dict(network.configs), b"closure-secret", initial_rules=("R10",)
    )
    for step in history:
        print(
            "iteration {}: {:>3} ASN leaks highlighted; enabled rules {}; "
            "operator adds {}".format(
                step.iteration,
                step.leaks_found,
                ",".join(step.enabled_rules),
                ",".join(step.rules_added) or "(nothing)",
            )
        )
    closed = history[-1].leaks_found == 0
    print()
    print(
        "closed in {} iterations (paper: fewer than 5): {}".format(
            len(history), "YES" if closed else "NO"
        )
    )


if __name__ == "__main__":
    main()
