#!/usr/bin/env python
"""Longitudinal anonymization: consistent uploads across time.

The clearinghouse vision (Section 7) implies repeated uploads: an owner
shares configs today and again after the next maintenance window, and
researchers need the two snapshots to be *comparable* — the same router,
subnet, or peer must carry the same anonymized identity in both.

Everything keyed purely off the salt (ASNs, hashes) is automatically
stable; the IP trie also depends on insertion order, so it is persisted
with `repro.core.state` between sessions.

Run:  python examples/longitudinal.py
"""

import json
import tempfile
from pathlib import Path

from repro.core import Anonymizer
from repro.core.state import load_state, save_state
from repro.iosgen import NetworkSpec, generate_network


def main() -> None:
    state_path = Path(tempfile.mkdtemp()) / "acme-mapping-state.json"
    salt = b"acme-owner-secret"

    # ---- day 1: initial network -------------------------------------
    day1_spec = NetworkSpec(name="acme", kind="enterprise", seed=77,
                            num_pops=2, lans_per_access=(2, 4))
    day1 = generate_network(day1_spec)
    anonymizer = Anonymizer(salt=salt)
    result1 = anonymizer.anonymize_network(dict(day1.configs), two_pass=True)
    save_state(anonymizer, str(state_path))
    print("day 1: anonymized {} routers, state saved ({} KB)".format(
        len(result1.configs), state_path.stat().st_size // 1024))

    # ---- day 30: the same network, evolved --------------------------
    # One existing router gained an interface, and a brand-new router
    # appeared; everything else is untouched.
    day30_configs = dict(day1.configs)
    grown = sorted(day30_configs)[0]
    day30_configs[grown] += (
        "interface FastEthernet3/0\n"
        " ip address 10.99.1.1 255.255.255.0\n!\n"
    )
    day30_configs["new-rtr.acme"] = (
        "hostname new-rtr.acme\n"
        "interface Loopback0\n ip address 10.99.0.1 255.255.255.255\n"
        "router ospf 100\n network 10.99.0.1 0.0.0.0 area 2\n"
    )
    anonymizer2 = Anonymizer(salt=salt)
    load_state(anonymizer2, str(state_path))
    result30 = anonymizer2.anonymize_network(dict(day30_configs), two_pass=True)
    save_state(anonymizer2, str(state_path))
    day30 = type("D", (), {"configs": day30_configs})()

    # ---- the consistency check the researcher depends on ------------
    # Routers present on both days must have byte-identical anonymized
    # names, and their shared addresses identical anonymized values.
    common = sorted(set(day1.configs) & set(day30.configs))
    stable_names = sum(
        1 for name in common
        if result1.name_map[name] == result30.name_map[name]
    )
    print("day 30: {} routers ({} carried over)".format(
        len(result30.configs), len(common)))
    print("stable anonymized hostnames: {}/{}".format(stable_names, len(common)))

    import re

    def loopback_of(configs, name):
        text = configs[name]
        match = re.search(r"ip address (\S+) 255.255.255.255", text)
        return match.group(1) if match else None

    stable_loopbacks = 0
    for name in common:
        a = loopback_of(result1.configs, result1.name_map[name])
        b = loopback_of(result30.configs, result30.name_map[name])
        if a is not None and a == b:
            stable_loopbacks += 1
    print("stable anonymized loopbacks: {}/{}".format(stable_loopbacks, len(common)))
    print("\nWithout --state-file both runs would still share ASN/hash maps")
    print("(salt-derived) but the IP trie could diverge on new-vs-old")
    print("insertion orders; the state file removes that risk entirely.")


if __name__ == "__main__":
    main()
