#!/usr/bin/env python
"""Anonymize a whole enterprise network and validate the result end-to-end.

Generates a synthetic enterprise (the substitute for a real owner's
configs), anonymizes every router with shared mapping state, runs both of
the paper's validation suites (Section 5), and finishes with the Section
6.1 leak scan — the full single-blind workflow a network owner would run
before uploading data to the paper's proposed clearinghouse.

Run:  python examples/anonymize_enterprise.py
"""

from repro.attacks import scan_for_leaks
from repro.configmodel import ParsedNetwork
from repro.core import Anonymizer
from repro.iosgen import NetworkSpec, generate_network
from repro.validation import compare_characteristics, compare_designs


def main() -> None:
    spec = NetworkSpec(
        name="acme-corp",
        kind="enterprise",
        seed=2026,
        num_pops=5,
        igp="ospf",
        num_ebgp_peers=2,
        use_community_regexps=True,
        dialer_backup=True,
        comment_density=0.25,
    )
    network = generate_network(spec)
    total_lines = sum(len(t.splitlines()) for t in network.configs.values())
    print(
        "generated {} routers / {} config lines for '{}'".format(
            len(network.configs), total_lines, spec.name
        )
    )

    anonymizer = Anonymizer(salt=b"acme-owner-secret")
    result = anonymizer.anonymize_network(dict(network.configs))
    print()
    print(anonymizer.report.summary())

    pre = ParsedNetwork.from_configs(network.configs)
    post = ParsedNetwork.from_configs(result.configs)
    print()
    print(compare_characteristics(pre, post).summary())
    print(compare_designs(pre, post).summary())

    leaks = scan_for_leaks(
        result.configs,
        seen_asns=anonymizer.report.seen_asns,
        hashed_tokens=anonymizer.hasher.hashed_inputs.keys(),
        public_ips=anonymizer.report.seen_public_ips,
    )
    print()
    if leaks:
        print("{} lines highlighted for human review:".format(len(leaks)))
        for leak in leaks[:10]:
            print("  {}:{} [{}] {}".format(
                leak.source, leak.line_number, leak.kind, leak.line_text.strip()))
    else:
        print("leak scan: clean — safe to publish under the single-blind portal")

    sample = sorted(result.configs)[0]
    print()
    print("sample anonymized config ({}):".format(sample))
    print("\n".join(result.configs[sample].splitlines()[:30]))
    print("...")


if __name__ == "__main__":
    main()
