"""Out-of-tree recognizer plugin example.

Load it by pointing ``REPRO_PLUGINS`` at this file::

    REPRO_PLUGINS=examples/plugins/example_plugin.py \
        repro-anonymize configs/ --salt "owner secret" --plugins example ...

The family recognizes one synthetic statement, ``example-token <value>``,
and hashes the value like any working credential.  It demonstrates the
full contract a real out-of-tree family must honor (see docs/RULES.md,
"Writing a recognizer plugin"): a module-level ``PLUGIN`` export, a
rule-id prefix for report/metrics grouping, and a trigger that is a
necessary condition of the pattern so the compiled-dispatch prefilter
never starves the rule.
"""

import re

from repro.core.rulebase import Rule
from repro.plugins.base import RecognizerPlugin

PATTERN = re.compile(r"(\bexample-token )(\S+)")


def _apply_example(line, ctx):
    def handler(match):
        return [
            (match.group(1), True),
            (ctx.hash_secret(match.group(2)), True),
        ]

    return line.apply_rule(PATTERN, handler)


class ExamplePlugin(RecognizerPlugin):
    family = "example"
    rule_prefix = "Z"
    description = "Example out-of-tree family: hashes `example-token <value>`."

    def build_rules(self):
        return [
            Rule(
                "Z1",
                "example-token",
                "misc",
                "The value of `example-token <value>` statements is hashed.",
                _apply_example,
                trigger="example-token",
            )
        ]


PLUGIN = ExamplePlugin()
