#!/usr/bin/env python
"""Quickstart: anonymize the paper's Figure 1 config and inspect the result.

Run:  python examples/quickstart.py
"""

from repro.core import Anonymizer

FIGURE1 = """\
hostname cr1.lax.foo.com
!
banner motd ^C
FooNet contact xxx@foo.com
Access strictly prohibited!
^C
!
interface Ethernet0
 description Foo Corp's LAX Main St offices
 ip address 1.1.1.1 255.255.255.0
!
interface Serial1/0.5 point-to-point
 description cr1.sfo-serial3/0.8
 ip address 1.2.3.4 255.255.255.252
!
router bgp 1111
 redistribute rip
 neighbor 2.3.4.5 remote-as 701
 neighbor 2.3.4.5 route-map UUNET-import in
 neighbor 2.3.4.5 route-map UUNET-export out
!
route-map UUNET-import deny 10
 match as-path 50
 match community 100
route-map UUNET-import permit 20
route-map UUNET-export permit 10
 match ip address 143
 set community 701:7100
!
access-list 143 permit ip 1.1.1.0 0.0.0.255 2.0.0.0 0.255.255.255
ip community-list 100 permit 701:7[1-5]..
ip as-path access-list 50 permit (_1239_|_70[2-5]_)
!
router rip
 network 1.0.0.0
"""


def main() -> None:
    # The salt is the owner secret: choose a strong one and keep it private
    # (it keys every hash and permutation).
    anonymizer = Anonymizer(salt=b"choose-a-strong-owner-secret")
    anonymized = anonymizer.anonymize_text(FIGURE1, source="cr1.lax.foo.com")

    print("=" * 30, "BEFORE", "=" * 30)
    print(FIGURE1)
    print("=" * 30, "AFTER", "=" * 31)
    print(anonymized)
    print("=" * 30, "REPORT", "=" * 30)
    print(anonymizer.report.summary())

    print()
    print("Things to notice:")
    print(" * comments, descriptions, and the banner are gone entirely;")
    print(" * netmasks and inverse masks survive byte-for-byte;")
    print(" * 1.1.1.1 and the RIP `network` statement still agree (same /8);")
    print(" * `UUNET-import` hashed to the same digest in all four places;")
    print(" * the as-path regexp now accepts exactly the permuted ASNs.")


if __name__ == "__main__":
    main()
