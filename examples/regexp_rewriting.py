#!/usr/bin/env python
"""Regexp anonymization in detail (paper Section 4.4).

Shows, for several AS-path and community-list patterns: the language
computed by brute force over the 2^16 ASN space, the paper's flat
alternation rewrite, and the minimum-DFA rewrite the paper mentions as an
available optimization.

Run:  python examples/regexp_rewriting.py
"""

from repro.core.asn import AsnPermutation, is_public_asn
from repro.core.community import CommunityAnonymizer
from repro.core.regexlang import (
    asn_language,
    rewrite_aspath_regex,
    rewrite_community_regex,
)

PATTERNS = [
    "_701_",                 # single literal
    "(_1239_|_70[2-5]_)",    # Figure 1 line 32
    "_70[1-3]_",             # the paper's 70[1-3] example
    "_6451[2-9]_",           # private-ASN range: no anonymization needed
    "_701_1239_",            # adjacency constraint: literals map in place
    ".*",                    # digit-free: carries no ASN information
]


def main() -> None:
    perm = AsnPermutation(b"example-owner-secret")
    community = CommunityAnonymizer(b"example-owner-secret", asn_map=perm)

    for pattern in PATTERNS:
        language = sorted(asn_language(pattern))
        shown = (
            "{} ASNs".format(len(language))
            if len(language) > 8
            else str(language)
        )
        alternation = rewrite_aspath_regex(pattern, perm.map_asn, style="alternation")
        mindfa = rewrite_aspath_regex(pattern, perm.map_asn, style="mindfa")
        print("pattern      :", pattern)
        print("  language   :", shown)
        print("  public     :", sum(1 for n in language if is_public_asn(n)))
        print("  alternation:", alternation.rewritten)
        print("  min-DFA    :", mindfa.rewritten)
        if alternation.warnings:
            print("  flagged    :", "; ".join(alternation.warnings))
        print()

    print("community-list pattern from Figure 1 line 31:")
    pattern = "_701:7[1-5].._"
    out = rewrite_community_regex(
        pattern, perm.map_asn, community.map_value, style="mindfa"
    )
    print("pattern      :", pattern)
    print("  (ASN 701 with community values 7100-7599; 500 pairs)")
    print("  min-DFA rewrite ({} chars):".format(len(out.rewritten)))
    print("  ", out.rewritten[:200], "..." if len(out.rewritten) > 200 else "")


if __name__ == "__main__":
    main()
