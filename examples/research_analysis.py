#!/usr/bin/env python
"""What a researcher can do with anonymized configs (the paper's §1 pitch).

"Access to the router configuration files of production networks would
bring tremendous benefits to a wide group of networking researchers.  For
example, an accurate network topology can typically be directly derived
from the configs.  The parameters governing the intricate interactions
among routing protocols and policies ... are explicit in the configuration
files."

This example plays the researcher: it receives ONLY anonymized configs
(never the originals), and derives topology, routing design, policy
complexity, and address-utilization statistics.

Run:  python examples/research_analysis.py
"""

from collections import Counter

from repro.configmodel import ParsedNetwork
from repro.core import Anonymizer
from repro.iosgen import NetworkSpec, generate_network
from repro.validation import extract_design


def receive_anonymized_dataset():
    """Simulates the data a portal would hand the researcher."""
    spec = NetworkSpec(
        name="some-carrier", kind="backbone", seed=9090, num_pops=5,
        access_per_pop=3, local_asn=7132, num_ebgp_peers=4,
        use_alternation_regexps=True, use_rfc1918=False,
        public_block=(0x06000000, 8), lans_per_access=(3, 8),
        static_burst=(5, 30),
    )
    network = generate_network(spec)
    anonymizer = Anonymizer(salt=b"carrier-secret-the-researcher-never-sees")
    return anonymizer.anonymize_network(dict(network.configs)).configs


def main() -> None:
    configs = receive_anonymized_dataset()
    network = ParsedNetwork.from_configs(configs)

    print("=== topology (derived purely from anonymized configs) ===")
    print("routers:", len(network.routers))
    adjacencies = network.adjacencies()
    print("links (shared subnets):", len(adjacencies))
    degree = Counter()
    for a, b in adjacencies:
        degree[a] += 1
        degree[b] += 1
    print("degree distribution:", dict(Counter(sorted(degree.values()))))

    print()
    print("=== address space structure ===")
    histogram = network.subnet_size_histogram()
    for length in sorted(histogram):
        print("  /{:<3} x {}".format(length, histogram[length]))

    print()
    print("=== routing design (reverse engineered) ===")
    design = extract_design(network)
    for instance in sorted(
        design.instances, key=lambda i: -len(i.processes)
    )[:5]:
        print(
            "  {} instance: {} processes on {} routers covering {} subnets".format(
                instance.protocol, len(instance.processes),
                len(instance.routers), len(instance.covered_subnets),
            )
        )
    print("  OSPF areas:", design.ospf_area_count)
    print("  redistribution edges:", dict(design.redistribution))
    print("  BGP speakers:", design.bgp_speakers,
          "| iBGP sessions:", design.ibgp_sessions,
          "| eBGP shape:", design.ebgp_session_shape)

    print()
    print("=== policy complexity ===")
    clause_count = sum(len(r.route_maps) for r in network.routers.values())
    regexp_count = sum(len(r.aspath_acls) for r in network.routers.values())
    attach_in, attach_out = design.route_map_attachments
    print("  route-map clauses:", clause_count)
    print("  as-path regexps:", regexp_count)
    print("  import/export policy attachments:", attach_in, "/", attach_out)
    per_speaker = [
        len(r.route_map_names()) for r in network.routers.values() if r.bgp
    ]
    print("  route-maps per BGP speaker:", sorted(per_speaker))

    print()
    print("All of the above was computed without ever seeing an original")
    print("address, hostname, AS number, or company name — the anonymized")
    print("data retained the structure the analyses need.")


if __name__ == "__main__":
    main()
