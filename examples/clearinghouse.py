#!/usr/bin/env python
"""The Section 7 single-blind clearinghouse, end to end.

An owner anonymizes their network, uploads through the portal's acceptance
gate (which independently re-runs the leak scanner), a researcher fetches
the data, reconstructs the topology, and sends a comment back through the
blinding function — neither party ever learns the other's identity.

Run:  python examples/clearinghouse.py
"""

from repro.configmodel import ParsedNetwork
from repro.core import Anonymizer
from repro.iosgen import NetworkSpec, generate_network
from repro.portal import Clearinghouse


def main() -> None:
    portal = Clearinghouse(portal_secret=b"the-portal-operator-secret")

    # --- the owner's side (identity: Initech Corp — never told to anyone)
    spec = NetworkSpec(name="initech-wan", kind="enterprise", seed=1234,
                       num_pops=3, igp="ospf", lans_per_access=(3, 7))
    network = generate_network(spec)
    anonymizer = Anonymizer(salt=b"initech-owner-secret")
    result = anonymizer.anonymize_network(dict(network.configs), two_pass=True)

    owner = portal.register_owner("initech-registration-token")
    print("owner registered under blind handle:", owner)

    receipt = portal.upload(owner, anonymizer, result.configs,
                            description="mid-size enterprise, OSPF+BGP")
    print("upload accepted:", receipt.accepted, "->", receipt.dataset_id)

    # A malicious/mistaken upload is caught by the gate:
    tampered = dict(result.configs)
    victim = sorted(tampered)[0]
    leaked = next(iter(anonymizer.report.seen_asns))
    tampered[victim] += "\nrouter bgp {}\n".format(leaked)
    bad = portal.upload(owner, anonymizer, tampered)
    print("tampered upload accepted:", bad.accepted, "-", bad.reason)

    # --- the researcher's side
    researcher = portal.register_researcher("alice@university")
    print("\nresearcher registered under blind handle:", researcher)
    print("catalog:", portal.catalog())

    configs = portal.fetch(researcher, receipt.dataset_id)
    parsed = ParsedNetwork.from_configs(configs)
    print("reconstructed topology: {} routers, {} adjacencies, {} subnets".format(
        len(parsed.routers), len(parsed.adjacencies()), len(parsed.subnets())))
    print("BGP speakers:", len(parsed.bgp_speakers()))

    portal.comment(researcher, receipt.dataset_id,
                   "Your OSPF area 2 has a single point of failure at its ABR.")

    # --- the owner checks their blind inbox
    print("\nowner inbox:")
    for message in portal.inbox(owner):
        print("  [{} via {}] {}".format(
            message.dataset_id, message.researcher_handle, message.text))


if __name__ == "__main__":
    main()
