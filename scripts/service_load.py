#!/usr/bin/env python
"""Load-test the service tier and publish ``BENCH_service.json``.

For each point in the worker sweep (default 1, 2, 4) this harness starts
a fresh daemon (``repro-anonymize serve --workers N``), creates one
session per shard — via each shard's direct listener, so every worker
owns work — and hammers them from a pool of keep-alive client threads
for a fixed duration.  It records req/s and latency percentiles per
point and writes the machine-readable result to
``benchmarks/results/BENCH_service.json``.

CPU topology is recorded honestly, in the same shape as
``BENCH_parallel.json``: ``cpu_count`` is what the machine has,
``cpus_usable`` what this process may schedule on, and sweep points
with more workers than usable cores are flagged ``cpus_limited`` and
exempt from speedup assertions — pre-forking on a one-core container
can only add overhead, and pretending otherwise would be a lie in CI.
On a machine with >= 2 usable cores, workers=2 must clear 1.3x the
single-worker throughput.

Opt-in regression gate (mirrors ``bench_parallel.py``): with
``REPRO_BENCH_BASELINE=1`` the single-worker req/s is compared against
``benchmarks/baselines/BENCH_service_baseline.json`` and the run fails
if it regresses more than the tolerance.  Stdlib only.
"""

import argparse
import json
import os
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service.client import ServiceClient  # noqa: E402

RESULTS_PATH = os.path.join(
    REPO_ROOT, "benchmarks", "results", "BENCH_service.json"
)
BASELINE_PATH = os.path.join(
    REPO_ROOT, "benchmarks", "baselines", "BENCH_service_baseline.json"
)
#: Opt-in gate tolerance.  Wider than the batch benchmark's 20%: a
#: short-duration service measurement (scheduler noise, TCP, GC) is
#: noisier than a minutes-long batch run.
BASELINE_TOLERANCE = 0.30

SALT = "load-harness-salt"


def _usable_cpus() -> int:
    """Cores this process may schedule on (affinity/cgroup-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _synthetic_config(lines: int) -> str:
    """A realistic-enough router config: the engine does real work."""
    out = [
        "hostname load-rtr-1",
        "ip domain-name load.example.net",
        "snmp-server community s3cr3tRW rw",
    ]
    index = 0
    while len(out) < lines:
        index += 1
        out.extend(
            [
                "interface Ethernet{}".format(index),
                " description uplink to core-{}".format(index),
                " ip address 10.{}.{}.1 255.255.255.0".format(
                    index % 200, (index * 7) % 250
                ),
                " no shutdown",
            ]
        )
    out.append("end")
    return "\n".join(out[:max(lines, 8)]) + "\n"


def _start_daemon(workers: int, threads: int, tmpdir: str):
    """Launch the daemon, wait for the ready file, return (proc, url)."""
    ready = os.path.join(tmpdir, "ready-{}.txt".format(workers))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--threads",
            str(threads),
            "--queue-limit",
            "64",
            "--ready-file",
            ready,
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
        env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if os.path.exists(ready):
            with open(ready) as handle:
                url = handle.read().strip()
            if url:
                return proc, url
        if proc.poll() is not None:
            raise RuntimeError(
                "daemon (workers={}) exited {} before becoming "
                "ready".format(workers, proc.returncode)
            )
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("daemon (workers={}) never became ready".format(workers))


def _stop_daemon(proc) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)


def _create_shard_sessions(base_url: str):
    """One session per shard, created via each shard's direct listener.

    Session ids are rejection-sampled to the creating worker, so a
    session created over shard *i*'s direct address is owned by shard
    *i* — every worker gets a slice of the load, which is the whole
    point of measuring the fan-out.
    """
    probe = ServiceClient(base_url=base_url)
    try:
        health = probe.healthz()
    finally:
        probe.close()
    shard_urls = list((health.get("shards") or {"0": base_url}).values())
    sessions = []
    for url in shard_urls:
        client = ServiceClient(base_url=url)
        try:
            sessions.append((url, client.create_session(SALT)["id"]))
        finally:
            client.close()
    return sessions


def _run_point(workers, args, tmpdir):
    proc, base_url = _start_daemon(workers, args.threads, tmpdir)
    try:
        sessions = _create_shard_sessions(base_url)
        payload = _synthetic_config(args.config_lines)
        latencies = [[] for _ in range(args.client_threads)]
        errors = [0] * args.client_threads
        stop = threading.Event()
        barrier = threading.Barrier(args.client_threads + 1)

        def client_loop(slot: int) -> None:
            url, session_id = sessions[slot % len(sessions)]
            client = ServiceClient(base_url=url)
            source = "load-{}.conf".format(slot)
            try:
                barrier.wait()
                while not stop.is_set():
                    started = time.perf_counter()
                    try:
                        result = client.anonymize(
                            session_id, payload, source=source
                        )
                        if result.get("status") != "ok":
                            errors[slot] += 1
                            continue
                    except Exception:
                        errors[slot] += 1
                        continue
                    latencies[slot].append(time.perf_counter() - started)
            finally:
                client.close()

        threads = [
            threading.Thread(target=client_loop, args=(slot,), daemon=True)
            for slot in range(args.client_threads)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        time.sleep(args.duration)
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        elapsed = time.perf_counter() - started
    finally:
        _stop_daemon(proc)

    flat = sorted(lat for bucket in latencies for lat in bucket)
    requests = len(flat)
    if not flat:
        raise RuntimeError(
            "workers={}: zero successful requests in {}s".format(
                workers, args.duration
            )
        )
    return {
        "requests": requests,
        "errors": sum(errors),
        "seconds": elapsed,
        "rps": requests / elapsed,
        "p50_ms": statistics.quantiles(flat, n=100)[49] * 1000.0
        if requests >= 2
        else flat[0] * 1000.0,
        "p99_ms": statistics.quantiles(flat, n=100)[98] * 1000.0
        if requests >= 2
        else flat[0] * 1000.0,
        "mean_ms": statistics.fmean(flat) * 1000.0,
        "sessions": len(sessions),
    }


def _run_corpus_point(args, tmpdir):
    """Measure the corpus fan-out path end to end: files/sec + failovers.

    Drives ``--corpus-files`` synthetic configs through a fresh
    ``--corpus-workers`` daemon with the real :class:`CorpusRunner`
    (freeze once, per-shard sessions, bounded worker pool, resume
    manifest) — the same machinery ``submit --corpus`` uses, so the
    number is honest about session setup and manifest fsync overhead,
    not just raw request throughput.
    """
    from pathlib import Path

    from repro.core.runner import resolve_out_paths
    from repro.service.corpus import CorpusRunner

    corpus_dir = os.path.join(tmpdir, "corpus-in")
    out_dir = os.path.join(tmpdir, "corpus-out")
    os.makedirs(corpus_dir)
    os.makedirs(out_dir)
    configs = {}
    for index in range(args.corpus_files):
        name = os.path.join(corpus_dir, "load-{:04d}.conf".format(index))
        text = _synthetic_config(args.config_lines)
        with open(name, "w") as handle:
            handle.write(text)
        configs[name] = text
    out_paths = resolve_out_paths(sorted(configs), Path(out_dir), ".anon")

    # A private directory for the daemon: _start_daemon names its ready
    # file after the worker count, and the sweep may already have left a
    # stale ready-file for the same count in the shared tmpdir.
    daemon_dir = os.path.join(tmpdir, "corpus-daemon")
    os.makedirs(daemon_dir)
    proc, base_url = _start_daemon(args.corpus_workers, args.threads, daemon_dir)
    runner = None
    try:
        runner = CorpusRunner(
            base_url=base_url,
            unix_socket=None,
            salt=SALT,
            configs=configs,
            out_paths=out_paths,
            jobs=args.client_threads,
            manifest_path=Path(out_dir) / "manifest.jsonl",
            log=lambda message: None,
        )
        started = time.perf_counter()
        code = runner.run()
        elapsed = time.perf_counter() - started
        report = dict(runner.report)
    finally:
        if runner is not None:
            runner.close()
        _stop_daemon(proc)
    if code != 0:
        raise RuntimeError(
            "corpus load run exited {} (report: {})".format(code, report)
        )
    return {
        "files": report["files_total"],
        "workers": args.corpus_workers,
        "jobs": args.client_threads,
        "seconds": elapsed,
        "files_per_sec": report["files_total"] / elapsed,
        "failovers_total": report["failovers_total"],
        "failovers": report["failovers"],
        "client_retries": report["client_retries"],
        "client_resumes": report["client_resumes"],
        "shards": report["shards"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers-sweep",
        default="1,2,4",
        help="comma-separated worker counts to measure",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=5.0,
        help="seconds of sustained load per sweep point",
    )
    parser.add_argument(
        "--client-threads", type=int, default=8, help="concurrent clients"
    )
    parser.add_argument(
        "--threads", type=int, default=2, help="daemon threads per worker"
    )
    parser.add_argument(
        "--config-lines",
        type=int,
        default=120,
        help="lines in the synthetic config each request anonymizes",
    )
    parser.add_argument(
        "--corpus",
        action="store_true",
        help="also measure corpus fan-out throughput (files/sec) through "
        "the real CorpusRunner and record it under the 'corpus' key",
    )
    parser.add_argument(
        "--corpus-files",
        type=int,
        default=64,
        help="synthetic files in the corpus point (with --corpus)",
    )
    parser.add_argument(
        "--corpus-workers",
        type=int,
        default=2,
        help="daemon workers for the corpus point (with --corpus)",
    )
    parser.add_argument("--out", default=RESULTS_PATH, help="result JSON path")
    args = parser.parse_args(argv)

    sweep = [int(part) for part in args.workers_sweep.split(",") if part]
    cpus_usable = _usable_cpus()
    cpu_count = os.cpu_count() or 1
    cpus_limited = cpus_usable < max(sweep)

    points = {}
    corpus_point = None
    with tempfile.TemporaryDirectory(prefix="repro-load-") as tmpdir:
        for workers in sweep:
            if workers > cpus_usable:
                print(
                    "warning: workers={} exceeds the {} usable core(s); "
                    "measuring anyway, but expect overhead, not "
                    "speedup".format(workers, cpus_usable),
                    file=sys.stderr,
                )
            point = _run_point(workers, args, tmpdir)
            points[str(workers)] = point
            print(
                "workers={}: {:.1f} req/s  p50 {:.1f} ms  p99 {:.1f} ms  "
                "({} requests, {} errors)".format(
                    workers,
                    point["rps"],
                    point["p50_ms"],
                    point["p99_ms"],
                    point["requests"],
                    point["errors"],
                )
            )
        if args.corpus:
            corpus_point = _run_corpus_point(args, tmpdir)
            print(
                "corpus: {} files over {} shard(s) in {:.2f}s = "
                "{:.1f} files/s (failovers_total={})".format(
                    corpus_point["files"],
                    corpus_point["shards"],
                    corpus_point["seconds"],
                    corpus_point["files_per_sec"],
                    corpus_point["failovers_total"],
                )
            )

    base_rps = points[str(sweep[0])]["rps"]
    payload = {
        "experiment": "BENCH_service",
        "cpu_count": cpu_count,
        "cpus_usable": cpus_usable,
        "cpus_limited": cpus_limited,
        "duration": args.duration,
        "client_threads": args.client_threads,
        "daemon_threads": args.threads,
        "config_lines": args.config_lines,
        "workers": points,
        "speedup": {
            key: point["rps"] / base_rps for key, point in points.items()
        },
    }
    if corpus_point is not None:
        payload["corpus"] = corpus_point
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print("wrote {}".format(args.out))

    if "2" in points and "1" in points:
        speedup = payload["speedup"]["2"]
        if cpus_usable >= 2:
            assert speedup >= 1.3, (
                "workers=2 managed only {:.2f}x the single-worker req/s on "
                "a machine with {} usable cores (expected >= 1.3x)".format(
                    speedup, cpus_usable
                )
            )
        else:
            print(
                "cpus-limited ({} usable core(s)): skipping the 1.3x "
                "speedup assertion; measured {:.2f}x".format(
                    cpus_usable, speedup
                ),
                file=sys.stderr,
            )

    if os.environ.get("REPRO_BENCH_BASELINE") == "1":
        with open(BASELINE_PATH) as handle:
            baseline = json.load(handle)
        floor = baseline["workers"]["1"]["rps"] * (1.0 - BASELINE_TOLERANCE)
        measured = points["1"]["rps"]
        assert measured >= floor, (
            "single-worker service throughput regressed: {:.1f} req/s is "
            "below the gate of {:.1f} (baseline {:.1f} - {:.0%} tolerance); "
            "if the slowdown is intentional, refresh {}".format(
                measured,
                floor,
                baseline["workers"]["1"]["rps"],
                BASELINE_TOLERANCE,
                BASELINE_PATH,
            )
        )
        print("baseline gate passed ({:.1f} >= {:.1f} req/s)".format(
            measured, floor
        ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
