#!/usr/bin/env python
"""Plugin-matrix byte-identity check (CI `plugin-matrix` job).

Proves the recognizer plugin registry is a strict no-op on corpora that
never exercise it: an IPv4-only synthetic network is anonymized under

  (a) the full default plugin set,
  (b) the default set with the ipv6 family disabled
      (``REPRO_PLUGINS_DISABLE=ipv6``), and
  (c) the registry off entirely (``plugins=()``),

across jobs=1 and jobs=2, and every output file must be byte-identical
in all six runs.  Any drift means a plugin perturbed shared state (the
pass-list, rule ordering, freeze scans) even when none of its rules
fired — exactly the regression class this gate exists to catch.

Exits nonzero on the first mismatch, printing the offending file.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import Anonymizer, AnonymizerConfig  # noqa: E402
from repro.iosgen import NetworkSpec, generate_network  # noqa: E402
from repro.plugins.registry import ENV_PLUGIN_DISABLE  # noqa: E402

SALT = b"plugin-matrix-gate"


def _corpus():
    spec = NetworkSpec(
        name="matrix-net",
        kind="enterprise",
        seed=23,
        num_pops=3,
        igp="isis",
        lans_per_access=(2, 4),
        use_community_regexps=True,
        junos_fraction=0.2,
    )
    return dict(generate_network(spec).configs)


def _run(configs, plugins, jobs, disable_env=None):
    saved = os.environ.get(ENV_PLUGIN_DISABLE)
    try:
        if disable_env is None:
            os.environ.pop(ENV_PLUGIN_DISABLE, None)
        else:
            os.environ[ENV_PLUGIN_DISABLE] = disable_env
        anonymizer = Anonymizer(AnonymizerConfig(salt=SALT, plugins=plugins))
        result = anonymizer.anonymize_network(
            dict(configs), two_pass=True, jobs=jobs
        )
        return {
            original: result.configs[renamed]
            for original, renamed in result.name_map.items()
        }, anonymizer.active_plugin_families
    finally:
        if saved is None:
            os.environ.pop(ENV_PLUGIN_DISABLE, None)
        else:
            os.environ[ENV_PLUGIN_DISABLE] = saved


def main() -> int:
    configs = _corpus()
    legs = [
        ("all-plugins", dict(plugins=None, disable_env=None)),
        ("ipv6-disabled", dict(plugins=None, disable_env="ipv6")),
        ("registry-off", dict(plugins=(), disable_env=None)),
    ]
    reference = None
    reference_leg = None
    for leg_name, leg in legs:
        for jobs in (1, 2):
            outputs, families = _run(
                configs, leg["plugins"], jobs, leg["disable_env"]
            )
            label = "{} jobs={} families={}".format(
                leg_name, jobs, list(families) or "[]"
            )
            if reference is None:
                reference, reference_leg = outputs, label
                print("reference: {} ({} files)".format(label, len(outputs)))
                continue
            if sorted(outputs) != sorted(reference):
                print(
                    "FAIL: {} produced a different file set than {}".format(
                        label, reference_leg
                    )
                )
                return 1
            for name in sorted(reference):
                if outputs[name] != reference[name]:
                    print(
                        "FAIL: {!r} differs between {} and {}".format(
                            name, label, reference_leg
                        )
                    )
                    return 1
            print("ok: {} byte-identical to reference".format(label))
    print(
        "plugin-matrix: {} files byte-identical across {} runs".format(
            len(reference), 2 * len(legs)
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
