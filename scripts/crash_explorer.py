#!/usr/bin/env python
"""Crash-point explorer: SIGKILL at every durability boundary, then prove
recovery.

The crash-point registry (:mod:`repro.core.crashpoints`) names every
point where the anonymizer persists state: journal appends (pre-write,
torn, pre-fsync, post-fsync), snapshot rotation, session-meta and
topology writes, the batch runner's output/manifest writes, and the
corpus client's manifest appends.  This script enumerates the registry
and, for each point, re-runs a small seeded workload with
``REPRO_CRASH_POINT=<name>`` so the process SIGKILLs itself the moment
execution reaches that boundary.  It then recovers and asserts the
crash-safety contract:

* **the point fired** — a workload that never reaches an armed point is
  a registry bug (dead instrumentation), reported as a failure;
* **no acknowledged data is lost** — recovery quarantines nothing and
  the resumed run completes;
* **torn tails are discarded, not served** — a half-written journal
  record or crash-mid-create session directory never surfaces;
* **the resumed output is byte-identical** to an uninterrupted batch
  ``--jobs 2`` run over the same corpus and salt.

Points are mapped to workloads by prefix: ``journal.*``, ``snapshot.*``,
``session.meta.*``, and ``topology.*`` run against a durable service
daemon; ``runner.*`` against the batch CLI with ``--out-dir`` and a
``--resume`` rerun; ``corpus.*`` against ``submit --corpus`` (the crash
kills the *client* mid-manifest-append; the daemon stays up).

Exits 0 when every explored point fired and every invariant held; 1
with a per-point message otherwise.
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.core.crashpoints import registered_points  # noqa: E402

SALT = "crash-explorer-secret"
POINT_DEADLINE = 90  # seconds per crash point

SAMPLE = """\
hostname cr1.lax.foo.com
interface Ethernet0
 ip address 1.1.1.1 255.255.255.0
router bgp 1111
 neighbor 2.3.4.5 remote-as 701
 neighbor 2.3.4.5 route-map UUNET-import in
access-list 143 permit ip 1.1.1.0 0.0.0.255 2.0.0.0 0.255.255.255
"""

SAMPLE2 = """\
hostname cr2.lax.foo.com
interface Loopback0
 ip address 1.2.3.4 255.255.255.255
router bgp 1111
 neighbor 2.3.4.5 remote-as 701
"""

SAMPLE3 = """\
hostname edge.sfo.foo.com
router bgp 701
 neighbor 1.2.3.4 remote-as 1111
access-list 10 permit 1.1.1.0 0.0.0.255
"""

CORPUS = {"cr1.cfg": SAMPLE, "cr2.cfg": SAMPLE2, "cr3.cfg": SAMPLE3}


class PointFailure(Exception):
    """One crash point violated an invariant (message says which)."""


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CRASH_POINT", None)
    env.pop("REPRO_FAULT_PLAN", None)
    return env


def _write_corpus(in_dir: Path) -> None:
    in_dir.mkdir(parents=True, exist_ok=True)
    for name, text in CORPUS.items():
        (in_dir / name).write_text(text)


def batch_reference(workdir: Path, env: dict) -> dict:
    """The uninterrupted reference: batch ``--jobs 2`` outputs by name."""
    in_dir = workdir / "ref-in"
    out_dir = workdir / "ref-out"
    _write_corpus(in_dir)
    code = subprocess.call(
        [
            sys.executable,
            "-m",
            "repro.cli",
            str(in_dir),
            "--salt",
            SALT,
            "--jobs",
            "2",
            "--out-dir",
            str(out_dir),
        ],
        env=env,
        timeout=POINT_DEADLINE,
    )
    if code != 0:
        raise SystemExit("reference batch run exited {}".format(code))
    return {
        name: (out_dir / (name + ".anon")).read_bytes() for name in CORPUS
    }


def spawn_daemon(env, workdir, name, crash_point=None, expect_death=False):
    """Start a durable single-worker daemon; wait for ready (or death)."""
    ready = workdir / (name + ".ready")
    daemon_env = dict(env)
    if crash_point is not None:
        daemon_env["REPRO_CRASH_POINT"] = crash_point
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--threads",
            "2",
            "--state-dir",
            str(workdir / "state"),
            "--snapshot-every",
            "1",
            "--ready-file",
            str(ready),
        ],
        env=daemon_env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + 30
    while not ready.exists():
        if proc.poll() is not None:
            if expect_death:
                return proc, None
            raise PointFailure(
                "daemon {} exited {} before ready:\n{}".format(
                    name, proc.returncode, proc.stdout.read() or ""
                )
            )
        if time.time() > deadline:
            proc.kill()
            raise PointFailure("daemon {} never became ready".format(name))
        time.sleep(0.05)
    if expect_death:
        proc.kill()
        proc.communicate(timeout=10)
        raise PointFailure("daemon became ready; the point never fired")
    return proc, ready.read_text().strip()


def _drive(client, session_id, outputs):
    """(Re)drive the corpus through a session: freeze, then each file."""
    client.freeze(session_id, CORPUS)
    for name in sorted(CORPUS):
        outputs[name] = client.anonymize(
            session_id, CORPUS[name], source=name
        )["text"].encode()


def _check_recovery(state_dir: Path):
    """Recover the state dir in-process; nothing may be quarantined."""
    from repro.service.journal import SessionStore

    store = SessionStore(state_dir, snapshot_every=1)
    summary = store.recover()
    if summary.quarantined:
        raise PointFailure(
            "recovery quarantined {}".format(sorted(summary.quarantined))
        )
    return summary


def explore_service(point: str, reference: dict, env: dict) -> str:
    """Service-path point: crash the daemon, recover, resume, compare."""
    import http.client as httplib

    from repro.service.client import (
        RetryingServiceClient,
        RetryPolicy,
        ServiceClientError,
    )

    workdir = Path(tempfile.mkdtemp(prefix="repro-crash-"))
    state_dir = workdir / "state"
    topology_point = point.startswith("topology.")
    daemon2 = None
    try:
        daemon1, url1 = spawn_daemon(
            env,
            workdir,
            "daemon1",
            crash_point=point,
            expect_death=topology_point,
        )
        session_id = None
        if not topology_point:
            policy = RetryPolicy(
                max_attempts=2, base_delay=0.05, max_delay=0.2
            )
            client1 = RetryingServiceClient(
                url1, timeout=30, salt=SALT, policy=policy
            )
            outputs: dict = {}
            fired = False
            try:
                session_id = client1.create_session(SALT)["id"]
                _drive(client1, session_id, outputs)
            except (OSError, httplib.HTTPException, ServiceClientError):
                fired = True
            finally:
                client1.close()
            if not fired and daemon1.poll() is None:
                daemon1.kill()
                daemon1.communicate(timeout=10)
                raise PointFailure(
                    "workload completed and the daemon survived; the "
                    "point never fired"
                )
        daemon1.wait(timeout=15)
        if daemon1.returncode != -signal.SIGKILL:
            raise PointFailure(
                "daemon exited {} (expected SIGKILL -9 from the armed "
                "point)".format(daemon1.returncode)
            )

        summary = _check_recovery(state_dir)
        daemon2, url2 = spawn_daemon(env, workdir, "daemon2")
        policy = RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=0.5)
        client2 = RetryingServiceClient(
            url2, timeout=30, salt=SALT, policy=policy
        )
        if session_id is None or session_id not in summary.recoverable:
            # Crash-mid-create: the half-made session directory must have
            # been discarded, and a fresh session serves the corpus.
            session_id = client2.create_session(SALT)["id"]
        outputs = {}
        _drive(client2, session_id, outputs)
        client2.close()
        if outputs != reference:
            diff = [n for n in CORPUS if outputs.get(n) != reference[n]]
            raise PointFailure(
                "post-recovery outputs differ from the uninterrupted "
                "batch run: {}".format(diff)
            )
        daemon2.send_signal(signal.SIGTERM)
        out, _ = daemon2.communicate(timeout=30)
        if daemon2.returncode != 0:
            raise PointFailure(
                "recovered daemon exited {} after SIGTERM:\n{}".format(
                    daemon2.returncode, out
                )
            )
        return "killed, recovered ({}), outputs byte-identical".format(
            summary.describe()
        )
    finally:
        for proc in (locals().get("daemon1"), daemon2):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        shutil.rmtree(workdir, ignore_errors=True)


def explore_runner(point: str, reference: dict, env: dict) -> str:
    """Batch-path point: kill the CLI mid-write, verify, resume."""
    workdir = Path(tempfile.mkdtemp(prefix="repro-crash-"))
    try:
        in_dir = workdir / "in"
        out_dir = workdir / "out"
        _write_corpus(in_dir)
        # --jobs 1 keeps every write in the process the crash point
        # kills; --two-pass freezes the mappings so the resumed rerun
        # (which forces the freeze) stays byte-identical to the --jobs 2
        # reference.
        base = [
            sys.executable,
            "-m",
            "repro.cli",
            str(in_dir),
            "--salt",
            SALT,
            "--jobs",
            "1",
            "--two-pass",
            "--out-dir",
            str(out_dir),
        ]
        crash_env = dict(env)
        crash_env["REPRO_CRASH_POINT"] = point
        code = subprocess.call(
            base, env=crash_env, timeout=POINT_DEADLINE
        )
        if code != -signal.SIGKILL:
            raise PointFailure(
                "batch run exited {} (expected SIGKILL -9; the point "
                "never fired)".format(code)
            )
        # Fail-closed check: any output that exists must be complete and
        # correct — a crash may lose files, never tear them.
        for name in CORPUS:
            path = out_dir / (name + ".anon")
            if path.exists() and path.read_bytes() != reference[name]:
                raise PointFailure(
                    "torn output survived the crash: {}".format(path.name)
                )
        code = subprocess.call(
            base + ["--resume"], env=env, timeout=POINT_DEADLINE
        )
        if code != 0:
            raise PointFailure("resumed run exited {}".format(code))
        for name in CORPUS:
            got = (out_dir / (name + ".anon")).read_bytes()
            if got != reference[name]:
                raise PointFailure(
                    "resumed output for {} differs from the "
                    "uninterrupted run".format(name)
                )
        return "killed mid-write, no torn outputs, resume byte-identical"
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def explore_corpus(point: str, reference: dict, env: dict) -> str:
    """Corpus-client point: kill submit mid-manifest-append, resume."""
    workdir = Path(tempfile.mkdtemp(prefix="repro-crash-"))
    daemon = None
    try:
        in_dir = workdir / "in"
        out_dir = workdir / "out"
        _write_corpus(in_dir)
        daemon, url = spawn_daemon(env, workdir, "daemon")
        base = [
            sys.executable,
            "-m",
            "repro.cli",
            "submit",
            "--corpus",
            str(in_dir),
            "--server",
            url,
            "--salt",
            SALT,
            "--out-dir",
            str(out_dir),
        ]
        crash_env = dict(env)
        crash_env["REPRO_CRASH_POINT"] = point
        code = subprocess.call(
            base, env=crash_env, timeout=POINT_DEADLINE
        )
        if code != -signal.SIGKILL:
            raise PointFailure(
                "submit exited {} (expected SIGKILL -9; the point never "
                "fired)".format(code)
            )
        if daemon.poll() is not None:
            raise PointFailure(
                "the daemon died with its client (exit {})".format(
                    daemon.returncode
                )
            )
        code = subprocess.call(
            base + ["--resume"], env=env, timeout=POINT_DEADLINE
        )
        if code != 0:
            raise PointFailure("resumed corpus run exited {}".format(code))
        for name in CORPUS:
            got = (out_dir / (name + ".anon")).read_bytes()
            if got != reference[name]:
                raise PointFailure(
                    "resumed corpus output for {} differs from the "
                    "uninterrupted run".format(name)
                )
        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=30)
        if daemon.returncode != 0:
            raise PointFailure(
                "daemon exited {} after SIGTERM:\n{}".format(
                    daemon.returncode, out
                )
            )
        return "client killed mid-manifest, resume byte-identical"
    finally:
        if daemon is not None and daemon.poll() is None:
            daemon.kill()
            daemon.communicate(timeout=10)
        shutil.rmtree(workdir, ignore_errors=True)


def explore(point: str, reference: dict, env: dict) -> str:
    if point.startswith("runner."):
        return explore_runner(point, reference, env)
    if point.startswith("corpus."):
        return explore_corpus(point, reference, env)
    return explore_service(point, reference, env)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the registered crash points and exit",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="PREFIX[,PREFIX...]",
        help="explore only points matching one of these name prefixes",
    )
    args = parser.parse_args()

    points = registered_points()
    if args.list:
        width = max(len(name) for name in points)
        for name, description in sorted(points.items()):
            print("{:<{}}  {}".format(name, width, description))
        return 0
    selected = sorted(points)
    if args.only:
        prefixes = [p.strip() for p in args.only.split(",") if p.strip()]
        selected = [
            name
            for name in selected
            if any(name.startswith(prefix) for prefix in prefixes)
        ]
        if not selected:
            print(
                "error: no crash points match {!r}".format(args.only),
                file=sys.stderr,
            )
            return 1

    started = time.time()
    env = _env()
    refdir = Path(tempfile.mkdtemp(prefix="repro-crash-ref-"))
    try:
        reference = batch_reference(refdir, env)
    finally:
        shutil.rmtree(refdir, ignore_errors=True)

    failures = []
    for index, point in enumerate(selected, 1):
        label = "[{}/{}] {}".format(index, len(selected), point)
        point_started = time.time()
        try:
            detail = explore(point, reference, env)
        except PointFailure as exc:
            failures.append((point, str(exc)))
            print("{}: FAIL: {}".format(label, exc), file=sys.stderr)
            continue
        print(
            "{}: ok ({:.1f}s): {}".format(
                label, time.time() - point_started, detail
            )
        )
    elapsed = time.time() - started
    if failures:
        print(
            "CRASH EXPLORER FAIL: {}/{} point(s) violated invariants "
            "in {:.1f}s".format(len(failures), len(selected), elapsed),
            file=sys.stderr,
        )
        for point, message in failures:
            print("  {}: {}".format(point, message), file=sys.stderr)
        return 1
    print(
        "CRASH EXPLORER PASS: {} point(s) killed and recovered "
        "in {:.1f}s".format(len(selected), elapsed)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
