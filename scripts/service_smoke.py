#!/usr/bin/env python
"""Service smoke test: the CI drive-the-daemon-for-real job.

Starts ``repro-anonymize serve`` as a subprocess, then walks the whole
operational surface end to end:

1. wait for the ready file and ``GET /healthz``,
2. create a session, freeze it over a sample corpus,
3. anonymize a config via the ``submit`` CLI subcommand and verify the
   output is byte-identical to the batch ``--jobs 2`` CLI run,
4. scrape ``GET /metrics`` and check the request/rule-family counters
   and the queue-depth gauge are present,
5. SIGTERM the daemon and require a graceful exit 0.

Runs under a hard deadline so a wedged daemon fails loudly instead of
hanging CI.  Exits 0 on success, 1 with a message on any failure.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
DEADLINE_SECONDS = 120

SAMPLE = """\
hostname cr1.lax.foo.com
interface Ethernet0
 ip address 1.1.1.1 255.255.255.0
router bgp 1111
 neighbor 2.3.4.5 remote-as 701
 neighbor 2.3.4.5 route-map UUNET-import in
access-list 143 permit ip 1.1.1.0 0.0.0.255 2.0.0.0 0.255.255.255
"""


def fail(message: str) -> "NoReturn":  # noqa: F821 (py3.10 compat)
    print("SMOKE FAIL: {}".format(message), file=sys.stderr)
    sys.exit(1)


def main() -> int:
    started = time.time()

    def remaining() -> float:
        left = DEADLINE_SECONDS - (time.time() - started)
        if left <= 0:
            fail("deadline exceeded")
        return left

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    workdir = Path(tempfile.mkdtemp(prefix="repro-smoke-"))
    ready = workdir / "ready.txt"
    (workdir / "in").mkdir()
    (workdir / "in" / "cr1.cfg").write_text(SAMPLE)

    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--ready-file",
            str(ready),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        while not ready.exists():
            if daemon.poll() is not None:
                fail("daemon exited early:\n" + (daemon.stdout.read() or ""))
            if remaining() < DEADLINE_SECONDS - 30:
                fail("daemon never wrote the ready file")
            time.sleep(0.05)
        url = ready.read_text().strip()
        print("daemon ready at {}".format(url))

        sys.path.insert(0, SRC)
        from repro.service.client import ServiceClient

        client = ServiceClient(url, timeout=min(60, remaining()))
        health = client.healthz()
        if health.get("status") != "ok":
            fail("healthz reported {!r}".format(health))
        print("healthz ok: {}".format(health))

        # submit (the CLI path) against the live daemon.
        submit_dir = workdir / "via-service"
        code = subprocess.call(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "submit",
                str(workdir / "in"),
                "--server",
                url,
                "--salt",
                "smoke-secret",
                "--out-dir",
                str(submit_dir),
            ],
            env=env,
            timeout=remaining(),
        )
        if code != 0:
            fail("submit exited {}".format(code))

        # batch reference run; byte-identity is the headline invariant.
        batch_dir = workdir / "via-batch"
        code = subprocess.call(
            [
                sys.executable,
                "-m",
                "repro.cli",
                str(workdir / "in"),
                "--salt",
                "smoke-secret",
                "--jobs",
                "2",
                "--out-dir",
                str(batch_dir),
            ],
            env=env,
            timeout=remaining(),
        )
        if code != 0:
            fail("batch run exited {}".format(code))
        via_service = (submit_dir / "cr1.cfg.anon").read_bytes()
        via_batch = (batch_dir / "cr1.cfg.anon").read_bytes()
        if via_service != via_batch:
            fail("service output differs from batch output")
        if b"foo.com" in via_service or b"1111" in via_service:
            fail("raw identifiers leaked into the anonymized output")
        print("submit output byte-identical to batch --jobs 2")

        metrics = client.metrics_text()
        for needle in (
            "repro_requests_total",
            'repro_rule_family_hits_total{family="asn"}',
            "repro_queue_depth",
            "repro_request_seconds_bucket",
        ):
            if needle not in metrics:
                fail("metrics missing {!r}".format(needle))
        print("metrics exposition ok ({} lines)".format(len(metrics.splitlines())))

        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=remaining())
        if daemon.returncode != 0:
            fail(
                "daemon exited {} after SIGTERM:\n{}".format(
                    daemon.returncode, out
                )
            )
        if "drained" not in out:
            fail("daemon did not report a graceful drain:\n" + out)
        print("graceful drain ok")
        print("SMOKE PASS in {:.1f}s".format(time.time() - started))
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
