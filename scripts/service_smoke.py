#!/usr/bin/env python
"""Service smoke test: the CI drive-the-daemon-for-real job.

Starts ``repro-anonymize serve`` as a subprocess, then walks the whole
operational surface end to end:

1. wait for the ready file and ``GET /healthz``,
2. create a session, freeze it over a sample corpus,
3. anonymize a config via the ``submit`` CLI subcommand and verify the
   output is byte-identical to the batch ``--jobs 2`` CLI run,
4. scrape ``GET /metrics`` and check the request/rule-family counters
   and the queue-depth gauge are present,
5. SIGTERM the daemon and require a graceful exit 0.

With ``--chaos`` it instead runs the crash-safety drill: a durable
daemon (``--state-dir``) is killed *mid-journal-write* by an injected
fault halfway through a corpus, a fresh daemon recovers the state dir,
and the retrying client resumes the session and finishes — the final
outputs must be byte-identical to an uninterrupted batch ``--jobs 2``
run, and the journal/recovery metrics must account for every event.

``--workers N`` (default 1) runs either flow against the pre-fork
sharded daemon.  The chaos drill changes shape there: the injected
fault kills *one worker* mid-journal-write, the supervisor respawns it
in place (no second daemon), the replacement recovers exactly its
shard, and a witness session on the *other* shard must sail through the
whole drill undisturbed — same worker pid, no recovery, no retries.

Runs under a hard deadline so a wedged daemon fails loudly instead of
hanging CI.  Exits 0 on success, 1 with a message on any failure.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
DEADLINE_SECONDS = 120

SAMPLE = """\
hostname cr1.lax.foo.com
interface Ethernet0
 ip address 1.1.1.1 255.255.255.0
router bgp 1111
 neighbor 2.3.4.5 remote-as 701
 neighbor 2.3.4.5 route-map UUNET-import in
access-list 143 permit ip 1.1.1.0 0.0.0.255 2.0.0.0 0.255.255.255
"""


SAMPLE2 = """\
hostname cr2.lax.foo.com
interface Loopback0
 ip address 1.2.3.4 255.255.255.255
router bgp 1111
 neighbor 2.3.4.5 remote-as 701
"""

SAMPLE3 = """\
hostname edge.sfo.foo.com
router bgp 701
 neighbor 1.2.3.4 remote-as 1111
access-list 10 permit 1.1.1.0 0.0.0.255
"""


def fail(message: str) -> "NoReturn":  # noqa: F821 (py3.10 compat)
    print("SMOKE FAIL: {}".format(message), file=sys.stderr)
    sys.exit(1)


def spawn_daemon(env, workdir, name, workers=1, extra_args=(), extra_env=None):
    """Start ``repro-anonymize serve`` and wait for its ready file."""
    ready = workdir / (name + ".ready")
    daemon_env = dict(env)
    daemon_env.update(extra_env or {})
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--threads",
            "2",
            "--ready-file",
            str(ready),
            *extra_args,
        ],
        env=daemon_env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + 30
    while not ready.exists():
        if proc.poll() is not None:
            fail(
                "{} exited early:\n".format(name) + (proc.stdout.read() or "")
            )
        if time.time() > deadline:
            fail("{} never wrote the ready file".format(name))
        time.sleep(0.05)
    return proc, ready.read_text().strip()


def chaos_main() -> int:
    """Kill the daemon mid-journal-write, restart, and finish the corpus."""
    # The single-process drill: recovery happens in a *second* daemon.
    started = time.time()
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    state_dir = workdir / "state"
    corpus = {"cr1.cfg": SAMPLE, "cr2.cfg": SAMPLE2, "cr3.cfg": SAMPLE3}
    (workdir / "in").mkdir()
    for name, text in corpus.items():
        (workdir / "in" / name).write_text(text)

    # The uninterrupted reference: the batch --jobs 2 pipeline.
    batch_dir = workdir / "via-batch"
    code = subprocess.call(
        [
            sys.executable,
            "-m",
            "repro.cli",
            str(workdir / "in"),
            "--salt",
            "chaos-secret",
            "--jobs",
            "2",
            "--out-dir",
            str(batch_dir),
        ],
        env=env,
        timeout=DEADLINE_SECONDS,
    )
    if code != 0:
        fail("batch reference run exited {}".format(code))
    reference = {
        name: (batch_dir / (name + ".anon")).read_bytes() for name in corpus
    }

    sys.path.insert(0, SRC)
    import http.client as httplib

    from repro.service.client import (
        RetryingServiceClient,
        RetryPolicy,
        ServiceClient,
    )

    policy = RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.3)

    # Round 1: the daemon dies mid-journal-append while handling cr2.cfg
    # (half a record on disk, no response sent).
    daemon1, url1 = spawn_daemon(
        env,
        workdir,
        "daemon1",
        extra_args=("--state-dir", str(state_dir)),
        extra_env={"REPRO_FAULT_PLAN": "journal-kill:cr2.cfg"},
    )
    try:
        client1 = RetryingServiceClient(
            url1, timeout=60, salt="chaos-secret", policy=policy
        )
        session_id = client1.create_session("chaos-secret")["id"]
        client1.freeze(session_id, corpus)
        outputs = {
            "cr1.cfg": client1.anonymize(
                session_id, corpus["cr1.cfg"], source="cr1.cfg"
            )["text"].encode()
        }
        print("round 1: froze + anonymized cr1.cfg on {}".format(url1))
        try:
            client1.anonymize(session_id, corpus["cr2.cfg"], source="cr2.cfg")
            fail("the journal-kill fault never fired")
        except (OSError, httplib.HTTPException):
            pass
        daemon1.wait(timeout=15)
        if daemon1.returncode != 3:
            fail(
                "daemon1 exited {} (expected the injected crash code "
                "3)".format(daemon1.returncode)
            )
        print("round 1: daemon killed mid-journal-write (exit 3)")
    finally:
        if daemon1.poll() is None:
            daemon1.kill()
            daemon1.communicate(timeout=10)

    # Round 2: a fresh daemon recovers the state dir; the retrying
    # client auto-resumes the session and finishes the corpus.
    daemon2, url2 = spawn_daemon(
        env, workdir, "daemon2", extra_args=("--state-dir", str(state_dir))
    )
    try:
        client2 = RetryingServiceClient(
            url2, timeout=60, salt="chaos-secret", policy=policy
        )
        for name in sorted(corpus):
            outputs[name] = client2.anonymize(
                session_id, corpus[name], source=name
            )["text"].encode()
        if outputs != reference:
            diff = [n for n in corpus if outputs.get(n) != reference[n]]
            fail(
                "post-recovery outputs differ from the uninterrupted "
                "batch run: {}".format(diff)
            )
        print("round 2: resumed session; outputs byte-identical to batch")

        metrics = ServiceClient(url2, timeout=60).metrics_text()

        def counter(name):
            for line in metrics.splitlines():
                if line.startswith(name + " "):
                    return int(float(line.split()[1]))
            fail("metrics missing {!r}".format(name))

        if counter("repro_session_recoveries_total") != 1:
            fail("expected exactly one session recovery")
        if counter("repro_service_journal_torn_discarded_total") != 1:
            fail("expected exactly one torn journal record discarded")
        # Only the files actually re-run on daemon2 append records —
        # the idempotent replay is answered without touching the journal.
        if counter("repro_service_journal_records_total") < 1:
            fail("journal records counter did not grow")
        if counter("repro_idempotent_replays_total") < 1:
            fail("resubmitted committed file was not replayed")
        print(
            "metrics ok: recoveries=1 torn_discarded=1 records={} "
            "replays={}".format(
                counter("repro_service_journal_records_total"),
                counter("repro_idempotent_replays_total"),
            )
        )

        daemon2.send_signal(signal.SIGTERM)
        out, _ = daemon2.communicate(timeout=30)
        if daemon2.returncode != 0:
            fail("daemon2 exited {} after SIGTERM:\n{}".format(daemon2.returncode, out))
        print("graceful drain ok")
        print("CHAOS SMOKE PASS in {:.1f}s".format(time.time() - started))
        return 0
    finally:
        if daemon2.poll() is None:
            daemon2.kill()
            daemon2.communicate(timeout=10)


def chaos_sharded_main(workers: int) -> int:
    """Kill one worker mid-journal-write; its shard alone recovers.

    One supervisor daemon runs the whole drill: the injected fault kills
    the worker owning the drill session, the supervisor respawns that
    shard in place (the retrying client rides the crash out — dropped
    connection, redirect, auto-resume — with no second daemon), and a
    witness session on a *different* shard must never notice: same
    worker pid before and after, generation still 0, no recovery.
    """
    started = time.time()
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-shard-"))
    state_dir = workdir / "state"
    corpus = {"cr1.cfg": SAMPLE, "cr2.cfg": SAMPLE2, "cr3.cfg": SAMPLE3}
    (workdir / "in").mkdir()
    for name, text in corpus.items():
        (workdir / "in" / name).write_text(text)

    # The uninterrupted reference: the batch --jobs 2 pipeline.
    batch_dir = workdir / "via-batch"
    code = subprocess.call(
        [
            sys.executable,
            "-m",
            "repro.cli",
            str(workdir / "in"),
            "--salt",
            "chaos-secret",
            "--jobs",
            "2",
            "--out-dir",
            str(batch_dir),
        ],
        env=env,
        timeout=DEADLINE_SECONDS,
    )
    if code != 0:
        fail("batch reference run exited {}".format(code))
    reference = {
        name: (batch_dir / (name + ".anon")).read_bytes() for name in corpus
    }

    sys.path.insert(0, SRC)
    from repro.service.client import (
        RetryingServiceClient,
        RetryPolicy,
        ServiceClient,
    )

    daemon, url = spawn_daemon(
        env,
        workdir,
        "supervisor",
        workers=workers,
        extra_args=("--state-dir", str(state_dir)),
        extra_env={"REPRO_FAULT_PLAN": "journal-kill:cr2.cfg"},
    )
    try:
        policy = RetryPolicy(max_attempts=10, base_delay=0.1, max_delay=1.0)
        client = RetryingServiceClient(
            url, timeout=60, salt="chaos-secret", policy=policy
        )
        session_id = client.create_session("chaos-secret")["id"]
        victim_shard = client.session(session_id)["shard"]
        shards = client.healthz()["shards"]
        victim_url = shards[str(victim_shard)]
        victim_probe = ServiceClient(victim_url, timeout=60)
        victim_pid = victim_probe.healthz()["pid"]
        victim_probe.close()

        witness_shard = next(
            int(i) for i in shards if int(i) != victim_shard
        )
        witness = ServiceClient(shards[str(witness_shard)], timeout=60)
        witness_pid = witness.healthz()["pid"]
        witness_session = witness.create_session("witness-secret")["id"]
        witness_before = witness.anonymize(
            witness_session, corpus["cr1.cfg"], source="witness.cfg"
        )["text"]
        print(
            "drill session on shard {} (pid {}), witness on shard {} "
            "(pid {})".format(
                victim_shard, victim_pid, witness_shard, witness_pid
            )
        )

        client.freeze(session_id, corpus)
        outputs = {
            "cr1.cfg": client.anonymize(
                session_id, corpus["cr1.cfg"], source="cr1.cfg"
            )["text"].encode()
        }
        # This one kills worker <victim_shard> mid-journal-append.  The
        # retrying client rides it out end to end: dropped connection,
        # retry lands on a surviving worker, 307 to the victim's direct
        # listener (its accept queue is held open by the supervisor),
        # the respawned worker recovers its shard, answers 404
        # recoverable, and the client auto-resumes and re-runs.
        outputs["cr2.cfg"] = client.anonymize(
            session_id, corpus["cr2.cfg"], source="cr2.cfg"
        )["text"].encode()
        outputs["cr3.cfg"] = client.anonymize(
            session_id, corpus["cr3.cfg"], source="cr3.cfg"
        )["text"].encode()
        if outputs != reference:
            diff = [n for n in corpus if outputs.get(n) != reference[n]]
            fail(
                "post-respawn outputs differ from the uninterrupted batch "
                "run: {}".format(diff)
            )
        print("rode out the worker kill; outputs byte-identical to batch")

        if daemon.poll() is not None:
            fail(
                "the supervisor died with its worker (exit {})".format(
                    daemon.returncode
                )
            )
        respawned = ServiceClient(victim_url, timeout=60)
        health = respawned.healthz()
        respawned.close()
        if health["pid"] == victim_pid:
            fail("worker {} was never killed (same pid)".format(victim_shard))
        if health.get("generation", 0) < 1:
            fail("respawned worker does not report a new generation")
        print(
            "shard {} respawned in place (pid {} -> {}, generation "
            "{})".format(
                victim_shard, victim_pid, health["pid"], health["generation"]
            )
        )

        # The witness shard must have sailed through untouched: same
        # process, still generation 0, session alive without resume, and
        # still producing identical bytes over its parked keep-alive
        # connection.
        witness_health = witness.healthz()
        if witness_health["pid"] != witness_pid:
            fail("witness worker was disturbed (pid changed)")
        if witness_health.get("generation", 0) != 0:
            fail("witness worker respawned during the drill")
        witness_after = witness.anonymize(
            witness_session, corpus["cr1.cfg"], source="witness.cfg"
        )["text"]
        if witness_after != witness_before:
            fail("witness shard's output changed across the drill")
        witness.close()
        print("witness shard undisturbed (same pid, generation 0)")

        metrics = ServiceClient(url, timeout=60).metrics_text()

        def counter(name):
            for line in metrics.splitlines():
                if line.startswith(name + " "):
                    return int(float(line.split()[1]))
            fail("metrics missing {!r}".format(name))

        if counter("repro_session_recoveries_total") < 1:
            fail("aggregated metrics show no session recovery")
        if counter("repro_service_journal_torn_discarded_total") != 1:
            fail("expected exactly one torn journal record discarded")
        for shard in range(workers):
            needle = 'repro_worker_up{{shard="{}"}} 1'.format(shard)
            if needle not in metrics:
                fail("aggregated metrics missing {!r}".format(needle))
        print("aggregated metrics ok (all workers up, one torn record)")

        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=30)
        if daemon.returncode != 0:
            fail(
                "supervisor exited {} after SIGTERM:\n{}".format(
                    daemon.returncode, out
                )
            )
        if "respawning" not in out:
            fail("supervisor log never mentioned the respawn:\n" + out)
        if "drained" not in out:
            fail("supervisor did not report a graceful drain:\n" + out)
        print("graceful drain ok")
        print(
            "SHARDED CHAOS SMOKE PASS in {:.1f}s".format(time.time() - started)
        )
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate(timeout=10)


def corpus_chaos_main(workers: int) -> int:
    """The corpus fan-out drill: interrupt, full disk, worker kill.

    One sharded durable daemon serves a ``submit --corpus`` run in two
    phases.  Phase A is interrupted client-side after 3 files
    (``REPRO_CORPUS_ABORT_AFTER``) *and* hits an injected ENOSPC on one
    of those files' journal appends — the 507 + Retry-After park, whose
    counter is scraped between the phases while every worker is still
    alive.  Phase B resumes the run while an injected ``journal-kill``
    fault kills a worker mid-journal-append (fault plans are built per
    session, so the failover re-drive can take down the *other* worker
    too — the drill must ride out both).  The resumed run must exit 0
    with a nonzero failover count, and the final outputs must be
    byte-identical to an uninterrupted batch ``--jobs 2`` run.
    """
    if workers < 2:
        fail("--corpus-chaos needs --workers >= 2")
    started = time.time()
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    workdir = Path(tempfile.mkdtemp(prefix="repro-corpus-chaos-"))
    state_dir = workdir / "state"
    in_dir = workdir / "in"
    in_dir.mkdir()

    sys.path.insert(0, SRC)
    from repro.service.sharding import shard_for

    samples = [SAMPLE, SAMPLE2, SAMPLE3]
    names = []
    for index in range(8):
        path = in_dir / "chaos{:02d}.cfg".format(index)
        path.write_text(samples[index % len(samples)])
        names.append(str(path))
    corpus_names = sorted(names)
    # The ENOSPC fault fires in phase A: its target must be among the
    # first 3 sorted files (driven before the interrupt).  The kill
    # fault fires in phase B: its target must be in the tail.
    enospc_target = Path(corpus_names[1]).name
    kill_target = Path(corpus_names[5]).name
    kill_shard = shard_for(corpus_names[5], workers)
    print(
        "corpus of {} files; ENOSPC on {} (phase A), worker-kill on {} "
        "(phase B, primary shard {})".format(
            len(corpus_names), enospc_target, kill_target, kill_shard
        )
    )

    # The uninterrupted reference: the batch --jobs 2 pipeline.
    batch_dir = workdir / "via-batch"
    code = subprocess.call(
        [
            sys.executable,
            "-m",
            "repro.cli",
            str(in_dir),
            "--salt",
            "chaos-secret",
            "--jobs",
            "2",
            "--out-dir",
            str(batch_dir),
        ],
        env=env,
        timeout=DEADLINE_SECONDS,
    )
    if code != 0:
        fail("batch reference run exited {}".format(code))
    reference = {
        Path(name).name: (batch_dir / (Path(name).name + ".anon")).read_bytes()
        for name in corpus_names
    }

    from repro.service.client import ServiceClient

    daemon, url = spawn_daemon(
        env,
        workdir,
        "supervisor",
        workers=workers,
        extra_args=("--state-dir", str(state_dir)),
        extra_env={
            "REPRO_FAULT_PLAN": "journal-kill:{};journal-enospc:{}".format(
                kill_target, enospc_target
            )
        },
    )
    try:
        probe = ServiceClient(url, timeout=60)
        shards = probe.healthz()["shards"]
        probe.close()
        victim_probe = ServiceClient(shards[str(kill_shard)], timeout=60)
        victim_pid = victim_probe.healthz()["pid"]
        victim_probe.close()

        out_dir = workdir / "via-corpus"
        submit_args = [
            sys.executable,
            "-m",
            "repro.cli",
            "submit",
            "--corpus",
            str(in_dir),
            "--server",
            url,
            "--salt",
            "chaos-secret",
            "--out-dir",
            str(out_dir),
            "--retries",
            "1",
            "--deadline",
            "60",
            "--corpus-report",
            str(workdir / "report.json"),
        ]

        # Phase A: sequential fan-out, interrupted after 3 files.  The
        # ENOSPC target is among those 3, so the park (507 + Retry-After,
        # client failover, half-open retry) happens here — while both
        # workers are still alive and their in-memory counters intact.
        abort_env = dict(env)
        abort_env["REPRO_CORPUS_ABORT_AFTER"] = "3"
        code = subprocess.call(
            submit_args + ["--corpus-jobs", "1"],
            env=abort_env,
            timeout=DEADLINE_SECONDS,
        )
        if code != 130:
            fail("interrupted corpus run exited {} (expected 130)".format(code))
        manifest_path = out_dir / ".repro-corpus-manifest.jsonl"
        if not manifest_path.exists():
            fail("interrupted run left no resume manifest")
        done = sum(1 for line in manifest_path.read_bytes().splitlines()[1:])
        if done != 3:
            fail("manifest records {} files (expected 3)".format(done))

        # Scrape the disk-fault evidence now: the phase-B kill can take
        # down either worker (fault plans ride every session, so the
        # failover re-drive of the kill target fires on the second shard
        # too) and a killed worker's in-memory counters are lost.
        mid = ServiceClient(url, timeout=60)
        mid_metrics = mid.metrics_text()
        mid.close()
        degraded = 0
        for line in mid_metrics.splitlines():
            if line.startswith("repro_disk_degraded_responses_total "):
                degraded = int(float(line.split()[1]))
        if degraded < 1:
            fail("the ENOSPC park never answered a 507")
        print(
            "phase A: interrupted after 3 files; manifest fsync'd; "
            "ENOSPC answered {} x 507".format(degraded)
        )

        # Phase B: resume.  The journal-kill fault fires mid-corpus on
        # the kill target's primary shard (and possibly on the failover
        # shard as well); the run must still end exit 0.
        code = subprocess.call(
            submit_args + ["--corpus-jobs", "2", "--resume"],
            env=env,
            timeout=DEADLINE_SECONDS,
        )
        if code != 0:
            fail("resumed corpus run exited {} (expected 0)".format(code))
        report = json.loads((workdir / "report.json").read_text())
        if report["files_skipped_resume"] != 3:
            fail(
                "resume skipped {} files (expected 3)".format(
                    report["files_skipped_resume"]
                )
            )
        if report["files_quarantined"]:
            fail("files were quarantined: {}".format(report["files_quarantined"]))
        if report["failovers_total"] < 1:
            fail("the drill produced no failovers")
        print(
            "phase B: resumed and completed; failovers_total={} "
            "(re-drives={}, retries={}, resumes={})".format(
                report["failovers_total"],
                report["failovers"],
                report["client_retries"],
                report["client_resumes"],
            )
        )

        for name in corpus_names:
            base = Path(name).name
            got = (out_dir / (base + ".anon")).read_bytes()
            if got != reference[base]:
                fail(
                    "corpus output for {} differs from the uninterrupted "
                    "batch run".format(base)
                )
        print("outputs byte-identical to batch --jobs 2")

        if daemon.poll() is not None:
            fail("the supervisor died during the drill")
        respawned = ServiceClient(shards[str(kill_shard)], timeout=60)
        health = respawned.healthz()
        respawned.close()
        if health["pid"] == victim_pid:
            fail("worker {} was never killed (same pid)".format(kill_shard))
        if health.get("generation", 0) < 1:
            fail("respawned worker does not report a new generation")
        print(
            "shard {} respawned in place (pid {} -> {}, generation {})".format(
                kill_shard, victim_pid, health["pid"], health["generation"]
            )
        )

        metrics = ServiceClient(url, timeout=60).metrics_text()

        def counter(name):
            for line in metrics.splitlines():
                if line.startswith(name + " "):
                    return int(float(line.split()[1]))
            fail("metrics missing {!r}".format(name))

        if counter("repro_corpus_files_total") < 1:
            fail("no corpus-tagged requests reached the service")
        if counter("repro_corpus_failovers_total") < 1:
            fail("no failover-tagged requests reached the service")
        if "repro_circuit_open{" not in metrics:
            fail("metrics missing the repro_circuit_open gauge")
        for shard in range(workers):
            needle = 'repro_worker_up{{shard="{}"}} 1'.format(shard)
            if needle not in metrics:
                fail("aggregated metrics missing {!r}".format(needle))
        print(
            "metrics ok: corpus_files={} corpus_failovers={} "
            "disk_degraded_responses={} (mid-drill)".format(
                counter("repro_corpus_files_total"),
                counter("repro_corpus_failovers_total"),
                degraded,
            )
        )

        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=30)
        if daemon.returncode != 0:
            fail(
                "supervisor exited {} after SIGTERM:\n{}".format(
                    daemon.returncode, out
                )
            )
        print("graceful drain ok")
        print(
            "CORPUS CHAOS SMOKE PASS in {:.1f}s".format(time.time() - started)
        )
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            try:
                # wait(), not communicate(): worker processes inherit
                # the stdout pipe and keep it open past the supervisor's
                # death, so communicate() would block on EOF.
                daemon.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass


def hang_drill_main(workers: int) -> int:
    """Wedge one worker's serve loops; the watchdog must revive it.

    An injected ``worker-hang`` fault live-locks the worker owning the
    drill session — process alive, sockets bound, heartbeat stopped.
    The supervisor's watchdog must detect the stale heartbeat within
    ``--watchdog-timeout``, SIGKILL the worker, and respawn it in place
    under the existing budget, while the retrying client rides the hang
    out and a witness session on the other shard never notices.
    """
    if workers < 2:
        fail("--hang needs --workers >= 2")
    started = time.time()
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    workdir = Path(tempfile.mkdtemp(prefix="repro-hang-"))
    state_dir = workdir / "state"

    sys.path.insert(0, SRC)
    from repro.service.client import (
        RetryingServiceClient,
        RetryPolicy,
        ServiceClient,
    )

    daemon, url = spawn_daemon(
        env,
        workdir,
        "supervisor",
        workers=workers,
        extra_args=(
            "--state-dir",
            str(state_dir),
            "--watchdog-timeout",
            "2",
        ),
        extra_env={"REPRO_FAULT_PLAN": "worker-hang:hang-me.cfg"},
    )
    try:
        policy = RetryPolicy(max_attempts=12, base_delay=0.2, max_delay=1.0)
        client = RetryingServiceClient(
            url, timeout=5, salt="hang-secret", policy=policy
        )
        session_id = client.create_session("hang-secret")["id"]
        victim_shard = client.session(session_id)["shard"]
        shards = client.healthz()["shards"]
        victim_url = shards[str(victim_shard)]
        victim_probe = ServiceClient(victim_url, timeout=30)
        victim_pid = victim_probe.healthz()["pid"]
        victim_probe.close()

        witness_shard = next(int(i) for i in shards if int(i) != victim_shard)
        witness = ServiceClient(shards[str(witness_shard)], timeout=30)
        witness_health = witness.healthz()
        witness_pid = witness_health["pid"]
        budget = witness_health.get("respawn_budget", {})
        if not budget:
            fail("healthz does not report the respawn budget")
        full_budget = budget[str(victim_shard)]
        witness_session = witness.create_session("witness-secret")["id"]
        witness_before = witness.anonymize(
            witness_session, SAMPLE, source="witness.cfg"
        )["text"]
        print(
            "drill session on shard {} (pid {}), witness on shard {} "
            "(pid {}), respawn budget {}".format(
                victim_shard, victim_pid, witness_shard, witness_pid,
                full_budget,
            )
        )

        # This request wedges worker <victim_shard>: the handler drops
        # the connection, arms the live-hang, and the next serve-loop
        # tick parks both accept loops in an infinite sleep.  The
        # retrying client rides it out — dropped connection, retries
        # that hang against the wedged (but still bound) socket until
        # its short timeout, then the watchdog's SIGKILL + respawn lets
        # a retry land on the revived worker, which recovers the shard
        # and answers after an auto-resume.
        result = client.anonymize(
            session_id, SAMPLE, source="hang-me.cfg"
        )["text"]
        if "foo.com" in result:
            fail("post-respawn response leaked raw identifiers")
        print("rode out the hang; anonymize answered after respawn")

        if daemon.poll() is not None:
            fail(
                "the supervisor died during the drill (exit {})".format(
                    daemon.returncode
                )
            )
        # The wedge lands at the victim's next serve-loop tick, which
        # can be AFTER the client's retry already succeeded — so the
        # kill + respawn may still be in flight here.  Poll until the
        # revived worker answers with a new pid; probes against the
        # wedged-but-bound socket (or mid-respawn) time out or reset,
        # which just means "keep waiting".
        import http.client as httplib

        from repro.service.client import ServiceClientError

        health = None
        deadline = time.time() + 20
        while time.time() < deadline:
            try:
                respawned = ServiceClient(victim_url, timeout=2)
                health = respawned.healthz()
                respawned.close()
            except (OSError, httplib.HTTPException, ServiceClientError):
                health = None
            if health is not None and health["pid"] != victim_pid:
                break
            time.sleep(0.2)
        if health is None or health["pid"] == victim_pid:
            fail(
                "worker {} was never killed (same pid) — the watchdog "
                "did not fire".format(victim_shard)
            )
        if health.get("generation", 0) < 1:
            fail("respawned worker does not report a new generation")
        watchdog = health.get("watchdog") or {}
        if watchdog.get("timeout") != 2.0:
            fail("healthz does not report the watchdog timeout")
        remaining = health.get("respawn_budget", {}).get(str(victim_shard))
        if remaining != full_budget - 1:
            fail(
                "respawn budget for shard {} is {} (expected {})".format(
                    victim_shard, remaining, full_budget - 1
                )
            )
        print(
            "shard {} respawned in place (pid {} -> {}, generation {}, "
            "budget {} -> {})".format(
                victim_shard,
                victim_pid,
                health["pid"],
                health["generation"],
                full_budget,
                remaining,
            )
        )

        witness_health = witness.healthz()
        if witness_health["pid"] != witness_pid:
            fail("witness worker was disturbed (pid changed)")
        if witness_health.get("generation", 0) != 0:
            fail("witness worker respawned during the drill")
        witness_after = witness.anonymize(
            witness_session, SAMPLE, source="witness.cfg"
        )["text"]
        if witness_after != witness_before:
            fail("witness shard's output changed across the drill")
        witness.close()
        print("witness shard undisturbed (same pid, generation 0)")

        metrics = ServiceClient(url, timeout=30).metrics_text()

        def labeled(name, shard):
            needle = '{}{{shard="{}"}}'.format(name, shard)
            for line in metrics.splitlines():
                if line.startswith(needle + " "):
                    return int(float(line.split()[-1]))
            fail("metrics missing {!r}".format(needle))

        if labeled("repro_worker_hung_total", victim_shard) < 1:
            fail("repro_worker_hung_total did not count the hang")
        if labeled("repro_worker_respawns_total", victim_shard) < 1:
            fail("repro_worker_respawns_total did not count the respawn")
        if labeled("repro_worker_hung_total", witness_shard) != 0:
            fail("the witness shard was counted as hung")
        print(
            "metrics ok: hung={} respawns={} (victim), hung=0 "
            "(witness)".format(
                labeled("repro_worker_hung_total", victim_shard),
                labeled("repro_worker_respawns_total", victim_shard),
            )
        )

        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=30)
        if daemon.returncode != 0:
            fail(
                "supervisor exited {} after SIGTERM:\n{}".format(
                    daemon.returncode, out
                )
            )
        if "hung" not in out:
            fail("supervisor log never mentioned the hang:\n" + out)
        if "respawning" not in out:
            fail("supervisor log never mentioned the respawn:\n" + out)
        print("graceful drain ok")
        print("HANG DRILL PASS in {:.1f}s".format(time.time() - started))
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            try:
                daemon.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass


def main(workers: int = 1) -> int:
    started = time.time()

    def remaining() -> float:
        left = DEADLINE_SECONDS - (time.time() - started)
        if left <= 0:
            fail("deadline exceeded")
        return left

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    workdir = Path(tempfile.mkdtemp(prefix="repro-smoke-"))
    ready = workdir / "ready.txt"
    (workdir / "in").mkdir()
    (workdir / "in" / "cr1.cfg").write_text(SAMPLE)

    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--threads",
            "2",
            "--ready-file",
            str(ready),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        while not ready.exists():
            if daemon.poll() is not None:
                fail("daemon exited early:\n" + (daemon.stdout.read() or ""))
            if remaining() < DEADLINE_SECONDS - 30:
                fail("daemon never wrote the ready file")
            time.sleep(0.05)
        url = ready.read_text().strip()
        print("daemon ready at {}".format(url))

        sys.path.insert(0, SRC)
        from repro.service.client import ServiceClient

        client = ServiceClient(url, timeout=min(60, remaining()))
        health = client.healthz()
        if health.get("status") != "ok":
            fail("healthz reported {!r}".format(health))
        print("healthz ok: {}".format(health))

        # submit (the CLI path) against the live daemon.
        submit_dir = workdir / "via-service"
        code = subprocess.call(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "submit",
                str(workdir / "in"),
                "--server",
                url,
                "--salt",
                "smoke-secret",
                "--out-dir",
                str(submit_dir),
            ],
            env=env,
            timeout=remaining(),
        )
        if code != 0:
            fail("submit exited {}".format(code))

        # batch reference run; byte-identity is the headline invariant.
        batch_dir = workdir / "via-batch"
        code = subprocess.call(
            [
                sys.executable,
                "-m",
                "repro.cli",
                str(workdir / "in"),
                "--salt",
                "smoke-secret",
                "--jobs",
                "2",
                "--out-dir",
                str(batch_dir),
            ],
            env=env,
            timeout=remaining(),
        )
        if code != 0:
            fail("batch run exited {}".format(code))
        via_service = (submit_dir / "cr1.cfg.anon").read_bytes()
        via_batch = (batch_dir / "cr1.cfg.anon").read_bytes()
        if via_service != via_batch:
            fail("service output differs from batch output")
        if b"foo.com" in via_service or b"1111" in via_service:
            fail("raw identifiers leaked into the anonymized output")
        print("submit output byte-identical to batch --jobs 2")

        metrics = client.metrics_text()
        for needle in (
            "repro_requests_total",
            'repro_rule_family_hits_total{family="asn"}',
            "repro_queue_depth",
            "repro_request_seconds_bucket",
        ):
            if needle not in metrics:
                fail("metrics missing {!r}".format(needle))
        print("metrics exposition ok ({} lines)".format(len(metrics.splitlines())))

        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=remaining())
        if daemon.returncode != 0:
            fail(
                "daemon exited {} after SIGTERM:\n{}".format(
                    daemon.returncode, out
                )
            )
        if "drained" not in out:
            fail("daemon did not report a graceful drain:\n" + out)
        print("graceful drain ok")
        print("SMOKE PASS in {:.1f}s".format(time.time() - started))
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate(timeout=10)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--chaos", action="store_true", help="run the crash-safety drill"
    )
    parser.add_argument(
        "--corpus-chaos",
        action="store_true",
        help="run the corpus fan-out drill (interrupt + resume, worker "
        "kill, ENOSPC park; needs --workers >= 2)",
    )
    parser.add_argument(
        "--hang",
        action="store_true",
        help="run the hung-worker watchdog drill (needs --workers >= 2)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="daemon worker processes (>= 2 uses the sharded drill)",
    )
    cli_args = parser.parse_args()
    if cli_args.hang:
        sys.exit(hang_drill_main(cli_args.workers))
    if cli_args.corpus_chaos:
        sys.exit(corpus_chaos_main(cli_args.workers))
    if cli_args.chaos and cli_args.workers >= 2:
        sys.exit(chaos_sharded_main(cli_args.workers))
    if cli_args.chaos:
        sys.exit(chaos_main())
    sys.exit(main(cli_args.workers))
