#!/usr/bin/env python
"""Seeded chaos soak: probabilistic fault injection, reproducible by seed.

Runs the durable service daemon for several rounds under
``REPRO_FAULT_PLAN=chaos:<seed>-r<round>:<rate>`` — the seeded scheduler
(:mod:`repro.core.faults`) that composes torn appends, injected ENOSPC,
snapshot EIO, and connection drops probabilistically from a
deterministic PRNG.  Each round drives a corpus through one session
with the retrying client, tolerating per-request failures (a torn
journal wedges its session until restart — by design), then stops the
daemon and verifies the invariants:

* recovery of the state dir quarantines **nothing** — every artifact a
  chaos round leaves behind is either replayable or discardable;
* every response acknowledged during the soak is stable: re-presenting
  the same file to the (recovered) session returns the identical text;
* a final clean round (no faults) over a fresh session is
  byte-identical to an uninterrupted batch ``--jobs 2`` run.

The seed is printed first thing and again on failure: re-running with
``--seed <seed>`` replays the exact same fault schedule, which is what
makes a one-in-a-thousand soak failure debuggable.
"""

from __future__ import annotations

import argparse
import binascii
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

SALT = "chaos-soak-secret"
DEADLINE_SECONDS = 300

SAMPLES = [
    """\
hostname cr{0}.lax.foo.com
interface Ethernet0
 ip address 1.1.{0}.1 255.255.255.0
router bgp 1111
 neighbor 2.3.4.{0} remote-as 701
 neighbor 2.3.4.{0} route-map UUNET-import in
access-list 143 permit ip 1.1.{0}.0 0.0.0.255 2.0.0.0 0.255.255.255
""",
    """\
hostname cr{0}.sfo.foo.com
interface Loopback0
 ip address 1.2.3.{0} 255.255.255.255
router bgp 701
 neighbor 1.2.3.{0} remote-as 1111
access-list 10 permit 1.1.{0}.0 0.0.0.255
""",
]


def corpus_files(count: int) -> dict:
    return {
        "soak{:02d}.cfg".format(index): SAMPLES[index % len(SAMPLES)].format(
            index + 1
        )
        for index in range(count)
    }


def fail(seed: str, message: str) -> "NoReturn":  # noqa: F821
    print(
        "CHAOS SOAK FAIL (reproduce with --seed {}): {}".format(
            seed, message
        ),
        file=sys.stderr,
    )
    sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seed",
        default=None,
        help="chaos seed (default: fresh random; printed for replay)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=0.15,
        help="per-trigger-point injection probability",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="chaos rounds before the clean one"
    )
    parser.add_argument(
        "--files", type=int, default=6, help="corpus files per round"
    )
    parser.add_argument(
        "--kinds",
        default=None,
        help="'+'-separated chaos kinds (default: the in-process set)",
    )
    args = parser.parse_args()
    seed = args.seed or binascii.hexlify(os.urandom(4)).decode("ascii")
    print("CHAOS SOAK seed={} rate={} rounds={}".format(seed, args.rate, args.rounds))
    sys.stdout.flush()

    started = time.time()
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CRASH_POINT", None)
    workdir = Path(tempfile.mkdtemp(prefix="repro-soak-"))
    state_dir = workdir / "state"
    corpus = corpus_files(args.files)
    in_dir = workdir / "in"
    in_dir.mkdir()
    for name, text in corpus.items():
        (in_dir / name).write_text(text)

    # The uninterrupted reference for the final clean round.
    batch_dir = workdir / "via-batch"
    code = subprocess.call(
        [
            sys.executable,
            "-m",
            "repro.cli",
            str(in_dir),
            "--salt",
            SALT,
            "--jobs",
            "2",
            "--out-dir",
            str(batch_dir),
        ],
        env=env,
        timeout=DEADLINE_SECONDS,
    )
    if code != 0:
        fail(seed, "batch reference run exited {}".format(code))
    reference = {
        name: (batch_dir / (name + ".anon")).read_text() for name in corpus
    }

    import http.client as httplib

    from repro.service.client import (
        RetryingServiceClient,
        RetryPolicy,
        ServiceClientError,
    )
    from repro.service.journal import SessionStore

    policy = RetryPolicy(max_attempts=4, base_delay=0.05, max_delay=0.4)
    #: Every acknowledged (session, file) -> text; must stay stable.
    acked: dict = {}
    frozen_sessions = []

    for round_index in range(args.rounds):
        plan = "chaos:{}-r{}:{}".format(seed, round_index, args.rate)
        if args.kinds:
            plan += ":" + args.kinds
        daemon = None
        ready = workdir / ("round{}.ready".format(round_index))
        try:
            daemon_env = dict(env, REPRO_FAULT_PLAN=plan)
            daemon = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "serve",
                    "--port",
                    "0",
                    "--threads",
                    "2",
                    "--state-dir",
                    str(state_dir),
                    "--snapshot-every",
                    "4",
                    "--ready-file",
                    str(ready),
                ],
                env=daemon_env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            deadline = time.time() + 30
            while not ready.exists():
                if daemon.poll() is not None:
                    fail(
                        seed,
                        "round {} daemon exited {} before ready:\n{}".format(
                            round_index,
                            daemon.returncode,
                            daemon.stdout.read() or "",
                        ),
                    )
                if time.time() > deadline:
                    fail(seed, "round {} daemon never ready".format(round_index))
                time.sleep(0.05)
            url = ready.read_text().strip()

            client = RetryingServiceClient(
                url, timeout=30, salt=SALT, policy=policy
            )
            errors = 0
            session_id = None
            froze = False
            try:
                session_id = client.create_session(SALT)["id"]
                client.freeze(session_id, corpus)
                froze = True
            except (OSError, httplib.HTTPException, ServiceClientError):
                errors += 1
            if froze:
                frozen_sessions.append(session_id)
                for name in sorted(corpus):
                    try:
                        text = client.anonymize(
                            session_id, corpus[name], source=name
                        )["text"]
                    except (
                        OSError,
                        httplib.HTTPException,
                        ServiceClientError,
                    ):
                        # A wedged (torn-tail) session fails its remaining
                        # appends until restart recovery — expected.
                        errors += 1
                        continue
                    acked[(session_id, name)] = text
            client.close()
            if daemon.poll() is not None:
                fail(
                    seed,
                    "round {} daemon died (exit {}) — in-process chaos "
                    "kinds must not kill the process".format(
                        round_index, daemon.returncode
                    ),
                )
            daemon.send_signal(signal.SIGTERM)
            out, _ = daemon.communicate(timeout=30)
            if daemon.returncode != 0:
                fail(
                    seed,
                    "round {} daemon exited {} on SIGTERM:\n{}".format(
                        round_index, daemon.returncode, out
                    ),
                )
            print(
                "round {}: plan={} acked={} failed-requests={}".format(
                    round_index, plan, len(acked), errors
                )
            )
        finally:
            if daemon is not None and daemon.poll() is None:
                daemon.kill()
                daemon.communicate(timeout=10)

        # Invariant: whatever the round left behind recovers cleanly.
        summary = SessionStore(state_dir, snapshot_every=4).recover()
        if summary.quarantined:
            fail(
                seed,
                "round {} left quarantined sessions: {}".format(
                    round_index, sorted(summary.quarantined)
                ),
            )
        print(
            "round {}: recovery clean ({})".format(
                round_index, summary.describe()
            )
        )
        sys.stdout.flush()

    # Final clean round: no faults.  Acked history must replay verbatim
    # and a fresh session must match the uninterrupted batch run.
    daemon = None
    ready = workdir / "clean.ready"
    try:
        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--threads",
                "2",
                "--state-dir",
                str(state_dir),
                "--snapshot-every",
                "4",
                "--ready-file",
                str(ready),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.time() + 30
        while not ready.exists():
            if daemon.poll() is not None:
                fail(
                    seed,
                    "clean daemon exited {} before ready:\n{}".format(
                        daemon.returncode, daemon.stdout.read() or ""
                    ),
                )
            if time.time() > deadline:
                fail(seed, "clean daemon never ready")
            time.sleep(0.05)
        url = ready.read_text().strip()
        client = RetryingServiceClient(
            url, timeout=30, salt=SALT, policy=policy
        )
        for (session_id, name), text in sorted(acked.items()):
            replay = client.anonymize(session_id, corpus[name], source=name)[
                "text"
            ]
            if replay != text:
                fail(
                    seed,
                    "acked result for {} in session {} changed after "
                    "recovery".format(name, session_id),
                )
        print("acked-result stability: {} result(s) replayed".format(len(acked)))

        session_id = client.create_session(SALT)["id"]
        client.freeze(session_id, corpus)
        for name in sorted(corpus):
            text = client.anonymize(session_id, corpus[name], source=name)[
                "text"
            ]
            if text != reference[name]:
                fail(
                    seed,
                    "clean-round output for {} differs from the batch "
                    "reference".format(name),
                )
        client.close()
        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=30)
        if daemon.returncode != 0:
            fail(seed, "clean daemon exited {} on SIGTERM:\n{}".format(
                daemon.returncode, out
            ))
    finally:
        if daemon is not None and daemon.poll() is None:
            daemon.kill()
            daemon.communicate(timeout=10)

    print(
        "CHAOS SOAK PASS seed={} in {:.1f}s ({} acked results, {} "
        "frozen sessions)".format(
            seed, time.time() - started, len(acked), len(frozen_sessions)
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
