"""Edge-case and robustness tests for the JunOS parser and lexer."""

import pytest

from repro.configmodel.junos_parser import (
    iter_statements,
    looks_like_junos,
    parse_junos_config,
)


class TestIterStatements:
    def test_nested_paths(self):
        text = "a {\n  b {\n    c d;\n  }\n  e f;\n}\n"
        statements = list(iter_statements(text))
        assert (("a", "b"), "c d") in statements
        assert (("a",), "e f") in statements

    def test_unbalanced_close_tolerated(self):
        text = "}\n}\na {\n  b c;\n}\n"
        statements = list(iter_statements(text))
        assert (("a",), "b c") in statements

    def test_hash_comment_lines_skipped(self):
        statements = list(iter_statements("# header\na {\n  b c;\n}\n"))
        assert statements == [(("a",), "b c")]

    def test_inline_annotation_stripped(self):
        statements = list(iter_statements("a {\n  b c; ## SECRET-DATA\n}\n"))
        assert statements == [(("a",), "b c")]

    def test_block_comment_line_skipped(self):
        statements = list(iter_statements("/* note */\na {\n  b c;\n}\n"))
        assert statements == [(("a",), "b c")]

    def test_empty_input(self):
        assert list(iter_statements("")) == []


class TestParserRobustness:
    def test_empty_config(self):
        parsed = parse_junos_config("")
        assert parsed.hostname is None
        assert parsed.interfaces == {}

    def test_unknown_blocks_ignored(self):
        parsed = parse_junos_config(
            "chassis {\n  aggregated-devices {\n    ethernet {\n"
            "      device-count 4;\n    }\n  }\n}\n"
        )
        assert parsed.interfaces == {}
        assert parsed.bgp is None

    def test_interface_without_address(self):
        parsed = parse_junos_config(
            "interfaces {\n  fe-0/0/0 {\n    unit 0 {\n"
            "      family inet;\n    }\n  }\n}\n"
        )
        # No address statement -> no interface entry (counts must match
        # the renderer's semantics).
        assert "fe-0/0/0.0" not in parsed.interfaces

    def test_malformed_address_tolerated(self):
        parsed = parse_junos_config(
            "interfaces {\n  fe-0/0/0 {\n    unit 0 {\n      family inet {\n"
            "        address not-an-address;\n      }\n    }\n  }\n}\n"
        )
        assert parsed.interfaces == {}

    def test_bgp_without_peer_as(self):
        parsed = parse_junos_config(
            "protocols {\n  bgp {\n    group x {\n"
            "      neighbor 9.9.9.9;\n    }\n  }\n}\n"
        )
        assert parsed.bgp is not None
        assert parsed.bgp.neighbors["9.9.9.9"].remote_as is None

    def test_static_discard_and_nexthop(self):
        parsed = parse_junos_config(
            "routing-options {\n  static {\n"
            "    route 10.0.0.0/8 discard;\n"
            "    route 10.1.0.0/16 next-hop 1.2.3.4;\n  }\n}\n"
        )
        targets = {s.target for s in parsed.static_routes}
        assert targets == {"Null0", "1.2.3.4"}


class TestSniffer:
    def test_brace_heavy_text_detected(self):
        text = "interfaces {\n x {\n y {\n z;\n}\n}\n}\n"
        assert looks_like_junos(text)

    def test_plain_ios_not_detected(self):
        assert not looks_like_junos("interface Ethernet0\n ip address 1.1.1.1 255.0.0.0\n")

    def test_empty_not_detected(self):
        assert not looks_like_junos("")
