"""Tests for the JunOS extension: renderer, parser, rules, end-to-end."""

import re

import pytest

from repro.configmodel import ParsedNetwork
from repro.configmodel.junos_parser import (
    iter_statements,
    looks_like_junos,
    parse_junos_config,
)
from repro.core import Anonymizer, AnonymizerConfig
from repro.iosgen import NetworkSpec, generate_network
from repro.iosgen.junos_render import junos_interface_name
from repro.netutil import ip_to_int
from repro.validation import compare_characteristics, compare_designs

JUNOS_SAMPLE = """\
/* juniper router configuration */
system {
    host-name cr1.lax.foo.com;
    domain-name foo.com;
    root-authentication {
        encrypted-password "s3cr3thash"; ## SECRET-DATA
    }
    login {
        user jsmith {
            class super-user;
        }
    }
    syslog {
        host 6.0.0.9 {
            any notice;
        }
    }
    ntp {
        server 6.0.0.9;
    }
}
interfaces {
    fe-0/0/0 {
        description "Foo Corp LAX offices";
        vlan-tagging;
        unit 0 {
            family inet {
                address 1.1.1.1/24;
            }
        }
        unit 10 {
            vlan-id 10;
            family inet {
                address 10.1.4.1/24;
            }
        }
    }
    lo0 {
        unit 0 {
            family inet {
                address 6.0.0.1/32;
            }
        }
    }
}
routing-options {
    static {
        route 10.5.0.0/16 next-hop 1.1.1.254;
        route 10.6.0.0/16 discard;
    }
    router-id 6.0.0.1;
    autonomous-system 1111;
}
protocols {
    ospf {
        area 0.0.0.0 {
            interface fe-0/0/0.0;
            interface lo0.0;
        }
    }
    bgp {
        group ext-0 {
            type external;
            peer-as 701;
            neighbor 2.3.4.5 {
                import UUNET-import;
                export UUNET-export;
                authentication-key "bgppassword";
            }
        }
    }
}
policy-options {
    prefix-list our-nets {
        6.0.0.0/8;
    }
    policy-statement UUNET-import {
        term t10 {
            from {
                as-path bad-paths;
                community uunet-comms;
            }
            then {
                reject;
            }
        }
        term t20 {
            then {
                local-preference 90;
                accept;
            }
        }
    }
    as-path bad-paths "(1239|70[2-5])";
    community uunet-comms members "701:7[1-5]..";
    community tag1 members [ 1111:100 ];
}
snmp {
    location "lax main st";
    contact "noc@foo.com";
    community foocorp-ro {
        authorization read-only;
    }
}
"""


class TestSniffer:
    def test_detects_junos(self):
        assert looks_like_junos(JUNOS_SAMPLE)

    def test_rejects_ios(self, figure1_text):
        assert not looks_like_junos(figure1_text)


class TestInterfaceNameMapping:
    @pytest.mark.parametrize(
        "ios,expected",
        [
            ("Loopback0", ("lo0", 0)),
            ("Ethernet0", ("fe-0/0/0", 0)),
            ("FastEthernet0/1", ("fe-0/0/1", 0)),
            ("GigabitEthernet0/2", ("ge-0/0/2", 0)),
            ("Serial1/0", ("so-0/1/0", 0)),
            ("FastEthernet0/0.10", ("fe-0/0/0", 10)),
            ("POS2/1", ("so-0/2/1", 0)),
        ],
    )
    def test_mapping(self, ios, expected):
        assert junos_interface_name(ios) == expected


class TestJunosParser:
    @pytest.fixture(scope="class")
    def parsed(self):
        return parse_junos_config(JUNOS_SAMPLE)

    def test_statement_iterator_paths(self):
        statements = list(iter_statements(JUNOS_SAMPLE))
        paths = {s[0] for s in statements}
        assert ("system",) in paths
        assert any(p[:2] == ("protocols", "bgp") for p in paths)

    def test_annotations_stripped(self):
        statements = [s for _, s in iter_statements(JUNOS_SAMPLE)]
        assert any("encrypted-password" in s and "SECRET-DATA" not in s
                   for s in statements)

    def test_basics(self, parsed):
        assert parsed.hostname == "cr1.lax.foo.com"
        assert parsed.domain_name == "foo.com"
        assert parsed.usernames == ["jsmith"]
        assert parsed.ntp_servers == [ip_to_int("6.0.0.9")]
        assert parsed.logging_hosts == [ip_to_int("6.0.0.9")]
        assert parsed.snmp_communities == ["foocorp-ro"]

    def test_interfaces(self, parsed):
        assert parsed.interfaces["fe-0/0/0.0"].address == ip_to_int("1.1.1.1")
        assert parsed.interfaces["fe-0/0/0.0"].prefix_len == 24
        assert parsed.interfaces["fe-0/0/0.10"].address == ip_to_int("10.1.4.1")
        assert parsed.interfaces["lo0.0"].prefix_len == 32
        assert parsed.interfaces["fe-0/0/0.0"].description == "Foo Corp LAX offices"

    def test_ospf_coverage_resolved(self, parsed):
        ospf = parsed.igps[0]
        assert ospf.protocol == "ospf"
        bases = {base for base, _, _ in ospf.networks}
        assert ip_to_int("1.1.1.0") in bases
        assert ip_to_int("6.0.0.1") in bases

    def test_bgp(self, parsed):
        assert parsed.bgp.asn == 1111
        neighbor = parsed.bgp.neighbors["2.3.4.5"]
        assert neighbor.remote_as == 701
        assert neighbor.route_map_in == "UUNET-import"
        assert neighbor.has_password

    def test_statics(self, parsed):
        targets = {s.target for s in parsed.static_routes}
        assert "Null0" in targets  # discard
        assert "1.1.1.254" in targets

    def test_policy_objects(self, parsed):
        assert parsed.aspath_acls[0].regex == "(1239|70[2-5])"
        expanded = [c for c in parsed.community_lists if c.expanded]
        standard = [c for c in parsed.community_lists if not c.expanded]
        assert expanded[0].body == "701:7[1-5].."
        assert standard[0].body == "1111:100"
        assert parsed.prefix_lists[0].prefix_len == 8
        clauses = [c for c in parsed.route_maps if c.name == "UUNET-import"]
        assert clauses[0].action == "deny"
        assert "as-path bad-paths" in clauses[0].matches


class TestJunosAnonymization:
    @pytest.fixture(scope="class")
    def anon_output(self):
        anonymizer = Anonymizer(salt=b"junos-salt")
        return anonymizer, anonymizer.anonymize_text(JUNOS_SAMPLE)

    def test_syntax_autodetected(self, anon_output):
        _, output = anon_output
        assert "peer-as" in output  # junos keywords survive

    def test_asns_permuted(self, anon_output):
        anonymizer, output = anon_output
        assert "autonomous-system {};".format(anonymizer.asn_map.map_asn(1111)) in output
        assert "peer-as {};".format(anonymizer.asn_map.map_asn(701)) in output

    def test_secrets_hashed_with_quotes(self, anon_output):
        _, output = anon_output
        assert "s3cr3thash" not in output
        assert "bgppassword" not in output
        assert re.search(r'encrypted-password "[0-9a-f]+";', output)
        assert re.search(r'authentication-key "[0-9a-f]+";', output)

    def test_snmp_community_and_meta(self, anon_output):
        _, output = anon_output
        assert "foocorp-ro" not in output
        assert "lax main st" not in output
        assert "noc@foo.com" not in output

    def test_hostname_and_domain_hashed(self, anon_output):
        _, output = anon_output
        assert "foo.com" not in output
        assert re.search(r"host-name [0-9a-f.]+;", output)

    def test_description_and_comments_stripped(self, anon_output):
        _, output = anon_output
        assert "description" not in output
        assert "Foo Corp" not in output
        assert "/*" not in output

    def test_addresses_mapped_masks_preserved(self, anon_output):
        _, output = anon_output
        assert "1.1.1.1/24" not in output
        assert re.search(r"address \d+\.\d+\.\d+\.\d+/24;", output)
        assert re.search(r"address \d+\.\d+\.\d+\.\d+/32;", output)

    def test_aspath_regexp_rewritten(self, anon_output):
        """JunOS as-path regexps are implicitly anchored; under anchored
        semantics the rewrite is language-exact."""
        anonymizer, output = anon_output
        match = re.search(r'as-path \S+ "([^"]+)"', output)
        assert match
        from repro.core.regexlang import asn_language

        expected = {
            anonymizer.asn_map.map_asn(n) for n in (1239, 702, 703, 704, 705)
        }
        assert asn_language(match.group(1), anchored=True) == expected
        assert "1239" not in match.group(1)

    def test_community_members_mapped(self, anon_output):
        anonymizer, output = anon_output
        expected = "{}:{}".format(
            anonymizer.asn_map.map_asn(1111), anonymizer.community.map_value(100)
        )
        assert "members [ {} ]".format(expected) in output

    def test_structure_preserved_round_trip(self, anon_output):
        _, output = anon_output
        pre = parse_junos_config(JUNOS_SAMPLE)
        post = parse_junos_config(output)
        assert len(post.interfaces) == len(pre.interfaces)
        assert post.bgp is not None
        assert len(post.route_maps) == len(pre.route_maps)
        assert len(post.static_routes) == len(pre.static_routes)

    def test_forced_syntax_options(self):
        ios_forced = Anonymizer(AnonymizerConfig(salt=b"s", syntax="junos"))
        out = ios_forced.anonymize_text("peer-as 701;\n")
        assert str(ios_forced.asn_map.map_asn(701)) in out
        with pytest.raises(ValueError):
            AnonymizerConfig(salt=b"s", syntax="cisco")


class TestJunosNetworks:
    @pytest.mark.parametrize("fraction", [1.0, 0.5])
    def test_validation_suites_pass(self, fraction):
        spec = NetworkSpec(
            name="jnet", kind="enterprise", seed=9, num_pops=2, igp="ospf",
            junos_fraction=fraction, use_community_regexps=True,
            lans_per_access=(2, 4), static_burst=(1, 4),
        )
        network = generate_network(spec)
        anonymizer = Anonymizer(salt=b"jnet-salt")
        result = anonymizer.anonymize_network(dict(network.configs))
        pre = ParsedNetwork.from_configs(network.configs)
        post = ParsedNetwork.from_configs(result.configs)
        suite1 = compare_characteristics(pre, post)
        assert suite1.passed, suite1.summary()
        suite2 = compare_designs(pre, post)
        assert suite2.passed, suite2.summary()

    def test_eigrp_networks_stay_ios(self):
        spec = NetworkSpec(
            name="jeigrp", kind="enterprise", seed=9, num_pops=2, igp="eigrp",
            junos_fraction=1.0,
        )
        network = generate_network(spec)
        assert not any(looks_like_junos(t) for t in network.configs.values())

    def test_cross_vendor_design_equivalence(self):
        """The same plan rendered as IOS and as JunOS extracts the same
        vendor-neutral design structure — the paper's applicability claim."""
        base = dict(name="xv", kind="enterprise", seed=12, num_pops=2, igp="ospf",
                    lans_per_access=(2, 4), static_burst=(0, 3))
        ios_net = generate_network(NetworkSpec(junos_fraction=0.0, **base))
        junos_net = generate_network(NetworkSpec(junos_fraction=1.0, **base))
        pre_ios = ParsedNetwork.from_configs(ios_net.configs)
        pre_junos = ParsedNetwork.from_configs(junos_net.configs)
        assert pre_ios.subnet_size_histogram() == pre_junos.subnet_size_histogram()
        assert pre_ios.bgp_speakers() == pre_junos.bgp_speakers()
        assert sorted(pre_ios.ebgp_sessions_per_router().values()) == sorted(
            pre_junos.ebgp_sessions_per_router().values()
        )
