"""Tests for the anonymization service daemon (src/repro/service/).

The headline invariant: a corpus submitted file-by-file (or streamed
line-by-line) through a *frozen* session — over any number of concurrent
client connections — is byte-identical to the batch ``--jobs N``
pipeline over the same corpus.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import Anonymizer, AnonymizerConfig
from repro.core.parallel import anonymize_files
from repro.core.status import EXIT_OK, EXIT_SERVICE_ERROR
from repro.service.client import (
    ServiceClient,
    ServiceClientError,
    ServiceUnavailableError,
)
from repro.service.server import AnonymizationService, BoundedExecutor, QueueFullError
from repro.service.sessions import SessionManager, SessionOptionsError

SALT = "service-test-secret"


def _corpus(figure1_text: str) -> dict:
    """A small multi-file corpus with cross-file shared identifiers."""
    return {
        "siteA/cr1.cfg": figure1_text,
        "siteA/cr2.cfg": (
            "hostname cr2.lax.foo.com\n"
            "interface Loopback0\n"
            " ip address 1.2.3.4 255.255.255.255\n"
            "router bgp 1111\n"
            " neighbor 2.3.4.5 remote-as 701\n"
        ),
        # Same basename as siteA/cr1.cfg: exercises the mirrored
        # out-path scheme wherever the corpus is written to an --out-dir.
        "siteB/cr1.cfg": (
            "hostname edge.sfo.foo.com\n"
            "router bgp 701\n"
            " neighbor 1.2.3.4 remote-as 1111\n"
            "access-list 10 permit 1.1.1.0 0.0.0.255\n"
        ),
    }


def _batch_reference(configs: dict, jobs: int = 2) -> dict:
    """The batch ``--jobs N`` pipeline's output for the same corpus."""
    anonymizer = Anonymizer(AnonymizerConfig(salt=SALT.encode()))
    anonymizer.freeze_mappings(configs)
    return anonymize_files(anonymizer, configs, jobs=jobs)


@pytest.fixture(scope="module")
def service():
    svc = AnonymizationService(port=0, workers=4, queue_limit=32)
    svc.start_background()
    yield svc
    svc.shutdown()


@pytest.fixture
def client(service):
    return ServiceClient(service.base_url, timeout=60)


class TestLifecycle:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert "queue_depth" in health and "sessions" in health

    def test_session_create_info_delete(self, client):
        session = client.create_session(SALT)
        assert session["frozen"] is False
        assert len(session["salt_fingerprint"]) == 16
        info = client.session(session["id"])
        assert info["id"] == session["id"]
        listed = client.sessions()["sessions"]
        assert any(s["id"] == session["id"] for s in listed)
        client.delete_session(session["id"])
        with pytest.raises(ServiceClientError) as err:
            client.session(session["id"])
        assert err.value.status == 404

    def test_same_salt_same_fingerprint(self, client):
        a = client.create_session(SALT)
        b = client.create_session(SALT)
        c = client.create_session(SALT + "-other")
        try:
            assert a["salt_fingerprint"] == b["salt_fingerprint"]
            assert a["salt_fingerprint"] != c["salt_fingerprint"]
        finally:
            for session in (a, b, c):
                client.delete_session(session["id"])

    def test_bad_options_rejected(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.create_session(SALT, options={"jobs": 4})
        assert err.value.status == 400
        with pytest.raises(ServiceClientError) as err:
            client.create_session("")
        assert err.value.status == 400

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ServiceClientError) as err:
            client._json("GET", "/nope")
        assert err.value.status == 404

    def test_double_freeze_rejected(self, client, figure1_text):
        session = client.create_session(SALT)
        try:
            client.freeze(session["id"], {"a.cfg": figure1_text})
            with pytest.raises(ServiceClientError) as err:
                client.freeze(session["id"], {"a.cfg": figure1_text})
            assert err.value.status == 409
        finally:
            client.delete_session(session["id"])


class TestByteIdentity:
    """The acceptance-criteria invariant."""

    def test_file_by_file_equals_batch(self, client, figure1_text):
        configs = _corpus(figure1_text)
        reference = _batch_reference(configs, jobs=2)
        session = client.create_session(SALT)
        try:
            stats = client.freeze(session["id"], configs)
            assert stats["frozen"] and stats["addresses"] > 0
            for name, text in configs.items():
                result = client.anonymize(session["id"], text, source=name)
                assert result["status"] == "ok"
                assert result["text"] == reference[name], name
        finally:
            client.delete_session(session["id"])

    def test_line_by_line_stream_equals_batch(self, client, figure1_text):
        configs = _corpus(figure1_text)
        reference = _batch_reference(configs, jobs=2)
        session = client.create_session(SALT)
        try:
            client.freeze(session["id"], configs)
            for name, text in configs.items():
                chunks = (line + "\n" for line in text.splitlines())
                result = client.anonymize(
                    session["id"], chunks=chunks, source=name
                )
                assert result["text"] == reference[name], name
        finally:
            client.delete_session(session["id"])

    def test_concurrent_clients_byte_identical(
        self, service, figure1_text, small_enterprise
    ):
        configs = dict(_corpus(figure1_text))
        for name, text in sorted(small_enterprise.configs.items())[:6]:
            configs["ent/" + name] = text
        reference = _batch_reference(configs, jobs=2)

        setup = ServiceClient(service.base_url, timeout=60)
        session = setup.create_session(SALT)
        setup.freeze(session["id"], configs)

        results: dict = {}
        errors: list = []

        def worker(names):
            # Each thread uses its own client (its own connections).
            local = ServiceClient(service.base_url, timeout=60)
            for name in names:
                try:
                    response = local.anonymize(
                        session["id"], configs[name], source=name
                    )
                    results[name] = response["text"]
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append((name, exc))

        names = sorted(configs)
        shards = [names[i::4] for i in range(4)]
        threads = [
            threading.Thread(target=worker, args=(shard,)) for shard in shards
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        setup.delete_session(session["id"])

        assert not errors
        assert set(results) == set(reference)
        for name in names:
            assert results[name] == reference[name], name

    def test_repeated_submission_is_deterministic(self, client, figure1_text):
        session = client.create_session(SALT)
        try:
            client.freeze(session["id"], {"cr1.cfg": figure1_text})
            first = client.anonymize(
                session["id"], figure1_text, source="cr1.cfg"
            )
            second = client.anonymize(
                session["id"], figure1_text, source="cr1.cfg"
            )
            assert first["text"] == second["text"]
        finally:
            client.delete_session(session["id"])


class TestFailClosed:
    def test_rule_exception_yields_placeholder_not_500(self, client):
        session = client.create_session(
            SALT, options={"fault_plan": "rule:R10"}
        )
        try:
            result = client.anonymize(
                session["id"], "router bgp 1111\nrouter rip\n", source="f.cfg"
            )
            assert result["status"] == "ok"  # per-line fail-closed
            assert "REPRO-FAIL-CLOSED" in result["text"]
            assert "router bgp 1111" not in result["text"]
            assert result["report"]["lines_failed_closed"] == 1
            flags = result["report"]["flags"]
            assert any(f["rule_id"] == "FAIL-CLOSED" for f in flags)
            # The flag message carries the exception class only, never
            # the raw line.
            assert all("1111" not in f["message"] for f in flags)
        finally:
            client.delete_session(session["id"])

    def test_file_level_failure_fails_closed(self, figure1_text):
        manager = SessionManager()
        session = manager.create(SALT)

        def boom(text, source="<config>"):
            raise RuntimeError("secret text: " + text[:20])

        session.anonymizer.anonymize_file = boom
        result = session.anonymize(figure1_text, source="cr1.cfg")
        assert result["status"] == "fail_closed"
        assert "hostname" not in result["text"]
        assert all(
            line.startswith("! REPRO-FAIL-CLOSED")
            for line in result["text"].splitlines()
        )
        # The report flags the event with the class name only.
        flags = result["report"]["flags"]
        assert flags and "RuntimeError" in flags[0]["message"]
        assert "secret text" not in json.dumps(result["report"])


class TestBackpressure:
    def test_executor_queue_full(self):
        executor = BoundedExecutor(workers=1, queue_limit=1)
        release = threading.Event()
        blocker = executor.submit(release.wait)
        # Wait until the blocker occupies the worker (queue drains).
        deadline = time.time() + 5
        while executor.depth() > 0 and time.time() < deadline:
            time.sleep(0.01)
        filler = executor.submit(lambda: "queued")
        with pytest.raises(QueueFullError):
            executor.submit(lambda: "rejected")
        assert executor.depth() == 1
        release.set()
        assert filler.wait(10) == "queued"
        assert blocker.wait(10) is True
        executor.shutdown()

    def test_full_queue_returns_429(self, figure1_text):
        svc = AnonymizationService(port=0, workers=1, queue_limit=1)
        svc.start_background()
        try:
            client = ServiceClient(svc.base_url, timeout=30)
            session = client.create_session(SALT)
            release = threading.Event()
            svc.executor.submit(release.wait)  # occupy the worker
            deadline = time.time() + 5
            while svc.executor.depth() > 0 and time.time() < deadline:
                time.sleep(0.01)
            svc.executor.submit(lambda: None)  # occupy the queue slot
            with pytest.raises(ServiceUnavailableError) as err:
                client.anonymize(session["id"], figure1_text)
            assert err.value.status == 429
            release.set()
            # After the backlog drains, the same request succeeds.
            deadline = time.time() + 10
            while time.time() < deadline:
                try:
                    result = client.anonymize(session["id"], figure1_text)
                    break
                except ServiceUnavailableError:
                    time.sleep(0.05)
            assert result["status"] == "ok"
        finally:
            svc.shutdown()

    def test_request_too_large_413(self, figure1_text):
        svc = AnonymizationService(port=0, workers=1, queue_limit=4, max_request_bytes=256)
        svc.start_background()
        try:
            client = ServiceClient(svc.base_url, timeout=30)
            session = client.create_session(SALT)
            with pytest.raises(ServiceClientError) as err:
                client.anonymize(session["id"], "x" * 1000)
            assert err.value.status == 413
            # Chunked bodies hit the same cap mid-stream.
            with pytest.raises(ServiceClientError) as err:
                client.anonymize(
                    session["id"], chunks=("y" * 100 for _ in range(10))
                )
            assert err.value.status == 413
            small = client.anonymize(session["id"], "router bgp 1111\n")
            assert small["status"] == "ok"
        finally:
            svc.shutdown()


class TestMetrics:
    def test_metrics_exposition(self, client, figure1_text):
        session = client.create_session(SALT)
        client.anonymize(session["id"], figure1_text, source="cr1.cfg")
        client.delete_session(session["id"])
        text = client.metrics_text()
        assert 'repro_requests_total{code="200",endpoint="anonymize"}' in text
        assert 'repro_rule_family_hits_total{family="asn"}' in text
        assert 'repro_rule_family_hits_total{family="ip"}' in text
        assert "repro_queue_depth" in text
        assert "repro_sessions" in text
        assert 'repro_request_seconds_bucket{endpoint="anonymize",le="+Inf"}' in text
        assert "repro_request_seconds_count" in text

    def test_active_plugin_families_preregistered(self, client):
        # The gauge and the per-family hit counters exist from startup —
        # a scrape before the first V*/B*/E* hit must already show the
        # family at 0, not appear only after its first hit.
        from repro.plugins import resolve_active_plugins

        expected = [p.family for p in resolve_active_plugins()]
        assert expected  # at least the builtin families resolve
        text = client.metrics_text()
        for family in expected:
            assert 'repro_active_plugins{{family="{}"}}'.format(family) in text
            assert (
                'repro_rule_family_hits_total{{family="{}"}}'.format(family)
                in text
            )

    def test_rule_family_grouping(self):
        from repro.core.report import rule_family

        assert rule_family("R1") == "token"
        assert rule_family("R4+R5") == "comment"
        assert rule_family("R10") == "asn"
        assert rule_family("R22") == "ip"
        assert rule_family("R28") == "secret"
        assert rule_family("J3") == "junos"
        assert rule_family("FAIL-CLOSED") == "fail_closed"
        assert rule_family("weird") == "other"


class TestStateEndpoints:
    def test_state_round_trip(self, client, figure1_text):
        first = client.create_session(SALT)
        out1 = client.anonymize(first["id"], figure1_text, source="a.cfg")
        state = client.export_state(first["id"])
        client.delete_session(first["id"])

        second = client.create_session(SALT)
        try:
            client.import_state(second["id"], state)
            out2 = client.anonymize(second["id"], figure1_text, source="a.cfg")
            assert out1["text"] == out2["text"]
        finally:
            client.delete_session(second["id"])

    def test_corrupt_state_rejected(self, client):
        session = client.create_session(SALT)
        try:
            with pytest.raises(ServiceClientError) as err:
                client.import_state(session["id"], {"format_version": 999})
            assert err.value.status == 400
        finally:
            client.delete_session(session["id"])


class TestUnixSocket:
    def test_unix_socket_round_trip(self, tmp_path, figure1_text):
        socket_path = str(tmp_path / "repro.sock")
        svc = AnonymizationService(unix_socket=socket_path, workers=2, queue_limit=4)
        svc.start_background()
        try:
            client = ServiceClient(unix_socket=socket_path)
            assert client.healthz()["status"] == "ok"
            session = client.create_session(SALT)
            result = client.anonymize(
                session["id"], figure1_text, source="cr1.cfg"
            )
            assert result["status"] == "ok"
            assert "foo.com" not in result["text"]
        finally:
            svc.shutdown()
        assert not os.path.exists(socket_path)


class TestServeSubmitCli:
    @pytest.fixture
    def daemon(self, tmp_path):
        """A real ``repro-anonymize serve`` subprocess on an ephemeral port."""
        ready = tmp_path / "ready.txt"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--ready-file",
                str(ready),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.time() + 30
        while not ready.exists() and time.time() < deadline:
            if proc.poll() is not None:
                raise RuntimeError(
                    "daemon died: " + (proc.stdout.read() or "")
                )
            time.sleep(0.05)
        assert ready.exists(), "daemon never became ready"
        yield proc, ready.read_text().strip()
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)

    def test_submit_matches_batch_cli_and_sigterm_drains(
        self, daemon, tmp_path, figure1_text
    ):
        from repro.cli import main

        proc, url = daemon
        corpus = _corpus(figure1_text)
        in_dir = tmp_path / "in"
        for name, text in corpus.items():
            path = in_dir / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)

        # _collect_files walks one directory level, so pass the two site
        # directories (whose basenames collide) explicitly — which also
        # exercises the mirrored out-path scheme through submit.
        site_dirs = [str(in_dir / "siteA"), str(in_dir / "siteB")]

        submit_dir = tmp_path / "via-service"
        code = main(
            [
                "submit",
                *site_dirs,
                "--server",
                url,
                "--salt",
                SALT,
                "--out-dir",
                str(submit_dir),
            ]
        )
        assert code == EXIT_OK

        batch_dir = tmp_path / "via-batch"
        assert (
            main(
                [
                    *site_dirs,
                    "--salt",
                    SALT,
                    "--jobs",
                    "2",
                    "--out-dir",
                    str(batch_dir),
                ]
            )
            == EXIT_OK
        )

        submitted = sorted(
            p.relative_to(submit_dir) for p in submit_dir.rglob("*.anon")
        )
        batched = sorted(
            p.relative_to(batch_dir) for p in batch_dir.rglob("*.anon")
        )
        assert submitted == batched and submitted
        for rel in submitted:
            assert (submit_dir / rel).read_bytes() == (
                batch_dir / rel
            ).read_bytes(), str(rel)

        # Graceful drain: SIGTERM -> exit code 0, drain message printed.
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "drained" in out

    def test_submit_unreachable_server(self, tmp_path, figure1_text):
        from repro.cli import main

        config = tmp_path / "a.cfg"
        config.write_text(figure1_text)
        code = main(
            [
                "submit",
                str(config),
                "--server",
                "http://127.0.0.1:9",  # discard port: nothing listens
                "--salt",
                SALT,
                "--out-dir",
                str(tmp_path / "out"),
            ]
        )
        assert code == EXIT_SERVICE_ERROR


class TestSessionManagerUnits:
    def test_session_limit(self):
        manager = SessionManager(max_sessions=1)
        manager.create(SALT)
        with pytest.raises(Exception):
            manager.create(SALT)

    def test_option_allowlist(self):
        manager = SessionManager()
        with pytest.raises(SessionOptionsError):
            manager.create(SALT, {"two_pass": True})
        session = manager.create(SALT, {"strip_comments": False})
        assert session.anonymizer.config.strip_comments is False

    def test_freeze_requires_mapping_shape(self):
        manager = SessionManager()
        session = manager.create(SALT)
        with pytest.raises(SessionOptionsError):
            session.freeze({"a.cfg": 42})


class TestKeepAlive:
    """The pooled keep-alive client (one TCP connection, many requests)."""

    def test_connection_reused_across_requests(self, service):
        client = ServiceClient(service.base_url, timeout=60)
        try:
            client.healthz()
            pool = client._pool()
            assert len(pool) == 1
            connection = next(iter(pool.values()))
            client.healthz()
            client.sessions()
            assert next(iter(client._pool().values())) is connection
        finally:
            client.close()

    def test_stale_connection_replayed(self, service):
        # Park a keep-alive connection, have the server close it (what a
        # drain or worker respawn does), and the next request must
        # transparently replace the dead connection and succeed.
        client = ServiceClient(service.base_url, timeout=60)
        try:
            client.healthz()
            assert len(client._pool()) == 1
            service.close_idle_connections()
            time.sleep(0.1)  # let the server's shutdown reach our socket
            health = client.healthz()
            assert health["status"] == "ok"
        finally:
            client.close()

    def test_close_empties_the_pool(self, service):
        client = ServiceClient(service.base_url, timeout=60)
        client.healthz()
        assert client._pool()
        client.close()
        assert not client._pool()

    def test_full_session_flow_on_one_connection(self, service, figure1_text):
        client = ServiceClient(service.base_url, timeout=60)
        try:
            session = client.create_session(SALT)
            connection = next(iter(client._pool().values()))
            result = client.anonymize(
                session["id"], figure1_text, source="cr1.cfg"
            )
            assert result["status"] == "ok"
            client.delete_session(session["id"])
            assert next(iter(client._pool().values())) is connection
        finally:
            client.close()
