"""Tests for DFA set operations and the independent rewrite verifier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import (
    complement_dfa,
    dfa_from_strings,
    difference_dfa,
    intersect_dfa,
    union_dfa,
)
from repro.core.asn import AsnPermutation
from repro.core.regexlang import rewrite_aspath_regex
from repro.core.verify import independent_language, verify_aspath_rewrite

string_sets = st.sets(
    st.integers(min_value=0, max_value=999).map(str), min_size=0, max_size=12
)


class TestSetOperations:
    def test_intersection_basic(self):
        a = dfa_from_strings(["1", "2", "3"])
        b = dfa_from_strings(["2", "3", "4"])
        product = intersect_dfa(a, b)
        assert sorted(product.enumerate_language(2)) == ["2", "3"]

    def test_union_basic(self):
        a = dfa_from_strings(["1"])
        b = dfa_from_strings(["2"])
        assert sorted(union_dfa(a, b).enumerate_language(2)) == ["1", "2"]

    def test_difference_basic(self):
        a = dfa_from_strings(["1", "2"])
        b = dfa_from_strings(["2"])
        assert difference_dfa(a, b).enumerate_language(2) == ["1"]

    def test_complement_over_alphabet(self):
        a = dfa_from_strings(["0", "1"])
        comp = complement_dfa(a, alphabet="01")
        assert not comp.accepts_string("0")
        assert comp.accepts_string("00")
        assert comp.accepts_string("")  # epsilon rejected by a -> accepted

    @settings(max_examples=40, deadline=None)
    @given(xs=string_sets, ys=string_sets)
    def test_intersection_equals_set_intersection(self, xs, ys):
        a, b = dfa_from_strings(xs), dfa_from_strings(ys)
        product = intersect_dfa(a, b)
        expected = sorted(xs & ys, key=lambda s: (len(s), s))
        got = sorted(product.enumerate_language(3), key=lambda s: (len(s), s))
        assert got == expected

    @settings(max_examples=40, deadline=None)
    @given(xs=string_sets, ys=string_sets)
    def test_union_and_difference_consistent(self, xs, ys):
        a, b = dfa_from_strings(xs), dfa_from_strings(ys)
        union = set(union_dfa(a, b).enumerate_language(3))
        assert union == xs | ys
        diff = set(difference_dfa(a, b).enumerate_language(3))
        assert diff == xs - ys

    @settings(max_examples=25, deadline=None)
    @given(xs=string_sets, ys=string_sets)
    def test_de_morgan(self, xs, ys):
        alphabet = "0123456789"
        a, b = dfa_from_strings(xs), dfa_from_strings(ys)
        left = complement_dfa(union_dfa(a, b), alphabet)
        right = intersect_dfa(
            complement_dfa(a, alphabet), complement_dfa(b, alphabet)
        )
        assert left.equivalent_to(right)

    def test_equivalence_via_difference(self):
        a = dfa_from_strings(["701", "702"])
        b = dfa_from_strings(["702", "701"])
        assert difference_dfa(a, b).is_empty()
        assert difference_dfa(b, a).is_empty()


class TestIndependentVerifier:
    @pytest.fixture(scope="class")
    def perm(self):
        return AsnPermutation(b"verify-salt")

    def test_independent_language_matches_fast_path(self):
        from repro.core.regexlang import asn_language

        for pattern in ("_70[1-3]_", "(_1239_|_701_)", "^99$"):
            assert independent_language(pattern) == asn_language(pattern)

    @pytest.mark.parametrize(
        "pattern",
        ["_70[1-3]_", "(_1239_|_70[2-5]_)", "_701_1239_", "_6451[2-9]_"],
    )
    def test_rewrites_verify(self, perm, pattern):
        outcome = rewrite_aspath_regex(pattern, perm.map_asn)
        assert verify_aspath_rewrite(outcome, perm.map_asn)

    def test_mindfa_rewrites_verify(self, perm):
        outcome = rewrite_aspath_regex("_12[0-3][0-9]_", perm.map_asn, style="mindfa")
        assert verify_aspath_rewrite(outcome, perm.map_asn)

    def test_anchored_rewrites_verify(self, perm):
        outcome = rewrite_aspath_regex(
            "(1239|70[2-5])", perm.map_asn, anchored=True
        )
        assert verify_aspath_rewrite(outcome, perm.map_asn, anchored=True)

    def test_flagged_outcome_verifies_as_inert(self, perm):
        outcome = rewrite_aspath_regex("_70{2}_", perm.map_asn)
        assert outcome.flagged
        assert verify_aspath_rewrite(outcome, perm.map_asn)

    def test_detects_wrong_rewrite(self, perm):
        from repro.core.regexlang import RewriteOutcome

        bogus = RewriteOutcome(
            original="_701_", rewritten="_701_", changed=False
        )
        # 701 is public, so identity is (almost surely) the wrong mapping.
        if perm.map_asn(701) != 701:
            assert not verify_aspath_rewrite(bogus, perm.map_asn)


class TestVerifierProperty:
    """Hypothesis-driven: every rewrite of a generated pattern verifies
    under the independent matcher (the central correctness property)."""

    @settings(max_examples=12, deadline=None)
    @given(
        base=st.integers(min_value=10, max_value=6000),
        low=st.integers(min_value=0, max_value=7),
        span=st.integers(min_value=0, max_value=2),
        extra=st.integers(min_value=1, max_value=64511),
        style=st.sampled_from(["alternation", "mindfa"]),
    )
    def test_random_range_patterns_verify(self, base, low, span, extra, style):
        perm = AsnPermutation(b"prop-verify")
        pattern = "(_{}_|_{}[{}-{}]_)".format(extra, base, low, low + span)
        outcome = rewrite_aspath_regex(pattern, perm.map_asn, style=style)
        assert verify_aspath_rewrite(outcome, perm.map_asn)

    @settings(max_examples=10, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=1, max_value=64511), min_size=1, max_size=4
        )
    )
    def test_literal_alternations_verify(self, values):
        perm = AsnPermutation(b"prop-verify-2")
        pattern = "(" + "|".join("_{}_".format(v) for v in values) + ")"
        outcome = rewrite_aspath_regex(pattern, perm.map_asn)
        assert verify_aspath_rewrite(outcome, perm.map_asn)


class TestCommunityVerifier:
    def _maps(self):
        from repro.core.community import CommunityAnonymizer

        community = CommunityAnonymizer(b"cv-salt")
        return community.asn_map.map_asn, community.map_value

    def test_figure1_pattern_verifies(self):
        from repro.core.regexlang import rewrite_community_regex
        from repro.core.verify import verify_community_rewrite

        asn_mapper, value_mapper = self._maps()
        outcome = rewrite_community_regex(
            "_701:710[0-3]_", asn_mapper, value_mapper
        )
        assert verify_community_rewrite(outcome, asn_mapper, value_mapper, samples=120)

    def test_literal_pairs_verify(self):
        from repro.core.regexlang import rewrite_community_regex
        from repro.core.verify import verify_community_rewrite

        asn_mapper, value_mapper = self._maps()
        outcome = rewrite_community_regex(
            "(_701:7100_|_1239:42_)", asn_mapper, value_mapper
        )
        assert verify_community_rewrite(outcome, asn_mapper, value_mapper, samples=120)

    def test_flagged_outcome_inert(self):
        from repro.core.regexlang import rewrite_community_regex
        from repro.core.verify import verify_community_rewrite

        asn_mapper, value_mapper = self._maps()
        outcome = rewrite_community_regex("701:{bad", asn_mapper, value_mapper)
        assert outcome.flagged
        assert verify_community_rewrite(outcome, asn_mapper, value_mapper)

    def test_detects_wrong_rewrite(self):
        from repro.core.regexlang import RewriteOutcome
        from repro.core.verify import verify_community_rewrite

        asn_mapper, value_mapper = self._maps()
        bogus = RewriteOutcome(
            original="_701:7100_", rewritten="_701:7100_", changed=False
        )
        assert not verify_community_rewrite(bogus, asn_mapper, value_mapper, samples=60)
