"""Tests for regexp language computation and rewriting (Section 4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asn import AsnPermutation, is_public_asn
from repro.core.community import CommunityAnonymizer
from repro.core.regexlang import (
    NEVER_MATCH_PATTERN,
    asn_language,
    rewrite_aspath_regex,
    rewrite_community_regex,
)


@pytest.fixture(scope="module")
def perm():
    return AsnPermutation(b"regex-salt")


@pytest.fixture(scope="module")
def community():
    return CommunityAnonymizer(b"regex-salt")


class TestAsnLanguage:
    def test_paper_example_range(self):
        # "70[1-3] accepts ASN 701, 702, and 703" — with boundaries that is
        # exactly the language; unanchored it also accepts e.g. 7011.
        assert asn_language("_70[1-3]_") == {701, 702, 703}

    def test_unanchored_language_is_search_semantics(self):
        language = asn_language("70[1-3]")
        assert {701, 702, 703} <= language
        assert 7011 in language  # contains "701"

    def test_alternation(self):
        assert asn_language("(_1239_|_701_)") == {1239, 701}

    def test_anchored(self):
        assert asn_language("^99$") == {99}

    def test_empty_language(self):
        assert asn_language("^$") == set()

    def test_universe(self):
        assert len(asn_language(".*")) == 65536


class TestAspathRewrite:
    def test_literal_branches_mapped_in_place(self, perm):
        out = rewrite_aspath_regex("(_1239_|_701_)", perm.map_asn)
        assert out.changed
        assert str(perm.map_asn(1239)) in out.rewritten
        assert str(perm.map_asn(701)) in out.rewritten
        assert "1239" not in out.rewritten or str(perm.map_asn(1239)) == "1239"

    def test_language_preserved_exactly(self, perm):
        pattern = "(_1239_|_70[2-5]_)"
        out = rewrite_aspath_regex(pattern, perm.map_asn)
        expected = {perm.map_asn(n) for n in asn_language(pattern)}
        assert asn_language(out.rewritten) == expected

    def test_adjacency_pattern_preserved(self, perm):
        # `_701_1239_` constrains a *sequence*; numbers map in place.
        out = rewrite_aspath_regex("_701_1239_", perm.map_asn)
        assert out.rewritten == "_{}_{}_".format(perm.map_asn(701), perm.map_asn(1239))

    def test_digit_free_pattern_unchanged(self, perm):
        for pattern in (".*", "^$", "_.*_"):
            out = rewrite_aspath_regex(pattern, perm.map_asn)
            assert out.rewritten == pattern
            assert not out.changed

    def test_private_only_language_unchanged(self, perm):
        out = rewrite_aspath_regex("_6451[2-9]_", perm.map_asn)
        assert out.rewritten == "_6451[2-9]_"

    def test_mixed_public_private_language(self, perm):
        # _6451[0-5]_ accepts 64510, 64511 (public) and 64512-64515 (private)
        out = rewrite_aspath_regex("_6451[0-5]_", perm.map_asn, style="mindfa")
        language = asn_language(out.rewritten)
        expected = {perm.map_asn(64510), perm.map_asn(64511), 64512, 64513, 64514, 64515}
        assert language == expected

    def test_mindfa_equivalent_to_alternation(self, perm):
        pattern = "_70[1-9]_"
        alternation = rewrite_aspath_regex(pattern, perm.map_asn, style="alternation")
        mindfa = rewrite_aspath_regex(pattern, perm.map_asn, style="mindfa")
        assert asn_language(alternation.rewritten) == asn_language(mindfa.rewritten)
        assert len(mindfa.rewritten) <= len(alternation.rewritten)

    def test_huge_language_with_digits_flagged(self, perm):
        out = rewrite_aspath_regex("_1[0-9]*_", perm.map_asn, max_language=100)
        assert out.flagged
        assert out.rewritten == NEVER_MATCH_PATTERN
        assert asn_language(out.rewritten) == set()

    def test_unparseable_flagged_and_neutralized(self, perm):
        out = rewrite_aspath_regex("_70{2}_", perm.map_asn)
        assert out.flagged
        assert out.rewritten == NEVER_MATCH_PATTERN

    def test_oversize_literal_warned(self, perm):
        out = rewrite_aspath_regex("_123456_", perm.map_asn)
        assert out.flagged  # exceeds the 16-bit ASN space

    def test_seen_asns_recorded(self, perm):
        out = rewrite_aspath_regex("(_1239_|_70[2-3]_)", perm.map_asn)
        assert {1239, 702, 703} <= out.asns_seen

    @settings(max_examples=30, deadline=None)
    @given(base=st.integers(min_value=10, max_value=6450),
           low=st.integers(min_value=0, max_value=8))
    def test_range_rewrite_language_property(self, perm, base, low):
        high = low + 1
        pattern = "_{}[{}-{}]_".format(base, low, high)
        out = rewrite_aspath_regex(pattern, perm.map_asn)
        original = asn_language(pattern)
        expected = {perm.map_asn(n) if is_public_asn(n) else n for n in original}
        assert asn_language(out.rewritten) == expected


class TestCommunityRewrite:
    def test_paper_figure1_pattern(self, perm, community):
        # Figure 1 line 31: 701:7[1-5].. matches communities from UUNET
        # with values 7100-7599.
        out = rewrite_community_regex(
            "_701:7[1-5].._", perm.map_asn, community.map_value
        )
        assert out.changed
        mapped_asn = str(perm.map_asn(701))
        assert mapped_asn in out.rewritten
        mapped_value = str(community.map_value(7100))
        assert mapped_value in out.rewritten

    def test_pair_language_preserved(self, perm, community):
        out = rewrite_community_regex(
            "_701:710[0-3]_", perm.map_asn, community.map_value, style="mindfa"
        )
        import re as _re
        from repro.automata.matcher import compile_python_regex

        compiled = compile_python_regex(out.rewritten)
        for value in range(7100, 7104):
            subject = "{}:{}".format(perm.map_asn(701), community.map_value(value))
            assert compiled.search(subject), subject
        # A pair outside the language must not match.
        other = "{}:{}".format(perm.map_asn(701), community.map_value(9999))
        assert not compiled.search(other)

    def test_alternation_of_literal_pairs(self, perm, community):
        out = rewrite_community_regex(
            "(_701:7100_|_701:7200_)", perm.map_asn, community.map_value
        )
        assert out.changed
        assert str(perm.map_asn(701)) in out.rewritten

    def test_colonless_branch_treated_as_asn(self, perm, community):
        out = rewrite_community_regex("_701_", perm.map_asn, community.map_value)
        assert str(perm.map_asn(701)) in out.rewritten

    def test_unparseable_neutralized(self, perm, community):
        out = rewrite_community_regex("701:{bad", perm.map_asn, community.map_value)
        assert out.rewritten == NEVER_MATCH_PATTERN
        assert out.flagged

    def test_oversize_side_flagged(self, perm, community):
        out = rewrite_community_regex(
            "_701:[0-9]+_", perm.map_asn, community.map_value, max_language=100
        )
        assert out.flagged
        assert out.rewritten == NEVER_MATCH_PATTERN


class TestClosedFormSideLanguages:
    """The digit-literal fast paths must agree exactly with the brute
    enumeration they replace (they feed the community-regexp rewriter,
    where a wrong language silently changes rewritten policies)."""

    DIGITS = [
        "0", "1", "5", "9", "00", "01", "12", "99", "100", "001",
        "120", "655", "6551", "65535", "65536", "70100", "99999",
    ]

    def test_suffix_language_matches_enumeration(self):
        from repro.core.regexlang import _suffix_language

        for digits in self.DIGITS:
            brute = {
                n for n in range(65536) if str(n).endswith(digits)
            }
            assert _suffix_language(digits) == brute, digits

    def test_prefix_language_matches_enumeration(self):
        from repro.core.regexlang import _prefix_language

        for digits in self.DIGITS:
            brute = {
                n for n in range(65536) if str(n).startswith(digits)
            }
            assert _prefix_language(digits) == brute, digits

    def test_anchored_literal_side_is_exact_singleton(self, perm, community):
        # JunOS members are anchored: `_701:120_`-style patterns rewrite
        # to exactly the mapped pair, which only works if the anchored
        # side language is the singleton {701} / {120}.
        outcome = rewrite_community_regex(
            "701:120",
            perm.map_asn,
            community.map_value,
            anchored=True,
        )
        expected = "{}:{}".format(perm.map_asn(701), community.map_value(120))
        assert outcome.rewritten == expected
