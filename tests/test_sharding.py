"""Tests for the pre-fork sharded service tier.

Unit layer: the stable shard hash (known values, uniformity), shard-id
rejection sampling, the topology guard, and the snapshot/merge metrics
pipeline.  Integration layer: a real ``serve --workers 2`` daemon —
wrong-shard redirects, worker kill + in-place respawn reclaiming exactly
its shard's journals, and the topology refusal exit code.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.core.status import EXIT_RECOVERY_FAILED
from repro.service.metrics import (
    ServiceMetrics,
    merge_snapshots,
    render_snapshot,
)
from repro.service.sessions import SessionManager
from repro.service.sharding import (
    ShardInfo,
    TopologyError,
    check_topology,
    shard_for,
    shard_state_dir,
    write_topology,
)

SALT = "shard-test-secret"


class TestShardFor:
    def test_known_values_never_move(self):
        # Frozen forever: these assignments are part of the durable
        # contract (journals live under shard-NN by this function).
        assert shard_for("abc123def456", 2) == 0
        assert shard_for("abc123def456", 4) == 0
        assert shard_for("deadbeef0000", 4) == 2
        assert shard_for("0123456789ab", 2) == 1
        assert shard_for("0123456789ab", 4) == 3

    def test_stable_across_processes(self):
        # Python's salted hash() would fail this: a child process must
        # agree with us on every assignment.
        ids = ["%012x" % n for n in range(0, 4096, 37)]
        script = (
            "import sys, json\n"
            "from repro.service.sharding import shard_for\n"
            "ids = json.load(sys.stdin)\n"
            "json.dump([shard_for(i, 4) for i in ids], sys.stdout)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps(ids),
            capture_output=True,
            text=True,
            env=dict(
                os.environ,
                PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"),
            ),
            check=True,
        ).stdout
        assert json.loads(out) == [shard_for(i, 4) for i in ids]

    def test_uniformity_chi_squared(self):
        # 10k session-id-shaped ids over 4 shards; chi-squared upper
        # bound 16.27 = df=3 at p=0.001.  A biased hash would starve a
        # worker of sessions and pile journals onto another.
        rng = random.Random(1234)
        ids = ["%012x" % rng.getrandbits(48) for _ in range(10000)]
        counts = Counter(shard_for(session_id, 4) for session_id in ids)
        expected = len(ids) / 4
        chi2 = sum(
            (counts[shard] - expected) ** 2 / expected for shard in range(4)
        )
        assert chi2 < 16.27, counts

    def test_single_shard_owns_everything(self):
        assert shard_for("anything", 1) == 0

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            shard_for("abc", 0)


class TestShardInfo:
    ADDRS = ("http://127.0.0.1:1", "http://127.0.0.1:2")

    def test_owns_and_address_for_agree(self):
        info = ShardInfo(0, 2, self.ADDRS)
        for session_id in ("abc123def456", "0123456789ab"):
            owner = shard_for(session_id, 2)
            assert info.owns(session_id) == (owner == 0)
            assert info.address_for(session_id) == self.ADDRS[owner]

    def test_table_and_own_address(self):
        info = ShardInfo(1, 2, self.ADDRS)
        assert info.own_address == self.ADDRS[1]
        assert info.table() == {"0": self.ADDRS[0], "1": self.ADDRS[1]}

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardInfo(2, 2, self.ADDRS)
        with pytest.raises(ValueError):
            ShardInfo(0, 2, self.ADDRS[:1])


class TestSessionIdRejectionSampling:
    def test_new_ids_land_on_own_shard(self):
        # The creating worker must own every session it mints, so the
        # keep-alive connection that created a session never redirects.
        addrs = tuple("http://127.0.0.1:{}".format(i) for i in range(4))
        for index in range(4):
            manager = SessionManager(shard=ShardInfo(index, 4, addrs))
            for _ in range(25):
                assert shard_for(manager._new_session_id(), 4) == index

    def test_unsharded_manager_takes_first_id(self):
        assert len(SessionManager()._new_session_id()) == 12


class TestTopologyGuard:
    def test_roundtrip(self, tmp_path):
        assert check_topology(tmp_path, 2) is None  # fresh dir: anything goes
        write_topology(tmp_path, 2)
        assert check_topology(tmp_path, 2) == 2

    def test_mismatch_refused(self, tmp_path):
        write_topology(tmp_path, 2)
        with pytest.raises(TopologyError, match="2-worker"):
            check_topology(tmp_path, 4)
        with pytest.raises(TopologyError):
            check_topology(tmp_path, 1)

    def test_legacy_layout_refused_for_multiworker(self, tmp_path):
        (tmp_path / "sessions" / "abc").mkdir(parents=True)
        with pytest.raises(TopologyError, match="single-process"):
            check_topology(tmp_path, 2)
        # ...but a single-process daemon may keep draining it.
        assert check_topology(tmp_path, 1) is None

    def test_corrupt_topology_refused(self, tmp_path):
        (tmp_path / "topology.json").write_text("not json")
        with pytest.raises(TopologyError, match="cannot read"):
            check_topology(tmp_path, 2)

    def test_shard_state_dir_layout(self, tmp_path):
        assert shard_state_dir(tmp_path, 0).name == "shard-00"
        assert shard_state_dir(tmp_path, 11).name == "shard-11"


class TestMetricsSnapshots:
    def _populated(self) -> ServiceMetrics:
        metrics = ServiceMetrics()
        metrics.register_counter("repro_widgets_total", "Widgets.")
        metrics.inc_counter("repro_widgets_total", 3)
        metrics.observe_request("anonymize", 200, 0.05)
        metrics.observe_request("anonymize", 429)
        metrics.record_rule_hits({"R99": 2})  # family "other"
        metrics.register_gauge("repro_depth", "Depth.", lambda: 7)
        return metrics

    def test_render_equals_render_snapshot(self):
        metrics = self._populated()
        assert metrics.render() == render_snapshot(metrics.snapshot())

    def test_snapshot_is_json_able_and_detached(self):
        metrics = self._populated()
        snapshot = json.loads(json.dumps(metrics.snapshot()))
        before = render_snapshot(snapshot)
        metrics.inc_counter("repro_widgets_total", 100)  # must not leak in
        assert render_snapshot(snapshot) == before

    def test_merge_sums_everything(self):
        one, two = self._populated(), self._populated()
        merged = merge_snapshots([one.snapshot(), two.snapshot()])
        text = render_snapshot(merged)
        assert "repro_widgets_total 6" in text
        assert 'repro_requests_total{code="200",endpoint="anonymize"} 2' in text
        assert 'repro_rule_family_hits_total{family="other"} 4' in text
        assert "repro_depth 14" in text  # gauges sum: total backlog
        assert 'repro_request_seconds_bucket{endpoint="anonymize",le="+Inf"} 2' in text

    def test_worker_up_rendering(self):
        text = render_snapshot(
            ServiceMetrics().snapshot(), worker_up={0: 1, 1: 0}
        )
        assert 'repro_worker_up{shard="0"} 1' in text
        assert 'repro_worker_up{shard="1"} 0' in text


# -- integration: a real pre-fork daemon --------------------------------


def _spawn(tmp_path, name, *extra):
    ready = tmp_path / (name + ".ready")
    env = dict(
        os.environ,
        PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"),
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--threads",
            "2",
            "--ready-file",
            str(ready),
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + 30
    while not ready.exists():
        if proc.poll() is not None:
            raise AssertionError(
                "{} exited {} early:\n{}".format(
                    name, proc.returncode, proc.stdout.read() or ""
                )
            )
        assert time.time() < deadline, "daemon never became ready"
        time.sleep(0.05)
    return proc, ready.read_text().strip()


def _terminate(proc) -> str:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, _ = proc.communicate(timeout=10)
    return out or ""


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
class TestPreForkDaemon:
    def test_redirect_routing_and_respawn_reclaims_own_shard(self, tmp_path):
        from repro.service.client import RetryingServiceClient, RetryPolicy, ServiceClient

        state = tmp_path / "state"
        proc, url = _spawn(tmp_path, "daemon", "--state-dir", str(state))
        try:
            client = RetryingServiceClient(
                url,
                timeout=30,
                salt=SALT,
                policy=RetryPolicy(max_attempts=8, base_delay=0.1),
            )
            session = client.create_session(SALT)
            victim_shard = session["shard"]
            shards = client.healthz()["shards"]
            assert set(shards) == {"0", "1"}

            # Route the session through the *wrong* worker's direct
            # listener: the 307 must be followed and pinned.
            other = shards[str(1 - victim_shard)]
            wrong = ServiceClient(other, timeout=30)
            assert wrong.session(session["id"])["shard"] == victim_shard
            assert session["id"] in wrong._affinity
            wrong.close()

            # Both workers wrote their own shard dirs; topology recorded.
            result = client.anonymize(
                session["id"], "hostname cr1.foo.com\n", source="a.cfg"
            )
            assert result["status"] == "ok"
            topo = json.loads((state / "topology.json").read_text())
            assert topo["workers"] == 2
            victim_dir = shard_state_dir(state, victim_shard)
            assert (victim_dir / "sessions").is_dir()
            session_dirs = list((victim_dir / "sessions").iterdir())
            assert [d.name for d in session_dirs] == [session["id"]]

            # SIGKILL the owning worker mid-flight.  The supervisor must
            # respawn the same shard; the survivor keeps its pid; the
            # respawned worker recovers exactly its own journals and the
            # session resumes with history intact.
            probe = ServiceClient(shards[str(victim_shard)], timeout=30)
            victim_pid = probe.healthz()["pid"]
            probe.close()
            survivor = ServiceClient(shards[str(1 - victim_shard)], timeout=30)
            survivor_pid = survivor.healthz()["pid"]
            os.kill(victim_pid, signal.SIGKILL)

            deadline = time.time() + 30
            while True:
                assert time.time() < deadline, "shard never respawned"
                try:
                    again = ServiceClient(
                        shards[str(victim_shard)], timeout=5
                    )
                    health = again.healthz()
                    again.close()
                    if health["pid"] != victim_pid:
                        break
                except Exception:
                    pass
                time.sleep(0.1)
            assert health["shard"] == victim_shard
            assert health["generation"] >= 1
            assert health["recoverable_sessions"] == 1
            assert survivor.healthz()["pid"] == survivor_pid
            survivor.close()

            # Auto-resume (404 recoverable -> resume -> replay): the
            # same request now answers identically from recovered state.
            replay = client.anonymize(
                session["id"], "hostname cr1.foo.com\n", source="a.cfg"
            )
            assert replay["text"] == result["text"]
        finally:
            out = _terminate(proc)
        assert proc.returncode == 0, out
        assert "respawning" in out

    def test_topology_mismatch_refused_at_startup(self, tmp_path):
        state = tmp_path / "state"
        write_topology(state, 4)
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"),
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--workers",
                "2",
                "--state-dir",
                str(state),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == EXIT_RECOVERY_FAILED
        assert "4-worker" in proc.stderr
