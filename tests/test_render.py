"""Direct unit tests for the IOS and JunOS renderers."""

import random
import re

import pytest

from repro.iosgen.dialects import all_version_strings, dialect_for_version
from repro.iosgen.naming import NameFactory
from repro.iosgen.plan import (
    AccessListEntry,
    AsPathAclEntry,
    BgpNeighborPlan,
    BgpPlan,
    CommunityListEntry,
    IgpPlan,
    InterfacePlan,
    NamedAclPlan,
    PrefixListEntry,
    RouteMapClause,
    RouterPlan,
    StaticRoute,
)
from repro.iosgen.render import render_config
from repro.iosgen.junos_render import render_junos_config
from repro.iosgen.spec import NetworkSpec
from repro.netutil import ip_to_int


def _sample_router():
    router = RouterPlan(hostname="r1.test.example", role="hub", pop_index=0,
                        version="12.2(13)T")
    router.interfaces = [
        InterfacePlan(name="Loopback0", kind="loopback",
                      address=ip_to_int("6.0.0.1"), prefix_len=32),
        InterfacePlan(name="FastEthernet0/0", kind="lan",
                      address=ip_to_int("10.1.1.1"), prefix_len=24,
                      description="user lan"),
        InterfacePlan(name="Serial0/0", kind="p2p",
                      address=ip_to_int("6.1.0.1"), prefix_len=30,
                      bandwidth=1544, encapsulation="ppp"),
    ]
    router.igp = IgpPlan(protocol="ospf", process_id=100,
                         networks=[(ip_to_int("10.1.1.0"), 255, 0),
                                   (ip_to_int("6.1.0.0"), 3, 0)])
    router.bgp = BgpPlan(asn=65001, router_id=ip_to_int("6.0.0.1"),
                         networks=[(ip_to_int("6.0.0.0"), 8)],
                         neighbors=[
                             BgpNeighborPlan(address=ip_to_int("9.9.9.9"),
                                             remote_as=701, ebgp=True,
                                             route_map_in="P-in",
                                             route_map_out="P-out",
                                             password="pw123",
                                             send_community=True),
                         ])
    router.route_maps = [
        RouteMapClause("P-in", "deny", 10, matches=["as-path 50"]),
        RouteMapClause("P-in", "permit", 20, sets=["local-preference 90"]),
    ]
    router.aspath_acls = [AsPathAclEntry(50, "permit", "(_1239_|_701_)")]
    router.community_lists = [CommunityListEntry(1, "permit", "701:100")]
    router.named_acls = [NamedAclPlan("guard", [("permit", "ip any any")])]
    router.prefix_lists = [PrefixListEntry("P-px", 5, "permit",
                                           ip_to_int("6.0.0.0"), 8, le=24)]
    router.static_routes = [StaticRoute(ip_to_int("10.9.0.0"), 16, 0)]
    router.enable_secret = "topsecret"
    router.usernames = [("bob", "pw")]
    router.snmp_community = "comm"
    router.banner = "KEEP OUT\nproperty of test"
    router.domain_name = "test.example"
    router.vty_password = "vtypw"
    return router


@pytest.fixture
def ios_text():
    router = _sample_router()
    dialect = dialect_for_version(router.version)
    return render_config(router, dialect, NameFactory(1), NetworkSpec(), random.Random(1)), dialect


class TestIosRenderer:
    def test_sections_in_canonical_order(self, ios_text):
        text, _ = ios_text
        order = [text.index(marker) for marker in (
            "hostname ", "interface Loopback0", "router ospf",
            "router bgp", "\nip route ", "\nip access-list extended",
            "\nroute-map P-in deny", "line vty")]
        assert order == sorted(order)

    def test_banner_uses_dialect_delimiter(self, ios_text):
        text, dialect = ios_text
        assert "banner motd {}".format(dialect.banner_delimiter) in text
        assert "KEEP OUT" in text

    def test_masks_rendered(self, ios_text):
        text, _ = ios_text
        assert " ip address 10.1.1.1 255.255.255.0" in text
        assert " ip address 6.1.0.1 255.255.255.252" in text
        assert "network 6.0.0.0 mask 255.0.0.0" in text

    def test_static_null0(self, ios_text):
        text, _ = ios_text
        assert "ip route 10.9.0.0 255.255.0.0 Null0" in text

    def test_bgp_neighbor_lines(self, ios_text):
        text, _ = ios_text
        assert "neighbor 9.9.9.9 remote-as 701" in text
        assert "neighbor 9.9.9.9 password pw123" in text
        assert "neighbor 9.9.9.9 route-map P-in in" in text

    def test_named_acl_rendered(self, ios_text):
        text, _ = ios_text
        assert "ip access-list extended guard" in text

    def test_prefix_list_rendered(self, ios_text):
        text, _ = ios_text
        assert "ip prefix-list P-px seq 5 permit 6.0.0.0/8 le 24" in text

    def test_ends_with_end(self, ios_text):
        text, _ = ios_text
        assert text.rstrip().endswith("end")

    def test_dialect_era_affects_boilerplate(self):
        router = _sample_router()
        old = render_config(router, dialect_for_version("11.1(3)"),
                            NameFactory(1), NetworkSpec(), random.Random(1))
        new = render_config(router, dialect_for_version("12.3(16)T"),
                            NameFactory(1), NetworkSpec(), random.Random(1))
        assert "no synchronization" not in old
        assert "no synchronization" in new


class TestJunosRenderer:
    @pytest.fixture
    def junos_text(self):
        router = _sample_router()
        return render_junos_config(router, NameFactory(1), NetworkSpec(), random.Random(1))

    def test_braces_balanced(self, junos_text):
        assert junos_text.count("{") == junos_text.count("}")

    def test_statements_terminated(self, junos_text):
        for line in junos_text.splitlines():
            stripped = line.strip()
            if not stripped or stripped.endswith(("{", "}")) or stripped.startswith("/*"):
                continue
            assert stripped.endswith(";"), stripped

    def test_interface_mapping(self, junos_text):
        assert "lo0 {" in junos_text
        assert "fe-0/0/0 {" in junos_text
        assert "so-0/0/0 {" in junos_text
        assert "address 10.1.1.1/24;" in junos_text

    def test_bgp_group(self, junos_text):
        assert "peer-as 701;" in junos_text
        assert "autonomous-system 65001;" in junos_text
        assert 'authentication-key "pw123";' in junos_text

    def test_policy_statement(self, junos_text):
        assert "policy-statement P-in {" in junos_text
        assert "local-preference 90;" in junos_text
        assert "reject;" in junos_text

    def test_aspath_regex_stripped_of_underscores(self, junos_text):
        match = re.search(r'as-path aspath-50 "([^"]*)";', junos_text)
        assert match
        assert "_" not in match.group(1)
        assert "1239" in match.group(1)

    def test_statics(self, junos_text):
        assert "route 10.9.0.0/16 discard;" in junos_text

    def test_parses_back(self, junos_text):
        from repro.configmodel.junos_parser import parse_junos_config

        parsed = parse_junos_config(junos_text)
        assert parsed.hostname == "r1.test.example"
        assert parsed.bgp.asn == 65001
        assert parsed.bgp.neighbors["9.9.9.9"].remote_as == 701
        assert parsed.interfaces["fe-0/0/0.0"].prefix_len == 24
