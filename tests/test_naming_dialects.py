"""Tests for the identity factory and the IOS dialect family."""

import pytest

from repro.iosgen.dialects import all_version_strings, dialect_for_version
from repro.iosgen.naming import CITIES, NameFactory


class TestNameFactory:
    def test_deterministic(self):
        a, b = NameFactory(42), NameFactory(42)
        assert a.company == b.company
        assert a.domain == b.domain
        assert a.hostname("cr", 1, 0) == b.hostname("cr", 1, 0)

    def test_different_seeds_differ(self):
        outputs = {NameFactory(seed).company for seed in range(30)}
        assert len(outputs) > 5

    def test_hostname_shape(self):
        factory = NameFactory(7)
        hostname = factory.hostname("cr", 2, 1)
        assert hostname.startswith("cr2.")
        code, _ = factory.city(1)
        assert ".{}.".format(code) in hostname
        assert hostname.endswith(factory.domain)

    def test_phone_shape(self):
        phone = NameFactory(7).phone()
        assert phone.isdigit()
        assert len(phone) == 11

    def test_banner_mentions_company(self):
        factory = NameFactory(7)
        assert factory.company_display in factory.banner(0)

    def test_secret_alphabet(self):
        secret = NameFactory(7).secret()
        assert 8 <= len(secret) <= 12
        assert secret.isalnum()

    def test_city_pool_stable(self):
        factory = NameFactory(7)
        assert factory.city(3) == factory.city(3)
        assert factory.city(3) == factory.city(3 + len(CITIES))


class TestDialectFamily:
    def test_family_size(self):
        versions = all_version_strings()
        assert len(versions) == len(set(versions))
        assert len(versions) > 200

    def test_version_format(self):
        import re

        for version in all_version_strings()[:20]:
            assert re.match(r"^\d+\.\d+\(\d+\)[TSE]?$", version)

    def test_modern_features_monotone(self):
        old = dialect_for_version("11.1(3)")
        new = dialect_for_version("12.4(24)T")
        assert not old.bgp_no_synchronization
        assert new.bgp_no_synchronization
        assert not old.uses_ip_classless or True  # may be hash-enabled
        assert new.subnet_zero

    def test_banner_delimiters_vary(self):
        delimiters = {
            dialect_for_version(v).banner_delimiter
            for v in all_version_strings()[:40]
        }
        assert len(delimiters) >= 2

    def test_interface_eras_vary(self):
        eras = {
            dialect_for_version(v).interface_era for v in all_version_strings()
        }
        assert eras == {0, 1, 2}

    def test_major_minor_parse(self):
        dialect = dialect_for_version("12.2(13)T")
        assert dialect.major_minor == (12, 2)
