"""Tests for the parallel anonymization pipeline and the rule prefilter.

The headline guarantee: parallel output is byte-identical to sequential
output for any worker count, because all mapping state is frozen before
any rewriting happens.
"""

from __future__ import annotations

import pytest

from repro.core import Anonymizer, AnonymizerConfig
from repro.core.context import RuleContext
from repro.core.engine import FreezeStats
from repro.core.line import SegmentedLine
from repro.core.parallel import FrozenSnapshot, _rewrite_with, anonymize_files
from repro.core.rulebase import compile_gate
from repro.iosgen import NetworkSpec, generate_network

JUNOS_CONFIG = """\
system {
    host-name core1.pop3.example.net;
    root-authentication {
        encrypted-password "$1$abadsecret$xyz";
    }
}
protocols {
    bgp {
        group transit {
            peer-as 1239;
            neighbor 6.4.2.9;
        }
    }
}
policy-options {
    as-path from-sprint "1239 .*";
    community cust-tag members [ 701:120 701:121 ];
    policy-statement tag-it {
        term one {
            then {
                community add cust-tag;
                as-path-prepend "65001 65001";
            }
        }
    }
}
"""

ISIS_CONFIG = """\
hostname isis-r1.corp.example
interface Loopback0
 ip address 6.0.0.3 255.255.255.255
router isis
 net 49.0001.1720.3125.5254.00
 is-type level-2-only
"""


def _network_configs():
    """A multi-file synthetic network exercising every rule family."""
    spec = NetworkSpec(
        name="par-net",
        kind="enterprise",
        seed=23,
        num_pops=3,
        igp="isis",
        lans_per_access=(2, 4),
        static_burst=(0, 3),
        use_community_regexps=True,
        dialer_backup=True,
        comment_density=0.3,
    )
    configs = dict(generate_network(spec).configs)
    configs["core1.pop3.example.net"] = JUNOS_CONFIG
    configs["isis-r1.corp.example"] = ISIS_CONFIG
    return configs


@pytest.fixture(scope="module")
def network_configs():
    return _network_configs()


@pytest.fixture(scope="module")
def sequential_run(network_configs):
    """The jobs=1 freeze-then-rewrite baseline every worker count must hit."""
    anonymizer = Anonymizer(salt=b"parallel-secret")
    result = anonymizer.anonymize_network(dict(network_configs), two_pass=True, jobs=1)
    return anonymizer, result


class TestParallelByteIdentity:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_output_matches_sequential(self, network_configs, sequential_run, jobs):
        _, expected = sequential_run
        anonymizer = Anonymizer(salt=b"parallel-secret")
        result = anonymizer.anonymize_network(
            dict(network_configs), two_pass=True, jobs=jobs
        )
        assert result.configs == expected.configs
        assert result.name_map == expected.name_map

    def test_config_default_jobs_used(self, network_configs, sequential_run):
        _, expected = sequential_run
        config = AnonymizerConfig(salt=b"parallel-secret", jobs=2)
        result = Anonymizer(config).anonymize_network(dict(network_configs))
        assert result.configs == expected.configs

    def test_file_order_does_not_matter(self, network_configs, sequential_run):
        _, expected = sequential_run
        reordered = dict(reversed(list(network_configs.items())))
        anonymizer = Anonymizer(salt=b"parallel-secret")
        result = anonymizer.anonymize_network(reordered, jobs=2)
        assert result.configs == expected.configs


class TestMergedReport:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_report_counters_equal_sequential(
        self, network_configs, sequential_run, jobs
    ):
        sequential_anon, _ = sequential_run
        anonymizer = Anonymizer(salt=b"parallel-secret")
        anonymizer.anonymize_network(dict(network_configs), jobs=jobs)
        assert anonymizer.report.to_dict() == sequential_anon.report.to_dict()
        assert anonymizer.report.seen_asns == sequential_anon.report.seen_asns
        assert (
            anonymizer.report.seen_public_ips
            == sequential_anon.report.seen_public_ips
        )

    def test_hashed_inputs_complete_after_parallel_run(
        self, network_configs, sequential_run
    ):
        # The leak scanner's ground truth must not lose tokens that were
        # hashed only inside worker processes.
        sequential_anon, _ = sequential_run
        anonymizer = Anonymizer(salt=b"parallel-secret")
        anonymizer.anonymize_network(dict(network_configs), jobs=2)
        assert dict(anonymizer.hasher.hashed_inputs) == dict(
            sequential_anon.hasher.hashed_inputs
        )


class TestFreezePhase:
    def test_freeze_stats_cover_corpus(self, network_configs):
        anonymizer = Anonymizer(salt=b"freeze")
        stats = anonymizer.freeze_mappings(dict(network_configs))
        assert isinstance(stats, FreezeStats)
        assert stats.addresses > 0
        # The IS-IS NET encodes 172.31.255.254, which appears nowhere in
        # the corpus as a dotted quad — only the system-id scan finds it.
        assert stats.system_ids > 0
        assert stats.words_warmed > 0
        assert stats.asns_warmed > 0
        assert anonymizer.ip_map.frozen

    def test_frozen_trie_is_insertion_order_independent(self):
        addresses = ["10.1.0.0", "10.1.1.5", "10.2.3.4", "6.1.2.0", "6.1.2.9"]
        first = Anonymizer(salt=b"frz")
        first.ip_map.freeze()
        second = Anonymizer(salt=b"frz")
        second.ip_map.freeze()
        mapped_forward = [first.ip_map.map_address(a) for a in addresses]
        mapped_reverse = [
            second.ip_map.map_address(a) for a in reversed(addresses)
        ]
        assert mapped_forward == list(reversed(mapped_reverse))

    def test_freeze_does_not_pollute_hashed_inputs(self, network_configs):
        # Only zero-hash words are warmed: freezing must not record corpus
        # words as "hashed" when the rewrite never hashes them.
        anonymizer = Anonymizer(salt=b"freeze2")
        anonymizer.freeze_mappings(dict(network_configs))
        assert dict(anonymizer.hasher.hashed_inputs) == {}

    def test_hash_cache_delta_merge_with_overlapping_tokens(self):
        # Two workers hashing the SAME new token must both report it in
        # their deltas with identical digests, and merging must neither
        # lose it nor re-include tokens hashed before the snapshot.
        configs = {
            "a.cfg": "hostname shared-word.example.com\n",
            "b.cfg": "hostname shared-word.example.net\n",
        }
        parent = Anonymizer(salt=b"delta")
        parent.hasher.hash_token("presnap")  # cached before capture
        parent.freeze_mappings(dict(configs))
        snapshot = FrozenSnapshot.capture(parent)

        worker_a = snapshot.restore()
        worker_b = snapshot.restore()
        _, _, _, delta_a = _rewrite_with(worker_a, "a.cfg", configs["a.cfg"])
        _, _, _, delta_b = _rewrite_with(worker_b, "b.cfg", configs["b.cfg"])

        # Both workers hashed "shared-word" independently; the keyed hash
        # makes their answers identical, so merge order cannot matter.
        overlap = set(delta_a) & set(delta_b)
        assert "shared-word" in overlap
        for token in overlap:
            assert delta_a[token] == delta_b[token]
        # Pre-snapshot cache entries are not part of any worker delta.
        assert "presnap" not in delta_a and "presnap" not in delta_b

        # The merged ground truth equals a sequential run over the same
        # corpus (plus the pre-snapshot token).
        sequential = Anonymizer(salt=b"delta")
        sequential.hasher.hash_token("presnap")
        sequential.freeze_mappings(dict(configs))
        for name in sorted(configs):
            sequential.anonymize_file(configs[name], source=name)
        merged = dict(parent.hasher.hashed_inputs)
        for delta in (delta_a, delta_b):
            for token, digest in delta.items():
                merged.setdefault(token, digest)
        assert merged == dict(sequential.hasher.hashed_inputs)

    def test_snapshot_round_trip(self, network_configs):
        anonymizer = Anonymizer(salt=b"snap")
        anonymizer.freeze_mappings(dict(network_configs))
        restored = FrozenSnapshot.capture(anonymizer).restore()
        name = sorted(network_configs)[0]
        text = network_configs[name]
        assert (
            restored.anonymize_file(text, source=name)[0]
            == anonymizer.anonymize_file(text, source=name)[0]
        )


class TestRulePrefilter:
    def test_prefilter_never_changes_which_rules_fire(self, network_configs):
        """Property over every corpus line: a firing rule's gate passes."""
        reference = Anonymizer(salt=b"gatecheck")
        lines = set()
        for text in network_configs.values():
            lines.update(text.splitlines())
        # Crafted edge lines: triggers split across case, leading spaces,
        # and rule keywords embedded mid-line.
        lines.update(
            [
                " Router BGP 65000",
                "ip community-list 120 permit 701:7[1-5]..",
                "  net 49.0001.0060.0000.0003.00",
                "snmp-server community S3cret RO",
                "username Admin password 7 0501abcdef",
                "set as-path prepend 701 701",
                "neighbor 6.1.1.1 remote-as 1239",
                "no rules here at all",
            ]
        )
        for rule in reference.rules + reference._junos_rules:
            if rule.apply is None:
                continue
            gate = compile_gate(rule.trigger)
            if gate is None:
                continue
            for raw_line in lines:
                ctx = reference._make_context("gatecheck")
                hits = rule.apply(SegmentedLine(raw_line), ctx)
                if hits:
                    assert gate(raw_line.lower()), (
                        "rule {} fired on {!r} but its prefilter gate "
                        "rejected the line".format(rule.rule_id, raw_line)
                    )

    def test_prefilter_output_identical_to_unfiltered(self, network_configs):
        with_filter = Anonymizer(
            AnonymizerConfig(salt=b"pf", rule_prefilter=True)
        )
        without_filter = Anonymizer(
            AnonymizerConfig(salt=b"pf", rule_prefilter=False)
        )
        out_a = with_filter.anonymize_network(dict(network_configs))
        out_b = without_filter.anonymize_network(dict(network_configs))
        assert out_a.configs == out_b.configs
        assert (
            with_filter.report.to_dict() == without_filter.report.to_dict()
        )


class TestAnonymizeFiles:
    def test_original_names_preserved(self, network_configs):
        anonymizer = Anonymizer(salt=b"names")
        anonymizer.freeze_mappings(dict(network_configs))
        outputs = anonymize_files(anonymizer, dict(network_configs), jobs=2)
        assert sorted(outputs) == sorted(network_configs)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            AnonymizerConfig(salt=b"x", jobs=0)


class TestPluginParallelByteIdentity:
    """Registry-era guarantees: an IPv4-only corpus is byte-identical
    whether the plugin registry is composed in or not, and a dual-stack
    EOS corpus is byte-identical across every transport and worker
    count (the v6 trie rides the same freeze-then-rewrite contract)."""

    @pytest.fixture(scope="class")
    def eos_configs(self):
        spec = NetworkSpec(
            name="par-eos", kind="enterprise", seed=11,
            num_pops=2, eos_fraction=0.6,
        )
        return dict(generate_network(spec).configs)

    @pytest.fixture(scope="class")
    def eos_sequential(self, eos_configs):
        anonymizer = Anonymizer(
            AnonymizerConfig(
                salt=b"eos-par", plugins=("blobs", "eos", "ipv6")
            )
        )
        result = anonymizer.anonymize_network(
            dict(eos_configs), two_pass=True, jobs=1
        )
        return {
            original: result.configs[renamed]
            for original, renamed in result.name_map.items()
        }

    def test_ipv4_corpus_identical_with_and_without_registry(
        self, network_configs, sequential_run
    ):
        # The default plugin set must be a no-op on a corpus that never
        # exercises it: same bytes as an engine with the registry off.
        _, expected = sequential_run
        bare = Anonymizer(
            AnonymizerConfig(salt=b"parallel-secret", plugins=())
        )
        result = bare.anonymize_network(
            dict(network_configs), two_pass=True, jobs=1
        )
        assert result.configs == expected.configs
        assert result.name_map == expected.name_map

    @pytest.mark.parametrize("transport", ["fork", "shm", "pickle"])
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_eos_corpus_byte_identity_per_transport(
        self, eos_configs, eos_sequential, transport, jobs
    ):
        import multiprocessing

        if (
            transport == "fork"
            and "fork" not in multiprocessing.get_all_start_methods()
        ):
            pytest.skip("fork start method unavailable on this platform")
        anonymizer = Anonymizer(
            AnonymizerConfig(
                salt=b"eos-par", plugins=("blobs", "eos", "ipv6")
            )
        )
        anonymizer.freeze_mappings(dict(eos_configs))
        outputs = anonymize_files(
            anonymizer, dict(eos_configs), jobs=jobs, transport=transport
        )
        assert outputs == eos_sequential


class TestCliFlags:
    def test_no_two_pass_conflicts_with_jobs(self, tmp_path, capsys):
        from repro.cli import main

        config = tmp_path / "r1.cfg"
        config.write_text("router bgp 701\n")
        with pytest.raises(SystemExit):
            main([str(config), "--salt", "s", "--jobs", "2", "--no-two-pass"])

    def test_jobs_flag_end_to_end(self, tmp_path):
        from repro.cli import main

        for index in range(3):
            (tmp_path / "r{}.cfg".format(index)).write_text(
                "hostname r{}.corp.example\n"
                "ip address 10.0.{}.1 255.255.255.0\n"
                "router bgp 701\n".format(index, index)
            )
        out_seq = tmp_path / "out-seq"
        out_par = tmp_path / "out-par"
        assert (
            main(
                [str(tmp_path), "--salt", "s", "--two-pass",
                 "--out-dir", str(out_seq)]
            )
            == 0
        )
        assert (
            main(
                [str(tmp_path), "--salt", "s", "--jobs", "2",
                 "--out-dir", str(out_par)]
            )
            == 0
        )
        anon_files = sorted(out_seq.glob("*.anon"))
        assert anon_files  # the run manifest is not an output file
        for path in anon_files:
            assert (out_par / path.name).read_text() == path.read_text()


class TestSnapshotTransports:
    """Byte-identity across every snapshot transport, worker count, and
    chunk size — the tentpole guarantee of the compiled-dispatch PR."""

    def _expected_by_original_name(self, sequential_run):
        _, expected = sequential_run
        return {
            original: expected.configs[renamed]
            for original, renamed in expected.name_map.items()
        }

    @pytest.mark.parametrize("transport", ["fork", "shm", "pickle"])
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_byte_identity_per_transport(
        self, network_configs, sequential_run, transport, jobs
    ):
        import multiprocessing

        if (
            transport == "fork"
            and "fork" not in multiprocessing.get_all_start_methods()
        ):
            pytest.skip("fork start method unavailable on this platform")
        anonymizer = Anonymizer(salt=b"parallel-secret")
        anonymizer.freeze_mappings(dict(network_configs))
        outputs = anonymize_files(
            anonymizer, dict(network_configs), jobs=jobs, transport=transport
        )
        assert outputs == self._expected_by_original_name(sequential_run)

    @pytest.mark.parametrize("chunk_files", [1, 3, 1000])
    def test_byte_identity_per_chunk_size(
        self, network_configs, sequential_run, chunk_files
    ):
        anonymizer = Anonymizer(salt=b"parallel-secret")
        anonymizer.freeze_mappings(dict(network_configs))
        outputs = anonymize_files(
            anonymizer,
            dict(network_configs),
            jobs=2,
            chunk_files=chunk_files,
        )
        assert outputs == self._expected_by_original_name(sequential_run)

    def test_transport_report_counters_match_sequential(
        self, network_configs, sequential_run
    ):
        sequential_anon, _ = sequential_run
        anonymizer = Anonymizer(salt=b"parallel-secret")
        anonymizer.freeze_mappings(dict(network_configs))
        anonymize_files(
            anonymizer, dict(network_configs), jobs=2, transport="shm"
        )
        assert anonymizer.report.to_dict() == sequential_anon.report.to_dict()

    def test_resolve_transport_rejects_unknown(self):
        from repro.core.parallel import resolve_transport

        with pytest.raises(ValueError):
            resolve_transport("carrier-pigeon")
        assert resolve_transport("shm") == "shm"
        assert resolve_transport("auto") in ("fork", "shm")

    def test_config_validates_transport_and_chunk(self):
        with pytest.raises(ValueError):
            AnonymizerConfig(salt=b"x", snapshot_transport="nope")
        with pytest.raises(ValueError):
            AnonymizerConfig(salt=b"x", chunk_files=-1)

    def test_chunk_names_covers_every_file_once(self):
        from repro.core.parallel import _chunk_names

        names = ["f{:02d}".format(i) for i in range(17)]
        for jobs in (1, 2, 4):
            for chunk_files in (0, 1, 5, 100):
                chunks = _chunk_names(list(names), jobs, chunk_files)
                flat = [name for chunk in chunks for name in chunk]
                assert flat == names
