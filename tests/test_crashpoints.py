"""The crash-point registry, chaos scheduler, and worker status board.

Three layers of the robustness harness:

* :mod:`repro.core.crashpoints` — the named-crash-point registry that
  ``scripts/crash_explorer.py`` enumerates.  The tests keep the static
  table honest (every registered name is wired into real code), verify
  the arm/trace/nth semantics in-process, and SIGKILL subprocesses at
  armed points to prove the hook actually kills.
* ``chaos:`` mode of :mod:`repro.core.faults` — the seeded scheduler
  must be a pure function of (seed, query sequence), and malformed
  specs must raise :class:`FaultPlanError`, which the CLI entry points
  turn into ``EXIT_BAD_FAULT_PLAN`` instead of a traceback.
* :mod:`repro.service.watchdog` — the mmap'd per-shard status board the
  hung-worker watchdog and the ``/metrics`` respawn counters read.
"""

from __future__ import annotations

import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import crashpoints
from repro.core.crashpoints import (
    CRASH_POINTS,
    arm,
    crash_here,
    disarm,
    registered_points,
    trace_to,
    would_crash,
)
from repro.core.faults import (
    ChaosSchedule,
    FaultPlan,
    FaultPlanError,
    parse_env_fault_plan,
)
from repro.core.status import EXIT_BAD_FAULT_PLAN
from repro.service.watchdog import SLOT_BYTES, WorkerStatusBoard

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _always_disarm():
    yield
    disarm()


class TestRegistry:
    def test_at_least_ten_points_across_all_paths(self):
        points = registered_points()
        assert len(points) >= 10
        prefixes = {name.split(".")[0] for name in points}
        # Journal, snapshot (via journal.rotate + snapshot.*), and both
        # manifest paths must be represented.
        assert {"journal", "snapshot", "runner", "corpus"} <= prefixes
        assert all(desc for desc in points.values())

    def test_registered_points_returns_a_copy(self):
        points = registered_points()
        points["bogus"] = "x"
        assert "bogus" not in CRASH_POINTS

    def test_every_point_is_wired_into_real_code(self):
        """The static table must not drift from the instrumented code:
        every name is either called literally or composed from a
        ``crash_scope`` prefix by ``atomic_write_text``."""
        src = Path(SRC) / "repro"
        combined = "".join(
            path.read_text(encoding="utf-8")
            for path in (
                src / "service" / "journal.py",
                src / "service" / "corpus.py",
                src / "service" / "sharding.py",
                src / "core" / "runner.py",
            )
        )
        for name in CRASH_POINTS:
            scope, _, suffix = name.rpartition(".")
            wired = '"{}"'.format(name) in combined or (
                suffix in ("tmp-written", "renamed")
                and '"{}"'.format(scope) in combined
            )
            assert wired, "crash point {} is not wired anywhere".format(name)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown crash point"):
            arm("no.such.point")
        with pytest.raises(ValueError, match="nth must be >= 1"):
            arm("journal.append.pre-fsync:0")

    def test_crash_here_rejects_unregistered_names_when_active(self):
        arm("journal.append.pre-fsync:100")
        with pytest.raises(RuntimeError, match="unregistered crash point"):
            crash_here("not.registered")

    def test_crash_here_is_noop_when_disarmed(self):
        disarm()
        crash_here("journal.append.pre-fsync")  # must not raise or kill
        assert would_crash("journal.append.pre-fsync") is False


class TestArmAndTrace:
    def test_nth_counts_hits_before_killing(self):
        # nth=3: two hits are survivable; the *next* one would kill.
        arm("journal.append.post-fsync:3")
        assert would_crash("journal.append.post-fsync") is False
        crash_here("journal.append.post-fsync")
        assert would_crash("journal.append.post-fsync") is False
        crash_here("journal.append.post-fsync")
        assert would_crash("journal.append.post-fsync") is True
        assert would_crash("journal.append.pre-fsync") is False

    def test_trace_records_reached_points_without_crashing(self, tmp_path):
        trace = tmp_path / "trace.log"
        trace_to(str(trace))
        crash_here("journal.append.pre-write")
        crash_here("journal.append.post-fsync")
        trace_to(None)
        assert trace.read_text().splitlines() == [
            "journal.append.pre-write",
            "journal.append.post-fsync",
        ]

    def test_trace_covers_the_durable_session_lifecycle(self, tmp_path):
        """One create + append + snapshot touches meta, journal, and
        snapshot points — proof the instrumentation is live, not dead
        table entries."""
        from repro.service.journal import SessionJournal

        trace = tmp_path / "trace.log"
        trace_to(str(trace))
        try:
            journal = SessionJournal.create(
                tmp_path / "sess", "sess", "fingerprint", {}
            )
            journal.append({"kind": "anonymize", "source": "a.cfg"})
            journal.write_snapshot({"salt_fingerprint": "fingerprint"})
            journal.close()
        finally:
            trace_to(None)
        reached = set(trace.read_text().splitlines())
        assert {
            "session.meta.tmp-written",
            "session.meta.renamed",
            "journal.append.pre-write",
            "journal.append.pre-fsync",
            "journal.append.post-fsync",
            "snapshot.tmp-written",
            "snapshot.renamed",
            "journal.rotate.pre-truncate",
            "journal.rotate.post-truncate",
        } <= reached
        # Trace mode must never tear anything.
        assert "journal.append.torn" not in reached

    def test_trace_covers_the_runner_write_discipline(self, tmp_path):
        from repro.core.runner import atomic_write_text

        trace = tmp_path / "trace.log"
        trace_to(str(trace))
        try:
            atomic_write_text(
                tmp_path / "out.anon", "text", crash_scope="runner.output"
            )
        finally:
            trace_to(None)
        assert trace.read_text().splitlines() == [
            "runner.output.tmp-written",
            "runner.output.renamed",
        ]


def _run_armed(point: str, tmp_path: Path) -> subprocess.CompletedProcess:
    """Run a minimal durable-journal workload with *point* armed."""
    script = (
        "from repro.service.journal import SessionJournal\n"
        "j = SessionJournal.create(r'{dir}', 's', 'fp', {{}})\n"
        "j.append({{'kind': 'anonymize', 'source': 'a.cfg'}})\n"
        "j.append({{'kind': 'anonymize', 'source': 'b.cfg'}})\n"
        "print('SURVIVED')\n"
    ).format(dir=str(tmp_path / "sess"))
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CRASH_POINT"] = point
    return subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )


class TestKillForReal:
    def test_armed_point_sigkills_the_process(self, tmp_path):
        result = _run_armed("journal.append.pre-fsync", tmp_path)
        assert result.returncode == -signal.SIGKILL
        assert "SURVIVED" not in result.stdout

    def test_nth_spec_survives_until_the_nth_hit(self, tmp_path):
        result = _run_armed("journal.append.pre-write:2", tmp_path)
        assert result.returncode == -signal.SIGKILL
        # The first append committed; the journal holds exactly one
        # record and recovery accepts it.
        from repro.service.journal import _scan_journal

        records, _, torn = _scan_journal(
            tmp_path / "sess" / "journal.jsonl"
        )
        assert len(records) == 1 and torn == 0

    def test_torn_point_leaves_a_discardable_half_record(self, tmp_path):
        result = _run_armed("journal.append.torn", tmp_path)
        assert result.returncode == -signal.SIGKILL
        from repro.service.journal import _scan_journal

        records, _, torn = _scan_journal(
            tmp_path / "sess" / "journal.jsonl"
        )
        assert records == [] and torn == 1


class TestChaosSchedule:
    def test_same_seed_same_schedule(self):
        kinds = ("journal-torn", "snapshot-eio")
        a = ChaosSchedule("seed-1", 0.3, kinds)
        b = ChaosSchedule("seed-1", 0.3, kinds)
        rolls_a = [a.roll("journal-torn", "f{}".format(i)) for i in range(200)]
        rolls_b = [b.roll("journal-torn", "f{}".format(i)) for i in range(200)]
        assert rolls_a == rolls_b
        assert any(rolls_a) and not all(rolls_a)
        assert a.injected == b.injected

    def test_different_seeds_differ(self):
        kinds = ("journal-torn",)
        sched1 = ChaosSchedule("seed-1", 0.3, kinds)
        sched2 = ChaosSchedule("seed-2", 0.3, kinds)
        seq1 = [sched1.roll("journal-torn", str(i)) for i in range(100)]
        seq2 = [sched2.roll("journal-torn", str(i)) for i in range(100)]
        assert seq1 != seq2

    def test_disabled_kind_burns_no_draw(self):
        enabled_only = ChaosSchedule("s", 0.5, ("journal-torn",))
        with_noise = ChaosSchedule("s", 0.5, ("journal-torn",))
        sequence = []
        for i in range(50):
            sequence.append(enabled_only.roll("journal-torn", str(i)))
        for i in range(50):
            # Interleave queries for a *disabled* kind: they must not
            # consume PRNG draws or the schedule would no longer be a
            # pure function of the enabled-kind query sequence.
            with_noise.roll("worker-exit", str(i))
            assert with_noise.roll("journal-torn", str(i)) == sequence[i]

    def test_plan_composes_chaos_with_fixed_specs(self):
        plan = FaultPlan.parse("journal-torn:a.cfg;chaos:s1:0.5:snapshot-eio")
        assert plan.chaos is not None
        assert plan.chaos.kinds == frozenset({"snapshot-eio"})
        assert "chaos:s1:0.5" in plan.describe()
        # The fixed spec still fires deterministically.
        assert plan.torn_append_once("a.cfg") is True
        assert plan.torn_append_once("a.cfg") is False

    def test_worker_hang_spec(self):
        plan = FaultPlan.parse("worker-hang:hang-me.cfg")
        assert plan.hang_worker_once("other.cfg") is False
        assert plan.hang_worker_once("hang-me.cfg") is True
        assert plan.hang_worker_once("hang-me.cfg") is False


class TestFaultPlanValidation:
    @pytest.mark.parametrize(
        "spec",
        [
            "chaos",  # no seed/rate
            "chaos:seed",  # no rate
            "chaos::0.5",  # empty seed
            "chaos:seed:zero",  # non-numeric rate
            "chaos:seed:0",  # rate out of range
            "chaos:seed:1.5",  # rate out of range
            "chaos:seed:0.5:rule",  # non-composable kind
            "chaos:a:0.5;chaos:b:0.5",  # duplicate chaos
            "journal-torn",  # missing target
            "bogus-kind:x",  # unknown kind
            "rule:r:zero",  # non-integer nth
            "rule:r:0",  # nth < 1
            ";;",  # no specs at all
        ],
    )
    def test_malformed_specs_raise_fault_plan_error(self, spec):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(spec)

    def test_parse_env_fault_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert parse_env_fault_plan() is None
        monkeypatch.setenv("REPRO_FAULT_PLAN", "chaos:s:0.2")
        plan = parse_env_fault_plan()
        assert plan is not None and plan.chaos is not None
        monkeypatch.setenv("REPRO_FAULT_PLAN", "chaos:s:nope")
        with pytest.raises(FaultPlanError):
            parse_env_fault_plan()


class TestBadPlanExitCodes:
    def test_serve_refuses_bad_plan_with_dedicated_exit_code(
        self, monkeypatch, capsys
    ):
        from repro.service.cli import serve_main

        monkeypatch.setenv("REPRO_FAULT_PLAN", "chaos:seed:not-a-rate")
        code = serve_main(["--port", "0"])
        assert code == EXIT_BAD_FAULT_PLAN
        err = capsys.readouterr().err
        assert "invalid REPRO_FAULT_PLAN" in err
        assert "Traceback" not in err

    def test_batch_cli_refuses_bad_plan_with_dedicated_exit_code(
        self, monkeypatch, capsys, tmp_path
    ):
        from repro.cli import main

        config = tmp_path / "a.cfg"
        config.write_text("hostname cr1.lax.foo.com\n")
        monkeypatch.setenv("REPRO_FAULT_PLAN", "definitely:not;;valid::")
        code = main(
            [str(config), "--salt", "s", "--out-dir", str(tmp_path / "out")]
        )
        assert code == EXIT_BAD_FAULT_PLAN
        err = capsys.readouterr().err
        assert "invalid REPRO_FAULT_PLAN" in err
        assert "Traceback" not in err


class TestWorkerStatusBoard:
    def test_slots_are_independent(self):
        board = WorkerStatusBoard(3)
        try:
            board.beat(0, now=10.0)
            board.record_respawn(1)
            board.record_hung(2)
            board.record_hung(2)
            assert board.heartbeat(0) == 10.0
            assert board.heartbeat(1) == 0.0
            assert board.respawns(0) == 0
            assert board.respawns(1) == 1
            assert board.hung(2) == 2
            assert board.hung(0) == 0
        finally:
            board.close()

    def test_heartbeat_age_sentinel(self):
        board = WorkerStatusBoard(1)
        try:
            # Never beaten (or reset after a kill): age is unknowable,
            # not huge — the watchdog must skip, not re-kill.
            assert board.heartbeat_age(0) is None
            board.beat(0)
            age = board.heartbeat_age(0)
            assert age is not None and age < 5.0
            board.beat(0, now=0.0)
            assert board.heartbeat_age(0) is None
        finally:
            board.close()

    def test_bounds_checked(self):
        board = WorkerStatusBoard(2)
        try:
            with pytest.raises(IndexError):
                board.beat(2)
            with pytest.raises(IndexError):
                board.respawns(-1)
        finally:
            board.close()
        with pytest.raises(ValueError):
            WorkerStatusBoard(0)

    def test_slot_layout_is_stable(self):
        # The supervisor and every worker generation share the mmap by
        # inheritance; the layout is a cross-process ABI.
        assert SLOT_BYTES == 24
