"""Shared fixtures: the Figure-1 config, small generated networks, and
anonymizers with fixed salts."""

from __future__ import annotations

import pytest

from repro.core import Anonymizer, AnonymizerConfig
from repro.iosgen import NetworkSpec, generate_network

#: A faithful rendition of the paper's Figure 1 (excerpts of a router
#: configuration file), used by the E1 checks.
FIGURE1 = """\
hostname cr1.lax.foo.com
!
banner motd ^C
FooNet contact xxx@foo.com
Access strictly prohibited!
^C
!
interface Ethernet0
 description Foo Corp's LAX Main St offices
 ip address 1.1.1.1 255.255.255.0
!
interface Serial1/0.5 point-to-point
 description cr1.sfo-serial3/0.8
 ip address 1.2.3.4 255.255.255.252
!
router bgp 1111
 redistribute rip
 neighbor 2.3.4.5 remote-as 701
 neighbor 2.3.4.5 route-map UUNET-import in
 neighbor 2.3.4.5 route-map UUNET-export out
!
route-map UUNET-import deny 10
 match as-path 50
 match community 100
route-map UUNET-import permit 20
route-map UUNET-export permit 10
 match ip address 143
 set community 701:7100
!
access-list 143 permit ip 1.1.1.0 0.0.0.255 2.0.0.0 0.255.255.255
ip community-list 100 permit 701:7[1-5]..
ip as-path access-list 50 permit (_1239_|_70[2-5]_)
!
router rip
 network 1.0.0.0
"""


@pytest.fixture
def figure1_text() -> str:
    return FIGURE1


@pytest.fixture
def anonymizer() -> Anonymizer:
    return Anonymizer(salt=b"test-owner-secret")


@pytest.fixture(scope="session")
def small_enterprise():
    spec = NetworkSpec(
        name="t-ent",
        kind="enterprise",
        seed=101,
        num_pops=3,
        igp="ospf",
        lans_per_access=(2, 5),
        static_burst=(0, 4),
        use_community_regexps=True,
        dialer_backup=True,
        comment_density=0.3,
    )
    return generate_network(spec)


@pytest.fixture(scope="session")
def small_backbone():
    spec = NetworkSpec(
        name="t-bb",
        kind="backbone",
        seed=202,
        num_pops=4,
        aggs_per_pop=2,
        access_per_pop=2,
        igp="ospf",
        local_asn=7132,
        num_ebgp_peers=3,
        lans_per_access=(2, 5),
        static_burst=(2, 8),
        use_aspath_range_regexps=True,
        use_alternation_regexps=True,
        use_rfc1918=False,
        public_block=(0x06000000, 8),
    )
    return generate_network(spec)


@pytest.fixture(scope="session")
def session_enterprise():
    """A module-expensive network shared across test files (read-only)."""
    spec = NetworkSpec(
        name="s-ent",
        kind="enterprise",
        seed=77,
        num_pops=4,
        igp="rip",
        lans_per_access=(2, 6),
        static_burst=(0, 6),
    )
    return generate_network(spec)
