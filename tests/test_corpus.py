"""Tests for the corpus fan-out client (src/repro/service/corpus.py).

The headline invariant: ``submit --corpus`` fanned out across per-shard
sessions — with failovers, breaker trips, and interrupt/resume in the
middle — is byte-identical to the batch ``--jobs N`` pipeline over the
same corpus, because every per-shard session is frozen over the *full*
corpus under the same salt.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import Anonymizer, AnonymizerConfig
from repro.core.digests import digest_text
from repro.core.parallel import anonymize_files
from repro.core.runner import resolve_out_paths, salt_fingerprint
from repro.core.status import EXIT_OK, EXIT_PARTIAL_CORPUS
from repro.service.corpus import (
    CorpusAborted,
    CorpusRunner,
    ManifestError,
    ResumeManifest,
    ShardBreaker,
)
from repro.service.server import AnonymizationService

SALT = "corpus-test-secret"


def _corpus(figure1_text: str) -> dict:
    return {
        "siteA/cr1.cfg": figure1_text,
        "siteA/cr2.cfg": (
            "hostname cr2.lax.foo.com\n"
            "interface Loopback0\n"
            " ip address 1.2.3.4 255.255.255.255\n"
            "router bgp 1111\n"
            " neighbor 2.3.4.5 remote-as 701\n"
        ),
        "siteB/cr1.cfg": (
            "hostname edge.sfo.foo.com\n"
            "router bgp 701\n"
            " neighbor 1.2.3.4 remote-as 1111\n"
            "access-list 10 permit 1.1.1.0 0.0.0.255\n"
        ),
        "siteB/cr3.cfg": (
            "hostname cr3.sfo.foo.com\n"
            "interface Ethernet0\n"
            " ip address 10.20.30.1 255.255.255.0\n"
        ),
    }


def _batch_reference(configs: dict, jobs: int = 2) -> dict:
    anonymizer = Anonymizer(AnonymizerConfig(salt=SALT.encode()))
    anonymizer.freeze_mappings(configs)
    return anonymize_files(anonymizer, configs, jobs=jobs)


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestShardBreaker:
    def test_closed_allows_and_failures_below_threshold_stay_closed(self):
        clock = _Clock()
        breaker = ShardBreaker(threshold=3, cooldown=1.0, clock=clock)
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        clock = _Clock()
        breaker = ShardBreaker(threshold=3, cooldown=1.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        clock = _Clock()
        breaker = ShardBreaker(threshold=2, cooldown=1.0, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = _Clock()
        breaker = ShardBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 1.5
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else keeps waiting

    def test_probe_success_closes(self):
        clock = _Clock()
        breaker = ShardBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.now = 1.5
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_probe_failure_reopens_for_a_fresh_cooldown(self):
        clock = _Clock()
        breaker = ShardBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.now = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock.now = 2.0  # only 0.5s into the *new* cooldown
        assert not breaker.allow()
        clock.now = 2.6
        assert breaker.allow()


class TestResumeManifest:
    def _fingerprint(self) -> str:
        return salt_fingerprint(SALT.encode())

    def test_roundtrip_and_completed_digest_check(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = ResumeManifest(path, self._fingerprint(), ".anon")
        manifest.open_append(fresh=True)
        out = tmp_path / "a.cfg.anon"
        out.write_text("anonymized\n")
        manifest.record(
            "a.cfg", digest_text("anonymized\n"), str(out), "ok"
        )
        manifest.close()

        loaded = ResumeManifest.load(path, self._fingerprint(), ".anon")
        assert loaded.completed("a.cfg", out)
        # A hand-edited output must re-drive, not be trusted.
        out.write_text("tampered\n")
        assert not loaded.completed("a.cfg", out)
        out.unlink()
        assert not loaded.completed("a.cfg", out)

    def test_quarantined_entries_are_not_completed(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = ResumeManifest(path, self._fingerprint(), ".anon")
        manifest.open_append(fresh=True)
        out = tmp_path / "q.cfg.anon"
        manifest.record("q.cfg", "", str(out), "quarantined")
        manifest.close()
        loaded = ResumeManifest.load(path, self._fingerprint(), ".anon")
        assert not loaded.completed("q.cfg", out)

    def test_torn_final_line_is_ignored_and_truncated_on_reopen(
        self, tmp_path
    ):
        path = tmp_path / "manifest.jsonl"
        manifest = ResumeManifest(path, self._fingerprint(), ".anon")
        manifest.open_append(fresh=True)
        out = tmp_path / "a.cfg.anon"
        out.write_text("done\n")
        manifest.record("a.cfg", digest_text("done\n"), str(out), "ok")
        manifest.close()
        with open(path, "ab") as handle:
            handle.write(b'{"name": "b.cfg", "dig')  # torn mid-append

        loaded = ResumeManifest.load(path, self._fingerprint(), ".anon")
        assert loaded.completed("a.cfg", out)
        assert "b.cfg" not in loaded.entries
        loaded.open_append(fresh=False)
        out_b = tmp_path / "b.cfg.anon"
        out_b.write_text("later\n")
        loaded.record("b.cfg", digest_text("later\n"), str(out_b), "ok")
        loaded.close()
        reloaded = ResumeManifest.load(path, self._fingerprint(), ".anon")
        assert reloaded.completed("a.cfg", out)
        assert reloaded.completed("b.cfg", out_b)

    def test_wrong_salt_fingerprint_refuses_resume(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = ResumeManifest(path, self._fingerprint(), ".anon")
        manifest.open_append(fresh=True)
        manifest.close()
        other = salt_fingerprint(b"some-other-salt")
        with pytest.raises(ManifestError, match="different salt"):
            ResumeManifest.load(path, other, ".anon")

    def test_wrong_suffix_refuses_resume(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = ResumeManifest(path, self._fingerprint(), ".anon")
        manifest.open_append(fresh=True)
        manifest.close()
        with pytest.raises(ManifestError, match="--suffix"):
            ResumeManifest.load(path, self._fingerprint(), ".masked")

    def test_garbage_header_refuses_resume(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        path.write_bytes(b"not json at all\n")
        with pytest.raises(ManifestError, match="header"):
            ResumeManifest.load(path, self._fingerprint(), ".anon")

    def test_empty_manifest_refuses_resume(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        path.write_bytes(b"")
        with pytest.raises(ManifestError, match="empty"):
            ResumeManifest.load(path, self._fingerprint(), ".anon")


@pytest.fixture(scope="module")
def shard_services():
    """Two independent in-process services standing in for two shards."""
    services = []
    for _ in range(2):
        svc = AnonymizationService(port=0, workers=2, queue_limit=16)
        svc.start_background()
        services.append(svc)
    yield services
    for svc in services:
        svc.shutdown()


def _runner(configs, out_dir, shard_urls, **overrides):
    kwargs = dict(
        base_url=shard_urls[0],
        unix_socket=None,
        salt=SALT,
        configs=configs,
        out_paths=resolve_out_paths(configs, out_dir, ".anon"),
        jobs=3,
        manifest_path=Path(out_dir) / "manifest.jsonl",
        retries=2,
        retry_base_delay=0.01,
        breaker_cooldown=0.05,
        sleep=lambda _s: None,
        log=lambda _m: None,
    )
    kwargs.update(overrides)
    runner = CorpusRunner(**kwargs)
    runner._discover_shards = lambda: list(shard_urls)
    return runner


def _read_outputs(out_paths) -> dict:
    return {
        name: Path(path).read_text(encoding="utf-8")
        for name, path in out_paths.items()
        if Path(path).exists()
    }


class TestCorpusFanOut:
    def test_fanout_matches_batch_pipeline(
        self, shard_services, tmp_path, figure1_text
    ):
        configs = _corpus(figure1_text)
        reference = _batch_reference(configs)
        urls = [svc.base_url for svc in shard_services]
        runner = _runner(configs, tmp_path / "out", urls)
        try:
            code = runner.run()
        finally:
            runner.close()
        report = runner.report
        assert report["files_ok"] == len(configs)
        assert report["files_quarantined"] == []
        assert code in (EXIT_OK, 3)  # flags depend on the corpus
        outputs = _read_outputs(runner.out_paths)
        assert set(outputs) == set(configs)
        for name in configs:
            assert outputs[name] == reference[name]

    def test_failover_from_dead_shard_completes_everything(
        self, shard_services, tmp_path, figure1_text
    ):
        configs = _corpus(figure1_text)
        reference = _batch_reference(configs)
        live = shard_services[0].base_url
        # Shard 1 is a dead address: anything routed there fails over.
        runner = _runner(
            configs,
            tmp_path / "out",
            [live, "http://127.0.0.1:9"],
            retries=1,
            breaker_threshold=1,
        )
        # Sessions cannot be created on the dead shard either, so open
        # them both against the live one (the sessions are exchangeable:
        # same salt, same full-corpus freeze).
        runner._discover_shards = lambda: [live, live]
        real_open = runner._open_sessions

        def open_then_redirect(urls):
            real_open(urls)
            # Repoint shard 1's transport at the dead address after its
            # session exists, so only the anonymize path fails.
            from repro.service.client import RetryingServiceClient

            dead = RetryingServiceClient(
                base_url="http://127.0.0.1:9",
                salt=SALT,
                policy=runner.clients[1].policy,
                sleep=lambda _s: None,
            )
            runner.clients[1].close()
            runner.clients[1] = dead

        runner._open_sessions = open_then_redirect
        try:
            code = runner.run()
        finally:
            runner.close()
        report = runner.report
        assert report["files_quarantined"] == []
        assert report["files_ok"] == len(configs)
        assert report["failovers_total"] > 0
        assert report["breakers"]["1"] in ("open", "half-open")
        outputs = _read_outputs(runner.out_paths)
        for name in configs:
            assert outputs[name] == reference[name]
        assert code in (EXIT_OK, 3)

    def test_expired_deadline_quarantines_and_exits_partial(
        self, shard_services, tmp_path, figure1_text
    ):
        configs = _corpus(figure1_text)
        urls = [svc.base_url for svc in shard_services]
        runner = _runner(configs, tmp_path / "out", urls, deadline=0.0)
        try:
            code = runner.run()
        finally:
            runner.close()
        assert code == EXIT_PARTIAL_CORPUS
        report = runner.report
        assert sorted(report["files_quarantined"]) == sorted(configs)
        assert report["files_ok"] == 0

    def test_resume_skips_completed_files(
        self, shard_services, tmp_path, figure1_text
    ):
        configs = _corpus(figure1_text)
        urls = [svc.base_url for svc in shard_services]
        out_dir = tmp_path / "out"
        first = _runner(configs, out_dir, urls)
        try:
            first.run()
        finally:
            first.close()
        before = _read_outputs(first.out_paths)

        second = _runner(configs, out_dir, urls, resume=True)
        try:
            code = second.run()
        finally:
            second.close()
        report = second.report
        assert report["files_skipped_resume"] == len(configs)
        assert report["files_driven"] == 0
        assert _read_outputs(second.out_paths) == before
        assert code in (EXIT_OK, 3)

    def test_abort_seam_then_resume_is_byte_identical(
        self, shard_services, tmp_path, figure1_text, monkeypatch
    ):
        configs = _corpus(figure1_text)
        reference = _batch_reference(configs)
        urls = [svc.base_url for svc in shard_services]
        out_dir = tmp_path / "out"

        monkeypatch.setenv("REPRO_CORPUS_ABORT_AFTER", "1")
        first = _runner(configs, out_dir, urls, jobs=1)
        with pytest.raises(CorpusAborted):
            try:
                first.run()
            finally:
                first.close()
        manifest = ResumeManifest.load(
            Path(out_dir) / "manifest.jsonl",
            salt_fingerprint(SALT.encode()),
            ".anon",
        )
        assert 1 <= len(manifest.entries) < len(configs)

        monkeypatch.delenv("REPRO_CORPUS_ABORT_AFTER")
        second = _runner(configs, out_dir, urls, resume=True)
        try:
            code = second.run()
        finally:
            second.close()
        report = second.report
        assert report["files_skipped_resume"] >= 1
        assert report["files_quarantined"] == []
        outputs = _read_outputs(second.out_paths)
        for name in configs:
            assert outputs[name] == reference[name]
        assert code in (EXIT_OK, 3)

    def test_resume_redrives_deleted_output(
        self, shard_services, tmp_path, figure1_text
    ):
        configs = _corpus(figure1_text)
        urls = [svc.base_url for svc in shard_services]
        out_dir = tmp_path / "out"
        first = _runner(configs, out_dir, urls)
        try:
            first.run()
        finally:
            first.close()
        victim = sorted(configs)[0]
        before = Path(first.out_paths[victim]).read_text(encoding="utf-8")
        Path(first.out_paths[victim]).unlink()

        second = _runner(configs, out_dir, urls, resume=True)
        try:
            second.run()
        finally:
            second.close()
        assert second.report["files_driven"] == 1
        assert (
            Path(second.out_paths[victim]).read_text(encoding="utf-8")
            == before
        )


class TestDiskDegradedCorpus:
    def test_507_park_heals_via_client_retry(
        self, tmp_path, figure1_text, monkeypatch
    ):
        """ENOSPC on one shard's journal answers 507; the per-shard
        client's retry is the half-open probe and the corpus completes
        byte-identically, with the failover surfaced in the report."""
        configs = _corpus(figure1_text)
        reference = _batch_reference(configs)
        victim = sorted(configs)[0]
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", "journal-enospc:{}".format(victim)
        )
        services = []
        try:
            for i in range(2):
                svc = AnonymizationService(
                    port=0,
                    workers=2,
                    queue_limit=16,
                    state_dir=str(tmp_path / "state-{}".format(i)),
                )
                svc.start_background()
                services.append(svc)
            urls = [svc.base_url for svc in services]
            runner = _runner(configs, tmp_path / "out", urls, retries=3)
            try:
                code = runner.run()
            finally:
                runner.close()
            report = runner.report
            assert report["files_quarantined"] == []
            assert report["failovers_total"] > 0
            outputs = _read_outputs(runner.out_paths)
            for name in configs:
                assert outputs[name] == reference[name]
            assert code in (EXIT_OK, 3)
            degraded = sum(
                svc.metrics.snapshot()["counters"][
                    "repro_disk_degraded_responses_total"
                ][1]
                for svc in services
            )
            assert degraded >= 1
        finally:
            for svc in services:
                svc.shutdown()

    def test_corpus_headers_feed_server_counters(
        self, shard_services, tmp_path, figure1_text
    ):
        configs = _corpus(figure1_text)
        urls = [svc.base_url for svc in shard_services]
        runner = _runner(configs, tmp_path / "out", urls)
        try:
            runner.run()
        finally:
            runner.close()
        tagged = sum(
            svc.metrics.snapshot()["counters"]["repro_corpus_files_total"][1]
            for svc in shard_services
        )
        assert tagged >= len(configs)
