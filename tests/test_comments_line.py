"""Tests for comment stripping (R3-R5) and the SegmentedLine machinery."""

import re

import pytest

from repro.core.comments import CommentStripper
from repro.core.line import SegmentedLine


class TestCommentStripper:
    def _strip(self, text):
        stripper = CommentStripper()
        return stripper.strip(text.splitlines())

    def test_description_lines_removed(self):
        lines, stats = self._strip("interface Ethernet0\n description secret site\n ip address 1.1.1.1 255.255.255.0")
        assert all("description" not in line for line in lines)
        assert stats.comment_words == 2
        assert stats.comment_lines == 1

    def test_remark_lines_removed(self):
        lines, stats = self._strip("access-list 10 remark allow foo corp\naccess-list 10 permit any")
        assert len(lines) == 1
        assert "remark" not in lines[0]

    def test_bang_comment_text_removed_separator_kept(self):
        lines, stats = self._strip("! Core router for LAX\n!\ninterface Ethernet0")
        assert lines[0] == "!"
        assert lines[1] == "!"
        assert stats.comment_words == 4
        assert stats.comment_lines == 1  # the bare `!` is not a comment

    def test_multiline_banner_removed(self):
        text = "banner motd ^C\nWelcome to FooCorp\nGo away\n^C\nhostname r1"
        lines, stats = self._strip(text)
        assert lines == ["hostname r1"]
        assert stats.banners == 1
        assert stats.comment_words >= 5

    def test_single_line_banner(self):
        lines, stats = self._strip("banner motd #Unauthorized access prohibited#\nhostname r1")
        assert lines == ["hostname r1"]
        assert stats.banners == 1

    def test_hash_delimiter_banner(self):
        text = "banner login #\nproperty of initech\n#\nhostname r1"
        lines, stats = self._strip(text)
        assert lines == ["hostname r1"]

    def test_unterminated_banner_flagged(self):
        text = "banner motd ^C\nno closing delimiter here"
        lines, stats = self._strip(text)
        assert lines == []
        assert stats.flagged

    def test_total_words_counts_banner_body(self):
        text = "banner motd ^C\none two three\n^C"
        _, stats = self._strip(text)
        assert stats.total_words >= 6  # 3 banner-line words + 3 body words

    def test_word_fraction_accounting(self):
        text = "interface Ethernet0\n description a b c d\n ip address 1.1.1.1 255.255.255.0"
        _, stats = self._strip(text)
        assert stats.comment_words == 4
        assert stats.total_words == 2 + 5 + 4


class TestSegmentedLine:
    def test_render_round_trip(self):
        line = SegmentedLine(" ip address 1.1.1.1 255.255.255.0")
        assert line.render() == " ip address 1.1.1.1 255.255.255.0"

    def test_apply_rule_freezes_replacement(self):
        line = SegmentedLine("router bgp 1111")
        pattern = re.compile(r"\d+")
        hits = line.apply_rule(pattern, lambda m: [("9999", True)])
        assert hits == 1
        assert line.render() == "router bgp 9999"
        # A second rule matching digits must not touch the frozen 9999.
        hits2 = line.apply_rule(pattern, lambda m: [("0000", True)])
        assert hits2 == 0
        assert line.render() == "router bgp 9999"

    def test_handler_can_decline(self):
        line = SegmentedLine("value 42 and 43")
        pattern = re.compile(r"\d+")
        hits = line.apply_rule(
            pattern, lambda m: [("XX", True)] if m.group(0) == "43" else None
        )
        assert hits == 1
        assert line.render() == "value 42 and XX"

    def test_multiple_matches_one_segment(self):
        line = SegmentedLine("1 2 3")
        hits = line.apply_rule(re.compile(r"\d"), lambda m: [("N", True)])
        assert hits == 3
        assert line.render() == "N N N"

    def test_live_pieces_remain_rewritable(self):
        line = SegmentedLine("neighbor peerX remote-as 701")
        pattern = re.compile(r"remote-as (\d+)")
        line.apply_rule(
            pattern, lambda m: [("remote-as ", False), ("N", True)]
        )
        # 'remote-as ' is still live, so another rule could see it.
        assert "remote-as" in line.live_text()
        assert "N" not in line.live_text()

    def test_map_live_tokens_preserves_whitespace(self):
        line = SegmentedLine("  foo   bar ")
        line.map_live_tokens(str.upper)
        assert line.render() == "  FOO   BAR "

    def test_map_live_tokens_skips_frozen(self):
        line = SegmentedLine("keep SECRET")
        line.apply_rule(re.compile("SECRET"), lambda m: [("hidden", True)])
        line.map_live_tokens(str.upper)
        assert line.render() == "KEEP hidden"

    def test_empty_line(self):
        line = SegmentedLine("")
        line.map_live_tokens(str.upper)
        assert line.render() == ""
