"""Tests for the leak scanner, iterative closure, and fingerprint attacks."""

import pytest

from repro.attacks import (
    fingerprint_uniqueness,
    iterative_closure,
    peering_fingerprint,
    reidentification_experiment,
    scan_for_leaks,
    subnet_fingerprint,
)
from repro.attacks.fingerprint import fingerprint_distance
from repro.attacks.textual import structured_asn_audit
from repro.configmodel import ParsedNetwork
from repro.core import Anonymizer, AnonymizerConfig


class TestLeakScanner:
    def test_clean_output_has_no_leaks(self, small_enterprise):
        anon = Anonymizer(salt=b"scan-salt")
        result = anon.anonymize_network(dict(small_enterprise.configs))
        leaks = scan_for_leaks(
            result.configs,
            seen_asns=anon.report.seen_asns,
            hashed_tokens=anon.hasher.hashed_inputs.keys(),
            public_ips=anon.report.seen_public_ips,
        )
        assert leaks == []

    def test_detects_planted_asn(self):
        leaks = scan_for_leaks(
            {"r1": "router bgp 7018\n"}, seen_asns={7018}
        )
        assert len(leaks) == 1
        assert leaks[0].kind == "asn"
        assert leaks[0].value == "7018"

    def test_no_false_positive_inside_dotted_quad(self):
        leaks = scan_for_leaks({"r1": "logging 10.701.2.3\n"}, seen_asns={701})
        assert leaks == []

    def test_no_false_positive_inside_subinterface(self):
        leaks = scan_for_leaks({"r1": "interface Serial0/0.701\n"}, seen_asns={701})
        assert leaks == []

    def test_detects_leaked_string(self):
        leaks = scan_for_leaks(
            {"r1": "route-map UUNET-import permit 10\n"},
            hashed_tokens=["UUNET"],
        )
        assert [l.kind for l in leaks] == ["string"]

    def test_detects_leaked_public_ip(self):
        from repro.netutil import ip_to_int

        leaks = scan_for_leaks(
            {"r1": "ntp server 12.1.2.3\n"}, public_ips={ip_to_int("12.1.2.3")}
        )
        assert [l.kind for l in leaks] == ["ip"]

    def test_short_tokens_skipped(self):
        # 1-2 char tokens would flood the scan with false hits.
        leaks = scan_for_leaks({"r1": "ip x\n"}, hashed_tokens=["x"])
        assert leaks == []


class TestStructuredAudit:
    def test_finds_unmapped_remote_as(self):
        leaks = structured_asn_audit(
            {"r1": "router bgp 65001\n neighbor 1.1.1.1 remote-as 701\n"},
            original_public_asns={701},
        )
        assert any(l.value == "701" for l in leaks)

    def test_finds_asn_accepted_by_regexp(self):
        leaks = structured_asn_audit(
            {"r1": "ip as-path access-list 5 permit _70[0-5]_\n"},
            original_public_asns={703},
        )
        assert any(l.line_text == "as-path regexp accepts it" for l in leaks)

    def test_clean_after_full_anonymization(self, small_backbone):
        anon = Anonymizer(salt=b"audit-salt")
        result = anon.anonymize_network(dict(small_backbone.configs))
        leaks = structured_asn_audit(result.configs, anon.report.seen_asns)
        assert leaks == []


class TestIterativeClosure:
    def test_converges_under_five_iterations(self, small_backbone):
        history = iterative_closure(
            dict(small_backbone.configs), b"closure-salt", initial_rules=("R10",)
        )
        assert history[-1].leaks_found == 0
        assert len(history) < 5  # the paper's bound

    def test_first_iteration_finds_leaks(self, small_backbone):
        history = iterative_closure(
            dict(small_backbone.configs), b"closure-salt-2", initial_rules=("R10",)
        )
        assert history[0].leaks_found > 0
        assert history[0].rules_added

    def test_full_rules_need_no_iteration(self, small_enterprise):
        history = iterative_closure(
            dict(small_enterprise.configs),
            b"closure-salt-3",
            initial_rules=tuple("R{}".format(n) for n in range(10, 22)),
        )
        assert len(history) == 1
        assert history[0].leaks_found == 0


class TestFingerprints:
    @pytest.fixture(scope="class")
    def pre_post(self, small_backbone):
        anon = Anonymizer(salt=b"fp-salt")
        result = anon.anonymize_network(dict(small_backbone.configs))
        return (
            ParsedNetwork.from_configs(small_backbone.configs),
            ParsedNetwork.from_configs(result.configs),
        )

    def test_subnet_fingerprint_survives_anonymization(self, pre_post):
        """The paper's §6.2 observation: structure preservation keeps the
        subnet-size histogram identical — that is the attack surface."""
        pre, post = pre_post
        assert subnet_fingerprint(pre) == subnet_fingerprint(post)

    def test_peering_fingerprint_survives_anonymization(self, pre_post):
        pre, post = pre_post
        assert peering_fingerprint(pre) == peering_fingerprint(post)

    def test_distance_zero_iff_equal(self, pre_post):
        pre, post = pre_post
        assert fingerprint_distance(subnet_fingerprint(pre), subnet_fingerprint(post)) == 0
        other = ((24, 99),)
        assert fingerprint_distance(subnet_fingerprint(pre), other) > 0

    def test_uniqueness_math(self):
        fps = [((24, 1),), ((24, 1),), ((30, 2),)]
        report = fingerprint_uniqueness(fps)
        assert report.total == 3
        assert report.unique == 1
        assert report.largest_collision_group == 2
        assert 0 < report.entropy_bits < 1.6

    def test_reidentification_on_distinct_networks(self):
        from repro.iosgen import NetworkSpec, generate_network

        nets = {
            "n{}".format(i): generate_network(
                NetworkSpec(name="n{}".format(i), seed=400 + i, num_pops=2 + i)
            )
            for i in range(3)
        }
        pre = {k: ParsedNetwork.from_configs(v.configs) for k, v in nets.items()}
        post = {}
        for key, net in nets.items():
            anon = Anonymizer(salt=key.encode())
            post[key] = ParsedNetwork.from_configs(
                anon.anonymize_network(dict(net.configs)).configs
            )
        result = reidentification_experiment(pre, post)
        # Distinct sizes -> distinct fingerprints -> full re-identification:
        # exactly the risk the paper warns about.
        assert result.attempted == 3
        assert result.correct == 3


class TestProbingSimulation:
    from repro.iosgen import NetworkSpec

    def _network(self, seed=600):
        from repro.iosgen import NetworkSpec, generate_network

        return generate_network(
            NetworkSpec(name="probe", seed=seed, num_pops=2, lans_per_access=(2, 4))
        )

    def test_responses_within_plan_subnets(self):
        from repro.attacks.probing import simulate_responses

        network = self._network()
        responders = simulate_responses(network, loss_rate=0.0)
        assert responders
        spans = []
        for record in network.plan.subnets:
            size = 1 << (32 - record.prefix_len)
            spans.append((record.address, record.address + size))
        for address in list(responders)[:200]:
            assert any(low <= address < high for low, high in spans)

    def test_loss_rate_monotone(self):
        from repro.attacks.probing import simulate_responses

        network = self._network()
        none_lost = simulate_responses(network, loss_rate=0.0)
        half_lost = simulate_responses(network, loss_rate=0.5)
        assert len(half_lost) < len(none_lost)

    def test_estimate_subnets_isolated_lan(self):
        from repro.attacks.probing import estimate_subnets

        # A /24 with hosts .1-.80 clustered low, far from anything else.
        responders = [0x0A010100 + i for i in range(1, 81)]
        estimates = estimate_subnets(responders)
        assert len(estimates) == 1
        base, prefix_len = estimates[0]
        assert base == 0x0A010100
        assert prefix_len in (25, 26)  # span-derived (80 hosts -> /25)

    def test_estimate_handles_empty(self):
        from repro.attacks.probing import estimate_subnets

        assert estimate_subnets([]) == []

    def test_probed_fingerprint_differs_from_exact(self):
        from repro.attacks.probing import probed_fingerprint
        from repro.configmodel import ParsedNetwork

        network = self._network()
        exact = subnet_fingerprint(ParsedNetwork.from_configs(network.configs))
        probed = probed_fingerprint(network, loss_rate=0.1)
        assert probed  # some estimate produced
        assert probed != exact  # estimation error is the point

    def test_noisy_reidentification_perfect_with_exact_inputs(self):
        from repro.attacks.probing import noisy_reidentification

        candidates = {"a": ((24, 3),), "b": ((24, 5), (30, 2))}
        correct, attempted = noisy_reidentification(candidates, dict(candidates))
        assert (correct, attempted) == (2, 2)


class TestEntropyFeatures:
    def test_feature_entropy_bounds(self):
        from repro.attacks.fingerprint import feature_entropy

        assert feature_entropy(["a", "a", "a", "a"]) == 0.0
        assert abs(feature_entropy(["a", "b", "c", "d"]) - 2.0) < 1e-9

    def test_combined_at_least_each_part(self, small_backbone, small_enterprise):
        from repro.attacks.fingerprint import (
            combined_fingerprint,
            feature_entropy,
            peering_fingerprint,
            subnet_fingerprint,
        )

        networks = [
            ParsedNetwork.from_configs(small_backbone.configs),
            ParsedNetwork.from_configs(small_enterprise.configs),
        ]
        combined = feature_entropy([combined_fingerprint(n) for n in networks])
        for fn in (subnet_fingerprint, peering_fingerprint):
            assert combined >= feature_entropy([fn(n) for n in networks]) - 1e-9

    def test_interface_mix_stable_pre_post(self, small_enterprise):
        from repro.attacks.fingerprint import interface_mix_fingerprint

        anon = Anonymizer(salt=b"mix")
        result = anon.anonymize_network(dict(small_enterprise.configs))
        pre = interface_mix_fingerprint(ParsedNetwork.from_configs(small_enterprise.configs))
        post = interface_mix_fingerprint(ParsedNetwork.from_configs(result.configs))
        assert pre == post


class TestScannerInternals:
    def test_longest_value_wins(self):
        # Alternation must prefer the longest literal at a position, so a
        # leak of "701" is reported as 701, not its prefix "70".
        leaks = scan_for_leaks({"r": "router bgp 7018\n"}, seen_asns={70, 701, 7018})
        assert [l.value for l in leaks] == ["7018"]

    def test_multiple_occurrences_one_line(self):
        leaks = scan_for_leaks(
            {"r": "bgp confederation peers 701 701 1239\n"},
            seen_asns={701, 1239},
        )
        values = sorted(l.value for l in leaks)
        assert values == ["1239", "701", "701"]

    def test_empty_families_no_crash(self):
        assert scan_for_leaks({"r": "anything\n"}) == []

    def test_line_numbers_reported(self):
        leaks = scan_for_leaks(
            {"r": "!\n!\nrouter bgp 701\n"}, seen_asns={701}
        )
        assert leaks[0].line_number == 3
