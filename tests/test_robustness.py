"""Tests for the robustness analyses — including the key demonstration
that they produce IDENTICAL results on anonymized data."""

import pytest

from repro.configmodel import ParsedNetwork
from repro.core import Anonymizer
from repro.validation.robustness import (
    ospf_area_exposure,
    robustness_report,
    single_router_failures,
    topology_graph,
)

TRIANGLE = {
    "a": "hostname a\ninterface E0\n ip address 10.0.12.1 255.255.255.252\n"
         "interface E1\n ip address 10.0.13.1 255.255.255.252\n",
    "b": "hostname b\ninterface E0\n ip address 10.0.12.2 255.255.255.252\n"
         "interface E1\n ip address 10.0.23.1 255.255.255.252\n",
    "c": "hostname c\ninterface E0\n ip address 10.0.13.2 255.255.255.252\n"
         "interface E1\n ip address 10.0.23.2 255.255.255.252\n",
}

CHAIN = {
    "a": "hostname a\ninterface E0\n ip address 10.0.12.1 255.255.255.252\n",
    "b": "hostname b\ninterface E0\n ip address 10.0.12.2 255.255.255.252\n"
         "interface E1\n ip address 10.0.23.1 255.255.255.252\n"
         "router bgp 65001\n neighbor 9.9.9.9 remote-as 701\n",
    "c": "hostname c\ninterface E0\n ip address 10.0.23.2 255.255.255.252\n",
}


class TestRobustnessReport:
    def test_triangle_has_no_spof(self):
        report = robustness_report(ParsedNetwork.from_configs(TRIANGLE))
        assert report.connected
        assert report.articulation_points == 0
        assert report.bridge_links == 0
        assert report.min_degree == 2

    def test_chain_has_spof(self):
        report = robustness_report(ParsedNetwork.from_configs(CHAIN))
        assert report.connected
        assert report.articulation_points == 1  # router b
        assert report.bridge_links == 2
        assert report.singly_attached_routers == 2

    def test_failure_impacts_ranked(self):
        impacts = single_router_failures(ParsedNetwork.from_configs(CHAIN))
        assert impacts
        assert impacts[0].router == "b"
        assert impacts[0].disconnected_routers == 1
        assert not any(i.router in ("a", "c") for i in impacts)

    def test_bgp_speaker_isolation_detected(self):
        # Failing 'b' removes the only BGP speaker itself; build a chain
        # where the speaker is at the end instead.
        chain = dict(CHAIN)
        chain["c"] += "router bgp 65001\n neighbor 8.8.8.8 remote-as 701\n"
        impacts = single_router_failures(ParsedNetwork.from_configs(chain))
        assert any(i.isolates_bgp_speaker for i in impacts)

    def test_empty_network(self):
        report = robustness_report(ParsedNetwork.from_configs({}))
        assert report.num_routers == 0
        assert not report.connected


class TestAnonymizationInvariance:
    """The paper's value proposition: the analyses give the same answers
    on anonymized data."""

    def test_reports_identical_pre_post(self, small_backbone):
        anon = Anonymizer(salt=b"robust")
        result = anon.anonymize_network(dict(small_backbone.configs))
        pre = ParsedNetwork.from_configs(small_backbone.configs)
        post = ParsedNetwork.from_configs(result.configs)
        pre_report = robustness_report(pre)
        post_report = robustness_report(post)
        assert pre_report == post_report

    def test_failure_impact_shape_identical(self, small_backbone):
        anon = Anonymizer(salt=b"robust2")
        result = anon.anonymize_network(dict(small_backbone.configs))
        pre = ParsedNetwork.from_configs(small_backbone.configs)
        post = ParsedNetwork.from_configs(result.configs)
        pre_shape = sorted(
            (i.disconnected_routers, i.isolates_bgp_speaker)
            for i in single_router_failures(pre)
        )
        post_shape = sorted(
            (i.disconnected_routers, i.isolates_bgp_speaker)
            for i in single_router_failures(post)
        )
        assert pre_shape == post_shape

    def test_area_exposure_identical(self, small_backbone):
        anon = Anonymizer(salt=b"robust3")
        result = anon.anonymize_network(dict(small_backbone.configs))
        pre = ospf_area_exposure(ParsedNetwork.from_configs(small_backbone.configs))
        post = ospf_area_exposure(ParsedNetwork.from_configs(result.configs))
        assert pre == post
        assert pre  # there are areas

    def test_topology_graph_isomorphic(self, small_enterprise):
        import networkx as nx

        anon = Anonymizer(salt=b"robust4")
        result = anon.anonymize_network(dict(small_enterprise.configs))
        pre_graph = topology_graph(ParsedNetwork.from_configs(small_enterprise.configs))
        post_graph = topology_graph(ParsedNetwork.from_configs(result.configs))
        assert nx.is_isomorphic(pre_graph, post_graph)
