"""Tests for the two validation suites (paper Section 5)."""

import pytest

from repro.configmodel import ParsedNetwork
from repro.core import Anonymizer
from repro.validation import (
    characteristics,
    compare_characteristics,
    compare_designs,
    design_signature,
    extract_design,
)


@pytest.fixture(scope="module")
def pre_post(session_enterprise):
    anon = Anonymizer(salt=b"validation-salt")
    result = anon.anonymize_network(dict(session_enterprise.configs))
    pre = ParsedNetwork.from_configs(session_enterprise.configs)
    post = ParsedNetwork.from_configs(result.configs)
    return pre, post


class TestSuite1:
    def test_passes_on_anonymized_network(self, pre_post):
        pre, post = pre_post
        result = compare_characteristics(pre, post)
        assert result.passed, result.summary()

    def test_paper_properties_present(self, pre_post):
        pre, _ = pre_post
        chars = characteristics(pre)
        # The paper's three named properties:
        assert "num_bgp_speakers" in chars
        assert "num_interfaces" in chars
        assert "subnet_size_histogram" in chars

    def test_detects_dropped_interface(self, pre_post, session_enterprise):
        pre, _ = pre_post
        tampered = dict(session_enterprise.configs)
        name = sorted(tampered)[0]
        tampered[name] = tampered[name].replace("interface Loopback0", "interface Loopback9")
        # Removing the Loopback0 address line entirely is a clearer tamper:
        lines = [
            l for l in tampered[name].splitlines() if "ip address" not in l or "255.255.255.255" not in l
        ]
        tampered[name] = "\n".join(lines)
        result = compare_characteristics(pre, ParsedNetwork.from_configs(tampered))
        assert not result.passed
        assert result.differences

    def test_detects_collapsed_subnets(self, pre_post, session_enterprise):
        """A NON-prefix-preserving 'anonymization' must fail the suite."""
        pre, _ = pre_post
        broken = {
            name: text.replace("255.255.255.252", "255.255.255.0")
            for name, text in session_enterprise.configs.items()
        }
        result = compare_characteristics(pre, ParsedNetwork.from_configs(broken))
        assert not result.passed


class TestSuite2:
    def test_passes_on_anonymized_network(self, pre_post):
        pre, post = pre_post
        result = compare_designs(pre, post)
        assert result.passed, result.summary()

    def test_design_has_instances(self, pre_post):
        pre, _ = pre_post
        design = extract_design(pre)
        assert design.instances
        protocols = {i.protocol for i in design.instances}
        assert "rip" in protocols

    def test_igp_forms_single_instance(self, pre_post):
        """All RIP processes share subnets, so they form one instance."""
        pre, _ = pre_post
        design = extract_design(pre)
        rip_instances = [i for i in design.instances if i.protocol == "rip"]
        covered = [i for i in rip_instances if i.covered_subnets]
        assert len(covered) == 1
        assert len(covered[0].routers) > 1

    def test_signature_is_stable(self, pre_post):
        pre, _ = pre_post
        a = design_signature(extract_design(pre))
        b = design_signature(extract_design(pre))
        assert a == b

    def test_detects_removed_redistribution(self):
        config = (
            "hostname r1\n"
            "interface Ethernet0\n ip address 10.1.1.1 255.255.255.0\n"
            "router rip\n network 10.0.0.0\n redistribute bgp\n"
            "router bgp 65001\n neighbor 9.9.9.9 remote-as 701\n"
        )
        pre = ParsedNetwork.from_configs({"r1": config})
        broken = ParsedNetwork.from_configs(
            {"r1": config.replace(" redistribute bgp\n", "")}
        )
        result = compare_designs(pre, broken)
        assert not result.passed

    def test_detects_broken_ibgp_mesh(self, pre_post, session_enterprise):
        pre, _ = pre_post
        broken = {
            name: "\n".join(
                line for line in text.splitlines() if "next-hop-self" in line or "remote-as" not in line
            )
            for name, text in session_enterprise.configs.items()
        }
        result = compare_designs(pre, ParsedNetwork.from_configs(broken))
        assert not result.passed


class TestBackboneValidation:
    def test_ospf_backbone_round_trip(self, small_backbone):
        anon = Anonymizer(salt=b"bb-salt")
        result = anon.anonymize_network(dict(small_backbone.configs))
        pre = ParsedNetwork.from_configs(small_backbone.configs)
        post = ParsedNetwork.from_configs(result.configs)
        assert compare_characteristics(pre, post).passed
        assert compare_designs(pre, post).passed

    def test_ospf_areas_counted(self, small_backbone):
        pre = ParsedNetwork.from_configs(small_backbone.configs)
        design = extract_design(pre)
        assert design.ospf_area_count >= 2

    def test_ebgp_shape_preserved(self, small_backbone):
        anon = Anonymizer(salt=b"bb-salt2")
        result = anon.anonymize_network(dict(small_backbone.configs))
        pre = ParsedNetwork.from_configs(small_backbone.configs)
        post = ParsedNetwork.from_configs(result.configs)
        assert sorted(pre.ebgp_sessions_per_router().values()) == sorted(
            post.ebgp_sessions_per_router().values()
        )


class TestSuite3:
    def test_passes_on_anonymized_network(self, pre_post):
        from repro.validation import compare_research_analyses

        pre, post = pre_post
        result = compare_research_analyses(pre, post)
        assert result.passed, result.summary()

    def test_detects_lost_link(self, pre_post, session_enterprise):
        from repro.validation import compare_research_analyses

        pre, _ = pre_post
        broken = dict(session_enterprise.configs)
        # Remove every /30 interface from one router: topology changes.
        name = sorted(broken)[0]
        lines = []
        skip_block = False
        for line in broken[name].splitlines():
            if line.startswith("interface ") :
                skip_block = False
            if "255.255.255.252" in line:
                continue
            lines.append(line)
        broken[name] = "\n".join(lines)
        result = compare_research_analyses(
            pre, ParsedNetwork.from_configs(broken)
        )
        assert not result.passed


class TestRouteReflection:
    @pytest.fixture(scope="class")
    def rr_network(self):
        from repro.iosgen import NetworkSpec, generate_network

        spec = NetworkSpec(
            name="rrnet", kind="backbone", seed=2, num_pops=3,
            num_ebgp_peers=4, use_route_reflectors=True,
            use_rfc1918=False, lans_per_access=(2, 4),
        )
        return generate_network(spec)

    def test_topology_classified(self, rr_network):
        design = extract_design(ParsedNetwork.from_configs(rr_network.configs))
        assert design.ibgp_topology == "route-reflector"

    def test_full_mesh_classified(self, small_backbone):
        design = extract_design(ParsedNetwork.from_configs(small_backbone.configs))
        assert design.ibgp_topology == "full-mesh"

    def test_rr_clients_parsed(self, rr_network):
        parsed = ParsedNetwork.from_configs(rr_network.configs)
        clients = sum(
            1
            for router in parsed.routers.values()
            if router.bgp
            for neighbor in router.bgp.neighbors.values()
            if neighbor.route_reflector_client
        )
        assert clients > 0

    def test_rr_design_survives_anonymization(self, rr_network):
        anon = Anonymizer(salt=b"rr-salt")
        result = anon.anonymize_network(dict(rr_network.configs))
        pre = ParsedNetwork.from_configs(rr_network.configs)
        post = ParsedNetwork.from_configs(result.configs)
        assert compare_designs(pre, post).passed
        assert extract_design(post).ibgp_topology == "route-reflector"


class TestIsis:
    @pytest.fixture(scope="class")
    def isis_network(self):
        from repro.iosgen import NetworkSpec, generate_network

        spec = NetworkSpec(
            name="isisnet", kind="backbone", seed=6, num_pops=3,
            igp="isis", use_rfc1918=False, lans_per_access=(2, 4),
        )
        return generate_network(spec)

    def test_isis_rendered(self, isis_network):
        text = "\n".join(isis_network.configs.values())
        assert "router isis" in text
        assert "net 49.0001." in text
        assert "ip router isis" in text

    def test_isis_forms_instance(self, isis_network):
        design = extract_design(ParsedNetwork.from_configs(isis_network.configs))
        isis = [i for i in design.instances if i.protocol == "isis"]
        assert isis
        assert max(len(i.routers) for i in isis) > 1

    def test_isis_net_anonymized_consistently(self, isis_network):
        import re

        anon = Anonymizer(salt=b"isis-salt")
        result = anon.anonymize_network(dict(isis_network.configs))
        for text in result.configs.values():
            loopback = re.search(
                r"ip address (\S+) 255.255.255.255", text
            )
            net = re.search(r"net 49\.0001\.(\d{4})\.(\d{4})\.(\d{4})\.00", text)
            if loopback is None or net is None:
                continue
            digits = "".join(net.groups())
            octets = [int(digits[i:i + 3]) for i in range(0, 12, 3)]
            derived = "{}.{}.{}.{}".format(*octets)
            assert derived == loopback.group(1)

    def test_isis_validation_suites_pass(self, isis_network):
        from repro.validation import compare_research_analyses

        anon = Anonymizer(salt=b"isis-salt-2")
        result = anon.anonymize_network(dict(isis_network.configs))
        pre = ParsedNetwork.from_configs(isis_network.configs)
        post = ParsedNetwork.from_configs(result.configs)
        assert compare_characteristics(pre, post).passed
        assert compare_designs(pre, post).passed
        assert compare_research_analyses(pre, post).passed
