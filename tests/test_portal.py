"""Tests for the Section 7 clearinghouse workflow."""

import pytest

from repro.core import Anonymizer
from repro.iosgen import NetworkSpec, generate_network
from repro.portal import Clearinghouse, PortalError


@pytest.fixture(scope="module")
def owner_payload():
    spec = NetworkSpec(name="portal-net", kind="enterprise", seed=88, num_pops=2,
                       lans_per_access=(2, 4))
    network = generate_network(spec)
    anonymizer = Anonymizer(salt=b"portal-owner-secret")
    result = anonymizer.anonymize_network(dict(network.configs))
    return anonymizer, result.configs


class TestBlinding:
    def test_handles_are_stable_and_blind(self):
        portal = Clearinghouse(b"p")
        a1 = portal.register_owner("att-noc-token")
        a2 = portal.register_owner("att-noc-token")
        assert a1 == a2
        assert "att" not in a1
        assert a1.startswith("owner-")

    def test_roles_are_separated(self):
        portal = Clearinghouse(b"p")
        assert portal.register_owner("x") != portal.register_researcher("x")

    def test_portal_secret_changes_handles(self):
        assert (
            Clearinghouse(b"p1").register_owner("x")
            != Clearinghouse(b"p2").register_owner("x")
        )


class TestUploadGate:
    def test_clean_upload_accepted(self, owner_payload):
        anonymizer, configs = owner_payload
        portal = Clearinghouse()
        owner = portal.register_owner("tok")
        receipt = portal.upload(owner, anonymizer, configs, "enterprise net")
        assert receipt.accepted
        assert receipt.dataset_id == "ds-0001"

    def test_leaky_upload_rejected(self, owner_payload):
        anonymizer, configs = owner_payload
        tampered = dict(configs)
        name = sorted(tampered)[0]
        leaked_asn = next(iter(anonymizer.report.seen_asns))
        tampered[name] += "\nrouter bgp {}\n".format(leaked_asn)
        portal = Clearinghouse()
        owner = portal.register_owner("tok")
        receipt = portal.upload(owner, anonymizer, tampered)
        assert not receipt.accepted
        assert receipt.highlighted
        assert "leak scanner" in receipt.reason

    def test_non_config_upload_rejected(self, owner_payload):
        anonymizer, _ = owner_payload
        clean = Anonymizer(salt=b"x")  # fresh: empty report, no leaks
        portal = Clearinghouse()
        owner = portal.register_owner("tok")
        receipt = portal.upload(owner, clean, {"notes.txt": "hello world\n"})
        assert not receipt.accepted
        assert "does not parse" in receipt.reason

    def test_flagged_anonymization_rejected(self):
        anonymizer = Anonymizer(salt=b"f")
        output = anonymizer.anonymize_text("ip as-path access-list 5 permit _70{2}_\n")
        portal = Clearinghouse()
        owner = portal.register_owner("tok")
        receipt = portal.upload(owner, anonymizer, {"r1": output})
        assert not receipt.accepted
        assert "flagged" in receipt.reason

    def test_unknown_owner_rejected(self, owner_payload):
        anonymizer, configs = owner_payload
        with pytest.raises(PortalError):
            Clearinghouse().upload("owner-ffffffffffff", anonymizer, configs)


class TestResearcherWorkflow:
    @pytest.fixture
    def portal_with_data(self, owner_payload):
        anonymizer, configs = owner_payload
        portal = Clearinghouse()
        owner = portal.register_owner("tok")
        receipt = portal.upload(owner, anonymizer, configs, "backbone study data")
        researcher = portal.register_researcher("alice")
        return portal, owner, researcher, receipt.dataset_id

    def test_catalog_hides_owner(self, portal_with_data):
        portal, owner, _, dataset_id = portal_with_data
        catalog = portal.catalog()
        assert catalog[0][0] == dataset_id
        assert all(owner not in str(entry) for entry in catalog)

    def test_fetch_requires_registration(self, portal_with_data):
        portal, _, researcher, dataset_id = portal_with_data
        configs = portal.fetch(researcher, dataset_id)
        assert configs
        with pytest.raises(PortalError):
            portal.fetch("researcher-000000000000", dataset_id)
        with pytest.raises(PortalError):
            portal.fetch(researcher, "ds-9999")

    def test_comment_relay_through_blind(self, portal_with_data):
        portal, owner, researcher, dataset_id = portal_with_data
        portal.comment(researcher, dataset_id, "is the OSPF area layout intentional?")
        inbox = portal.inbox(owner)
        assert len(inbox) == 1
        assert inbox[0].dataset_id == dataset_id
        assert inbox[0].researcher_handle == researcher
        assert "OSPF" in inbox[0].text

    def test_comment_requires_known_parties(self, portal_with_data):
        portal, _, researcher, dataset_id = portal_with_data
        with pytest.raises(PortalError):
            portal.comment("researcher-bad", dataset_id, "hi")
        with pytest.raises(PortalError):
            portal.comment(researcher, "ds-9999", "hi")
        with pytest.raises(PortalError):
            portal.inbox("owner-bad")
