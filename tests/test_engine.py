"""End-to-end engine tests, centered on the paper's Figure 1 (experiment E1)."""

import re

import pytest

from repro.core import Anonymizer, AnonymizerConfig
from repro.core.regexlang import asn_language
from repro.netutil import classful_prefix_len, ip_to_int, network_address


class TestFigure1:
    """Every transformation Section 2 requires of the Figure 1 config."""

    @pytest.fixture(autouse=True)
    def _setup(self, figure1_text):
        self.anon = Anonymizer(salt=b"foo-corp-secret")
        self.output = self.anon.anonymize_text(figure1_text)
        self.lines = self.output.splitlines()

    def test_comments_and_banner_stripped(self):
        assert "FooNet" not in self.output
        assert "prohibited" not in self.output
        assert "description" not in self.output
        assert "banner" not in self.output

    def test_hostname_hashed(self):
        assert "foo.com" not in self.output
        assert "cr1.lax" not in self.output
        hostname_line = [l for l in self.lines if l.startswith("hostname")][0]
        assert hostname_line != "hostname cr1.lax.foo.com"

    def test_owner_asn_permuted(self):
        expected = self.anon.asn_map.map_asn(1111)
        assert "router bgp {}".format(expected) in self.output
        assert not re.search(r"\brouter bgp 1111\b", self.output)

    def test_peer_asn_permuted(self):
        expected = self.anon.asn_map.map_asn(701)
        assert "remote-as {}".format(expected) in self.output

    def test_netmasks_unchanged(self):
        assert "255.255.255.0" in self.output
        assert "255.255.255.252" in self.output
        assert "0.0.0.255" in self.output
        assert "0.255.255.255" in self.output

    def test_public_addresses_mapped(self):
        for original in ("1.1.1.1", "1.2.3.4", "2.3.4.5"):
            assert not re.search(
                r"(?<![\d.])" + re.escape(original) + r"(?![\d.])", self.output
            )

    def test_route_map_referential_integrity(self):
        # The `uses` relationship: the neighbor reference and the
        # definitions must share the same (hashed) name.
        refs = re.findall(r"route-map (\S+) (?:in|out)", self.output)
        defs = re.findall(r"^route-map (\S+) (?:permit|deny)", self.output, re.M)
        assert refs and defs
        assert set(refs) <= set(defs)

    def test_route_map_name_hashed(self):
        assert "UUNET" not in self.output

    def test_subnet_contains_relationship_preserved(self):
        # RIP `network` statement must still cover the Ethernet0 address.
        rip_net = re.search(r"^ network (\S+)$", self.output, re.M).group(1)
        eth_addr = re.search(r"ip address (\S+) 255.255.255.0", self.output).group(1)
        net_value = ip_to_int(rip_net)
        addr_value = ip_to_int(eth_addr)
        length = classful_prefix_len(net_value)
        assert network_address(addr_value, length) == net_value

    def test_class_preserved_for_classful_commands(self):
        rip_net = re.search(r"^ network (\S+)$", self.output, re.M).group(1)
        assert classful_prefix_len(ip_to_int(rip_net)) == 8  # class A stays A

    def test_aspath_regexp_rewritten_to_permuted_language(self):
        line = [l for l in self.lines if "as-path access-list" in l][0]
        pattern = line.split("permit ", 1)[1]
        original_language = asn_language("(_1239_|_70[2-5]_)")
        expected = {self.anon.asn_map.map_asn(n) for n in original_language}
        assert asn_language(pattern) == expected

    def test_community_regexp_rewritten(self):
        line = [l for l in self.lines if "community-list" in l][0]
        mapped_asn = str(self.anon.asn_map.map_asn(701))
        assert mapped_asn in line
        assert "701:7" not in line

    def test_set_community_mapped(self):
        expected = "{}:{}".format(
            self.anon.asn_map.map_asn(701), self.anon.community.map_value(7100)
        )
        assert "set community {}".format(expected) in self.output

    def test_interface_types_survive(self):
        assert "interface Ethernet0" in self.output
        assert "interface Serial1/0.5 point-to-point" in self.output

    def test_acl_wildcard_pair_semantics(self):
        acl = [l for l in self.lines if l.startswith("access-list 143")][0]
        parts = acl.split()
        base, wildcard = parts[4], parts[5]
        assert wildcard == "0.0.0.255"
        # Mapped Ethernet0 address must fall inside the rewritten range.
        eth_addr = re.search(r"ip address (\S+) 255.255.255.0", self.output).group(1)
        mask = (~ip_to_int(wildcard)) & 0xFFFFFFFF
        assert ip_to_int(eth_addr) & mask == ip_to_int(base) & mask

    def test_no_flags_raised(self):
        assert self.anon.report.flags == []


class TestDeterminism:
    def test_same_salt_same_output(self, figure1_text):
        out1 = Anonymizer(salt=b"s1").anonymize_text(figure1_text)
        out2 = Anonymizer(salt=b"s1").anonymize_text(figure1_text)
        assert out1 == out2

    def test_different_salt_different_output(self, figure1_text):
        out1 = Anonymizer(salt=b"s1").anonymize_text(figure1_text)
        out2 = Anonymizer(salt=b"s2").anonymize_text(figure1_text)
        assert out1 != out2

    def test_string_salt_accepted(self, figure1_text):
        out1 = Anonymizer(salt="text-salt").anonymize_text(figure1_text)
        out2 = Anonymizer(salt=b"text-salt").anonymize_text(figure1_text)
        assert out1 == out2


class TestNetworkLevel:
    def test_cross_file_consistency(self):
        anon = Anonymizer(salt=b"net")
        a = anon.anonymize_text("interface Loopback0\n ip address 6.0.0.1 255.255.255.255\n")
        b = anon.anonymize_text(" neighbor 6.0.0.1 remote-as 65001\n")
        loop = re.search(r"ip address (\S+)", a).group(1)
        neigh = re.search(r"neighbor (\S+)", b).group(1)
        assert loop == neigh

    def test_anonymize_network_renames_files(self):
        anon = Anonymizer(salt=b"net2")
        result = anon.anonymize_network({"cr1.foo.com": "hostname cr1.foo.com\n"})
        assert "cr1.foo.com" not in result.configs
        assert result.name_map["cr1.foo.com"] in result.configs

    def test_report_accumulates(self):
        anon = Anonymizer(salt=b"net3")
        anon.anonymize_text("router bgp 701\n")
        anon.anonymize_text("router bgp 1239\n")
        assert anon.report.asns_mapped == 2
        assert anon.report.lines_in == 2


class TestConfigOptions:
    def test_keep_comments(self):
        config = AnonymizerConfig(salt=b"s", strip_comments=False)
        out = Anonymizer(config).anonymize_text(" description hello world\n")
        assert "description" in out  # line kept (words still hashed)

    def test_config_and_kwargs_mutually_exclusive(self):
        with pytest.raises(TypeError):
            Anonymizer(AnonymizerConfig(salt=b"s"), salt=b"t")

    def test_invalid_regex_style_rejected(self):
        with pytest.raises(ValueError):
            AnonymizerConfig(salt=b"s", regex_style="bogus")

    def test_mindfa_style_end_to_end(self, figure1_text):
        config = AnonymizerConfig(salt=b"s", regex_style="mindfa")
        anon = Anonymizer(config)
        out = anon.anonymize_text(figure1_text)
        line = [l for l in out.splitlines() if "as-path access-list" in l][0]
        pattern = line.split("permit ", 1)[1]
        expected = {anon.asn_map.map_asn(n) for n in asn_language("(_1239_|_70[2-5]_)")}
        assert asn_language(pattern) == expected

    def test_disabled_rules(self):
        config = AnonymizerConfig(salt=b"s", disabled_rules=frozenset({"R10"}))
        out = Anonymizer(config).anonymize_text("router bgp 701\n")
        assert out == "router bgp 701\n"

    def test_trailing_newline_preserved(self):
        anon = Anonymizer(salt=b"s")
        assert anon.anonymize_text("router rip\n").endswith("\n")
        assert not anon.anonymize_text("router rip").endswith("\n")


class TestTwoPassShaping:
    def test_preload_counts_addresses(self):
        anon = Anonymizer(salt=b"tp")
        count = anon.preload_addresses(
            {"r1": "ip address 6.1.1.1 255.255.255.0\nlogging 6.1.1.1\n"}
        )
        assert count == 2  # 6.1.1.1 + the netmask value

    def test_two_pass_guarantees_subnet_shaping(self):
        from repro.netutil import ip_to_int, trailing_zero_bits

        # Hosts appear BEFORE their subnet addresses in the file: one-pass
        # shaping is best-effort here, two-pass must be exact.
        config = "\n".join(
            [" ip address 10.{}.{}.{} 255.255.255.0".format(i, j, 5)
             for i in range(1, 4) for j in range(1, 4)]
            + ["access-list 10 permit 10.{}.{}.0 0.0.0.255".format(i, j)
               for i in range(1, 4) for j in range(1, 4)]
        )
        anon = Anonymizer(salt=b"tp2")
        result = anon.anonymize_network({"r1": config}, two_pass=True)
        text = next(iter(result.configs.values()))
        import re as _re

        bases = _re.findall(r"access-list 10 permit (\S+) 0.0.0.255", text)
        assert bases
        for base in bases:
            assert trailing_zero_bits(ip_to_int(base)) >= 8, base

    def test_two_pass_is_file_order_independent(self):
        configs_a = {"a": "logging 6.1.1.1\n", "b": "logging 6.2.2.2\n"}
        configs_b = {"b": "logging 6.2.2.2\n", "a": "logging 6.1.1.1\n"}
        out1 = Anonymizer(salt=b"tp3").anonymize_network(dict(configs_a), two_pass=True)
        out2 = Anonymizer(salt=b"tp3").anonymize_network(dict(configs_b), two_pass=True)
        assert out1.configs == out2.configs
