"""Tests for the synthetic config generator substrate."""

import random

import pytest

from repro.configmodel import ParsedNetwork, parse_config
from repro.core.passlist import DEFAULT_PASSLIST
from repro.iosgen import (
    NetworkSpec,
    build_passlist_from_corpus,
    build_reference_corpus,
    generate_network,
    scraped_passlist,
)
from repro.iosgen.addressing import AddressPlanner, BlockCarver
from repro.iosgen.dataset import dataset_statistics, paper_dataset, paper_dataset_specs
from repro.iosgen.dialects import all_version_strings, dialect_for_version
from repro.iosgen.naming import NameFactory
from repro.iosgen.topology import build_topology


class TestDialects:
    def test_at_least_200_versions(self):
        versions = all_version_strings()
        assert len(set(versions)) > 200

    def test_dialect_deterministic(self):
        assert dialect_for_version("12.2(13)T") == dialect_for_version("12.2(13)T")

    def test_old_versions_use_old_interface_names(self):
        dialect = dialect_for_version("11.1(5)")
        assert dialect.interface_era == 0
        assert not dialect.bgp_no_synchronization


class TestTopology:
    def _graph(self, kind, seed=5):
        spec = NetworkSpec(name="t", kind=kind, seed=seed, num_pops=4)
        rng = random.Random(seed)
        return build_topology(spec, NameFactory(seed), rng)

    def test_backbone_connected(self):
        import networkx as nx

        graph = self._graph("backbone")
        assert nx.is_connected(graph)

    def test_enterprise_connected(self):
        import networkx as nx

        graph = self._graph("enterprise")
        assert nx.is_connected(graph)

    def test_roles_assigned(self):
        graph = self._graph("backbone")
        roles = {d["role"] for _, d in graph.nodes(data=True)}
        assert {"core", "agg", "access"} <= roles

    def test_borders_marked(self):
        graph = self._graph("backbone")
        borders = [n for n, d in graph.nodes(data=True) if d.get("is_border")]
        assert borders


class TestAddressing:
    def test_carver_alignment(self):
        carver = BlockCarver(0x0A000000, 8)
        carver.carve(30)
        addr, length = carver.carve(24)
        assert addr % (1 << (32 - length)) == 0

    def test_carver_exhaustion(self):
        carver = BlockCarver(0x0A000000, 30)
        carver.carve(31)
        carver.carve(31)
        with pytest.raises(RuntimeError):
            carver.carve(31)

    def test_no_overlapping_allocations(self):
        spec = NetworkSpec(name="t", seed=9, kind="enterprise")
        planner = AddressPlanner(spec, random.Random(9))
        records = [planner.loopback() for _ in range(10)]
        records += [planner.p2p_link() for _ in range(10)]
        records += [planner.lan_subnet() for _ in range(10)]
        seen = set()
        for record in records:
            size = 1 << (32 - record.prefix_len)
            span = set(range(record.address, record.address + size))
            assert not (span & seen)
            seen |= span


class TestGeneration:
    def test_deterministic(self):
        spec = NetworkSpec(name="d", seed=4, num_pops=2)
        a = generate_network(spec)
        b = generate_network(spec)
        assert a.configs == b.configs

    def test_all_configs_parse(self, small_enterprise):
        for name, text in small_enterprise.configs.items():
            parsed = parse_config(text)
            assert parsed.hostname == name
            assert parsed.interfaces

    def test_loopbacks_everywhere(self, small_enterprise):
        for text in small_enterprise.configs.values():
            assert "interface Loopback0" in text

    def test_bgp_only_on_borders(self, small_backbone):
        parsed = ParsedNetwork.from_configs(small_backbone.configs)
        speakers = parsed.bgp_speakers()
        assert speakers
        assert len(speakers) < len(small_backbone.configs)

    def test_peer_asns_match_plan(self, small_backbone):
        parsed = ParsedNetwork.from_configs(small_backbone.configs)
        plan_asns = {asn for _, _, asn, _ in small_backbone.plan.peerings}
        config_asns = {
            s.remote_as for s in parsed.bgp_sessions() if s.ebgp
        }
        assert plan_asns <= config_asns

    def test_regexp_flags_honored(self):
        spec = NetworkSpec(
            name="rx", seed=6, kind="backbone", num_pops=2,
            use_aspath_range_regexps=True, use_alternation_regexps=False,
            use_rfc1918=False,
        )
        net = generate_network(spec)
        all_text = "\n".join(net.configs.values())
        assert "[" in all_text.split("as-path access-list")[1].splitlines()[0]

    def test_compartmentalized_adds_filters(self):
        base = dict(name="c", seed=8, kind="enterprise", num_pops=3)
        plain = generate_network(NetworkSpec(**base))
        comp = generate_network(NetworkSpec(compartmentalized=True, **base))
        plain_text = "\n".join(plain.configs.values())
        comp_text = "\n".join(comp.configs.values())
        assert "traceroute" not in plain_text
        assert "traceroute" in comp_text

    def test_keywords_all_in_passlist(self, small_enterprise, small_backbone):
        """Every alphabetic keyword the renderer emits outside privileged
        positions must be in the pass-list, or anonymization would destroy
        config structure."""
        from repro.core import Anonymizer
        from repro.validation import compare_characteristics

        for net in (small_enterprise, small_backbone):
            anon = Anonymizer(salt=b"kw")
            result = anon.anonymize_network(dict(net.configs))
            pre = ParsedNetwork.from_configs(net.configs)
            post = ParsedNetwork.from_configs(result.configs)
            check = compare_characteristics(pre, post)
            assert check.passed, check.summary()


class TestCorpusScraper:
    def test_corpus_pages_rendered(self):
        corpus = build_reference_corpus(seed=1, pages=10)
        assert len(corpus) == 10
        assert all("Usage Guidelines" in page for page in corpus.values())

    def test_scraper_builds_passlist(self):
        passlist = build_passlist_from_corpus(build_reference_corpus(seed=1, pages=50))
        assert "router" in passlist
        assert len(passlist) > 100

    def test_scraper_ignores_numbers(self):
        passlist = build_passlist_from_corpus({"p": "use 12345 and 1.2.3.4 now"})
        assert "12345" not in passlist
        assert "use" in passlist

    def test_coverage_grows_with_pages(self):
        small = scraped_passlist(seed=2, pages=20)
        large = scraped_passlist(seed=2, pages=300)
        assert len(large) >= len(small)


class TestDataset:
    @pytest.fixture(scope="class")
    def tiny_dataset(self):
        return paper_dataset(seed=7, scale=0.02)

    def test_31_networks(self, tiny_dataset):
        assert len(tiny_dataset) == 31

    def test_categorical_counts_match_paper(self, tiny_dataset):
        stats = dataset_statistics(tiny_dataset)
        assert stats["public_range_regexp_networks"] == 2
        assert stats["private_range_regexp_networks"] == 3
        assert stats["alternation_regexp_networks"] == 10
        assert stats["community_regexp_networks"] == 5
        assert stats["community_range_regexp_networks"] == 2
        assert stats["compartmentalized_networks"] == 10

    def test_backbones_and_enterprises(self, tiny_dataset):
        kinds = [n.spec.kind for n in tiny_dataset]
        assert kinds.count("backbone") == 6
        assert kinds.count("enterprise") == 25

    def test_distinct_address_blocks(self):
        specs = paper_dataset_specs(seed=7, scale=0.02)
        blocks = {s.public_block for s in specs}
        assert len(blocks) == 31

    def test_many_ios_versions_in_corpus(self, tiny_dataset):
        versions = set()
        for net in tiny_dataset:
            for router in net.plan.routers.values():
                versions.add(router.version)
        assert len(versions) > 30
