"""Per-rule tests: every context rule (R6-R28) on crafted config lines.

Each test pushes one line through a fresh Anonymizer and asserts exactly
what changed and what survived.
"""

import re

import pytest

from repro.core import Anonymizer
from repro.core.rules import STRUCTURAL_RULES, all_rules, build_line_rules, rule_inventory


@pytest.fixture
def anon():
    return Anonymizer(salt=b"rule-salt")


def one_line(anon, text):
    return anon.anonymize_text(text + "\n").rstrip("\n")


class TestRegistry:
    def test_28_rules_documented(self):
        # 2 segmentation + 3 comment + 4 misc + 12 asn + 4 ip + 3 secret
        ids = {r.rule_id for r in all_rules()}
        expected = {"R{}".format(n) for n in range(1, 29)}
        assert expected <= ids

    def test_categories_match_paper_accounting(self):
        rules = all_rules()
        by_category = {}
        for rule in rules:
            by_category.setdefault(rule.category, set()).add(
                rule.rule_id.rstrip("b")
            )
        assert len(by_category["segmentation"]) == 2
        assert len(by_category["comment"]) == 3
        assert len(by_category["misc"]) == 4
        assert len(by_category["asn"]) == 12
        assert len(by_category["ip"]) == 4
        assert len(by_category["secret"]) == 3

    def test_structural_rules_have_no_apply(self):
        assert all(r.apply is None for r in STRUCTURAL_RULES)

    def test_line_rules_all_applyable(self):
        assert all(r.apply is not None for r in build_line_rules())

    def test_inventory_renders(self):
        text = rule_inventory()
        assert "R14" in text and "R28" in text


class TestAsnRules:
    def test_r10_router_bgp(self, anon):
        out = one_line(anon, "router bgp 701")
        mapped = anon.asn_map.map_asn(701)
        assert out == "router bgp {}".format(mapped)

    def test_r11_remote_as(self, anon):
        out = one_line(anon, " neighbor 9.9.9.9 remote-as 1239")
        assert "remote-as {}".format(anon.asn_map.map_asn(1239)) in out
        assert "1239" not in out.replace(str(anon.asn_map.map_asn(1239)), "")

    def test_r12_local_as(self, anon):
        out = one_line(anon, " neighbor 9.9.9.9 local-as 3356")
        assert "local-as {}".format(anon.asn_map.map_asn(3356)) in out

    def test_r13_prepend_list(self, anon):
        out = one_line(anon, " set as-path prepend 701 701 701")
        mapped = str(anon.asn_map.map_asn(701))
        assert out == " set as-path prepend {m} {m} {m}".format(m=mapped)

    def test_r14_aspath_regexp(self, anon):
        out = one_line(anon, "ip as-path access-list 50 permit (_1239_|_701_)")
        assert str(anon.asn_map.map_asn(1239)) in out
        assert str(anon.asn_map.map_asn(701)) in out
        assert out.startswith("ip as-path access-list 50 permit ")

    def test_r14_list_number_not_an_asn(self, anon):
        out = one_line(anon, "ip as-path access-list 701 permit _99_")
        # The list number 701 is a local identifier, never mapped.
        assert out.startswith("ip as-path access-list 701 ")

    def test_r15_standard_community_list(self, anon):
        out = one_line(anon, "ip community-list 1 permit 701:7100")
        mapped = "{}:{}".format(
            anon.asn_map.map_asn(701), anon.community.map_value(7100)
        )
        assert out == "ip community-list 1 permit " + mapped

    def test_r15_expanded_community_regexp(self, anon):
        out = one_line(anon, "ip community-list 100 permit _701:710[0-1]_")
        assert str(anon.asn_map.map_asn(701)) in out
        assert str(anon.community.map_value(7100)) in out
        assert str(anon.community.map_value(7101)) in out

    def test_r15_named_lists(self, anon):
        out = one_line(anon, "ip community-list standard CUSTLIST permit 701:42")
        assert str(anon.asn_map.map_asn(701)) in out
        assert "CUSTLIST" not in out  # name is privileged -> hashed

    def test_r16_set_community(self, anon):
        out = one_line(anon, " set community 701:7100 no-export additive")
        assert str(anon.asn_map.map_asn(701)) in out
        assert out.endswith("no-export additive")

    def test_r17_extcommunity(self, anon):
        out = one_line(anon, " set extcommunity rt 701:99")
        assert "rt {}:{}".format(
            anon.asn_map.map_asn(701), anon.community.map_value(99)
        ) in out

    def test_r18_route_target_and_rd(self, anon):
        out = one_line(anon, " route-target import 701:100")
        assert str(anon.asn_map.map_asn(701)) in out
        out2 = one_line(anon, " rd 1239:5")
        assert str(anon.asn_map.map_asn(1239)) in out2

    def test_r19_confed_identifier(self, anon):
        out = one_line(anon, " bgp confederation identifier 701")
        assert out.endswith(str(anon.asn_map.map_asn(701)))

    def test_r20_confed_peers(self, anon):
        out = one_line(anon, " bgp confederation peers 65100 701 1239")
        assert str(anon.asn_map.map_asn(701)) in out
        assert "65100" in out  # private ASN untouched

    def test_r21_set_origin_egp(self, anon):
        out = one_line(anon, " set origin egp 701")
        assert out.endswith(str(anon.asn_map.map_asn(701)))

    def test_private_asns_untouched(self, anon):
        assert one_line(anon, "router bgp 65001") == "router bgp 65001"
        assert one_line(anon, " neighbor 9.9.9.9 remote-as 64512").endswith("64512")


class TestIpRules:
    def test_r22_address_and_mask(self, anon):
        out = one_line(anon, " ip address 6.1.2.3 255.255.255.0")
        assert out.endswith("255.255.255.0")
        assert "6.1.2.3" not in out
        mapped = anon.ip_map.map_address("6.1.2.3")
        assert mapped in out

    def test_r23_prefix_notation(self, anon):
        out = one_line(anon, "ip prefix-list X seq 5 permit 6.1.0.0/16 le 24")
        assert "/16 le 24" in out
        assert "6.1.0.0" not in out

    def test_r24_classful_network_truncated(self, anon):
        mapped_host = anon.ip_map.map_address("6.1.2.3")  # prime the trie
        out = one_line(anon, " network 6.0.0.0")
        assert re.match(r" network \d+\.0\.0\.0$", out)
        # must cover the mapped host classfully
        assert out.split()[-1].split(".")[0] == mapped_host.split(".")[0]

    def test_r24_ospf_network_not_truncated(self, anon):
        out = one_line(anon, " network 6.1.2.0 0.0.0.255 area 3")
        assert out.endswith("0.0.0.255 area 3")

    def test_r25_wildcard_pair_canonicalized(self, anon):
        out = one_line(anon, "access-list 10 permit ip 6.1.2.0 0.0.0.255 any")
        parts = out.split()
        base = parts[4]
        assert parts[5] == "0.0.0.255"
        assert base.endswith(".0")  # wildcard bits cleared

    def test_r25_bare_quads(self, anon):
        out = one_line(anon, "logging 6.9.9.9")
        assert out != "logging 6.9.9.9"
        assert out.startswith("logging ")

    def test_masks_in_static_routes_kept(self, anon):
        out = one_line(anon, "ip route 6.0.0.0 255.0.0.0 6.1.1.1")
        assert "255.0.0.0" in out
        assert "6.0.0.0" not in out

    def test_consistency_across_lines(self, anon):
        a = one_line(anon, "logging 6.9.9.9")
        b = one_line(anon, "ntp server 6.9.9.9")
        assert a.split()[-1] == b.split()[-1]


class TestMiscRules:
    def test_r6_dialer_string(self, anon):
        out = one_line(anon, " dialer string 14085551212")
        assert "14085551212" not in out
        new_number = out.split()[-1]
        assert new_number.isdigit()
        assert len(new_number) == len("14085551212")

    def test_r6_deterministic(self, anon):
        a = one_line(anon, " dialer string 14085551212")
        b = one_line(anon, " dialer string 14085551212")
        assert a == b

    def test_r7_snmp_location(self, anon):
        out = one_line(anon, "snmp-server location 123 Main St, Springfield")
        assert out == "snmp-server location"

    def test_r7_snmp_contact(self, anon):
        out = one_line(anon, "snmp-server contact noc@foocorp.com")
        assert out == "snmp-server contact"

    def test_r8_mac_address(self, anon):
        out = one_line(anon, " mac-address 00a0.c912.3456")
        assert "00a0.c912.3456" not in out
        assert re.search(r"[0-9a-f]{4}\.[0-9a-f]{4}\.[0-9a-f]{4}", out)

    def test_r9_domain_labels_hashed_even_passlist_words(self, anon):
        # 'global' style leak: both labels could be pass-list words.
        out = one_line(anon, "ip domain-name router.interface")
        assert "router.interface" not in out
        assert out.count(".") == 1


class TestSecretRules:
    def test_r26_enable_secret(self, anon):
        out = one_line(anon, "enable secret 5 supersecret")
        assert "supersecret" not in out
        assert out.startswith("enable secret 5 ")

    def test_r26_neighbor_password(self, anon):
        out = one_line(anon, " neighbor 6.1.1.1 password s3cr3t")
        assert "s3cr3t" not in out

    def test_r26_hashes_passlist_words_too(self, anon):
        out = one_line(anon, "enable password cisco")
        assert out != "enable password cisco"

    def test_r26_key_chain_keyword_survives(self, anon):
        out = one_line(anon, "key chain trees")
        assert out.startswith("key chain")

    def test_r27_tacacs_key(self, anon):
        out = one_line(anon, "tacacs-server key sharedsecret")
        assert "sharedsecret" not in out

    def test_r27b_snmp_community(self, anon):
        out = one_line(anon, "snmp-server community public RO")
        assert "public" not in out
        assert out.endswith(" RO")

    def test_r27b_snmp_host_community(self, anon):
        out = one_line(anon, "snmp-server host 6.1.1.1 watchword")
        assert "watchword" not in out
        assert "6.1.1.1" not in out  # host IP still mapped

    def test_r28_username(self, anon):
        out = one_line(anon, "username admin password 7 hunter2")
        assert "admin" not in out.split()[1]
        assert "hunter2" not in out
