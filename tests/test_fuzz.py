"""Robustness fuzzing: the anonymizer must never crash and never leak,
whatever bytes are thrown at it (the paper's automation requirement: "the
anonymization process must be fully automated to avoid human errors")."""

import os
import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Anonymizer

_config_chars = st.text(
    alphabet=string.ascii_letters + string.digits + " .:/!#{}()[]|^$*+?-_\"\n\t",
    max_size=400,
)

_fuzz = settings(
    # CI's fault-injection job raises this budget via REPRO_FUZZ_EXAMPLES.
    max_examples=int(os.environ.get("REPRO_FUZZ_EXAMPLES", "120")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestFuzzRobustness:
    @_fuzz
    @given(text=_config_chars)
    def test_never_crashes(self, text):
        Anonymizer(salt=b"fuzz").anonymize_text(text)

    @_fuzz
    @given(text=_config_chars)
    def test_deterministic_on_arbitrary_input(self, text):
        assert Anonymizer(salt=b"fz").anonymize_text(text) == Anonymizer(
            salt=b"fz"
        ).anonymize_text(text)

    @_fuzz
    @given(text=st.text(max_size=200))
    def test_never_crashes_on_unicode(self, text):
        Anonymizer(salt=b"fuzz").anonymize_text(text)

    @_fuzz
    @given(asn=st.integers(min_value=1, max_value=64511),
           prefix=st.sampled_from(["router bgp", " neighbor 9.9.9.9 remote-as",
                                   " bgp confederation identifier"]))
    def test_asn_contexts_always_anonymized(self, asn, prefix):
        anonymizer = Anonymizer(salt=b"fz2")
        line = "{} {}\n".format(prefix, asn)
        output = anonymizer.anonymize_text(line)
        expected = anonymizer.asn_map.map_asn(asn)
        assert str(expected) in output
        if expected != asn:
            import re

            # Exclude dot-adjacent digits: a mapped IP octet may happen to
            # equal the ASN's digits (same guard the leak scanner uses).
            assert not re.search(r"(?<![\d.]){}(?![\d.])".format(asn), output)

    @_fuzz
    @given(octets=st.tuples(*[st.integers(min_value=0, max_value=255)] * 4))
    def test_addresses_always_handled(self, octets):
        anonymizer = Anonymizer(salt=b"fz3")
        text = "logging {}.{}.{}.{}\n".format(*octets)
        output = anonymizer.anonymize_text(text)
        # Output still contains exactly one dotted quad (mapped or special).
        import re

        assert len(re.findall(r"\d+\.\d+\.\d+\.\d+", output)) == 1

    def test_pathological_banner_nesting(self):
        text = "banner motd ^C\nbanner motd ^C\n^C\nrouter rip\n network 10.0.0.0\n"
        output = Anonymizer(salt=b"fz4").anonymize_text(text)
        assert "router rip" in output

    def test_very_long_line(self):
        text = "access-list 150 permit ip " + " ".join(
            "6.{}.{}.0 0.0.0.255".format(i // 250, i % 250) for i in range(500)
        )
        Anonymizer(salt=b"fz5").anonymize_text(text + "\n")

    def test_binary_ish_input(self):
        Anonymizer(salt=b"fz6").anonymize_text("\x00\x01\x02 router bgp 701\n")
