"""Fault-injection tests: the runner's fail-closed guarantees.

Injected faults (:mod:`repro.core.faults`) prove that

* a rule that raises mid-line replaces the *whole* line with a hashed
  placeholder — the raw text never reaches the output — and the report
  records the event;
* a worker process dying mid-run quarantines only the poisoned file,
  the pool respawns once, and every other file still completes;
* outputs are written atomically (no observable half-written ``*.anon``)
  and a ``--resume`` rerun is byte-identical to a clean sequential run.
"""

import json

import pytest

from repro.cli import (
    EXIT_LEAKS,
    EXIT_OK,
    EXIT_QUARANTINE,
    EXIT_STATE_ERROR,
    main,
)
from repro.core import Anonymizer, AnonymizerConfig
from repro.core.faults import FaultInjected, FaultPlan, build_fault_plan
from repro.core.parallel import FrozenSnapshot, anonymize_files
from repro.core.runner import (
    MANIFEST_NAME,
    RunnerError,
    atomic_write_text,
    load_manifest,
    run_anonymization,
)

#: The line a rule fault replaces; its raw text must never reach output.
SECRET_LINE = "router bgp 1239"


def _corpus():
    """Four small one-network files; ``poison.cfg`` hosts injected faults."""
    return {
        "r0.cfg": (
            "hostname alpha.example.com\n"
            "router bgp 1239\n"
            " neighbor 6.1.1.1 remote-as 701\n"
        ),
        "r1.cfg": (
            "hostname beta.example.com\n"
            "interface Loopback0\n"
            " ip address 6.0.0.1 255.255.255.255\n"
        ),
        "poison.cfg": "hostname gamma.example.com\nrouter bgp 3561\n",
        "r3.cfg": "hostname delta.example.com\nrouter bgp 701\n",
    }


def _write_corpus(directory):
    directory.mkdir(parents=True, exist_ok=True)
    for name, text in _corpus().items():
        (directory / name).write_text(text)
    return directory


class TestFaultPlanParsing:
    def test_parse_all_kinds(self):
        plan = FaultPlan.parse("rule:R10:3; worker-exit:poison; write-fail:r1")
        kinds = [spec.kind for spec in plan.specs]
        assert kinds == ["rule", "worker-exit", "write-fail"]
        assert plan.specs[0].target == "R10"
        assert plan.specs[0].nth == 3
        assert plan.specs[1].nth == 1
        assert "rule:R10:3" in plan.describe()

    def test_underscores_normalized(self):
        plan = FaultPlan.parse("worker_exit:x")
        assert plan.specs[0].kind == "worker-exit"

    @pytest.mark.parametrize(
        "bad", ["frobnicate:x", "rule:", "rule", "", "rule:R10:0"]
    )
    def test_malformed_plans_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_build_from_config(self):
        config = AnonymizerConfig(salt=b"s", fault_plan="rule:R10:1")
        plan = build_fault_plan(config)
        assert plan is not None and plan.specs[0].target == "R10"

    def test_build_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker-exit:poison")
        plan = build_fault_plan(AnonymizerConfig(salt=b"s"))
        assert plan is not None and plan.specs[0].kind == "worker-exit"

    def test_config_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker-exit:poison")
        config = AnonymizerConfig(salt=b"s", fault_plan="rule:R11:2")
        plan = build_fault_plan(config)
        assert plan.specs[0].kind == "rule"

    def test_no_plan_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert build_fault_plan(AnonymizerConfig(salt=b"s")) is None

    def test_rule_fault_fires_once(self):
        plan = FaultPlan.parse("rule:R10:2")
        plan.on_rule_hits("R10", 1)  # hit 1: below nth
        with pytest.raises(FaultInjected):
            plan.on_rule_hits("R10", 1)  # hit 2: fires
        plan.on_rule_hits("R10", 5)  # later hits pass


class TestFailClosedLines:
    def test_faulted_line_never_reaches_output(self):
        anonymizer = Anonymizer(
            AnonymizerConfig(salt=b"fc", fault_plan="rule:R10:1")
        )
        text = "hostname alpha.example.com\n{}\nrouter rip\n".format(SECRET_LINE)
        out = anonymizer.anonymize_text(text)
        assert SECRET_LINE not in out
        assert "1239" not in out
        assert "! REPRO-FAIL-CLOSED " in out
        # The rest of the file still anonymizes normally.
        assert "alpha" not in out
        assert "router rip" in out

    def test_report_records_fail_closed_event(self):
        anonymizer = Anonymizer(
            AnonymizerConfig(salt=b"fc", fault_plan="rule:R10:1")
        )
        anonymizer.anonymize_text(SECRET_LINE + "\n", source="r0.cfg")
        report = anonymizer.report
        assert report.lines_failed_closed == 1
        assert report.rule_hits.get("FAIL-CLOSED") == 1
        flags = [f for f in report.flags if f.rule_id == "FAIL-CLOSED"]
        assert len(flags) == 1
        assert flags[0].source == "r0.cfg"
        assert flags[0].line_number == 1
        # The flag message names the exception class, never the raw line.
        assert "FaultInjected" in flags[0].message
        assert "1239" not in flags[0].message

    def test_nth_hit_semantics(self):
        # nth=2: the first `router bgp` line anonymizes normally, the
        # second is replaced, the third (fault already fired) is normal.
        anonymizer = Anonymizer(
            AnonymizerConfig(salt=b"fc2", fault_plan="rule:R10:2")
        )
        text = "router bgp 1239\nrouter bgp 3561\nrouter bgp 701\n"
        out_lines = anonymizer.anonymize_text(text).splitlines()
        assert out_lines[0].startswith("router bgp ")
        assert out_lines[1].startswith("! REPRO-FAIL-CLOSED ")
        assert out_lines[2].startswith("router bgp ")
        assert anonymizer.report.lines_failed_closed == 1

    def test_placeholder_is_deterministic_and_content_free(self):
        config = AnonymizerConfig(salt=b"fc3", fault_plan="rule:R10:1")
        one = Anonymizer(config).anonymize_text(SECRET_LINE + "\n")
        two = Anonymizer(config).anonymize_text(SECRET_LINE + "\n")
        assert one == two
        # Different salt, different placeholder: the digest is salted, so
        # nobody can dictionary-attack the original line from it.
        other = Anonymizer(
            AnonymizerConfig(salt=b"other", fault_plan="rule:R10:1")
        ).anonymize_text(SECRET_LINE + "\n")
        assert other != one

    def test_fail_closed_under_parallel_run(self):
        # (a) no raw faulted-line text in any output, (b) the run
        # completes, (c) the merged report records the events.
        configs = _corpus()
        anonymizer = Anonymizer(
            AnonymizerConfig(salt=b"fcp", fault_plan="rule:R10:1")
        )
        anonymizer.freeze_mappings(dict(configs))
        outputs = anonymize_files(anonymizer, dict(configs), jobs=2)
        assert sorted(outputs) == sorted(configs)  # completed, nothing lost
        joined = "\n".join(outputs.values())
        assert SECRET_LINE not in joined
        assert "! REPRO-FAIL-CLOSED " in joined
        assert anonymizer.report.lines_failed_closed >= 1
        assert anonymizer.report.quarantined_files == {}


class TestQuarantine:
    def test_sequential_engine_error_quarantines_file(self, monkeypatch):
        real = Anonymizer.anonymize_file

        def explode(self, text, source="<config>"):
            if "poison" in source:
                raise RuntimeError("message quoting raw text: " + SECRET_LINE)
            return real(self, text, source)

        monkeypatch.setattr(Anonymizer, "anonymize_file", explode)
        configs = _corpus()
        anonymizer = Anonymizer(salt=b"sq")
        outputs = anonymize_files(anonymizer, dict(configs), jobs=1)
        assert "poison.cfg" not in outputs
        assert sorted(outputs) == sorted(set(configs) - {"poison.cfg"})
        # Reason is the class name only: exception messages may quote raw
        # config text and the report is shareable.
        assert anonymizer.report.quarantined_files == {"poison.cfg": "RuntimeError"}

    def test_worker_death_quarantines_only_poisoned_file(self):
        configs = _corpus()
        clean = Anonymizer(AnonymizerConfig(salt=b"wq"))
        clean.freeze_mappings(dict(configs))
        expected = anonymize_files(clean, dict(configs), jobs=1)

        faulted = Anonymizer(
            AnonymizerConfig(salt=b"wq", fault_plan="worker-exit:poison")
        )
        faulted.freeze_mappings(dict(configs))
        outputs = anonymize_files(faulted, dict(configs), jobs=2)
        assert sorted(outputs) == sorted(set(configs) - {"poison.cfg"})
        assert set(faulted.report.quarantined_files) == {"poison.cfg"}
        # Every surviving file is byte-identical to the clean run: the
        # crash-and-respawn never perturbs the frozen mappings.
        for name, text in outputs.items():
            assert text == expected[name]


class TestAtomicWrites:
    def test_write_and_digest(self, tmp_path):
        path = tmp_path / "out" / "r0.cfg.anon"
        digest = atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"
        import hashlib

        assert digest == hashlib.sha256(b"hello\n").hexdigest()
        assert not list(tmp_path.rglob("*.tmp"))

    def test_injected_write_failure_leaves_no_partial_file(self, tmp_path):
        plan = FaultPlan.parse("write-fail:r0")
        path = tmp_path / "r0.cfg.anon"
        with pytest.raises(OSError):
            atomic_write_text(path, "new content\n", plan, "r0.cfg")
        assert not path.exists()
        assert not list(tmp_path.iterdir())  # tmp file cleaned up too

    def test_failed_overwrite_keeps_old_content(self, tmp_path):
        path = tmp_path / "r0.cfg.anon"
        path.write_text("old complete content\n")
        plan = FaultPlan.parse("write-fail:r0")
        with pytest.raises(OSError):
            atomic_write_text(path, "new content\n", plan, "r0.cfg")
        assert path.read_text() == "old complete content\n"

    def test_write_fault_fires_once(self, tmp_path):
        plan = FaultPlan.parse("write-fail:r0")
        path = tmp_path / "r0.cfg.anon"
        with pytest.raises(OSError):
            atomic_write_text(path, "text\n", plan, "r0.cfg")
        assert atomic_write_text(path, "text\n", plan, "r0.cfg")
        assert path.read_text() == "text\n"


class TestRunnerResume:
    def _out_path_for(self, out_dir):
        return lambda name: out_dir / (name + ".anon")

    def test_faulted_run_then_resume_matches_clean_run(self, tmp_path):
        configs = _corpus()
        out_dir = tmp_path / "out"
        manifest_path = out_dir / MANIFEST_NAME

        faulted = Anonymizer(
            AnonymizerConfig(salt=b"rr", fault_plan="worker-exit:poison")
        )
        faulted.freeze_mappings(dict(configs))
        result = run_anonymization(
            faulted,
            dict(configs),
            self._out_path_for(out_dir),
            jobs=2,
            manifest_path=manifest_path,
        )
        assert result.dirty
        assert set(result.quarantined) == {"poison.cfg"}
        assert not (out_dir / "poison.cfg.anon").exists()
        assert not list(out_dir.glob("*.tmp"))
        manifest = load_manifest(manifest_path)
        assert manifest["files"]["poison.cfg"]["status"] == "quarantined"
        assert manifest["files"]["r0.cfg"]["status"] == "written"

        # Resume without the fault: quarantined file re-runs, written
        # files are skipped, and the corpus equals a clean jobs=1 run.
        resumed = Anonymizer(AnonymizerConfig(salt=b"rr"))
        resumed.freeze_mappings(dict(configs))
        result2 = run_anonymization(
            resumed,
            dict(configs),
            self._out_path_for(out_dir),
            jobs=2,
            resume=True,
            manifest_path=manifest_path,
        )
        assert not result2.dirty
        statuses = {n: o.status for n, o in result2.outcomes.items()}
        assert statuses["poison.cfg"] == "written"
        assert all(
            status == "skipped"
            for name, status in statuses.items()
            if name != "poison.cfg"
        )

        clean = Anonymizer(AnonymizerConfig(salt=b"rr"))
        clean.freeze_mappings(dict(configs))
        expected = anonymize_files(clean, dict(configs), jobs=1)
        for name, text in expected.items():
            assert (out_dir / (name + ".anon")).read_text() == text

    def test_resume_refuses_foreign_salt(self, tmp_path):
        configs = _corpus()
        out_dir = tmp_path / "out"
        manifest_path = out_dir / MANIFEST_NAME
        first = Anonymizer(AnonymizerConfig(salt=b"one"))
        first.freeze_mappings(dict(configs))
        run_anonymization(
            first,
            dict(configs),
            self._out_path_for(out_dir),
            manifest_path=manifest_path,
        )
        other = Anonymizer(AnonymizerConfig(salt=b"two"))
        other.freeze_mappings(dict(configs))
        with pytest.raises(RunnerError, match="different salt"):
            run_anonymization(
                other,
                dict(configs),
                self._out_path_for(out_dir),
                resume=True,
                manifest_path=manifest_path,
            )

    def test_resume_rejects_corrupt_manifest(self, tmp_path):
        manifest_path = tmp_path / MANIFEST_NAME
        manifest_path.write_text("{ not json")
        anonymizer = Anonymizer(salt=b"cm")
        with pytest.raises(RunnerError, match="corrupt"):
            run_anonymization(
                anonymizer,
                _corpus(),
                self._out_path_for(tmp_path),
                resume=True,
                manifest_path=manifest_path,
            )

    def test_resume_reruns_edited_output(self, tmp_path):
        configs = _corpus()
        out_dir = tmp_path / "out"
        manifest_path = out_dir / MANIFEST_NAME
        first = Anonymizer(AnonymizerConfig(salt=b"ed"))
        first.freeze_mappings(dict(configs))
        run_anonymization(
            first,
            dict(configs),
            self._out_path_for(out_dir),
            manifest_path=manifest_path,
        )
        good = (out_dir / "r0.cfg.anon").read_text()
        (out_dir / "r0.cfg.anon").write_text("tampered\n")
        second = Anonymizer(AnonymizerConfig(salt=b"ed"))
        second.freeze_mappings(dict(configs))
        result = run_anonymization(
            second,
            dict(configs),
            self._out_path_for(out_dir),
            resume=True,
            manifest_path=manifest_path,
        )
        assert result.outcomes["r0.cfg"].status == "written"
        assert (out_dir / "r0.cfg.anon").read_text() == good


class TestCliFaultInjection:
    def test_worker_exit_quarantine_and_resume_byte_identity(
        self, tmp_path, monkeypatch, capsys
    ):
        net = _write_corpus(tmp_path / "net")
        out_dir = tmp_path / "out"
        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker-exit:poison")
        code = main(
            [str(net), "--salt", "s", "--jobs", "2", "--out-dir", str(out_dir)]
        )
        captured = capsys.readouterr()
        assert code == EXIT_QUARANTINE
        assert "fault injection active" in captured.err
        assert "quarantined" in captured.err
        # No partial output for the poisoned file, no tmp droppings.
        assert not (out_dir / "poison.cfg.anon").exists()
        assert not list(out_dir.glob("*.tmp"))
        manifest = json.loads((out_dir / MANIFEST_NAME).read_text())
        poison_key = str(net / "poison.cfg")
        assert manifest["files"][poison_key]["status"] == "quarantined"

        # Resume without the fault plan completes the quarantined file...
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        code = main(
            [
                str(net),
                "--salt",
                "s",
                "--jobs",
                "2",
                "--out-dir",
                str(out_dir),
                "--resume",
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_OK
        assert "skipped" in captured.out
        assert (out_dir / "poison.cfg.anon").exists()

        # ...and the resumed corpus is byte-identical to a clean
        # sequential (--jobs 1) run.
        clean_dir = tmp_path / "clean"
        assert (
            main(
                [
                    str(net),
                    "--salt",
                    "s",
                    "--jobs",
                    "1",
                    "--two-pass",
                    "--out-dir",
                    str(clean_dir),
                ]
            )
            == EXIT_OK
        )
        clean_files = sorted(clean_dir.glob("*.anon"))
        assert len(clean_files) == len(_corpus())
        for path in clean_files:
            assert (out_dir / path.name).read_text() == path.read_text()

    def test_write_failure_then_resume(self, tmp_path, monkeypatch, capsys):
        net = _write_corpus(tmp_path / "net")
        out_dir = tmp_path / "out"
        monkeypatch.setenv("REPRO_FAULT_PLAN", "write-fail:r1.cfg")
        code = main([str(net), "--salt", "s", "--out-dir", str(out_dir)])
        captured = capsys.readouterr()
        assert code == EXIT_QUARANTINE
        assert "write failed" in captured.err
        assert not (out_dir / "r1.cfg.anon").exists()
        assert not list(out_dir.glob("*.tmp"))

        monkeypatch.delenv("REPRO_FAULT_PLAN")
        code = main(
            [str(net), "--salt", "s", "--out-dir", str(out_dir), "--resume"]
        )
        capsys.readouterr()
        assert code == EXIT_OK
        assert (out_dir / "r1.cfg.anon").exists()

    def test_rule_fault_acceptance(self, tmp_path, monkeypatch, capsys):
        net = _write_corpus(tmp_path / "net")
        out_dir = tmp_path / "out"
        report_path = tmp_path / "report.json"
        monkeypatch.setenv("REPRO_FAULT_PLAN", "rule:R10:1")
        code = main(
            [
                str(net),
                "--salt",
                "s",
                "--jobs",
                "2",
                "--out-dir",
                str(out_dir),
                "--report-json",
                str(report_path),
            ]
        )
        capsys.readouterr()
        # Fail-closed line replacement is not a dirty run: every file
        # completed and nothing leaked.
        assert code == EXIT_OK
        anon_texts = {
            p.name: p.read_text() for p in out_dir.glob("*.anon")
        }
        assert len(anon_texts) == len(_corpus())
        joined = "\n".join(anon_texts.values())
        assert SECRET_LINE not in joined
        assert "! REPRO-FAIL-CLOSED " in joined
        report = json.loads(report_path.read_text())
        assert report["lines_failed_closed"] >= 1
        assert report["quarantined_files"] == {}
        flags = [f for f in report["flags"] if f["rule_id"] == "FAIL-CLOSED"]
        assert flags and all("1239" not in f["message"] for f in flags)


class TestCliExitCodes:
    def test_leak_scan_highlight_exits_nonzero(self, tmp_path, capsys):
        config = tmp_path / "r.cfg"
        # 1239 is seen as an ASN (router bgp) and also survives in a
        # numeric context no rule covers (a prefix-list sequence number),
        # which is exactly what the Section 6.1 scanner highlights.
        config.write_text(
            "router bgp 1239\n"
            "ip prefix-list CUST seq 1239 permit 6.0.0.0/8\n"
        )
        code = main([str(config), "--salt", "s", "--scan-leaks",
                     "--out-dir", str(tmp_path / "out")])
        captured = capsys.readouterr()
        assert code == EXIT_LEAKS
        assert "highlighted for human review" in captured.out

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        config = tmp_path / "r.cfg"
        config.write_text("router bgp 1239\n")
        assert (
            main([str(config), "--salt", "s", "--scan-leaks",
                  "--out-dir", str(tmp_path / "out")])
            == EXIT_OK
        )

    def test_corrupt_state_file_exits_with_one_line_error(
        self, tmp_path, capsys
    ):
        config = tmp_path / "r.cfg"
        config.write_text("router bgp 1239\n")
        state = tmp_path / "state.json"
        state.write_text('{"format_version": 1, "truncated...')
        code = main(
            [str(config), "--salt", "s", "--state-file", str(state)]
        )
        captured = capsys.readouterr()
        assert code == EXIT_STATE_ERROR
        assert "error:" in captured.err
        assert str(state) in captured.err

    def test_binary_and_unreadable_inputs_skipped(self, tmp_path, capsys):
        net = tmp_path / "net"
        net.mkdir()
        (net / "good.cfg").write_text("router bgp 1239\n")
        (net / "blob.bin").write_bytes(b"\x00\x01\x02binary")
        (net / "latin1.cfg").write_bytes(b"hostname caf\xe9\n")  # not UTF-8
        out_dir = tmp_path / "out"
        code = main([str(net), "--salt", "s", "--out-dir", str(out_dir)])
        captured = capsys.readouterr()
        assert code == EXIT_OK
        assert "skipping" in captured.err and "binary" in captured.err
        assert (out_dir / "good.cfg.anon").exists()
        # Undecodable bytes are replaced, not fatal.
        assert (out_dir / "latin1.cfg.anon").exists()
        assert not (out_dir / "blob.bin.anon").exists()

    def test_all_inputs_unreadable_is_an_error(self, tmp_path, capsys):
        net = tmp_path / "net"
        net.mkdir()
        (net / "blob.bin").write_bytes(b"\x00\x00\x00")
        code = main([str(net), "--salt", "s", "--out-dir", str(tmp_path / "o")])
        captured = capsys.readouterr()
        assert code == 1
        assert "no readable config files" in captured.err

    def test_resume_requires_manifest_location(self, tmp_path):
        config = tmp_path / "r.cfg"
        config.write_text("router bgp 1239\n")
        with pytest.raises(SystemExit):
            main([str(config), "--salt", "s", "--resume"])


class TestSnapshotFaultPropagation:
    def test_fault_plan_travels_in_snapshot_config(self):
        anonymizer = Anonymizer(
            AnonymizerConfig(salt=b"sp", fault_plan="worker-exit:poison")
        )
        anonymizer.freeze_mappings(_corpus())
        restored = FrozenSnapshot.capture(anonymizer).restore()
        assert restored.fault_plan is not None
        assert restored.fault_plan.should_kill_worker("a/poison.cfg")
        assert not restored.fault_plan.should_kill_worker("a/r0.cfg")
