"""Tests for mapping-state persistence (longitudinal consistency)."""

import json

import pytest

from repro.core import Anonymizer, AnonymizerConfig
from repro.core.state import (
    STATE_FORMAT_VERSION,
    StateError,
    export_state,
    import_state,
    load_state,
    save_state,
)


class TestStateRoundTrip:
    def test_ip_mapping_consistent_across_sessions(self, tmp_path):
        first = Anonymizer(salt=b"owner")
        # Session 1 maps some addresses in an order that shapes the trie.
        mapped_day1 = {
            t: first.ip_map.map_address(t)
            for t in ("10.1.1.5", "10.1.1.0", "6.2.3.4")
        }
        path = tmp_path / "state.json"
        save_state(first, str(path))

        second = Anonymizer(salt=b"owner")
        load_state(second, str(path))
        for text, expected in mapped_day1.items():
            assert second.ip_map.map_address(text) == expected

    def test_new_addresses_after_restore_stay_prefix_consistent(self, tmp_path):
        first = Anonymizer(salt=b"owner")
        day1 = first.ip_map.map_address("10.1.1.1")
        path = tmp_path / "state.json"
        save_state(first, str(path))

        second = Anonymizer(salt=b"owner")
        load_state(second, str(path))
        day2 = second.ip_map.map_address("10.1.1.2")
        # same /30: mapped addresses must share 30 bits
        from repro.netutil import ip_to_int

        xor = ip_to_int(day1) ^ ip_to_int(day2)
        assert xor.bit_length() <= 2

    def test_rng_stream_continues(self, tmp_path):
        """Mapping unseen addresses after a restore must match what the
        original instance would have produced."""
        first = Anonymizer(salt=b"owner")
        first.ip_map.map_address("10.0.0.1")
        path = tmp_path / "state.json"
        save_state(first, str(path))

        second = Anonymizer(salt=b"owner")
        load_state(second, str(path))
        assert second.ip_map.map_address("99.1.2.3") == first.ip_map.map_address(
            "99.1.2.3"
        )

    def test_hash_cache_restored(self, tmp_path):
        first = Anonymizer(salt=b"owner")
        digest = first.hasher.hash_token("FOOCORP")
        path = tmp_path / "state.json"
        save_state(first, str(path))
        second = Anonymizer(salt=b"owner")
        load_state(second, str(path))
        assert second.hasher.hash_token("FOOCORP") == digest
        assert "FOOCORP" in second.hasher.hashed_inputs

    def test_seen_asns_restored(self, tmp_path):
        first = Anonymizer(salt=b"owner")
        first.anonymize_text("router bgp 701\n")
        path = tmp_path / "state.json"
        save_state(first, str(path))
        second = Anonymizer(salt=b"owner")
        load_state(second, str(path))
        assert 701 in second.report.seen_asns

    def test_full_config_longitudinal_consistency(self, tmp_path, figure1_text):
        first = Anonymizer(salt=b"owner")
        day1 = first.anonymize_text(figure1_text)
        save_state(first, str(tmp_path / "s.json"))
        second = Anonymizer(salt=b"owner")
        load_state(second, str(tmp_path / "s.json"))
        day2 = second.anonymize_text(figure1_text)
        assert day1 == day2


class TestStateValidation:
    def test_version_checked(self):
        anonymizer = Anonymizer(salt=b"o")
        state = export_state(anonymizer)
        state["format_version"] = 999
        with pytest.raises(ValueError):
            import_state(Anonymizer(salt=b"o"), state)

    def test_hash_length_checked(self):
        state = export_state(Anonymizer(salt=b"o"))
        other = Anonymizer(AnonymizerConfig(salt=b"o", hash_length=8))
        with pytest.raises(ValueError):
            import_state(other, state)

    def test_state_is_json_serializable(self):
        anonymizer = Anonymizer(salt=b"o")
        anonymizer.anonymize_text("interface Ethernet0\n ip address 6.1.1.1 255.0.0.0\n")
        text = json.dumps(export_state(anonymizer))
        assert json.loads(text)["format_version"] == STATE_FORMAT_VERSION

    def test_export_import_round_trip_is_lossless(self, tmp_path):
        first = Anonymizer(salt=b"rt")
        first.anonymize_text(
            "hostname r1.example.com\n"
            "router bgp 701\n"
            " neighbor 6.1.1.1 remote-as 1239\n"
        )
        path = tmp_path / "state.json"
        save_state(first, str(path))
        second = Anonymizer(salt=b"rt")
        load_state(second, str(path))
        assert export_state(second) == export_state(first)


class TestStateCorruption:
    """A bad state file must produce one clear :class:`StateError` and
    never a raw traceback or a half-restored anonymizer."""

    def _load(self, tmp_path, payload):
        path = tmp_path / "state.json"
        if isinstance(payload, bytes):
            path.write_bytes(payload)
        else:
            path.write_text(payload)
        load_state(Anonymizer(salt=b"o"), str(path))
        return path

    def test_not_json_at_all(self, tmp_path):
        with pytest.raises(StateError, match="not valid JSON"):
            self._load(tmp_path, "this is not json {]")

    def test_truncated_json(self, tmp_path):
        whole = json.dumps(export_state(Anonymizer(salt=b"o")))
        with pytest.raises(StateError, match="corrupt or truncated"):
            self._load(tmp_path, whole[: len(whole) // 2])

    def test_json_but_not_an_object(self, tmp_path):
        with pytest.raises(StateError, match="JSON object"):
            self._load(tmp_path, "[1, 2, 3]")

    def test_wrong_format_version(self, tmp_path):
        state = export_state(Anonymizer(salt=b"o"))
        state["format_version"] = 999
        with pytest.raises(StateError, match="version"):
            self._load(tmp_path, json.dumps(state))

    def test_missing_required_key(self, tmp_path):
        state = export_state(Anonymizer(salt=b"o"))
        del state["ip_rng_state"]
        with pytest.raises(StateError, match="malformed"):
            self._load(tmp_path, json.dumps(state))

    def test_mangled_trie_keys(self, tmp_path):
        state = export_state(Anonymizer(salt=b"o"))
        state["ip_trie"] = {"not-a-depth-prefix-pair": 1}
        with pytest.raises(StateError, match="malformed"):
            self._load(tmp_path, json.dumps(state))

    def test_error_names_the_file(self, tmp_path):
        with pytest.raises(StateError) as excinfo:
            self._load(tmp_path, "garbage")
        assert "state.json" in str(excinfo.value)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StateError, match="cannot read"):
            load_state(Anonymizer(salt=b"o"), str(tmp_path / "absent.json"))

    def test_malformed_state_leaves_anonymizer_untouched(self, tmp_path):
        good = export_state(Anonymizer(salt=b"o"))
        bad = dict(good)
        bad["ip_rng_state"] = "nope"
        anonymizer = Anonymizer(salt=b"o")
        baseline = Anonymizer(salt=b"o")
        with pytest.raises(StateError):
            import_state(anonymizer, bad)
        # Decode-before-mutate: the failed import changed nothing, so the
        # anonymizer still behaves exactly like a fresh instance.
        assert anonymizer.ip_map.map_address("10.1.2.3") == baseline.ip_map.map_address(
            "10.1.2.3"
        )
        assert export_state(anonymizer) == export_state(baseline)
