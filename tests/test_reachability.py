"""Tests for the static reachability analysis."""

import pytest

from repro.configmodel import ParsedNetwork
from repro.core import Anonymizer
from repro.netutil import ip_to_int
from repro.validation.reachability import compute_reachability

TWO_RIP_ROUTERS = {
    "a": (
        "hostname a\n"
        "interface E0\n ip address 10.0.12.1 255.255.255.252\n"
        "interface E1\n ip address 10.1.0.1 255.255.255.0\n"
        "router rip\n network 10.0.0.0\n"
    ),
    "b": (
        "hostname b\n"
        "interface E0\n ip address 10.0.12.2 255.255.255.252\n"
        "interface E1\n ip address 10.2.0.1 255.255.255.0\n"
        "router rip\n network 10.0.0.0\n"
    ),
}

SPLIT_INSTANCES = {
    # a-b share a subnet and RIP; c is RIP but on a disjoint subnet:
    # two instances, so c never learns a's LAN.
    "a": TWO_RIP_ROUTERS["a"],
    "b": TWO_RIP_ROUTERS["b"],
    "c": (
        "hostname c\n"
        "interface E0\n ip address 10.9.9.1 255.255.255.252\n"
        "interface E1\n ip address 10.3.0.1 255.255.255.0\n"
        "router rip\n network 10.0.0.0\n"
    ),
}


class TestReachabilityPropagation:
    def test_igp_floods_within_instance(self):
        result = compute_reachability(ParsedNetwork.from_configs(TWO_RIP_ROUTERS))
        a_lan = (ip_to_int("10.1.0.0"), 24)
        b_lan = (ip_to_int("10.2.0.0"), 24)
        assert b_lan in result.reachable["a"]
        assert a_lan in result.reachable["b"]

    def test_disjoint_instances_do_not_leak(self):
        result = compute_reachability(ParsedNetwork.from_configs(SPLIT_INSTANCES))
        a_lan = (ip_to_int("10.1.0.0"), 24)
        assert a_lan not in result.reachable["c"]
        assert a_lan in result.reachable["b"]

    def test_statics_originate(self):
        configs = dict(TWO_RIP_ROUTERS)
        configs["a"] += "ip route 172.20.0.0 255.255.0.0 10.0.12.2\n"
        result = compute_reachability(ParsedNetwork.from_configs(configs))
        assert (ip_to_int("172.20.0.0"), 16) in result.reachable["a"]
        # Static routes are local unless redistributed; 'b' learns it only
        # through the instance union (our model floods member knowledge).
        assert (ip_to_int("172.20.0.0"), 16) in result.reachable["b"]

    def test_matrix_shape(self):
        result = compute_reachability(ParsedNetwork.from_configs(TWO_RIP_ROUTERS))
        shape = result.matrix_shape()
        assert len(shape) == 2
        assert shape[0] == shape[1]  # symmetric two-router design

    def test_universally_reachable(self):
        result = compute_reachability(ParsedNetwork.from_configs(TWO_RIP_ROUTERS))
        universal = result.universally_reachable()
        assert (ip_to_int("10.0.12.0"), 30) in universal

    def test_empty_network(self):
        result = compute_reachability(ParsedNetwork.from_configs({}))
        assert result.reachable == {}
        assert result.matrix_shape() == []


class TestAnonymizationInvariance:
    def test_matrix_shape_identical_pre_post(self, small_enterprise):
        anon = Anonymizer(salt=b"reach")
        result = anon.anonymize_network(dict(small_enterprise.configs))
        pre = compute_reachability(ParsedNetwork.from_configs(small_enterprise.configs))
        post = compute_reachability(ParsedNetwork.from_configs(result.configs))
        assert pre.matrix_shape() == post.matrix_shape()
        assert len(pre.universally_reachable()) == len(post.universally_reachable())

    def test_backbone_invariance(self, small_backbone):
        anon = Anonymizer(salt=b"reach2")
        result = anon.anonymize_network(dict(small_backbone.configs))
        pre = compute_reachability(ParsedNetwork.from_configs(small_backbone.configs))
        post = compute_reachability(ParsedNetwork.from_configs(result.configs))
        assert pre.matrix_shape() == post.matrix_shape()
