"""Cross-cutting, whole-pipeline property tests (DESIGN.md Section 6).

These drive randomly parameterized generated networks through the full
anonymizer and assert the paper's global invariants: determinism, leak
freedom, referential integrity, and validation-suite preservation.
"""

import re

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks.textual import structured_asn_audit
from repro.configmodel import ParsedNetwork
from repro.core import Anonymizer
from repro.iosgen import NetworkSpec, generate_network
from repro.validation import (
    compare_characteristics,
    compare_designs,
    compare_research_analyses,
)

network_specs = st.builds(
    NetworkSpec,
    name=st.just("prop"),
    kind=st.sampled_from(["enterprise", "backbone"]),
    seed=st.integers(min_value=0, max_value=10_000),
    num_pops=st.integers(min_value=1, max_value=3),
    igp=st.sampled_from(["ospf", "rip", "eigrp"]),
    lans_per_access=st.just((1, 3)),
    static_burst=st.just((0, 3)),
    use_aspath_range_regexps=st.booleans(),
    use_private_range_regexps=st.booleans(),
    use_alternation_regexps=st.booleans(),
    use_community_regexps=st.booleans(),
    use_community_range_regexps=st.booleans(),
    dialer_backup=st.booleans(),
    comment_density=st.floats(min_value=0.0, max_value=0.5),
)

_slow = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestPipelineProperties:
    @_slow
    @given(spec=network_specs)
    def test_validation_suites_always_pass(self, spec):
        network = generate_network(spec)
        anon = Anonymizer(salt=b"prop-salt")
        result = anon.anonymize_network(dict(network.configs))
        pre = ParsedNetwork.from_configs(network.configs)
        post = ParsedNetwork.from_configs(result.configs)
        suite1 = compare_characteristics(pre, post)
        assert suite1.passed, suite1.summary()
        suite2 = compare_designs(pre, post)
        assert suite2.passed, suite2.summary()
        suite3 = compare_research_analyses(pre, post)
        assert suite3.passed, suite3.summary()

    @_slow
    @given(spec=network_specs)
    def test_asn_leak_freedom(self, spec):
        network = generate_network(spec)
        anon = Anonymizer(salt=b"prop-salt-2")
        result = anon.anonymize_network(dict(network.configs))
        assert structured_asn_audit(result.configs, anon.report.seen_asns) == []

    @_slow
    @given(spec=network_specs)
    def test_determinism(self, spec):
        network = generate_network(spec)
        out1 = Anonymizer(salt=b"d").anonymize_network(dict(network.configs)).configs
        out2 = Anonymizer(salt=b"d").anonymize_network(dict(network.configs)).configs
        assert out1 == out2

    @_slow
    @given(spec=network_specs)
    def test_no_fabricated_name_survives(self, spec):
        """No company/city/person string from the generator's identity pool
        may appear in anonymized output (the textual attack surface)."""
        from repro.iosgen.naming import CITIES, COMPANY_STEMS, PEOPLE

        network = generate_network(spec)
        anon = Anonymizer(salt=b"prop-salt-3")
        result = anon.anonymize_network(dict(network.configs))
        blob = "\n".join(result.configs.values()).lower()
        for word in COMPANY_STEMS + PEOPLE + [c for c, _ in CITIES]:
            assert not re.search(r"\b" + re.escape(word) + r"\b", blob), word

    @_slow
    @given(spec=network_specs)
    def test_no_comment_text_survives(self, spec):
        network = generate_network(spec)
        anon = Anonymizer(salt=b"prop-salt-4")
        result = anon.anonymize_network(dict(network.configs))
        blob = "\n".join(result.configs.values())
        assert "description" not in blob
        assert "banner" not in blob


class TestSecretFreedom:
    def test_no_generated_secret_survives(self, small_enterprise):
        """Every password/community/key planted by the generator must be
        gone from the output."""
        secrets = set()
        for text in small_enterprise.configs.values():
            for match in re.finditer(
                r"(?:enable secret(?: \d)?|password(?: \d)?"
                r"|snmp-server community|tacacs-server key) (\S+)",
                text,
            ):
                secrets.add(match.group(1))
        anon = Anonymizer(salt=b"sec")
        result = anon.anonymize_network(dict(small_enterprise.configs))
        blob = "\n".join(result.configs.values())
        for secret in secrets:
            if secret.isdigit():  # community list numbers etc.
                continue
            assert secret not in blob, secret
