"""Tests for the config lexer, parser, and network model."""

import pytest

from repro.configmodel import ParsedNetwork, lex_config, parse_config
from repro.netutil import ip_to_int

SAMPLE = """\
version 12.2
hostname r1
!
interface Loopback0
 ip address 6.0.0.1 255.255.255.255
!
interface FastEthernet0/0
 description uplink
 bandwidth 100000
 encapsulation dot1Q 10
 ip address 10.1.1.1 255.255.255.0
 ip helper-address 10.9.9.9
 shutdown
!
router ospf 100
 network 10.1.1.0 0.0.0.255 area 3
 passive-interface FastEthernet0/0
 redistribute bgp
!
router bgp 65001
 bgp router-id 6.0.0.1
 network 6.0.0.0 mask 255.0.0.0
 redistribute ospf
 neighbor 9.9.9.9 remote-as 701
 neighbor 9.9.9.9 route-map PEER-in in
 neighbor 9.9.9.9 route-map PEER-out out
 neighbor 9.9.9.9 password s3cret
 neighbor 6.0.0.2 remote-as 65001
 neighbor 6.0.0.2 update-source Loopback0
 neighbor 6.0.0.2 next-hop-self
!
route-map PEER-in deny 10
 match as-path 50
 set local-preference 90
!
ip as-path access-list 50 permit (_1239_|_701_)
ip community-list 100 permit _701:99_
ip community-list 5 permit 701:100
ip prefix-list PEER-px seq 5 permit 10.4.0.0/16 le 24
ip route 10.5.0.0 255.255.0.0 10.1.1.254
ip route 10.6.0.0 255.255.0.0 Null0
ip domain-name corp.example
ip dhcp pool vlan10
 network 10.1.1.0 255.255.255.0
 default-router 10.1.1.1
!
username ops password 7 xyz
snmp-server community watchword RO
ntp server 6.0.0.9
logging 6.0.0.9
banner motd ^C
do not parse this network 99.99.99.99
^C
end
"""


@pytest.fixture(scope="module")
def parsed():
    return parse_config(SAMPLE)


class TestLexer:
    def test_stanza_grouping(self):
        stanzas = lex_config(SAMPLE)
        interface = [s for s in stanzas if s.command == "interface FastEthernet0/0"][0]
        assert any("ip address" in child for child in interface.children)

    def test_bang_separators_skipped(self):
        stanzas = lex_config("!\n! text\nhostname r1\n")
        assert [s.command for s in stanzas] == ["hostname r1"]

    def test_banner_body_skipped(self):
        stanzas = lex_config(SAMPLE)
        assert not any("do not parse" in s.command for s in stanzas)

    def test_single_line_banner(self):
        stanzas = lex_config("banner motd #hi there#\nhostname r1\n")
        assert [s.command for s in stanzas] == ["hostname r1"]


class TestParser:
    def test_basics(self, parsed):
        assert parsed.hostname == "r1"
        assert parsed.version == "12.2"

    def test_interfaces(self, parsed):
        fe = parsed.interfaces["FastEthernet0/0"]
        assert fe.address == ip_to_int("10.1.1.1")
        assert fe.prefix_len == 24
        assert fe.description == "uplink"
        assert fe.bandwidth == 100000
        assert fe.encapsulation == "dot1q"
        assert fe.shutdown
        assert fe.helper_addresses == [ip_to_int("10.9.9.9")]
        assert fe.base_type == "fastethernet"
        loop = parsed.interfaces["Loopback0"]
        assert loop.prefix_len == 32

    def test_ospf(self, parsed):
        ospf = [igp for igp in parsed.igps if igp.protocol == "ospf"][0]
        assert ospf.process_id == 100
        base, wildcard, area = ospf.networks[0]
        assert base == ip_to_int("10.1.1.0")
        assert wildcard == ip_to_int("0.0.0.255")
        assert area == "3"
        assert ospf.passive_interfaces == ["FastEthernet0/0"]
        assert ospf.redistribute == ["bgp"]

    def test_bgp(self, parsed):
        bgp = parsed.bgp
        assert bgp.asn == 65001
        assert bgp.router_id == ip_to_int("6.0.0.1")
        assert bgp.networks == [(ip_to_int("6.0.0.0"), 8)]
        ebgp = bgp.neighbors["9.9.9.9"]
        assert ebgp.remote_as == 701
        assert ebgp.route_map_in == "PEER-in"
        assert ebgp.route_map_out == "PEER-out"
        assert ebgp.has_password
        ibgp = bgp.neighbors["6.0.0.2"]
        assert ibgp.remote_as == 65001
        assert ibgp.update_source == "Loopback0"
        assert ibgp.next_hop_self

    def test_route_map(self, parsed):
        clause = parsed.route_maps[0]
        assert clause.name == "PEER-in"
        assert clause.action == "deny"
        assert clause.sequence == 10
        assert clause.matches == ["as-path 50"]
        assert clause.sets == ["local-preference 90"]

    def test_policy_lists(self, parsed):
        assert parsed.aspath_acls[0].regex == "(_1239_|_701_)"
        expanded = [c for c in parsed.community_lists if c.expanded]
        standard = [c for c in parsed.community_lists if not c.expanded]
        assert expanded[0].number == "100"
        assert standard[0].body == "701:100"
        prefix = parsed.prefix_lists[0]
        assert prefix.name == "PEER-px"
        assert prefix.prefix_len == 16
        assert prefix.le == 24

    def test_statics(self, parsed):
        assert len(parsed.static_routes) == 2
        targets = {s.target for s in parsed.static_routes}
        assert "Null0" in targets

    def test_services(self, parsed):
        assert parsed.usernames == ["ops"]
        assert parsed.snmp_communities == ["watchword"]
        assert parsed.ntp_servers == [ip_to_int("6.0.0.9")]
        assert parsed.logging_hosts == [ip_to_int("6.0.0.9")]
        assert parsed.domain_name == "corp.example"
        assert parsed.dhcp_pools == [("vlan10", ip_to_int("10.1.1.0"), 24)]

    def test_garbage_tolerated(self):
        parsed = parse_config("nonsense command here\n another child\n")
        assert parsed.unparsed == ["nonsense command here"]


class TestNetworkModel:
    @pytest.fixture(scope="class")
    def network(self):
        r2 = SAMPLE.replace("hostname r1", "hostname r2").replace(
            "ip address 10.1.1.1", "ip address 10.1.1.2"
        ).replace("ip address 6.0.0.1 255.255.255.255", "ip address 6.0.0.2 255.255.255.255")
        return ParsedNetwork.from_configs({"r1": SAMPLE, "r2": r2})

    def test_subnets(self, network):
        assert (ip_to_int("10.1.1.0"), 24) in network.subnets()

    def test_histogram(self, network):
        histogram = network.subnet_size_histogram()
        assert histogram[24] == 1
        assert histogram[32] == 2  # two loopbacks

    def test_adjacency_via_shared_subnet(self, network):
        assert ("r1", "r2") in network.adjacencies()

    def test_bgp_speakers_and_sessions(self, network):
        assert network.bgp_speakers() == ["r1", "r2"]
        sessions = network.bgp_sessions()
        ebgp = [s for s in sessions if s.ebgp]
        assert len(ebgp) == 2
        assert network.ebgp_sessions_per_router() == {"r1": 1, "r2": 1}

    def test_interface_type_histogram(self, network):
        histogram = network.interface_type_histogram()
        assert histogram["loopback"] == 2
        assert histogram["fastethernet"] == 2

    def test_loopbacks(self, network):
        assert network.loopback_addresses() == {
            ip_to_int("6.0.0.1"), ip_to_int("6.0.0.2")
        }


class TestExport:
    @pytest.fixture(scope="class")
    def exported(self):
        import json

        from repro.configmodel.export import network_to_dict, network_to_json

        network = ParsedNetwork.from_configs({"r1": SAMPLE})
        return network_to_dict(network), json.loads(network_to_json(network))

    def test_round_trips_through_json(self, exported):
        as_dict, from_json = exported
        assert from_json == as_dict

    def test_router_fields(self, exported):
        as_dict, _ = exported
        router = as_dict["routers"]["r1"]
        assert router["hostname"] == "r1"
        assert router["bgp"]["asn"] == 65001
        names = {i["name"] for i in router["interfaces"]}
        assert "Loopback0" in names
        assert any(p["protocol"] == "ospf" for p in router["routing_processes"])
        assert router["static_routes"][0]["prefix"].endswith("/16")

    def test_derived_structure(self, exported):
        as_dict, _ = exported
        derived = as_dict["derived"]
        assert derived["bgp_speakers"] == ["r1"]
        assert derived["subnet_size_histogram"]["24"] >= 1

    def test_vendor_neutral_across_syntaxes(self):
        """The same plan exported from IOS and JunOS renderings yields the
        same derived structure (the footnote-1 abstraction goal)."""
        from repro.configmodel.export import network_to_dict
        from repro.iosgen import NetworkSpec, generate_network

        base = dict(name="ex", kind="enterprise", seed=21, num_pops=2, igp="ospf",
                    lans_per_access=(2, 3), static_burst=(0, 2))
        ios_net = generate_network(NetworkSpec(junos_fraction=0.0, **base))
        junos_net = generate_network(NetworkSpec(junos_fraction=1.0, **base))
        ios_dict = network_to_dict(ParsedNetwork.from_configs(ios_net.configs))
        junos_dict = network_to_dict(ParsedNetwork.from_configs(junos_net.configs))
        assert (ios_dict["derived"]["subnet_size_histogram"]
                == junos_dict["derived"]["subnet_size_histogram"])
        assert (ios_dict["derived"]["bgp_speakers"]
                == junos_dict["derived"]["bgp_speakers"])


class TestNamedAcls:
    NAMED = """\
interface FastEthernet0/0.10
 encapsulation dot1Q 10
 ip address 10.1.1.1 255.255.255.0
 ip access-group protect-v10 in
!
ip access-list extended protect-v10
 permit tcp any 10.1.1.0 0.0.0.255 eq www
 deny ip any any log
"""

    def test_named_acl_parsed(self):
        parsed = parse_config(self.NAMED)
        entries = [e for e in parsed.access_lists if e.number == "protect-v10"]
        assert len(entries) == 2
        assert entries[0].action == "permit"
        assert entries[1].body == "ip any any log"

    def test_access_group_reference_parsed(self):
        parsed = parse_config(self.NAMED)
        iface = parsed.interfaces["FastEthernet0/0.10"]
        assert iface.acl_groups == ["protect-v10"]

    def test_referential_integrity_after_anonymization(self):
        from repro.core import Anonymizer

        anon = Anonymizer(salt=b"nacl")
        output = anon.anonymize_text(self.NAMED)
        parsed = parse_config(output)
        group_refs = [
            g for i in parsed.interfaces.values() for g in i.acl_groups
        ]
        defined = {e.number for e in parsed.access_lists}
        assert group_refs
        assert set(group_refs) <= defined
        assert "protect-v10" not in defined  # privileged name hashed
