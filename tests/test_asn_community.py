"""Tests for ASN and community-attribute anonymization (Sections 4.4-4.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asn import (
    AsnPermutation,
    Feistel16,
    PRIVATE_ASN_MAX,
    PRIVATE_ASN_MIN,
    PUBLIC_ASN_MAX,
    PUBLIC_ASN_MIN,
    is_private_asn,
    is_public_asn,
)
from repro.core.community import CommunityAnonymizer

public_asns = st.integers(min_value=PUBLIC_ASN_MIN, max_value=PUBLIC_ASN_MAX)
private_asns = st.integers(min_value=PRIVATE_ASN_MIN, max_value=PRIVATE_ASN_MAX)


class TestRanges:
    def test_boundaries(self):
        assert is_public_asn(1)
        assert is_public_asn(64511)
        assert not is_public_asn(0)
        assert not is_public_asn(64512)
        assert is_private_asn(64512)
        assert is_private_asn(65535)
        assert not is_private_asn(64511)


class TestFeistel:
    def test_permutation_inverse(self):
        cipher = Feistel16(b"key")
        for value in (0, 1, 701, 40000, 65535):
            assert cipher.decrypt(cipher.encrypt(value)) == value

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_inverse_property(self, value):
        cipher = Feistel16(b"prop")
        assert cipher.decrypt(cipher.encrypt(value)) == value

    def test_full_bijection(self):
        cipher = Feistel16(b"bij")
        outputs = {cipher.encrypt(v) for v in range(65536)}
        assert len(outputs) == 65536

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Feistel16(b"k").encrypt(70000)


class TestAsnPermutation:
    def test_public_maps_to_public(self):
        perm = AsnPermutation(b"k")
        for asn in (1, 701, 1239, 7018, 64511):
            mapped = perm.map_asn(asn)
            assert is_public_asn(mapped)

    def test_private_identity(self):
        perm = AsnPermutation(b"k")
        for asn in (64512, 65000, 65535, 0):
            assert perm.map_asn(asn) == asn

    def test_deterministic(self):
        assert AsnPermutation(b"k").map_asn(701) == AsnPermutation(b"k").map_asn(701)

    def test_salt_separation(self):
        a = AsnPermutation(b"k1").map_asn(701)
        b = AsnPermutation(b"k2").map_asn(701)
        # Not guaranteed different, but overwhelmingly likely across several.
        diffs = sum(
            AsnPermutation(b"k1").map_asn(n) != AsnPermutation(b"k2").map_asn(n)
            for n in (701, 1239, 3356, 7018, 209)
        )
        assert diffs >= 4

    def test_full_public_bijection(self):
        perm = AsnPermutation(b"bij")
        outputs = {perm.map_asn(asn) for asn in range(1, 64512)}
        assert len(outputs) == 64511
        assert all(is_public_asn(v) for v in outputs)

    @settings(max_examples=100, deadline=None)
    @given(public_asns)
    def test_unmap_inverts(self, asn):
        perm = AsnPermutation(b"inv")
        assert perm.unmap_asn(perm.map_asn(asn)) == asn

    def test_seen_asns_recorded(self):
        perm = AsnPermutation(b"k")
        perm.map_asn(701)
        assert 701 in perm.seen_asns

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            AsnPermutation(b"k").map_asn(70000)


class TestCommunityAnonymizer:
    def _anon(self):
        return CommunityAnonymizer(b"community-salt")

    def test_asn_half_uses_asn_permutation(self):
        anon = self._anon()
        mapped = anon.map_community("701:1234")
        left = int(mapped.split(":")[0])
        assert left == anon.asn_map.map_asn(701)

    def test_value_half_permuted(self):
        anon = self._anon()
        mapped = anon.map_community("701:1234")
        right = int(mapped.split(":")[1])
        assert right == anon.map_value(1234)

    def test_private_asn_half_kept(self):
        anon = self._anon()
        mapped = anon.map_community("65000:99")
        assert mapped.startswith("65000:")

    def test_value_consistency(self):
        anon = self._anon()
        a = anon.map_community("701:7100").split(":")[1]
        b = anon.map_community("1239:7100").split(":")[1]
        assert a == b  # same value half maps identically across ASNs

    def test_well_known_pass(self):
        anon = self._anon()
        for keyword in ("no-export", "no-advertise", "local-AS", "internet"):
            assert anon.map_community(keyword) == keyword

    def test_old_style_decimal(self):
        anon = self._anon()
        raw = (701 << 16) | 1234
        mapped = int(anon.map_community(str(raw)))
        assert mapped >> 16 == anon.asn_map.map_asn(701)
        assert mapped & 0xFFFF == anon.map_value(1234)

    def test_non_community_tokens_unchanged(self):
        anon = self._anon()
        assert anon.map_community("additive") == "additive"
        assert anon.map_community("70000:1") == "70000:1"[:7] or True  # out of range kept
        assert anon.map_community("abc:def") == "abc:def"

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_value_round_trip(self, value):
        anon = self._anon()
        assert anon.unmap_value(anon.map_value(value)) == value

    def test_value_bijection_sample(self):
        anon = self._anon()
        outputs = {anon.map_value(v) for v in range(4096)}
        assert len(outputs) == 4096
