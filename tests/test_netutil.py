"""Unit and property tests for the IPv4 utility layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import netutil


class TestIpConversion:
    def test_round_trip_known(self):
        assert netutil.ip_to_int("1.2.3.4") == 0x01020304
        assert netutil.int_to_ip(0x01020304) == "1.2.3.4"

    def test_extremes(self):
        assert netutil.ip_to_int("0.0.0.0") == 0
        assert netutil.ip_to_int("255.255.255.255") == 0xFFFFFFFF
        assert netutil.int_to_ip(0) == "0.0.0.0"

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "", "1..2.3", "1.2.3.999"]
    )
    def test_rejects_bad_addresses(self, bad):
        with pytest.raises(ValueError):
            netutil.ip_to_int(bad)

    def test_int_out_of_range(self):
        with pytest.raises(ValueError):
            netutil.int_to_ip(-1)
        with pytest.raises(ValueError):
            netutil.int_to_ip(1 << 32)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_round_trip_property(self, value):
        assert netutil.ip_to_int(netutil.int_to_ip(value)) == value

    def test_is_ipv4(self):
        assert netutil.is_ipv4("10.0.0.1")
        assert not netutil.is_ipv4("10.0.0")
        assert not netutil.is_ipv4("hostname")


class TestMasks:
    def test_mask_for_len(self):
        assert netutil.mask_for_len(0) == 0
        assert netutil.mask_for_len(8) == 0xFF000000
        assert netutil.mask_for_len(24) == 0xFFFFFF00
        assert netutil.mask_for_len(32) == 0xFFFFFFFF

    def test_mask_for_len_rejects(self):
        with pytest.raises(ValueError):
            netutil.mask_for_len(33)

    @given(st.integers(min_value=0, max_value=32))
    def test_mask_round_trip(self, length):
        assert netutil.mask_to_len(netutil.mask_for_len(length)) == length

    def test_mask_to_len_non_contiguous(self):
        assert netutil.mask_to_len(netutil.ip_to_int("255.0.255.0")) is None

    def test_wildcard_to_len(self):
        assert netutil.wildcard_to_len(netutil.ip_to_int("0.0.0.255")) == 24
        assert netutil.wildcard_to_len(netutil.ip_to_int("0.255.255.255")) == 8
        assert netutil.wildcard_to_len(netutil.ip_to_int("255.0.0.0")) is None


class TestClassful:
    @pytest.mark.parametrize(
        "address,expected",
        [
            ("1.0.0.0", "A"),
            ("126.255.0.0", "A"),
            ("128.0.0.0", "B"),
            ("191.255.0.0", "B"),
            ("192.0.0.0", "C"),
            ("223.255.255.255", "C"),
            ("224.0.0.1", "D"),
            ("240.0.0.1", "E"),
        ],
    )
    def test_address_class(self, address, expected):
        assert netutil.address_class(netutil.ip_to_int(address)) == expected

    def test_classful_prefix_len(self):
        assert netutil.classful_prefix_len(netutil.ip_to_int("10.1.2.3")) == 8
        assert netutil.classful_prefix_len(netutil.ip_to_int("150.1.2.3")) == 16
        assert netutil.classful_prefix_len(netutil.ip_to_int("200.1.2.3")) == 24


class TestMisc:
    def test_trailing_zero_bits(self):
        assert netutil.trailing_zero_bits(0) == 32
        assert netutil.trailing_zero_bits(netutil.ip_to_int("10.0.0.0")) == 25
        assert netutil.trailing_zero_bits(netutil.ip_to_int("1.1.1.0")) == 8
        assert netutil.trailing_zero_bits(1) == 0

    def test_network_address(self):
        assert netutil.network_address(netutil.ip_to_int("10.1.2.3"), 24) == (
            netutil.ip_to_int("10.1.2.0")
        )

    def test_rfc1918(self):
        assert netutil.is_private_rfc1918(netutil.ip_to_int("10.200.1.1"))
        assert netutil.is_private_rfc1918(netutil.ip_to_int("172.16.0.1"))
        assert netutil.is_private_rfc1918(netutil.ip_to_int("172.31.255.255"))
        assert netutil.is_private_rfc1918(netutil.ip_to_int("192.168.44.1"))
        assert not netutil.is_private_rfc1918(netutil.ip_to_int("172.32.0.1"))
        assert not netutil.is_private_rfc1918(netutil.ip_to_int("11.0.0.1"))

    def test_parse_prefix(self):
        assert netutil.parse_prefix("1.2.3.0/24") == (netutil.ip_to_int("1.2.3.0"), 24)
        with pytest.raises(ValueError):
            netutil.parse_prefix("1.2.3.0")
        with pytest.raises(ValueError):
            netutil.parse_prefix("1.2.3.0/40")
