"""Tests for prefix-preserving IP anonymization — the paper's key
algorithmic invariants (Section 4.3), several property-based."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cryptopan import CryptoPanMap
from repro.core.ipanon import PrefixPreservingMap, SpecialAddresses
from repro.netutil import address_class, ip_to_int, int_to_ip, trailing_zero_bits

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)
unicast = st.integers(min_value=0x01000000, max_value=0xDFFFFFFF)


def shared_prefix_len(a: int, b: int) -> int:
    xor = a ^ b
    if xor == 0:
        return 32
    return 32 - xor.bit_length()


class TestSpecialAddresses:
    def test_netmasks_are_special(self):
        specials = SpecialAddresses()
        for text in ("255.255.255.0", "255.255.255.252", "255.0.0.0",
                     "0.0.0.0", "255.255.255.255"):
            assert ip_to_int(text) in specials

    def test_inverse_masks_are_special(self):
        specials = SpecialAddresses()
        for text in ("0.0.0.255", "0.0.0.3", "0.255.255.255"):
            assert ip_to_int(text) in specials

    def test_multicast_special_loopback_optional(self):
        specials = SpecialAddresses()
        assert ip_to_int("224.0.0.5") in specials
        assert ip_to_int("239.1.2.3") in specials
        # Loopback is opt-in (the paper's set is masks + multicast).
        assert ip_to_int("127.0.0.1") not in specials
        assert ip_to_int("127.0.0.1") in SpecialAddresses(include_loopback=True)

    def test_ordinary_addresses_not_special(self):
        specials = SpecialAddresses()
        for text in ("10.1.2.3", "6.0.0.1", "192.168.1.1", "128.32.5.9"):
            assert ip_to_int(text) not in specials

    def test_why_special(self):
        specials = SpecialAddresses(include_loopback=True)
        assert specials.why_special(ip_to_int("255.255.0.0")) == "mask-or-configured"
        assert specials.why_special(ip_to_int("224.0.0.1")) == "multicast-or-reserved"
        assert specials.why_special(ip_to_int("127.1.1.1")) == "loopback"
        assert specials.why_special(ip_to_int("10.0.0.1")) is None

    def test_extra_values(self):
        specials = SpecialAddresses(extra=[ip_to_int("10.9.9.9")])
        assert ip_to_int("10.9.9.9") in specials

    def test_families_can_be_disabled(self):
        specials = SpecialAddresses(include_multicast=False)
        assert ip_to_int("224.0.0.5") not in specials
        assert ip_to_int("127.0.0.1") not in specials


class TestRawTrieMap:
    def test_deterministic_same_salt(self):
        a = PrefixPreservingMap(b"k")
        b = PrefixPreservingMap(b"k")
        for text in ("10.0.0.1", "1.2.3.4", "200.1.1.1"):
            assert a.map_address(text) == b.map_address(text)

    def test_different_salts_differ(self):
        a = PrefixPreservingMap(b"k1")
        b = PrefixPreservingMap(b"k2")
        diffs = sum(
            a.map_address(t) != b.map_address(t)
            for t in ("10.0.0.1", "1.2.3.4", "200.1.1.1", "6.7.8.9")
        )
        assert diffs >= 3  # overwhelming probability

    @settings(max_examples=60, deadline=None)
    @given(st.lists(addresses, min_size=2, max_size=40, unique=True))
    def test_raw_map_injective(self, values):
        mapping = PrefixPreservingMap(b"prop")
        outputs = [mapping.raw_map(v) for v in values]
        assert len(set(outputs)) == len(values)

    @settings(max_examples=80, deadline=None)
    @given(a=addresses, b=addresses)
    def test_prefix_preserving_property(self, a, b):
        """shared_prefix(map(a), map(b)) == shared_prefix(a, b) exactly."""
        mapping = PrefixPreservingMap(b"prop", preserve_specials=False)
        ma, mb = mapping.raw_map(a), mapping.raw_map(b)
        assert shared_prefix_len(ma, mb) == shared_prefix_len(a, b)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            PrefixPreservingMap(b"k").raw_map(-1)
        with pytest.raises(ValueError):
            PrefixPreservingMap(b"k").raw_map(1 << 32)


class TestClassPreservation:
    @settings(max_examples=100, deadline=None)
    @given(addresses)
    def test_class_preserved(self, value):
        mapping = PrefixPreservingMap(b"cls", preserve_specials=False)
        assert address_class(mapping.raw_map(value)) == address_class(value)

    def test_can_be_disabled(self):
        mapping = PrefixPreservingMap(b"cls2", class_preserving=False,
                                      preserve_specials=False, subnet_shaping=False)
        changed = sum(
            address_class(mapping.raw_map(v)) != address_class(v)
            for v in range(0x01000000, 0x01000000 + 256)
        )
        # With a free top bit roughly half of class-A inputs leave class A.
        assert changed > 0


class TestSpecialHandling:
    def test_specials_are_fixed_points(self):
        mapping = PrefixPreservingMap(b"fix")
        for text in ("255.255.255.0", "0.0.0.255", "224.0.0.5",
                     "0.0.0.0", "255.255.255.255"):
            assert mapping.map_address(text) == text

    def test_loopback_fixed_when_opted_in(self):
        mapping = PrefixPreservingMap(
            b"fix", specials=SpecialAddresses(include_loopback=True)
        )
        assert mapping.map_address("127.0.0.1") == "127.0.0.1"

    def test_exact_prefix_preservation_with_default_specials(self):
        import random as _random

        rng = _random.Random(1)
        mapping = PrefixPreservingMap(b"exact")
        values = [rng.randrange(0x01000000, 0xDF000000) for _ in range(4000)]
        mapped = {v: mapping.map_int(v) for v in set(values)}
        assert mapping.collision_walks == 0
        pairs = list(mapped.items())[:500]
        for (a, ma) in pairs:
            b, mb = pairs[(hash(a) % len(pairs))]
            xor_in, xor_out = a ^ b, ma ^ mb
            assert xor_in.bit_length() == xor_out.bit_length()

    def test_output_never_special_with_walk_policy(self):
        mapping = PrefixPreservingMap(b"out", collision_policy="walk")
        specials = mapping.specials
        for value in range(0x06000000, 0x06000000 + 2000, 7):
            assert mapping.map_int(value) not in specials

    def test_allow_policy_keeps_prefix_relations_always(self):
        # The default policy: even the unlucky /8-base case (the one that
        # breaks the walk policy) keeps exact prefix structure.
        mapping = PrefixPreservingMap(b"allow-pol")
        base = mapping.map_int(ip_to_int("10.0.0.0"))
        host = mapping.map_int(ip_to_int("10.0.0.5"))
        assert shared_prefix_len(base, host) >= 29

    def test_collision_policy_validated(self):
        with pytest.raises(ValueError):
            PrefixPreservingMap(b"x", collision_policy="bogus")

    @settings(max_examples=40, deadline=None)
    @given(st.lists(unicast, min_size=2, max_size=50, unique=True))
    def test_bijection_with_cycle_walking(self, values):
        mapping = PrefixPreservingMap(b"bij", collision_policy="walk")
        nonspecial = [v for v in values if v not in mapping.specials]
        outputs = [mapping.map_int(v) for v in nonspecial]
        assert len(set(outputs)) == len(nonspecial)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(unicast, min_size=2, max_size=50, unique=True))
    def test_injective_under_allow_policy(self, values):
        mapping = PrefixPreservingMap(b"bij2")
        nonspecial = [v for v in values if v not in mapping.specials]
        outputs = [mapping.map_int(v) for v in nonspecial]
        assert len(set(outputs)) == len(nonspecial)

    def test_collision_counters(self):
        # Class-A inputs can collide with inverse masks (0.x.y.z region):
        # hammer the 0/1 boundary region to exercise both policies.
        walker = PrefixPreservingMap(b"walk", collision_policy="walk")
        allower = PrefixPreservingMap(b"walk", collision_policy="allow")
        for value in range(1, 40000, 11):
            walker.map_int(value)
            allower.map_int(value)
        assert walker.collision_walks >= 0
        assert allower.collision_walks == 0
        assert walker.map_int(23) == walker.map_int(23)


class TestSubnetShaping:
    def test_subnet_address_maps_to_subnet_address(self):
        mapping = PrefixPreservingMap(b"shape")
        # Insert the subnet address FIRST (the paper's best-effort case).
        mapped = mapping.map_address("10.1.1.0")
        assert trailing_zero_bits(ip_to_int(mapped)) >= 8

    def test_hosts_follow_shaped_subnet(self):
        mapping = PrefixPreservingMap(b"shape2")
        subnet = ip_to_int(mapping.map_address("10.1.1.0"))
        host = ip_to_int(mapping.map_address("10.1.1.5"))
        assert shared_prefix_len(subnet, host) >= 24

    def test_shaping_can_be_disabled(self):
        mapping = PrefixPreservingMap(b"shape3", subnet_shaping=False)
        shaped = sum(
            trailing_zero_bits(ip_to_int(mapping.map_address("10.{}.0.0".format(i)))) >= 16
            for i in range(1, 30)
        )
        assert shaped < 10  # random tails rarely have 16 zero bits

    def test_min_zeros_threshold(self):
        mapping = PrefixPreservingMap(b"shape4", subnet_shaping_min_zeros=2)
        mapped = ip_to_int(mapping.map_address("10.1.1.4"))  # /30 base
        assert trailing_zero_bits(mapped) >= 2


class TestPrefixHelpers:
    def test_map_prefix_keeps_length(self):
        mapping = PrefixPreservingMap(b"p")
        out = mapping.map_prefix("10.1.1.0/24")
        assert out.endswith("/24")

    def test_map_prefix_requires_slash(self):
        with pytest.raises(ValueError):
            PrefixPreservingMap(b"p").map_prefix("10.1.1.0")

    def test_stats(self):
        mapping = PrefixPreservingMap(b"p")
        mapping.map_address("10.0.0.1")
        assert mapping.addresses_mapped == 1
        assert mapping.nodes_created > 0


class TestCryptoPan:
    def test_stateless_consistency(self):
        a = CryptoPanMap(b"k")
        b = CryptoPanMap(b"k")
        # Map in different orders: outputs must agree (the paper's point
        # about Xu's scheme needing little shared state).
        addrs = ["10.0.0.1", "1.2.3.4", "6.6.6.6", "150.20.3.9"]
        out_a = {t: a.map_address(t) for t in addrs}
        out_b = {t: b.map_address(t) for t in reversed(addrs)}
        assert out_a == out_b

    @settings(max_examples=60, deadline=None)
    @given(a=addresses, b=addresses)
    def test_prefix_preserving(self, a, b):
        mapping = CryptoPanMap(b"prop", preserve_specials=False)
        assert shared_prefix_len(mapping.raw_map(a), mapping.raw_map(b)) == (
            shared_prefix_len(a, b)
        )

    @settings(max_examples=60, deadline=None)
    @given(addresses)
    def test_class_preserved(self, value):
        mapping = CryptoPanMap(b"cls", preserve_specials=False)
        assert address_class(mapping.raw_map(value)) == address_class(value)

    def test_specials_fixed(self):
        mapping = CryptoPanMap(b"fix")
        assert mapping.map_address("255.255.0.0") == "255.255.0.0"
        assert mapping.map_address("224.1.2.3") == "224.1.2.3"

    def test_no_insertion_order_dependence_vs_trie(self):
        # The trie map's subnet shaping depends on insertion order; the
        # crypto map's output for one address never does.
        trie1 = PrefixPreservingMap(b"o")
        trie2 = PrefixPreservingMap(b"o")
        trie1.map_address("10.1.1.5")     # host first
        trie1_sub = trie1.map_address("10.1.1.0")
        trie2_sub = trie2.map_address("10.1.1.0")  # subnet first
        crypto1 = CryptoPanMap(b"o")
        crypto2 = CryptoPanMap(b"o")
        crypto1.map_address("10.1.1.5")
        assert crypto1.map_address("10.1.1.0") == crypto2.map_address("10.1.1.0")
        # (the trie outputs may or may not differ; both stay valid mappings)
        assert trie1_sub != "" and trie2_sub != ""
