"""Tests for the recognizer plugin registry (src/repro/plugins/).

Four contract groups:

* **Registry** — discovery is fail-soft (broken plugins are skipped with
  a named warning), activation by unknown family is a hard error, and
  out-of-tree files load via ``REPRO_PLUGINS``.
* **Dispatch** — every plugin rule's trigger is a necessary condition of
  its pattern (the compiled-dispatch prefilter contract), checked as a
  property over a corpus that exercises every plugin rule.
* **IPv6** — the 128-bit trie preserves common-prefix length at *every*
  bit depth, renders RFC 5952 canonical text, and passes specials
  through.
* **Round trip** — a generated EOS + IPv6 corpus anonymizes with zero
  textual leaks and with all pairwise prefix relationships intact; the
  frozen plugin set is pinned in snapshots, state docs, and journals.
"""

from __future__ import annotations

import itertools
import warnings
from pathlib import Path

import pytest

from repro.core import Anonymizer, AnonymizerConfig
from repro.core.ipanon import Prefix6PreservingMap
from repro.core.line import SegmentedLine
from repro.core.parallel import FrozenSnapshot
from repro.core.rulebase import Rule, compile_gate
from repro.core.runner import salt_fingerprint
from repro.core.state import StateError, export_state, import_state
from repro.core.status import EXIT_UNKNOWN_PLUGIN
from repro.attacks.textual import scan_for_leaks
from repro.iosgen import NetworkSpec, generate_network
from repro.netutil import int_to_ip6, ip6_to_int
from repro.plugins.base import RecognizerPlugin
from repro.plugins.registry import (
    ENV_PLUGIN_DISABLE,
    ENV_PLUGIN_PATHS,
    PluginRegistrationWarning,
    UnknownPluginError,
    discover_plugins,
    resolve_active_plugins,
)
from repro.service.journal import RecoveredSession, RecoveryError, replay_into

BUILTIN_FAMILIES = ("blobs", "eos", "ipv6")


def _eos_network():
    """A dual-stack multi-vendor corpus exercising every plugin rule."""
    spec = NetworkSpec(
        name="eos-net",
        kind="enterprise",
        seed=7,
        num_pops=2,
        eos_fraction=0.5,
    )
    return generate_network(spec)


@pytest.fixture(scope="module")
def eos_network():
    return _eos_network()


def _common_prefix_len(a: int, b: int) -> int:
    """Length of the shared leading bits of two 128-bit values."""
    if a == b:
        return 128
    return 128 - (a ^ b).bit_length()


# ---------------------------------------------------------------------------
# Registry behavior
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtin_families_discovered(self):
        available = discover_plugins()
        for family in BUILTIN_FAMILIES:
            assert family in available

    def test_unknown_family_is_hard_error(self):
        with pytest.raises(UnknownPluginError) as excinfo:
            resolve_active_plugins(["no-such-family"])
        assert "no-such-family" in str(excinfo.value)
        assert "available" in str(excinfo.value)

    def test_default_selection_is_sorted_families(self, monkeypatch):
        monkeypatch.delenv(ENV_PLUGIN_DISABLE, raising=False)
        active = [p.family for p in resolve_active_plugins()]
        assert active == sorted(active)
        for family in BUILTIN_FAMILIES:
            assert family in active

    def test_disable_env_prunes_default_selection(self, monkeypatch):
        monkeypatch.setenv(ENV_PLUGIN_DISABLE, "ipv6")
        active = [p.family for p in resolve_active_plugins()]
        assert "ipv6" not in active
        assert "eos" in active
        # An explicit selection overrides the disable list.
        explicit = [p.family for p in resolve_active_plugins(["ipv6"])]
        assert explicit == ["ipv6"]

    def test_broken_plugin_skipped_with_named_warning(
        self, tmp_path, monkeypatch
    ):
        broken = tmp_path / "broken_plugin.py"
        broken.write_text("raise RuntimeError('boom at import time')\n")
        monkeypatch.setenv(ENV_PLUGIN_PATHS, str(broken))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            available = discover_plugins(refresh=True)
        messages = [
            str(w.message)
            for w in caught
            if issubclass(w.category, PluginRegistrationWarning)
        ]
        assert any(str(broken) in m and "boom" in m for m in messages)
        # A broken plugin degrades coverage; it never takes down the rest.
        for family in BUILTIN_FAMILIES:
            assert family in available

    def test_plugin_without_export_skipped(self, tmp_path, monkeypatch):
        empty = tmp_path / "no_export.py"
        empty.write_text("x = 1\n")
        monkeypatch.setenv(ENV_PLUGIN_PATHS, str(empty))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            discover_plugins(refresh=True)
        assert any(
            issubclass(w.category, PluginRegistrationWarning)
            and "no PLUGIN" in str(w.message)
            for w in caught
        )

    def test_duplicate_family_skipped(self, tmp_path, monkeypatch):
        clash = tmp_path / "clash.py"
        clash.write_text(
            "from repro.plugins.base import RecognizerPlugin\n"
            "class Clash(RecognizerPlugin):\n"
            "    family = 'ipv6'\n"
            "PLUGIN = Clash()\n"
        )
        monkeypatch.setenv(ENV_PLUGIN_PATHS, str(clash))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            available = discover_plugins(refresh=True)
        assert any(
            issubclass(w.category, PluginRegistrationWarning)
            and "already registered" in str(w.message)
            for w in caught
        )
        # The builtin ipv6 plugin (registered first) wins.
        assert type(available["ipv6"]).__name__ == "IPv6Plugin"

    def test_out_of_tree_plugin_activates(self, tmp_path, monkeypatch):
        example = tmp_path / "example_plugin.py"
        example.write_text(
            "import re\n"
            "from repro.core.rulebase import Rule\n"
            "from repro.plugins.base import RecognizerPlugin\n"
            "PATTERN = re.compile(r'(\\bexample-token )(\\S+)')\n"
            "def _apply(line, ctx):\n"
            "    def handler(match):\n"
            "        return [(match.group(1), True),\n"
            "                (ctx.hash_secret(match.group(2)), True)]\n"
            "    return line.apply_rule(PATTERN, handler)\n"
            "class Example(RecognizerPlugin):\n"
            "    family = 'example'\n"
            "    rule_prefix = 'Z'\n"
            "    def build_rules(self):\n"
            "        return [Rule('Z1', 'example', 'misc', 'example rule',\n"
            "                     _apply, trigger='example-token')]\n"
            "PLUGIN = Example()\n"
        )
        monkeypatch.setenv(ENV_PLUGIN_PATHS, str(example))
        discover_plugins(refresh=True)
        engine = Anonymizer(
            AnonymizerConfig(salt=b"oot", plugins=("example",))
        )
        assert engine.active_plugin_families == ("example",)
        out, _ = engine.anonymize_file(
            "example-token hunter2\n", source="r1.cfg"
        )
        assert "hunter2" not in out


# ---------------------------------------------------------------------------
# Dispatch contract
# ---------------------------------------------------------------------------


class TestDispatchContract:
    def test_plugin_rule_fires_implies_gate_passes(self, eos_network):
        """Property over a dual-stack corpus: whenever a plugin rule
        rewrites a line, its compiled trigger gate accepts that line."""
        reference = Anonymizer(
            AnonymizerConfig(salt=b"gate6", plugins=BUILTIN_FAMILIES)
        )
        lines = set()
        for text in eos_network.configs.values():
            lines.update(text.splitlines())
        lines.update(
            [
                " IPV6 address 2001:DB8::1/64",
                "enable secret sha512 $6$aaaa$bbbb",
                "   match as-range 64500-64510",
                " protocol https certificate a.crt key a.key",
                "username ops sshkey ssh-rsa AAAAB3NzaC1yc2EAAAADAQ ops@x",
                "snmp-server user ops grp v3 auth sha pw priv aes 128 pw2",
                "no rules here at all",
            ]
        )
        plugin_rules = [
            rule for rule in reference.rules if rule.rule_id[0] in "VBE"
        ]
        assert plugin_rules, "plugin rules must be composed into the engine"
        for rule in plugin_rules:
            if rule.apply is None:
                continue
            gate = compile_gate(rule.trigger)
            if gate is None:
                continue
            for raw_line in lines:
                ctx = reference._make_context("gate6")
                hits = rule.apply(SegmentedLine(raw_line), ctx)
                if hits:
                    assert gate(raw_line.lower()), (
                        "plugin rule {} fired on {!r} but its prefilter "
                        "gate rejected the line".format(rule.rule_id, raw_line)
                    )

    def test_too_narrow_trigger_is_detected_by_the_property(self):
        """A rule whose trigger misses lines its pattern rewrites fails
        the superset property — the exact bug the contract exists for."""
        import re

        pattern = re.compile(r"(\bsecret )(\S+)")

        def _apply(line, ctx):
            def handler(match):
                return [(match.group(1), True), ("X", True)]

            return line.apply_rule(pattern, handler)

        bad = Rule(
            "X9",
            "bad-trigger",
            "misc",
            "trigger is not a necessary condition of the pattern",
            _apply,
            trigger="zzz-never-there",
        )
        gate = compile_gate(bad.trigger)
        ctx = Anonymizer(salt=b"narrow")._make_context("t")
        line_text = "enable secret hunter2"
        hits = bad.apply(SegmentedLine(line_text), ctx)
        assert hits  # the pattern rewrites the line ...
        assert not gate(line_text.lower())  # ... but the gate rejects it

    def test_plugin_rules_precede_builtin_rules(self):
        engine = Anonymizer(
            AnonymizerConfig(salt=b"order", plugins=BUILTIN_FAMILIES)
        )
        applied = [r.rule_id for r in engine.rules if r.apply is not None]
        first_builtin = min(
            i for i, rid in enumerate(applied) if rid.startswith("R")
        )
        plugin_positions = [
            i for i, rid in enumerate(applied) if rid[0] in "VBE"
        ]
        assert plugin_positions and max(plugin_positions) < first_builtin


# ---------------------------------------------------------------------------
# CLI flags
# ---------------------------------------------------------------------------


class TestCliPluginFlags:
    def _write_corpus(self, tmp_path) -> str:
        config = tmp_path / "r1.cfg"
        config.write_text("router bgp 701\n")
        return str(config)

    def test_unknown_plugin_distinct_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_corpus(tmp_path)
        rc = main([path, "--salt", "s", "--plugins", "nonexistent"])
        assert rc == EXIT_UNKNOWN_PLUGIN
        err = capsys.readouterr().err
        assert "nonexistent" in err and "available" in err

    def test_no_plugins_runs_clean(self, tmp_path):
        from repro.cli import main

        path = self._write_corpus(tmp_path)
        out_dir = tmp_path / "out"
        assert (
            main([path, "--salt", "s", "--no-plugins",
                  "--out-dir", str(out_dir)])
            == 0
        )

    def test_plugins_and_no_plugins_conflict(self, tmp_path):
        from repro.cli import main

        path = self._write_corpus(tmp_path)
        with pytest.raises(SystemExit):
            main([path, "--salt", "s", "--plugins", "ipv6", "--no-plugins"])


# ---------------------------------------------------------------------------
# IPv6 prefix preservation
# ---------------------------------------------------------------------------


class TestIPv6PrefixPreservation:
    def test_common_prefix_preserved_at_every_bit_length(self):
        """For each k in 0..128: addresses sharing *exactly* k leading
        bits map to addresses sharing exactly k leading bits."""
        mapper = Prefix6PreservingMap(b"v6-prop")
        base = ip6_to_int("2001:db8:85a3:8d3:1319:8a2e:370:7344")
        for k in range(128):
            other = base ^ (1 << (127 - k))
            assert _common_prefix_len(base, other) == k
            mapped_base = mapper.map_int(base)
            mapped_other = mapper.map_int(other)
            assert _common_prefix_len(mapped_base, mapped_other) == k, (
                "common prefix of length {} not preserved".format(k)
            )
        # k == 128: equal inputs map equally (it is a function).
        assert mapper.map_int(base) == mapper.map_int(base)

    def test_output_is_rfc5952_canonical(self):
        import ipaddress

        mapper = Prefix6PreservingMap(b"v6-canon")
        for text in (
            "2001:db8::1",
            "2001:0DB8:0000:0000:0000:0000:0000:0001",
            "2001:db8:0:0:0:0:0:1",
        ):
            mapped = mapper.map_address(text)
            assert mapped == str(ipaddress.IPv6Address(mapped))
        # One address, three spellings, one output: cross-file consistency.
        outputs = {
            mapper.map_address("2001:db8::1"),
            mapper.map_address("2001:0DB8::0001"),
            mapper.map_address("2001:db8:0:0:0:0:0:1"),
        }
        assert len(outputs) == 1

    def test_specials_pass_through(self):
        mapper = Prefix6PreservingMap(b"v6-special")
        for text in ("::", "::1", "ff02::1", "ff05::2"):
            assert mapper.map_address(text) == text

    def test_frozen_map_is_order_independent(self):
        addresses = [
            "2001:db8::1",
            "2001:db8::2",
            "2001:db8:1::",
            "fd00::5",
            "2620:0:2d0:200::7",
        ]
        first = Prefix6PreservingMap(b"frz6")
        first.freeze()
        second = Prefix6PreservingMap(b"frz6")
        second.freeze()
        forward = [first.map_address(a) for a in addresses]
        backward = [second.map_address(a) for a in reversed(addresses)]
        assert forward == list(reversed(backward))

    def test_subnet_shaping_pins_zero_tails(self):
        mapper = Prefix6PreservingMap(b"shape6", subnet_shaping=True)
        anchor = ip6_to_int("2001:db8:17::")  # 80 trailing zero bits
        mapped = mapper.map_int(anchor)
        assert mapped & ((1 << 80) - 1) == 0
        assert int_to_ip6(mapped).endswith("::")


# ---------------------------------------------------------------------------
# Blob fail-closed behavior
# ---------------------------------------------------------------------------


class TestBlobFailClosed:
    def test_unterminated_pem_never_leaks_partial_material(self):
        text = (
            "hostname r1.corp.example\n"
            "-----BEGIN CERTIFICATE-----\n"
            "MIIBpartialKeyMaterialThatMustNotSurvive+base64==\n"
        )
        engine = Anonymizer(
            AnonymizerConfig(salt=b"blob", plugins=("blobs",))
        )
        out, _ = engine.anonymize_file(text, source="r1.cfg")
        assert "MIIBpartialKeyMaterial" not in out
        assert "BEGIN CERTIFICATE" not in out
        assert "REPRO-BLOB-PARTIAL" in out

    def test_complete_pem_replaced_by_digest_placeholder(self):
        text = (
            "hostname r1.corp.example\n"
            "-----BEGIN CERTIFICATE-----\n"
            "MIIBCompleteBlockOfKeyMaterial+base64lines==\n"
            "-----END CERTIFICATE-----\n"
            "router bgp 701\n"
        )
        engine = Anonymizer(
            AnonymizerConfig(salt=b"blob", plugins=("blobs",))
        )
        out, _ = engine.anonymize_file(text, source="r1.cfg")
        assert "MIIBComplete" not in out
        assert "REPRO-PEM-BLOB" in out
        assert "router bgp" in out  # the rest of the file still flows


# ---------------------------------------------------------------------------
# EOS + IPv6 corpus round trip
# ---------------------------------------------------------------------------


class TestEosCorpusRoundTrip:
    def test_zero_textual_leaks(self, eos_network):
        anonymizer = Anonymizer(
            AnonymizerConfig(salt=b"eos-e2e", plugins=BUILTIN_FAMILIES)
        )
        result = anonymizer.anonymize_network(
            dict(eos_network.configs), two_pass=True
        )
        report = anonymizer.report
        leaks = scan_for_leaks(
            result.configs,
            seen_asns=report.seen_asns,
            hashed_tokens=anonymizer.hasher.hashed_inputs.keys(),
            public_ips=report.seen_public_ips,
        )
        assert leaks == []

    def test_original_ipv6_literals_absent_from_output(self, eos_network):
        from repro.plugins.builtin.ipv6 import CANDIDATE_RE

        anonymizer = Anonymizer(
            AnonymizerConfig(salt=b"eos-e2e", plugins=BUILTIN_FAMILIES)
        )
        result = anonymizer.anonymize_network(
            dict(eos_network.configs), two_pass=True
        )
        originals = set()
        for text in eos_network.configs.values():
            for match in CANDIDATE_RE.finditer(text):
                token = match.group(1)
                if token.count(":") >= 2:
                    try:
                        originals.add(ip6_to_int(token))
                    except ValueError:
                        continue
        assert originals, "the EOS corpus must actually carry IPv6"
        joined = "\n".join(result.configs.values())
        for value in originals:
            if anonymizer.ip6_map.is_special(value):
                continue
            assert int_to_ip6(value) not in joined

    def test_corpus_prefix_relationships_preserved(self, eos_network):
        from repro.plugins.builtin.ipv6 import CANDIDATE_RE

        anonymizer = Anonymizer(
            AnonymizerConfig(salt=b"eos-e2e", plugins=BUILTIN_FAMILIES)
        )
        anonymizer.anonymize_network(dict(eos_network.configs), two_pass=True)
        values = set()
        for text in eos_network.configs.values():
            for match in CANDIDATE_RE.finditer(text):
                token = match.group(1)
                if token.count(":") >= 2:
                    try:
                        value = ip6_to_int(token)
                    except ValueError:
                        continue
                    if not anonymizer.ip6_map.is_special(value):
                        values.add(value)
        assert len(values) > 10
        mapped = {v: anonymizer.ip6_map.map_int(v) for v in values}
        for a, b in itertools.combinations(sorted(values), 2):
            assert _common_prefix_len(a, b) == _common_prefix_len(
                mapped[a], mapped[b]
            )

    def test_plugin_rules_all_fire_on_the_corpus(self, eos_network):
        anonymizer = Anonymizer(
            AnonymizerConfig(salt=b"eos-e2e", plugins=BUILTIN_FAMILIES)
        )
        anonymizer.anonymize_network(dict(eos_network.configs), two_pass=True)
        hits = anonymizer.report.rule_hits
        for rule_id in ("V1", "E1", "E2", "E3", "B1", "B2", "B3"):
            assert hits.get(rule_id, 0) > 0, (
                "{} never fired on the EOS corpus".format(rule_id)
            )


# ---------------------------------------------------------------------------
# Plugin-set pinning: snapshots, state docs, journals
# ---------------------------------------------------------------------------


class TestPluginSetPinning:
    def test_snapshot_pins_plugin_set_against_worker_env(self, monkeypatch):
        monkeypatch.delenv(ENV_PLUGIN_DISABLE, raising=False)
        parent = Anonymizer(AnonymizerConfig(salt=b"pin"))
        assert "ipv6" in parent.active_plugin_families
        parent.freeze_mappings(
            {"r1.cfg": "interface Loopback0\n ipv6 address 2001:db8::7/64\n"}
        )
        expected = parent.ip6_map.map_address("2001:db8::7")
        snapshot = FrozenSnapshot.capture(parent)
        # A worker whose environment would drop ipv6 from the default set
        # must still restore the frozen composition.
        monkeypatch.setenv(ENV_PLUGIN_DISABLE, "ipv6")
        restored = snapshot.restore()
        assert restored.active_plugin_families == parent.active_plugin_families
        assert restored.ip6_map is not None
        assert restored.ip6_map.frozen
        assert restored.ip6_map.map_address("2001:db8::7") == expected

    def test_state_doc_records_and_restores_ip6_trie(self):
        first = Anonymizer(
            AnonymizerConfig(salt=b"st6", plugins=BUILTIN_FAMILIES)
        )
        first.ip6_map.map_address("2001:db8:85a3::8a2e:370:7334")
        first.ip6_map.map_address("2001:db8:85a3::1")
        document = export_state(first)
        assert sorted(document["active_plugins"]) == sorted(
            first.active_plugin_families
        )
        second = Anonymizer(
            AnonymizerConfig(salt=b"st6", plugins=BUILTIN_FAMILIES)
        )
        import_state(second, document)
        assert second.ip6_map._flips == first.ip6_map._flips
        assert (
            second.ip6_map.addresses_mapped == first.ip6_map.addresses_mapped
        )

    def test_state_import_refuses_plugin_mismatch(self):
        exporter = Anonymizer(
            AnonymizerConfig(salt=b"st-mismatch", plugins=("ipv6",))
        )
        document = export_state(exporter)
        importer = Anonymizer(
            AnonymizerConfig(salt=b"st-mismatch", plugins=())
        )
        with pytest.raises(StateError) as excinfo:
            import_state(importer, document)
        assert "plugins" in str(excinfo.value)

    def test_legacy_state_doc_without_plugin_field_imports(self):
        exporter = Anonymizer(AnonymizerConfig(salt=b"legacy"))
        document = export_state(exporter)
        document.pop("active_plugins")
        document.pop("ip6_trie", None)
        document.pop("ip6_rng_state", None)
        document.pop("ip6_counters", None)
        importer = Anonymizer(AnonymizerConfig(salt=b"legacy"))
        import_state(importer, document)  # must not raise

    def test_journal_replay_refuses_plugin_mismatch(self, tmp_path):
        salt = b"journal-pin"
        recovered = RecoveredSession(
            session_id="s1",
            directory=Path(tmp_path),
            meta={
                "salt_fingerprint": salt_fingerprint(salt),
                "active_plugins": ["blobs", "eos", "ipv6"],
            },
            snapshot=None,
            records=[],
            valid_length=0,
            torn_discarded=0,
        )
        mismatched = Anonymizer(AnonymizerConfig(salt=salt, plugins=()))
        with pytest.raises(RecoveryError) as excinfo:
            replay_into(mismatched, recovered)
        assert "plugins" in str(excinfo.value)
        matching = Anonymizer(
            AnonymizerConfig(salt=salt, plugins=("blobs", "eos", "ipv6"))
        )
        outcome = replay_into(matching, recovered)
        assert outcome["requests_replayed"] == 0
