"""Direct tests for the policy-object generator (regexp shapes, numbering)."""

import random
import re

import pytest

from repro.iosgen.policies import FAMOUS_ASNS, PolicyFactory
from repro.iosgen.spec import NetworkSpec


def _factory(**flags):
    spec = NetworkSpec(name="p", seed=1, **flags)
    return PolicyFactory(spec, random.Random(7))


class TestRegexpShapes:
    def test_alternation_shape(self):
        factory = _factory(use_alternation_regexps=True)
        bundle = factory.peer_policies("uunet", 701, 65001, [(0x0A000000, 8)])
        regex = bundle.aspath_acls[0].regex
        assert "|" in regex
        assert "_701_" in regex

    def test_public_range_shape_emitted_once(self):
        factory = _factory(use_aspath_range_regexps=True, use_alternation_regexps=True)
        first = factory.peer_policies("uunet", 701, 65001, [(0x0A000000, 8)])
        second = factory.peer_policies("qwest", 209, 65001, [(0x0A000000, 8)])
        regexes = [first.aspath_acls[0].regex, second.aspath_acls[0].regex]
        ranged = [r for r in regexes if re.search(r"\[\d-\d\]", r)]
        assert len(ranged) == 1  # the flag emits exactly one range regexp
        assert ranged[0].startswith("_70[")

    def test_private_range_shape(self):
        factory = _factory(use_private_range_regexps=True, use_alternation_regexps=False)
        bundle = factory.peer_policies("uunet", 701, 65001, [(0x0A000000, 8)])
        assert bundle.aspath_acls[0].regex == "_6451[2-9]_"

    def test_plain_literal_when_no_flags(self):
        factory = _factory(use_alternation_regexps=False)
        bundle = factory.peer_policies("uunet", 701, 65001, [(0x0A000000, 8)])
        assert bundle.aspath_acls[0].regex == "_701_"

    def test_community_range_regex(self):
        factory = _factory(use_community_range_regexps=True)
        bundle = factory.peer_policies("uunet", 701, 65001, [(0x0A000000, 8)])
        expanded = [c for c in bundle.community_lists if c.expanded]
        assert expanded
        assert re.search(r"7\[1-5\]\.\.", expanded[0].body)

    def test_community_alternation_regex(self):
        factory = _factory(use_community_regexps=True)
        bundle = factory.peer_policies("uunet", 701, 65001, [(0x0A000000, 8)])
        expanded = [c for c in bundle.community_lists if c.expanded]
        assert "|" in expanded[0].body


class TestPolicyStructure:
    def test_import_export_pair(self):
        factory = _factory()
        bundle = factory.peer_policies("uunet", 701, 65001, [(0x0A000000, 8)])
        names = {c.name for c in bundle.route_maps}
        assert names == {"UUNET-import", "UUNET-export"}
        deny = [c for c in bundle.route_maps if c.action == "deny"]
        assert deny and deny[0].matches

    def test_list_numbers_unique_across_peers(self):
        factory = _factory()
        first = factory.peer_policies("uunet", 701, 65001, [(0x0A000000, 8)])
        second = factory.peer_policies("qwest", 209, 65001, [(0x0A000000, 8)])
        assert first.aspath_acls[0].number != second.aspath_acls[0].number
        assert first.community_lists[0].number != second.community_lists[0].number

    def test_export_map_matches_acl(self):
        factory = _factory()
        bundle = factory.peer_policies("uunet", 701, 65001, [(0x0A000000, 8)])
        export = [c for c in bundle.route_maps if c.name.endswith("-export")][0]
        acl_refs = [m for m in export.matches if m.startswith("ip address")]
        assert acl_refs
        referenced = acl_refs[0].split()[-1]
        assert any(str(e.number) == referenced for e in bundle.access_lists)

    def test_security_acl_terminates_with_deny(self):
        factory = _factory()
        entries = factory.security_acl([(0x0A000000, 24)])
        assert entries[-1].action == "deny"
        assert entries[-1].body == "ip any any log"

    def test_compartment_acl_blocks_probes(self):
        factory = _factory()
        entries = factory.compartment_acl([(0x0A000000, 24)])
        bodies = " ".join(e.body for e in entries)
        assert "echo" in bodies
        assert "traceroute" in bodies
        assert entries[-1].body == "ip any any"

    def test_famous_asns_are_public(self):
        assert all(1 <= asn <= 64511 for asn in FAMOUS_ASNS)
