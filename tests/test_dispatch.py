"""Tests for the compiled single-pass rule dispatch.

The contract under test (see :mod:`repro.core.dispatch`): for every
line, ``classify`` returns a **superset** of the rules whose individual
:func:`~repro.core.rulebase.compile_gate` predicates pass, in rule
application order.  Extra candidates are harmless (a rule only rewrites
where its own pattern matches); a missing candidate would silently skip
a rewrite, so the superset direction is property-tested over fuzzed
IOS/Junos-flavored lines, crafted overlap cases, and digit-shape
families.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Anonymizer, AnonymizerConfig
from repro.core.dispatch import CompiledDispatch, _literal_overlap
from repro.core.rulebase import Rule, compile_gate


@pytest.fixture(scope="module")
def anonymizer():
    return Anonymizer(salt=b"dispatch")


def _gated_ids(rules, lowered):
    """Rule ids the per-rule gates select for a lowered line (the
    reference the compiled dispatch must stay a superset of)."""
    out = []
    for rule in rules:
        gate = compile_gate(rule.trigger)
        if gate is None or gate(lowered):
            out.append(rule.rule_id)
    return out


def _assert_superset(dispatch, rules, raw_line):
    lowered = raw_line.lower()
    candidate_ids = [rule.rule_id for rule in dispatch.classify(lowered)]
    missing = set(_gated_ids(rules, lowered)) - set(candidate_ids)
    assert not missing, (
        "dispatch dropped rules {} on {!r}".format(sorted(missing), raw_line)
    )


# Realistic fragments plus noise: fuzzed lines hit trigger literals at
# arbitrary offsets, split across digits, and glued to one another.
_FRAGMENTS = st.sampled_from(
    [
        "ip address ", "network ", "router bgp ", " remote-as ",
        "set community ", "community ", "ip community-list ",
        "as-path ", "peer-as ", "neighbor ", "snmp-server community ",
        "username ", "password 7 ", " net ", "hostname ",
        "10.1.2.3", "255.255.255.0", "0.0.0.255", "192.168.255.254/30",
        "701:120", "65001", "49.0001.1720.3125.5254.00",
        "aabb.ccdd.eeff", "{", "}", ";", "[ ", " ]", '"', "!",
    ]
)

_NOISE = st.text(
    alphabet=string.ascii_letters + string.digits + " .:/-_#\"[]{};",
    max_size=12,
)

_LINES = st.lists(st.one_of(_FRAGMENTS, _NOISE), max_size=8).map("".join)


class TestSupersetContract:
    @settings(max_examples=300, deadline=None)
    @given(line=_LINES)
    def test_fuzzed_lines_ios(self, anonymizer, line):
        _assert_superset(anonymizer._dispatch_ios, anonymizer.rules, line)

    @settings(max_examples=300, deadline=None)
    @given(line=_LINES)
    def test_fuzzed_lines_junos(self, anonymizer, line):
        _assert_superset(
            anonymizer._dispatch_junos, anonymizer._junos_rules, line
        )

    def test_corpus_lines(self, anonymizer):
        from repro.iosgen import NetworkSpec, generate_network

        spec = NetworkSpec(
            name="disp-net", kind="isp", seed=7, num_pops=2,
            use_community_regexps=True,
        )
        for text in generate_network(spec).configs.values():
            for raw_line in text.splitlines():
                _assert_superset(
                    anonymizer._dispatch_ios, anonymizer.rules, raw_line
                )

    def test_every_literal_trigger_alone_and_concatenated(self, anonymizer):
        """Every literal trigger, alone, doubled, and glued to every
        other literal — the overlap-closure stress: ``finditer`` yields
        non-overlapping matches, so a literal hidden inside another
        literal's span must still be dispatched."""
        literals = []
        for rule in anonymizer._junos_rules:
            trigger = rule.trigger
            if isinstance(trigger, str):
                literals.append(trigger)
            elif isinstance(trigger, (tuple, list, frozenset, set)):
                literals.extend(trigger)
        assert literals
        dispatch = anonymizer._dispatch_junos
        rules = anonymizer._junos_rules
        for a in literals:
            _assert_superset(dispatch, rules, a)
            _assert_superset(dispatch, rules, a + a)
            for b in literals:
                _assert_superset(dispatch, rules, a + b)

    def test_digit_shape_families(self, anonymizer):
        """Lines differing only in digit runs share one memo shape and
        must all classify to supersets of their own gate verdicts."""
        templates = [
            "ip address {0}.{1}.{2}.{3} 255.255.{0}.0",
            " network {0}.{1}.0.0",
            "router bgp {0}{1}",
            "ip community-list {0} permit {1}:{2}",
            " neighbor {0}.{1}.{2}.{3} remote-as {0}",
        ]
        fills = [(10, 1, 2, 3), (192, 168, 255, 254), (7, 0, 1, 99)]
        for template in templates:
            for fill in fills:
                _assert_superset(
                    anonymizer._dispatch_ios,
                    anonymizer.rules,
                    template.format(*fill),
                )


class TestDispatchMechanics:
    def test_candidates_in_application_order(self, anonymizer):
        dispatch = anonymizer._dispatch_ios
        order = {rule.rule_id: i for i, rule in enumerate(dispatch.rules)}
        candidates = dispatch.classify(
            "ip address 10.1.2.3 255.255.255.0 network 10.0.0.0"
        )
        indices = [order[rule.rule_id] for rule in candidates]
        assert indices == sorted(indices)

    def test_memo_hit_on_digit_variants(self):
        rules = [
            Rule("T1", "t1", "t", "", lambda l, c: 0, trigger="network "),
            Rule("T2", "t2", "t", "", lambda l, c: 0, trigger="bgp "),
        ]
        dispatch = CompiledDispatch(rules)
        first = dispatch.classify("network 10.0.0.0")
        assert dispatch.memo_entries == 1
        # A digit variant shares the shape: no new memo entry, same
        # (interned) candidate tuple.
        second = dispatch.classify("network 192.168.4.0")
        assert dispatch.memo_entries == 1
        assert second is first
        assert [rule.rule_id for rule in first] == ["T1"]

    def test_memo_size_bound_respected(self):
        rules = [Rule("T1", "t1", "t", "", lambda l, c: 0, trigger="x")]
        dispatch = CompiledDispatch(rules, memo_size=2)
        for index in range(5):
            dispatch.classify("line variant {}".format("a" * index))
        assert dispatch.memo_entries <= 2
        # Past the bound, classification still works, just un-memoized.
        assert [r.rule_id for r in dispatch.classify("zzz x zzz")] == ["T1"]

    def test_disabled_dispatch_returns_all_rules(self):
        rules = [
            Rule("T1", "t1", "t", "", lambda l, c: 0, trigger="never-there"),
            Rule("T2", "t2", "t", "", lambda l, c: 0, trigger=None),
        ]
        dispatch = CompiledDispatch(rules, enabled=False)
        assert dispatch.classify("completely unrelated") == tuple(rules)

    def test_triggerless_rule_always_candidate(self, anonymizer):
        dispatch = anonymizer._dispatch_ios
        always = [r.rule_id for r in dispatch.rules if r.trigger is None]
        candidates = [r.rule_id for r in dispatch.classify("nothing here")]
        for rule_id in always:
            assert rule_id in candidates

    def test_regex_triggers_see_real_digits(self):
        """Shape collapse must not be applied to regex triggers: this
        pattern only matches a run of >= 3 digits, which the collapsed
        shape ("0") never contains."""
        import re

        rules = [
            Rule(
                "T1", "t1", "t", "", lambda l, c: 0,
                trigger=re.compile(r"\d{3,}"),
            )
        ]
        dispatch = CompiledDispatch(rules)
        assert [r.rule_id for r in dispatch.classify("seq 12345 end")] == ["T1"]
        assert dispatch.classify("seq 12 end") == ()

    def test_describe_mentions_counts(self, anonymizer):
        text = anonymizer._dispatch_ios.describe()
        assert "CompiledDispatch(" in text and "rules=" in text


class TestLiteralOverlap:
    def test_contained_literal_overlaps(self):
        assert _literal_overlap("set community ", "community ")
        assert _literal_overlap("set community ", "unity")

    def test_suffix_prefix_seam_overlaps(self):
        # An occurrence of "b" can hang off the end of a match of "ab".
        assert _literal_overlap("ab", "ba")

    def test_shared_start_overlaps(self):
        assert _literal_overlap("community", "community-list")
        assert _literal_overlap("community-list", "community")

    def test_disjoint_literals_do_not(self):
        assert not _literal_overlap("alpha", "zzz")
        assert not _literal_overlap("x", "x")  # identity excluded


class TestPrefilterFlag:
    def test_prefilter_off_still_byte_identical(self):
        configs = {
            "r1.cfg": (
                "hostname r1.corp.example\n"
                "ip address 10.1.2.3 255.255.255.0\n"
                "router bgp 701\n"
                " neighbor 6.1.1.1 remote-as 1239\n"
            )
        }
        on = Anonymizer(AnonymizerConfig(salt=b"pf2", rule_prefilter=True))
        off = Anonymizer(AnonymizerConfig(salt=b"pf2", rule_prefilter=False))
        assert (
            on.anonymize_network(dict(configs)).configs
            == off.anonymize_network(dict(configs)).configs
        )
