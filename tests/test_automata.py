"""Tests for the regexp/automata substrate, including a differential check
of our NFA/DFA matcher against the Python ``re`` translation."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import (
    RegexMatcher,
    RegexParseError,
    dfa_from_nfa,
    dfa_to_regex,
    minimize_dfa,
    parse_regex,
)
from repro.automata.ast import Alt, Boundary, CharClass, Concat, Literal, Star
from repro.automata.dfa import dfa_from_strings
from repro.automata.matcher import compile_python_regex, to_python_regex
from repro.automata.nfa import compile_search_nfa


class TestParser:
    def test_literal_concat(self):
        node = parse_regex("701")
        assert isinstance(node, Concat)
        assert all(isinstance(p, Literal) for p in node.parts)

    def test_alternation(self):
        node = parse_regex("a|b|c")
        assert isinstance(node, Alt)
        assert len(node.parts) == 3

    def test_class_range(self):
        node = parse_regex("[1-5]")
        assert isinstance(node, CharClass)
        assert node.chars == frozenset("12345")
        assert not node.negated

    def test_negated_class(self):
        node = parse_regex("[^ab]")
        assert node.negated
        assert node.chars == frozenset("ab")

    def test_class_literal_dash_and_bracket(self):
        assert parse_regex("[a-]").chars == frozenset("a-")
        assert parse_regex("[]a]").chars == frozenset("]a")

    def test_boundary_and_anchors(self):
        node = parse_regex("^_70_$")
        parts = node.parts
        assert parts[0].to_pattern() == "^"
        assert isinstance(parts[1], Boundary)
        assert parts[-1].to_pattern() == "$"

    def test_star_plus_opt(self):
        assert parse_regex("a*").to_pattern() == "a*"
        assert parse_regex("a+").to_pattern() == "a+"
        assert parse_regex("a?").to_pattern() == "a?"

    def test_group_star(self):
        node = parse_regex("(ab)*")
        assert isinstance(node, Star)

    @pytest.mark.parametrize("bad", ["(", "a)", "[abc", "*a", "a{2,3}", "a\\"])
    def test_parse_errors(self, bad):
        with pytest.raises(RegexParseError):
            parse_regex(bad)

    def test_round_trip_patterns(self):
        for pattern in ["(_1239_|_70[2-5]_)", "^65[0-9]+$", "701:7[1-5]..", "_.*_"]:
            reparsed = parse_regex(parse_regex(pattern).to_pattern())
            assert reparsed.to_pattern() == parse_regex(pattern).to_pattern()


class TestMatcher:
    def test_paper_range(self):
        matcher = RegexMatcher("_70[1-5]_")
        assert all(matcher.matches(str(n)) for n in (701, 702, 705))
        assert not matcher.matches("700")
        assert not matcher.matches("706")
        assert not matcher.matches("7011")

    def test_paper_alternation(self):
        matcher = RegexMatcher("(_1239_|_70[2-5]_)")
        assert matcher.matches("1239")
        assert matcher.matches("703")
        assert not matcher.matches("701")
        assert not matcher.matches("12390")

    def test_search_semantics(self):
        # No anchors: matches anywhere inside the subject.
        matcher = RegexMatcher("70")
        assert matcher.matches("1701")
        assert matcher.matches("708")

    def test_anchors(self):
        matcher = RegexMatcher("^70$")
        assert matcher.matches("70")
        assert not matcher.matches("701")
        assert not matcher.matches("170")

    def test_boundary_matches_delimiters(self):
        matcher = RegexMatcher("_701_")
        assert matcher.matches("701")
        assert matcher.matches("100 701 200")
        assert not matcher.matches("1701")
        assert not matcher.matches("7012")

    def test_dot_does_not_match_ends(self):
        matcher = RegexMatcher("7.1")
        assert matcher.matches("701")
        assert matcher.matches("711")
        assert not matcher.matches("71")

    def test_community_pattern(self):
        matcher = RegexMatcher("701:7[1-5]..")
        assert matcher.matches("701:7100")
        assert matcher.matches("701:7599")
        assert not matcher.matches("701:7600")
        assert not matcher.matches("702:7100")

    def test_rejects_subject_outside_alphabet(self):
        matcher = RegexMatcher("a", alphabet=frozenset("a"))
        with pytest.raises(ValueError):
            matcher.matches("b")


# A pattern strategy that stays inside the Cisco dialect.
_atoms = st.sampled_from(
    ["7", "0", "1", "9", "[1-5]", "[0-9]", ".", "_70_", "(_1_|_2_)", "1?", "[2-4]?"]
)
_patterns = st.lists(_atoms, min_size=1, max_size=5).map("".join)
_subjects = st.one_of(
    st.integers(min_value=0, max_value=99999).map(str),
    st.sampled_from(["100 701 200", "1 2 3", "70 1239", ""]),
)


class TestDifferential:
    @settings(max_examples=150, deadline=None)
    @given(pattern=_patterns, subject=_subjects)
    def test_nfa_matcher_agrees_with_python_re(self, pattern, subject):
        """Our NFA/DFA oracle and the Python-re translation must agree."""
        matcher = RegexMatcher(pattern)
        compiled = compile_python_regex(pattern)
        assert matcher.matches(subject) == bool(compiled.search(subject))

    def test_translation_escapes_metacharacters(self):
        node = parse_regex("1\\.2")
        translated = to_python_regex(node)
        assert re.search(translated, "1.2")
        assert not re.search(translated, "1x2")


class TestDfaPipeline:
    def test_dfa_from_strings_exact(self):
        dfa = dfa_from_strings(["701", "702", "90"])
        assert dfa.accepts_string("701")
        assert dfa.accepts_string("90")
        assert not dfa.accepts_string("70")
        assert not dfa.accepts_string("7012")

    def test_enumerate_language(self):
        dfa = dfa_from_strings(["1", "22", "333"])
        assert dfa.enumerate_language(3) == ["1", "22", "333"]
        assert dfa.enumerate_language(2) == ["1", "22"]

    def test_is_empty(self):
        assert dfa_from_strings([]).is_empty()
        assert not dfa_from_strings(["x"]).is_empty()

    def test_minimize_preserves_language(self):
        strings = [str(n) for n in range(700, 760)]
        dfa = dfa_from_strings(strings)
        minimized = minimize_dfa(dfa)
        assert minimized.equivalent_to(dfa)
        assert len(minimized.states) <= len(dfa.states)

    def test_minimize_merges_trie_suffixes(self):
        # 701..709 share structure a minimal DFA can exploit.
        dfa = dfa_from_strings(["70" + str(d) for d in range(10)])
        minimized = minimize_dfa(dfa)
        assert len(minimized.states) < len(dfa.states)

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=9999), min_size=1, max_size=25))
    def test_minimize_equivalence_property(self, values):
        strings = [str(v) for v in values]
        dfa = dfa_from_strings(strings)
        minimized = minimize_dfa(dfa)
        assert minimized.equivalent_to(dfa)
        for text in strings:
            assert minimized.accepts_string(text)

    def test_subset_construction_from_search_nfa(self):
        nfa = compile_search_nfa(parse_regex("_70[1-3]_"), frozenset("0123456789"))
        dfa = dfa_from_nfa(nfa)
        from repro.automata.nfa import START_SENTINEL, END_SENTINEL

        assert dfa.accepts_string(START_SENTINEL + "702" + END_SENTINEL)
        assert not dfa.accepts_string(START_SENTINEL + "704" + END_SENTINEL)


class TestFaToRegex:
    def test_round_trip_small(self):
        strings = ["701", "702", "703", "711"]
        dfa = minimize_dfa(dfa_from_strings(strings))
        node = dfa_to_regex(dfa)
        assert node is not None
        compiled = re.compile("^(?:" + to_python_regex(node) + ")$")
        for text in strings:
            assert compiled.match(text)
        for text in ["700", "704", "71", "7011"]:
            assert not compiled.match(text)

    def test_empty_language_returns_none(self):
        assert dfa_to_regex(dfa_from_strings([])) is None

    @settings(max_examples=40, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=65535), min_size=1, max_size=30))
    def test_round_trip_property(self, values):
        strings = sorted(str(v) for v in values)
        dfa = minimize_dfa(dfa_from_strings(strings))
        node = dfa_to_regex(dfa)
        compiled = re.compile("^(?:" + to_python_regex(node) + ")$")
        accepted = [s for s in (str(n) for n in range(65536)) if compiled.match(s)]
        assert sorted(accepted) == strings


class TestQuantifiedGroups:
    def test_star_group_language(self):
        from repro.core.regexlang import asn_language

        # (12)+ unanchored: any ASN containing "12".
        language = asn_language("(12)+")
        assert 12 in language
        assert 1212 in language
        assert 512 in language  # contains "12"
        assert 345 not in language

    def test_anchored_star_group(self):
        from repro.core.regexlang import asn_language

        language = asn_language("(12)+", anchored=True)
        assert language == {12, 1212}  # 121212 > 16 bits

    def test_optional_digit(self):
        from repro.core.regexlang import asn_language

        assert asn_language("^70[0-9]?$") == {70} | set(range(700, 710))

    def test_escaped_metachar_roundtrip(self):
        node = parse_regex(r"a\*b")
        assert node.to_pattern() == r"a\*b"
        matcher = RegexMatcher(r"1\.2", alphabet=frozenset("12."))
        assert matcher.matches("1.2")
        assert not matcher.matches("112")

    def test_nested_groups(self):
        matcher = RegexMatcher("((1|2)(3|4))")
        assert matcher.matches("13")
        assert matcher.matches("24")
        assert not matcher.matches("56")
