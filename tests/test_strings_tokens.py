"""Tests for string hashing, the pass-list, and token segmentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.passlist import DEFAULT_PASSLIST, PassList
from repro.core.strings import StringHasher
from repro.core.tokens import TokenAnonymizer, segment_word


class TestStringHasher:
    def test_deterministic(self):
        hasher = StringHasher(b"salt", length=16)
        assert hasher.hash_token("UUNET") == hasher.hash_token("UUNET")

    def test_salt_separation(self):
        a = StringHasher(b"salt-a")
        b = StringHasher(b"salt-b")
        assert a.hash_token("UUNET") != b.hash_token("UUNET")

    def test_case_sensitive_inputs(self):
        hasher = StringHasher(b"salt")
        assert hasher.hash_token("Foo") != hasher.hash_token("foo")

    def test_length_respected(self):
        assert len(StringHasher(b"s", length=8).hash_token("token")) == 8
        assert len(StringHasher(b"s", length=40).hash_token("token")) == 40

    def test_length_bounds(self):
        with pytest.raises(ValueError):
            StringHasher(b"s", length=2)
        with pytest.raises(ValueError):
            StringHasher(b"s", length=41)

    def test_never_looks_like_integer(self):
        # Hunt for digit-only digests across many tokens; the guard must
        # rewrite them so downstream passes can't mistake them for ASNs.
        hasher = StringHasher(b"salt", length=4)
        for i in range(3000):
            out = hasher.hash_token("token{}".format(i))
            assert not out.isdigit()

    def test_hashed_inputs_recorded(self):
        hasher = StringHasher(b"salt")
        hasher.hash_token("secretname")
        assert "secretname" in hasher.hashed_inputs

    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_output_is_hexlike(self, token):
        out = StringHasher(b"s").hash_token(token)
        assert all(c in "0123456789abcdefh" for c in out)


class TestPassList:
    def test_case_insensitive(self):
        passlist = PassList(["Ethernet"])
        assert "ethernet" in passlist
        assert "ETHERNET" in passlist

    def test_default_has_core_keywords(self):
        for word in ("interface", "router", "bgp", "neighbor", "permit", "deny",
                     "ethernet", "description", "access-list", "route-map"):
            assert word in DEFAULT_PASSLIST, word

    def test_default_lacks_fabricated_names(self):
        for word in ("globex", "initech", "uunet", "sprintlink", "acmecorp"):
            assert word not in DEFAULT_PASSLIST, word

    def test_from_text_scrapes_alpha_runs(self):
        passlist = PassList.from_text("Use the ip address command. Ethernet0/0 works.")
        assert "ethernet" in passlist
        assert "address" in passlist
        assert "0" not in passlist

    def test_from_text_skips_single_letters(self):
        passlist = PassList.from_text("a b c word")
        assert "word" in passlist
        assert "a" not in passlist

    def test_union(self):
        merged = PassList(["one"]).union(PassList(["two"]))
        assert "one" in merged and "two" in merged

    def test_iteration_sorted(self):
        passlist = PassList(["zeta", "alpha"])
        assert list(passlist) == ["alpha", "zeta"]


class TestSegmentation:
    def test_paper_example(self):
        # "identifiers like ethernet0/0 become a string ethernet ... and a
        # non-alphabetic remainder 0/0"
        runs = segment_word("Ethernet0/0")
        assert runs == [("Ethernet", True), ("0/0", False)]

    def test_mixed_identifier(self):
        runs = segment_word("UUNET-import")
        assert runs == [("UUNET", True), ("-", False), ("import", True)]

    def test_pure_number(self):
        assert segment_word("12345") == [("12345", False)]

    def test_dotted_quad_is_non_alpha(self):
        assert segment_word("1.2.3.4") == [("1.2.3.4", False)]


class TestTokenAnonymizer:
    def _anon(self):
        return TokenAnonymizer(DEFAULT_PASSLIST, StringHasher(b"salt"))

    def test_keeps_keywords(self):
        anon = self._anon()
        assert anon.anonymize_word("interface") == "interface"
        assert anon.anonymize_word("Ethernet0/0") == "Ethernet0/0"

    def test_hashes_unknown(self):
        anon = self._anon()
        out = anon.anonymize_word("FooCorp")
        assert out != "FooCorp"
        assert "FooCorp" not in out

    def test_partial_hashing_preserves_structure(self):
        # Route-map name: privileged part hashed, keyword part kept.
        anon = self._anon()
        out = anon.anonymize_word("UUNET-import")
        assert out.endswith("-import")
        assert "UUNET" not in out

    def test_referential_integrity(self):
        anon = self._anon()
        assert anon.anonymize_word("UUNET-import") == anon.anonymize_word("UUNET-import")

    def test_numbers_pass(self):
        anon = self._anon()
        assert anon.anonymize_word("65000") == "65000"
        assert anon.anonymize_word("10.0.0.1") == "10.0.0.1"

    def test_counters(self):
        anon = self._anon()
        anon.anonymize_word("interface")
        anon.anonymize_word("FooCorp")
        assert anon.tokens_seen == 2
        assert anon.tokens_hashed == 1

    def test_iter_unknown_runs(self):
        anon = self._anon()
        unknown = list(anon.iter_unknown_runs("interface FooCorp Ethernet0"))
        assert unknown == ["FooCorp"]
