"""End-to-end tests of the repro-anonymize command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def config_file(tmp_path, figure1_text):
    path = tmp_path / "cr1.cfg"
    path.write_text(figure1_text)
    return path


class TestCli:
    def test_anonymize_single_file(self, config_file, capsys):
        assert main([str(config_file), "--salt", "s3cret"]) == 0
        output = config_file.with_name("cr1.cfg.anon")
        assert output.exists()
        text = output.read_text()
        assert "foo.com" not in text
        assert "router bgp 1111" not in text
        captured = capsys.readouterr()
        assert "wrote" in captured.out

    def test_out_dir(self, config_file, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(
            [str(config_file), "--salt", "s", "--out-dir", str(out_dir)]
        ) == 0
        assert (out_dir / "cr1.cfg.anon").exists()

    def test_directory_input(self, tmp_path, figure1_text):
        net_dir = tmp_path / "net"
        net_dir.mkdir()
        (net_dir / "a.cfg").write_text(figure1_text)
        (net_dir / "b.cfg").write_text("router bgp 1111\n")
        out_dir = tmp_path / "out"
        assert main([str(net_dir), "--salt", "s", "--out-dir", str(out_dir)]) == 0
        a = (out_dir / "a.cfg.anon").read_text()
        b = (out_dir / "b.cfg.anon").read_text()
        # Shared mapping state: the same ASN maps identically in both files.
        asn_a = [l for l in a.splitlines() if l.startswith("router bgp")][0]
        asn_b = [l for l in b.splitlines() if l.startswith("router bgp")][0]
        assert asn_a == asn_b

    def test_report_flag(self, config_file, capsys):
        main([str(config_file), "--salt", "s", "--report"])
        assert "tokens:" in capsys.readouterr().out

    def test_scan_leaks_flag(self, config_file, capsys):
        main([str(config_file), "--salt", "s", "--scan-leaks"])
        assert "leak scan: no highlighted lines" in capsys.readouterr().out

    def test_inventory(self, capsys):
        assert main(["--inventory"]) == 0
        out = capsys.readouterr().out
        assert "R1 " in out or "R1\t" in out or "R1" in out
        assert "R28" in out

    def test_salt_required(self, config_file):
        with pytest.raises(SystemExit):
            main([str(config_file)])

    def test_missing_file_errors(self):
        with pytest.raises(FileNotFoundError):
            main(["/does/not/exist.cfg", "--salt", "s"])

    def test_mindfa_style(self, config_file):
        assert main(
            [str(config_file), "--salt", "s", "--regex-style", "mindfa"]
        ) == 0

    def test_keep_comments(self, config_file):
        main([str(config_file), "--salt", "s", "--keep-comments"])
        text = config_file.with_name("cr1.cfg.anon").read_text()
        assert "description" in text


class TestCliStateFile:
    def test_state_round_trip(self, tmp_path, figure1_text, capsys):
        config = tmp_path / "r1.cfg"
        config.write_text(figure1_text)
        state = tmp_path / "state.json"
        main([str(config), "--salt", "s", "--state-file", str(state),
              "--out-dir", str(tmp_path / "a")])
        first = (tmp_path / "a" / "r1.cfg.anon").read_text()
        assert state.exists()
        # Second run in a fresh process-equivalent must be identical.
        main([str(config), "--salt", "s", "--state-file", str(state),
              "--out-dir", str(tmp_path / "b")])
        second = (tmp_path / "b" / "r1.cfg.anon").read_text()
        assert first == second
        assert "loaded mapping state" in capsys.readouterr().out


class TestCliExportModel:
    def test_export_model(self, tmp_path, figure1_text):
        import json

        config = tmp_path / "r1.cfg"
        config.write_text(figure1_text)
        model_path = tmp_path / "model.json"
        main([str(config), "--salt", "s", "--out-dir", str(tmp_path / "o"),
              "--export-model", str(model_path)])
        model = json.loads(model_path.read_text())
        assert model["format_version"] == 1
        router = next(iter(model["routers"].values()))
        assert router["bgp"] is not None
        # The exported model is of the ANONYMIZED network.
        assert router["bgp"]["asn"] != 1111


class TestGenerateCli:
    def test_generate_single_network(self, tmp_path, capsys):
        from repro.genconfigs import main as generate_main

        out = tmp_path / "net"
        assert generate_main([str(out), "--seed", "3", "--pops", "2"]) == 0
        files = list(out.glob("*.cfg"))
        assert files
        assert "hostname" in files[0].read_text()
        assert "wrote" in capsys.readouterr().out

    def test_generate_then_anonymize_round_trip(self, tmp_path):
        from repro.genconfigs import main as generate_main

        out = tmp_path / "net"
        generate_main([str(out), "--seed", "5", "--pops", "2"])
        anon_dir = tmp_path / "anon"
        assert main([str(out), "--salt", "s", "--out-dir", str(anon_dir)]) == 0
        assert list(anon_dir.glob("*.anon"))

    def test_generate_junos(self, tmp_path):
        from repro.genconfigs import main as generate_main

        out = tmp_path / "jnet"
        generate_main([str(out), "--seed", "7", "--pops", "2",
                       "--junos-fraction", "1.0"])
        text = next(out.glob("*.cfg")).read_text()
        assert "system {" in text

    def test_generate_paper_corpus_scaled(self, tmp_path, capsys):
        from repro.genconfigs import main as generate_main

        out = tmp_path / "corpus"
        assert generate_main([str(out), "--paper-corpus", "--scale", "0.02"]) == 0
        subdirs = [p for p in out.iterdir() if p.is_dir()]
        assert len(subdirs) == 31
        assert "31 networks" in capsys.readouterr().out


class TestReportJson:
    def test_report_json_written(self, tmp_path, figure1_text):
        import json

        config = tmp_path / "r1.cfg"
        config.write_text(figure1_text)
        report_path = tmp_path / "report.json"
        main([str(config), "--salt", "s", "--out-dir", str(tmp_path / "o"),
              "--report-json", str(report_path)])
        report = json.loads(report_path.read_text())
        assert report["asns_mapped"] >= 2
        assert report["banners_removed"] == 1
        assert "R10" in report["rule_hits"]
        # Raw privileged values never appear in the machine report.
        assert "seen_asns" not in report
        assert "1111" not in json.dumps(report["rule_hits"])


class TestOutPathCollision:
    def test_duplicate_basenames_mirror_relative_paths(self, tmp_path, capsys):
        """siteA/rtr1.conf and siteB/rtr1.conf must not overwrite each
        other under --out-dir (they used to collapse onto one output)."""
        for site in ("siteA", "siteB"):
            site_dir = tmp_path / site
            site_dir.mkdir()
            (site_dir / "rtr1.conf").write_text(
                "hostname rtr1.{}.foo.com\nrouter bgp 1111\n".format(site)
            )
        out_dir = tmp_path / "out"
        assert main(
            [
                str(tmp_path / "siteA"),
                str(tmp_path / "siteB"),
                "--salt",
                "s",
                "--out-dir",
                str(out_dir),
            ]
        ) == 0
        assert (out_dir / "siteA" / "rtr1.conf.anon").is_file()
        assert (out_dir / "siteB" / "rtr1.conf.anon").is_file()
        site_a = (out_dir / "siteA" / "rtr1.conf.anon").read_text()
        site_b = (out_dir / "siteB" / "rtr1.conf.anon").read_text()
        assert site_a != site_b  # distinct inputs kept distinct outputs

    def test_unique_basenames_stay_flat(self, tmp_path, figure1_text):
        (tmp_path / "a.cfg").write_text(figure1_text)
        (tmp_path / "b.cfg").write_text("router bgp 1111\n")
        out_dir = tmp_path / "out"
        assert main(
            [
                str(tmp_path / "a.cfg"),
                str(tmp_path / "b.cfg"),
                "--salt",
                "s",
                "--out-dir",
                str(out_dir),
            ]
        ) == 0
        assert (out_dir / "a.cfg.anon").is_file()
        assert (out_dir / "b.cfg.anon").is_file()

    def test_resolve_out_paths_refuses_true_collisions(self, tmp_path):
        from repro.core.runner import RunnerError, resolve_out_paths

        (tmp_path / "rtr1.conf").write_text("x\n")
        (tmp_path / "siteA").mkdir()
        name = str(tmp_path / "rtr1.conf")
        alias = str(tmp_path / "siteA" / ".." / "rtr1.conf")  # same file
        with pytest.raises(RunnerError):
            resolve_out_paths([name, alias], str(tmp_path / "out"), ".anon")


class TestExitCodes:
    def test_no_readable_inputs_exit_code(self, tmp_path, capsys):
        """An input set with nothing anonymizable exits EXIT_NO_INPUT, not
        a bare 1-that-means-nothing."""
        from repro.core.status import EXIT_NO_INPUT

        empty = tmp_path / "net"
        empty.mkdir()
        (empty / "image.bin").write_bytes(b"\x00\x01\x02")
        assert main([str(empty), "--salt", "s"]) == EXIT_NO_INPUT
        assert "no readable config files" in capsys.readouterr().err

    def test_cli_reexports_shared_exit_codes(self):
        """CLI constants are the shared module's constants (one source of
        truth for CLI and service status mapping)."""
        from repro import cli
        from repro.core import status

        assert cli.EXIT_OK is status.EXIT_OK
        assert cli.EXIT_LEAKS == status.EXIT_LEAKS == 3
        assert cli.EXIT_QUARANTINE == status.EXIT_QUARANTINE == 4
        assert (
            cli.EXIT_LEAKS_AND_QUARANTINE
            == status.EXIT_LEAKS_AND_QUARANTINE
            == 5
        )
        assert cli.EXIT_STATE_ERROR == status.EXIT_STATE_ERROR == 6
        assert status.EXIT_NO_INPUT == 1
        assert status.EXIT_SERVICE_ERROR == 7
        assert status.exit_code_for() == status.EXIT_OK
        assert status.exit_code_for(leaks=True) == status.EXIT_LEAKS
        assert status.exit_code_for(dirty=True) == status.EXIT_QUARANTINE
        assert (
            status.exit_code_for(leaks=True, dirty=True)
            == status.EXIT_LEAKS_AND_QUARANTINE
        )


class TestCollectFiles:
    def test_binary_file_skipped_with_warning(self, tmp_path, capsys):
        net = tmp_path / "net"
        net.mkdir()
        (net / "good.cfg").write_text("router bgp 701\n")
        (net / "image.bin").write_bytes(b"\x89PNG\x00\x1a\x0b")
        out_dir = tmp_path / "out"
        assert main([str(net), "--salt", "s", "--out-dir", str(out_dir)]) == 0
        captured = capsys.readouterr()
        assert "skipping" in captured.err and "image.bin" in captured.err
        assert (out_dir / "good.cfg.anon").exists()
        assert not (out_dir / "image.bin.anon").exists()

    def test_non_utf8_text_decodes_with_replacement(self, tmp_path, capsys):
        config = tmp_path / "latin1.cfg"
        config.write_bytes(b"hostname caf\xe9.example.com\nrouter bgp 701\n")
        out_dir = tmp_path / "out"
        assert main([str(config), "--salt", "s", "--out-dir", str(out_dir)]) == 0
        out = (out_dir / "latin1.cfg.anon").read_text()
        assert "router bgp" in out  # run completed despite bad bytes
