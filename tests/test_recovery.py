"""Crash-safety tests: durable journal, restart recovery, retrying client.

The contract under test, end to end:

* every **acknowledged** request survives a daemon crash (the journal
  record is fsync'd before the response goes out);
* a torn *final* journal record is the expected crash artifact — its
  request was never acknowledged, so recovery discards it and a client
  resubmission converges;
* anything else (mid-journal corruption, sequence gaps, mixed
  fingerprints) is quarantined **fail-closed** — the daemon never serves
  guessed state;
* the salt is never stored: a recovered session only comes back to life
  when the owner re-presents it and the keyed fingerprint matches;
* the retrying client turns all of the above into exactly-once *effects*
  over an at-least-once wire: bounded backoff with jitter, ``Retry-After``
  honored, idempotency keys from content digests, automatic resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import Anonymizer, AnonymizerConfig
from repro.core.digests import digest_text, idempotency_key_for
from repro.core.parallel import anonymize_files
from repro.core.state import StateCursor, apply_state_delta, export_state, state_delta_since
from repro.core.status import EXIT_JOURNAL_CORRUPT, EXIT_RECOVERY_FAILED
from repro.service.client import (
    RetryPolicy,
    RetryingServiceClient,
    ServiceClient,
    ServiceClientError,
    ServiceUnavailableError,
)
from repro.service.journal import (
    JournalError,
    RecoveryError,
    SessionStore,
    replay_into,
)
from repro.service.metrics import ServiceMetrics
from repro.service.server import AnonymizationService
from repro.service.sessions import (
    SessionError,
    SessionManager,
    SessionOptionsError,
)

SALT = "recovery-test-secret"


def _corpus(figure1_text: str) -> dict:
    return {
        "siteA/cr1.cfg": figure1_text,
        "siteA/cr2.cfg": (
            "hostname cr2.lax.foo.com\n"
            "interface Loopback0\n"
            " ip address 1.2.3.4 255.255.255.255\n"
            "router bgp 1111\n"
            " neighbor 2.3.4.5 remote-as 701\n"
        ),
        "siteB/cr1.cfg": (
            "hostname edge.sfo.foo.com\n"
            "router bgp 701\n"
            " neighbor 1.2.3.4 remote-as 1111\n"
            "access-list 10 permit 1.1.1.0 0.0.0.255\n"
        ),
    }


def _batch_reference(configs: dict, jobs: int = 2) -> dict:
    anonymizer = Anonymizer(AnonymizerConfig(salt=SALT.encode()))
    anonymizer.freeze_mappings(configs)
    return anonymize_files(anonymizer, configs, jobs=jobs)


def _durable_manager(state_dir, snapshot_every: int = 64):
    store = SessionStore(state_dir, snapshot_every=snapshot_every)
    store.recover()
    metrics = ServiceMetrics()
    manager = SessionManager(
        store=store, metrics=metrics, snapshot_every=snapshot_every
    )
    return manager, store, metrics


class TestDigests:
    """Pin the shared digest format: the runner's resume manifest and
    the service's idempotency keys must agree forever."""

    def test_digest_is_plain_sha256_hexdigest(self):
        assert digest_text("abc") == hashlib.sha256(b"abc").hexdigest()
        assert len(digest_text("")) == 64

    def test_idempotency_key_shape_and_determinism(self):
        key = idempotency_key_for("rtr1.cfg", "hostname a\n")
        assert len(key) == 32
        assert key == idempotency_key_for("rtr1.cfg", "hostname a\n")

    def test_idempotency_key_separates_source_and_text(self):
        # The key is a keyed hash over (source, text) with a separator:
        # moving bytes between the two fields must change the key.
        assert idempotency_key_for("a", "b") != idempotency_key_for("ab", "")
        assert idempotency_key_for("a", "x") != idempotency_key_for("b", "x")

    def test_runner_manifest_uses_the_shared_digest(self):
        from repro.core.runner import _digest_text

        assert _digest_text is digest_text


class TestStateDelta:
    """Snapshot + ordered deltas must equal a full state export."""

    def test_delta_replay_reproduces_state(self, figure1_text):
        a = Anonymizer(AnonymizerConfig(salt=SALT.encode()))
        cursor = StateCursor(a)
        a.anonymize_file(figure1_text, source="x.cfg")
        delta = state_delta_since(a, cursor)

        b = Anonymizer(AnonymizerConfig(salt=SALT.encode()))
        apply_state_delta(b, delta)
        assert export_state(b) == export_state(a)

    def test_empty_delta_is_a_noop(self):
        a = Anonymizer(AnonymizerConfig(salt=SALT.encode()))
        before = export_state(a)
        apply_state_delta(a, state_delta_since(a, StateCursor(a)))
        assert export_state(a) == before


class TestRecovery:
    def test_empty_journal_recovers(self, tmp_path):
        manager, store, _ = _durable_manager(tmp_path / "state")
        session = manager.create(SALT)
        manager.close_all()

        manager2, store2, _ = _durable_manager(tmp_path / "state")
        assert store2.is_recoverable(session.id)
        restored = manager2.resume(SALT, session.id)
        assert restored.id == session.id
        assert restored.describe()["frozen"] is False
        assert restored.describe()["requests_replayed"] == 0
        manager2.close_all()

    def test_truncated_last_record_discarded(self, tmp_path, figure1_text):
        manager, store, _ = _durable_manager(tmp_path / "state")
        session = manager.create(SALT)
        session.anonymize(figure1_text, source="a.cfg")
        reference = session.anonymize(figure1_text, source="b.cfg")
        manager.close_all()

        journal_path = store.sessions_dir / session.id / "journal.jsonl"
        good = journal_path.read_bytes()
        # Simulate a crash mid-append: half of an unacknowledged record.
        journal_path.write_bytes(good + b"deadbeef0000 {\"seq\": 3, \"op")

        manager2, store2, metrics2 = _durable_manager(tmp_path / "state")
        assert store2.summary.torn_discarded == 1
        restored = manager2.resume(SALT, session.id)
        assert restored.describe()["requests_replayed"] == 2
        # State equals the pre-torn state: the same input maps the same.
        again = restored.anonymize(figure1_text, source="b.cfg")
        assert again["text"] == reference["text"]
        manager2.close_all()

    def test_mid_journal_corruption_quarantines(self, tmp_path, figure1_text):
        manager, store, _ = _durable_manager(tmp_path / "state")
        session = manager.create(SALT)
        session.anonymize(figure1_text, source="a.cfg")
        session.anonymize(figure1_text, source="b.cfg")
        manager.close_all()

        journal_path = store.sessions_dir / session.id / "journal.jsonl"
        lines = journal_path.read_bytes().splitlines(keepends=True)
        assert len(lines) == 2
        # Flip bytes inside the FIRST record: this cannot be a torn tail.
        lines[0] = lines[0][:20] + b"XX" + lines[0][22:]
        journal_path.write_bytes(b"".join(lines))

        manager2, store2, _ = _durable_manager(tmp_path / "state")
        assert session.id in store2.summary.quarantined
        assert not store2.is_recoverable(session.id)
        quarantined = list(
            store2.sessions_dir.glob(session.id + ".quarantined*")
        )
        assert quarantined, "corrupt session directory was not set aside"
        with pytest.raises(RecoveryError):
            manager2.resume(SALT, session.id)
        manager2.close_all()

    def test_sequence_gap_quarantines(self, tmp_path, figure1_text):
        manager, store, _ = _durable_manager(tmp_path / "state")
        session = manager.create(SALT)
        session.anonymize(figure1_text, source="a.cfg")
        session.anonymize(figure1_text, source="b.cfg")
        session.anonymize(figure1_text, source="c.cfg")
        manager.close_all()

        journal_path = store.sessions_dir / session.id / "journal.jsonl"
        lines = journal_path.read_bytes().splitlines(keepends=True)
        # Drop the middle record: seq jumps 1 -> 3.
        journal_path.write_bytes(lines[0] + lines[2])

        _, store2, _ = _durable_manager(tmp_path / "state")
        assert session.id in store2.summary.quarantined

    def test_snapshot_newer_than_journal(self, tmp_path, figure1_text):
        """A crash between snapshot rename and journal truncate leaves
        records with seq <= snapshot.seq; replay must skip them."""
        manager, store, _ = _durable_manager(tmp_path / "state")
        session = manager.create(SALT)
        key_a = idempotency_key_for("a.cfg", figure1_text)
        key_b = idempotency_key_for("b.cfg", figure1_text)
        session.anonymize(figure1_text, source="a.cfg", idempotency_key=key_a)
        reference = session.anonymize(
            figure1_text, source="b.cfg", idempotency_key=key_b
        )
        journal_path = store.sessions_dir / session.id / "journal.jsonl"
        stale = journal_path.read_bytes()
        session._write_snapshot()  # rotates: journal now empty
        journal_path.write_bytes(stale)  # ...crash un-truncated it
        manager.close_all()

        manager2, store2, _ = _durable_manager(tmp_path / "state")
        recovered = store2.recoverable(session.id)
        assert recovered is not None and recovered.records == []
        restored = manager2.resume(SALT, session.id)
        # Replayed from the snapshot alone, including the committed
        # idempotency results: the resubmission is answered from them.
        replay = restored.anonymize(
            figure1_text, source="b.cfg", idempotency_key=key_b
        )
        assert replay.get("replayed") is True
        assert replay["text"] == reference["text"]
        manager2.close_all()

    def test_wrong_salt_refused(self, tmp_path, figure1_text):
        manager, store, _ = _durable_manager(tmp_path / "state")
        session = manager.create(SALT)
        session.anonymize(figure1_text, source="a.cfg")
        manager.close_all()

        manager2, _, _ = _durable_manager(tmp_path / "state")
        with pytest.raises(RecoveryError, match="fingerprint"):
            manager2.resume("not-the-owner-secret", session.id)
        # The right salt still works afterwards: the refusal mutated
        # nothing.
        restored = manager2.resume(SALT, session.id)
        assert restored.fingerprint == session.fingerprint
        manager2.close_all()

    def test_restored_then_frozen_matches_uninterrupted(
        self, tmp_path, figure1_text
    ):
        """The satellite invariant: warm up, restart, resume, freeze —
        byte-identical to the same operations without the restart."""
        corpus = _corpus(figure1_text)
        # Uninterrupted reference: warm-up request, freeze, full corpus.
        ref_manager = SessionManager()
        ref = ref_manager.create(SALT)
        ref.anonymize(corpus["siteA/cr1.cfg"], source="siteA/cr1.cfg")
        ref.freeze(corpus)
        expected = {
            name: ref.anonymize(text, source=name)["text"]
            for name, text in sorted(corpus.items())
        }

        # Same operations, with a daemon restart after the warm-up.
        # snapshot_every=1 forces the snapshot path into the replay too.
        manager, store, _ = _durable_manager(
            tmp_path / "state", snapshot_every=1
        )
        session = manager.create(SALT)
        session.anonymize(corpus["siteA/cr1.cfg"], source="siteA/cr1.cfg")
        manager.close_all()

        manager2, _, metrics2 = _durable_manager(
            tmp_path / "state", snapshot_every=1
        )
        restored = manager2.resume(SALT, session.id)
        restored.freeze(corpus)
        outputs = {
            name: restored.anonymize(text, source=name)["text"]
            for name, text in sorted(corpus.items())
        }
        assert outputs == expected
        assert metrics2.counter_value("repro_session_recoveries_total") == 1

        # ...and a second restart after the freeze preserves frozenness.
        manager2.close_all()
        manager3, _, _ = _durable_manager(
            tmp_path / "state", snapshot_every=1
        )
        restored3 = manager3.resume(SALT, session.id)
        assert restored3.describe()["frozen"] is True
        outputs3 = {
            name: restored3.anonymize(text, source=name)["text"]
            for name, text in sorted(corpus.items())
        }
        assert outputs3 == expected
        manager3.close_all()

    def test_resume_at_session_limit_keeps_history(
        self, tmp_path, figure1_text
    ):
        """A resume refused by the session limit must not destroy the
        session's durable history: the client deletes a session and
        retries, and the full replay is still there."""
        manager, store, _ = _durable_manager(tmp_path / "state")
        session = manager.create(SALT)
        reference = session.anonymize(figure1_text, source="a.cfg")
        manager.close_all()

        store2 = SessionStore(tmp_path / "state")
        store2.recover()
        manager2 = SessionManager(
            max_sessions=1, store=store2, metrics=ServiceMetrics()
        )
        blocker = manager2.create(SALT)
        with pytest.raises(SessionError, match="session limit"):
            manager2.resume(SALT, session.id)
        # Refused, but nothing lost: directory and resumability intact.
        assert (store2.sessions_dir / session.id / "journal.jsonl").exists()
        assert store2.is_recoverable(session.id)
        manager2.delete(blocker.id)
        restored = manager2.resume(SALT, session.id)
        assert restored.describe()["requests_replayed"] == 1
        again = restored.anonymize(figure1_text, source="a.cfg")
        assert again["text"] == reference["text"]
        manager2.close_all()

    def test_resume_live_session_with_bad_salt_is_options_error(
        self, tmp_path
    ):
        """A missing/non-string salt on resume of a *live* session must
        be a 4xx options error, not a TypeError-turned-500."""
        manager, _, _ = _durable_manager(tmp_path / "state")
        session = manager.create(SALT)
        with pytest.raises(SessionOptionsError):
            manager.resume(None, session.id)
        with pytest.raises(SessionOptionsError):
            manager.resume("", session.id)
        # The owner's salt still resumes idempotently afterwards.
        assert manager.resume(SALT, session.id) is session
        manager.close_all()

    def test_unreadable_journal_quarantines_not_crashes(
        self, tmp_path, figure1_text
    ):
        """An I/O error reading one session's journal quarantines that
        session; it must not escape recover() and kill the daemon."""
        manager, store, _ = _durable_manager(tmp_path / "state")
        session = manager.create(SALT)
        session.anonymize(figure1_text, source="a.cfg")
        manager.close_all()
        journal_path = store.sessions_dir / session.id / "journal.jsonl"
        journal_path.unlink()
        journal_path.mkdir()  # read_bytes() raises IsADirectoryError

        manager2, store2, _ = _durable_manager(tmp_path / "state")
        assert session.id in store2.summary.quarantined
        assert not store2.is_recoverable(session.id)
        manager2.close_all()

    def test_delete_removes_durable_history(self, tmp_path, figure1_text):
        manager, store, _ = _durable_manager(tmp_path / "state")
        session = manager.create(SALT)
        session.anonymize(figure1_text, source="a.cfg")
        manager.delete(session.id)
        assert not (store.sessions_dir / session.id).exists()

        manager2, store2, _ = _durable_manager(tmp_path / "state")
        assert not store2.is_recoverable(session.id)


class TestIdempotency:
    def test_replay_skips_the_engine(self, tmp_path, figure1_text):
        manager, _, metrics = _durable_manager(tmp_path / "state")
        session = manager.create(SALT)
        key = idempotency_key_for("a.cfg", figure1_text)
        first = session.anonymize(
            figure1_text, source="a.cfg", idempotency_key=key
        )
        # Resubmit with DIFFERENT text under the same key: a replay must
        # return the journaled result, proving the engine never ran.
        second = session.anonymize(
            "hostname should-not-be-seen\n", source="a.cfg",
            idempotency_key=key,
        )
        assert second["replayed"] is True
        assert second["text"] == first["text"]
        assert session.idempotent_replays == 1
        assert metrics.counter_value("repro_idempotent_replays_total") == 1
        manager.close_all()

    def test_rotation_snapshot_covers_its_own_key(
        self, tmp_path, figure1_text
    ):
        """snapshot_every=1 makes every append trigger a snapshot that
        truncates the very record carrying the idempotency key — the
        snapshot's committed map must still include that key, so a
        post-restart resubmission replays instead of re-anonymizing."""
        manager, _, _ = _durable_manager(tmp_path / "state", snapshot_every=1)
        session = manager.create(SALT)
        key = idempotency_key_for("a.cfg", figure1_text)
        first = session.anonymize(
            figure1_text, source="a.cfg", idempotency_key=key
        )
        manager.close_all()

        manager2, _, metrics2 = _durable_manager(
            tmp_path / "state", snapshot_every=1
        )
        restored = manager2.resume(SALT, session.id)
        again = restored.anonymize(
            "hostname should-not-be-seen\n", source="a.cfg",
            idempotency_key=key,
        )
        assert again["replayed"] is True
        assert again["text"] == first["text"]
        assert metrics2.counter_value("repro_idempotent_replays_total") == 1
        manager2.close_all()

    def test_torn_append_fails_the_request_not_the_history(
        self, tmp_path, figure1_text
    ):
        manager, store, _ = _durable_manager(tmp_path / "state")
        session = manager.create(
            SALT, {"fault_plan": "journal-torn:torn.cfg"}
        )
        ok = session.anonymize(figure1_text, source="fine.cfg")
        with pytest.raises(JournalError):
            session.anonymize(figure1_text, source="torn.cfg")
        # The journal now has a torn tail: further appends must refuse
        # rather than bury it mid-file.
        with pytest.raises(JournalError):
            session.anonymize(figure1_text, source="another.cfg")
        manager.close_all()

        manager2, store2, _ = _durable_manager(tmp_path / "state")
        assert store2.summary.torn_discarded == 1
        restored = manager2.resume(SALT, session.id)
        # Only the acknowledged request was replayed.
        assert restored.describe()["requests_replayed"] == 1
        again = restored.anonymize(figure1_text, source="fine.cfg")
        assert again["text"] == ok["text"]
        manager2.close_all()


class TestRetryPolicy:
    def _client(self, policy, clock=None):
        sleeps = []
        client = RetryingServiceClient(
            base_url="http://127.0.0.1:9",
            salt=SALT,
            policy=policy,
            sleep=sleeps.append,
            rng=None,
            clock=clock or (lambda: 0.0),
        )
        return client, sleeps

    def test_backoff_sequence_and_exhaustion(self):
        client, sleeps = self._client(
            RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
        )
        calls = []

        def fail():
            calls.append(1)
            raise ServiceUnavailableError(429, "busy")

        with pytest.raises(ServiceUnavailableError):
            client._with_retries(fail)
        assert len(calls) == 4
        assert sleeps == [0.1, 0.2, 0.4]

    def test_jitter_stretches_but_never_shrinks(self):
        class FixedRng:
            def random(self):
                return 1.0

        client, sleeps = self._client(
            RetryPolicy(max_attempts=2, base_delay=1.0, jitter=0.5)
        )
        client._rng = FixedRng()
        with pytest.raises(ServiceUnavailableError):
            client._with_retries(
                lambda: (_ for _ in ()).throw(
                    ServiceUnavailableError(429, "busy")
                )
            )
        assert sleeps == [1.5]

    def test_retry_after_floors_the_backoff(self):
        client, sleeps = self._client(
            RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        )

        def fail():
            raise ServiceUnavailableError(503, "busy", retry_after=3.0)

        with pytest.raises(ServiceUnavailableError):
            client._with_retries(fail)
        assert sleeps == [3.0, 3.0]

    def test_deadline_stops_retrying(self):
        clock_value = [0.0]

        def clock():
            return clock_value[0]

        client, sleeps = self._client(
            RetryPolicy(
                max_attempts=10,
                base_delay=4.0,
                max_delay=4.0,
                jitter=0.0,
                deadline=10.0,
            ),
            clock=clock,
        )
        calls = []

        def fail():
            calls.append(1)
            clock_value[0] += 1.0
            raise ServiceUnavailableError(429, "busy")

        with pytest.raises(ServiceUnavailableError):
            client._with_retries(fail)
        # Every backoff is 4s; the clock ticks 1s per attempt.  The loop
        # gives up as soon as sleeping would overrun t=10 — well before
        # max_attempts.
        assert len(calls) < 10
        assert all(s == 4.0 for s in sleeps)
        assert clock_value[0] + 4.0 > 10.0

    def test_client_errors_are_not_retried(self):
        client, sleeps = self._client(RetryPolicy(max_attempts=5))
        calls = []

        def fail():
            calls.append(1)
            raise ServiceClientError(400, "bad request")

        with pytest.raises(ServiceClientError):
            client._with_retries(fail)
        assert len(calls) == 1 and sleeps == []

    def test_connection_refused_is_retried(self):
        client, sleeps = self._client(
            RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        )
        with pytest.raises(OSError):
            client._with_retries(lambda: client.healthz())
        assert len(sleeps) == 2


class TestTimeouts:
    def test_timed_out_request_gets_503_and_gauges_recover(
        self, tmp_path, figure1_text
    ):
        service = AnonymizationService(
            port=0,
            workers=1,
            queue_limit=8,
            request_timeout=0.2,
            state_dir=str(tmp_path / "state"),
        )
        service.start_background()
        try:
            client = ServiceClient(service.base_url, timeout=30)
            session = client.create_session(SALT)
            release = threading.Event()
            service.executor.submit(lambda: release.wait(10))
            with pytest.raises(ServiceUnavailableError) as excinfo:
                client.anonymize(
                    session["id"], figure1_text, source="slow.cfg"
                )
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
            assert (
                service.metrics.counter_value("repro_requests_timed_out_total")
                == 1
            )
            release.set()
            deadline = time.time() + 5
            while time.time() < deadline and (
                service.executor.in_flight() or service.executor.depth()
            ):
                time.sleep(0.02)
            # The abandoned job was skipped; gauges are back to zero.
            assert service.executor.in_flight() == 0
            assert service.executor.depth() == 0
        finally:
            service.shutdown()

    def test_abandoned_job_still_commits_and_replays(
        self, tmp_path, figure1_text
    ):
        """The ambiguous timeout: the worker finishes after the 503.
        Its journal commit must land, and a retry with the same
        idempotency key must return that committed result."""
        service = AnonymizationService(
            port=0,
            workers=2,
            queue_limit=8,
            request_timeout=0.3,
            state_dir=str(tmp_path / "state"),
        )
        service.start_background()
        try:
            client = ServiceClient(service.base_url, timeout=30)
            session_info = client.create_session(SALT)
            session = service.sessions.get(session_info["id"])
            key = idempotency_key_for("a.cfg", figure1_text)
            with session.lock:  # the job starts, then blocks on this lock
                with pytest.raises(ServiceUnavailableError):
                    client.anonymize(
                        session_info["id"],
                        figure1_text,
                        source="a.cfg",
                        idempotency_key=key,
                    )
            deadline = time.time() + 5
            while time.time() < deadline and service.executor.in_flight():
                time.sleep(0.02)
            result = client.anonymize(
                session_info["id"],
                figure1_text,
                source="a.cfg",
                idempotency_key=key,
            )
            assert result.get("replayed") is True
        finally:
            service.shutdown()


class TestDropFaults:
    def _service(self, tmp_path):
        service = AnonymizationService(
            port=0, workers=2, queue_limit=8,
            state_dir=str(tmp_path / "state"),
        )
        service.start_background()
        return service

    def _retrying(self, service):
        return RetryingServiceClient(
            service.base_url,
            timeout=30,
            salt=SALT,
            policy=RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.0),
        )

    def test_drop_post_commit_replays_on_retry(self, tmp_path, figure1_text):
        service = self._service(tmp_path)
        try:
            client = self._retrying(service)
            session = client.create_session(
                SALT, options={"fault_plan": "drop-post-commit:cr1.cfg"}
            )
            result = client.anonymize(
                session["id"], figure1_text, source="siteA/cr1.cfg"
            )
            # First attempt committed then dropped; the retry was
            # answered from the journal.
            assert result.get("replayed") is True
            assert (
                service.metrics.counter_value("repro_idempotent_replays_total")
                == 1
            )
            clean = client.anonymize(
                session["id"], figure1_text, source="siteA/cr2.cfg"
            )
            assert "replayed" not in clean
        finally:
            service.shutdown()

    def test_drop_pre_commit_reruns_on_retry(self, tmp_path, figure1_text):
        service = self._service(tmp_path)
        try:
            client = self._retrying(service)
            session = client.create_session(
                SALT, options={"fault_plan": "drop-pre-commit:cr1.cfg"}
            )
            result = client.anonymize(
                session["id"], figure1_text, source="siteA/cr1.cfg"
            )
            # Nothing was committed before the drop: the retry re-ran
            # the work for real.
            assert "replayed" not in result
            assert (
                service.metrics.counter_value("repro_idempotent_replays_total")
                == 0
            )
        finally:
            service.shutdown()


def _spawn_daemon(tmp_path, name, state_dir, extra_env=None, extra_args=()):
    ready = tmp_path / (name + ".ready")
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--state-dir",
            str(state_dir),
            "--ready-file",
            str(ready),
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + 30
    while not ready.exists() and time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError("daemon died: " + (proc.stdout.read() or ""))
        time.sleep(0.05)
    assert ready.exists(), "daemon never became ready"
    return proc, ready.read_text().strip()


class TestChaos:
    def test_kill_mid_journal_write_then_recover(
        self, tmp_path, figure1_text
    ):
        """The headline chaos test.  A fault kills the daemon *mid*-
        journal-append (half a record on disk, no response sent).  After
        a restart the retrying client resumes the session, resubmits the
        committed files (answered from the journal) and the killed one
        (re-run), and the corpus output is byte-identical to the batch
        ``--jobs N`` pipeline."""
        corpus = _corpus(figure1_text)
        reference = _batch_reference(corpus)
        state_dir = tmp_path / "state"
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.05, max_delay=0.2, jitter=0.0
        )

        proc1, url1 = _spawn_daemon(
            tmp_path,
            "daemon1",
            state_dir,
            extra_env={"REPRO_FAULT_PLAN": "journal-kill:siteB/cr1.cfg"},
        )
        outputs = {}
        try:
            client1 = RetryingServiceClient(
                url1, timeout=30, salt=SALT, policy=policy
            )
            session = client1.create_session(SALT)
            session_id = session["id"]
            client1.freeze(session_id, corpus)
            for name in ["siteA/cr1.cfg", "siteA/cr2.cfg"]:
                outputs[name] = client1.anonymize(
                    session_id, corpus[name], source=name
                )["text"]
            # This request dies mid-journal-write: no response, daemon
            # gone, retries exhaust against the corpse.
            import http.client as _http

            with pytest.raises((OSError, _http.HTTPException)):
                client1.anonymize(
                    session_id, corpus["siteB/cr1.cfg"], source="siteB/cr1.cfg"
                )
            proc1.wait(timeout=10)
            assert proc1.returncode == 3  # the injected os._exit
        finally:
            if proc1.poll() is None:
                proc1.kill()
                proc1.communicate(timeout=10)

        proc2, url2 = _spawn_daemon(tmp_path, "daemon2", state_dir)
        try:
            client2 = RetryingServiceClient(
                url2, timeout=30, salt=SALT, policy=policy
            )
            # No explicit resume: the first 404 carries "recoverable"
            # and the client resumes automatically.
            for name in sorted(corpus):
                outputs[name] = client2.anonymize(
                    session_id, corpus[name], source=name
                )["text"]
            assert outputs == reference

            plain = ServiceClient(url2, timeout=30)
            metrics = plain.metrics_text()
            assert "repro_session_recoveries_total 1" in metrics
            assert "repro_service_journal_torn_discarded_total 1" in metrics

            def counter(name):
                for line in metrics.splitlines():
                    if line.startswith(name + " "):
                        return int(line.split()[1])
                return 0

            # siteA/cr1.cfg and siteA/cr2.cfg were committed before the
            # kill: their resubmissions replay from the journal.
            assert counter("repro_idempotent_replays_total") >= 2
            info = plain.session(session_id)
            assert info["frozen"] is True and info["durable"] is True
        finally:
            proc2.send_signal(signal.SIGTERM)
            try:
                proc2.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc2.kill()
                proc2.communicate(timeout=10)
        assert proc2.returncode == 0

    def test_sigkill_between_requests_then_recover(
        self, tmp_path, figure1_text
    ):
        """SIGKILL with a clean journal tail: everything acknowledged
        survives, nothing is torn."""
        corpus = _corpus(figure1_text)
        reference = _batch_reference(corpus)
        state_dir = tmp_path / "state"
        policy = RetryPolicy(max_attempts=4, base_delay=0.05, jitter=0.0)

        proc1, url1 = _spawn_daemon(tmp_path, "daemon1", state_dir)
        try:
            client1 = RetryingServiceClient(
                url1, timeout=30, salt=SALT, policy=policy
            )
            session_id = client1.create_session(SALT)["id"]
            client1.freeze(session_id, corpus)
            first = client1.anonymize(
                session_id, corpus["siteA/cr1.cfg"], source="siteA/cr1.cfg"
            )["text"]
        finally:
            proc1.kill()  # SIGKILL: no drain, no goodbye
            proc1.communicate(timeout=10)

        proc2, url2 = _spawn_daemon(tmp_path, "daemon2", state_dir)
        try:
            client2 = RetryingServiceClient(
                url2, timeout=30, salt=SALT, policy=policy
            )
            outputs = {
                name: client2.anonymize(session_id, corpus[name], source=name)[
                    "text"
                ]
                for name in sorted(corpus)
            }
            assert outputs == reference
            assert outputs["siteA/cr1.cfg"] == first
            metrics = ServiceClient(url2, timeout=30).metrics_text()
            assert "repro_session_recoveries_total 1" in metrics
            assert "repro_service_journal_torn_discarded_total 0" in metrics
        finally:
            proc2.kill()
            proc2.communicate(timeout=10)


class TestServeExitCodes:
    def test_strict_recovery_exits_journal_corrupt(self, tmp_path):
        state_dir = tmp_path / "state"
        bad = state_dir / "sessions" / "deadbeef"
        bad.mkdir(parents=True)
        (bad / "meta.json").write_text("not json at all")
        from repro.service.cli import serve_main

        code = serve_main(
            ["--port", "0", "--state-dir", str(state_dir), "--strict-recovery"]
        )
        assert code == EXIT_JOURNAL_CORRUPT

    def test_without_strict_recovery_quarantines_and_serves(self, tmp_path):
        state_dir = tmp_path / "state"
        bad = state_dir / "sessions" / "deadbeef"
        bad.mkdir(parents=True)
        (bad / "meta.json").write_text("not json at all")
        service = AnonymizationService(port=0, state_dir=str(state_dir))
        try:
            assert "deadbeef" in service.recovery_summary.quarantined
            assert (
                service.metrics.counter_value(
                    "repro_service_journal_quarantined_total"
                )
                == 1
            )
        finally:
            service.executor.shutdown(wait=True)
            service.httpd.server_close()

    def test_unusable_state_dir_exits_recovery_failed(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")  # a file where the state dir must go
        from repro.service.cli import serve_main

        code = serve_main(
            ["--port", "0", "--state-dir", str(blocker / "state")]
        )
        assert code == EXIT_RECOVERY_FAILED


class TestDiskFaultDegradation:
    """ENOSPC on the journal parks the session instead of tearing it.

    The contract: a disk-level append failure rolls the record back
    cleanly (no torn tail, no phantom seq), the request fails with
    :class:`JournalDiskError` (the HTTP layer turns it into 507 +
    Retry-After), and the *next* successful append clears the
    degradation — the client's retry is the half-open probe.
    """

    def test_enospc_rolls_back_cleanly_and_retry_heals(
        self, tmp_path, figure1_text
    ):
        from repro.service.journal import JournalDiskError

        manager, store, _ = _durable_manager(tmp_path / "state")
        session = manager.create(
            SALT, {"fault_plan": "journal-enospc:full.cfg"}
        )
        ok = session.anonymize(figure1_text, source="fine.cfg")
        with pytest.raises(JournalDiskError):
            session.anonymize(figure1_text, source="full.cfg")
        assert session.disk_degraded is True
        assert session.describe()["disk_degraded"] is True
        assert manager.disk_degraded_count() == 1

        # The retry (the fault is one-shot) succeeds and un-parks.
        healed = session.anonymize(figure1_text, source="full.cfg")
        assert session.disk_degraded is False
        assert manager.disk_degraded_count() == 0
        manager.close_all()

        # No torn tail was left behind: recovery replays both
        # acknowledged requests and nothing else.
        manager2, store2, _ = _durable_manager(tmp_path / "state")
        assert store2.summary.torn_discarded == 0
        assert session.id in store2.summary.recoverable
        restored = manager2.resume(SALT, session.id)
        assert restored.describe()["requests_replayed"] == 2
        again = restored.anonymize(figure1_text, source="full.cfg")
        assert again["text"] == healed["text"]
        assert ok["text"] == restored.anonymize(
            figure1_text, source="fine.cfg"
        )["text"]
        manager2.close_all()

    def test_enospc_freeze_is_retained_and_flushed_on_retry(
        self, tmp_path, figure1_text
    ):
        from repro.service.journal import JournalDiskError

        corpus = _corpus(figure1_text)
        manager, _, _ = _durable_manager(tmp_path / "state")
        session = manager.create(
            SALT, {"fault_plan": "journal-enospc:<freeze>"}
        )
        with pytest.raises(JournalDiskError):
            session.freeze(corpus)
        assert session.disk_degraded is True

        # The retry flushes the retained freeze record (the in-memory
        # freeze is irreversible, so the record must not be lost).
        result = session.freeze(corpus)
        assert result["frozen"] is True
        assert session.disk_degraded is False
        reference = _batch_reference(corpus)
        live = session.anonymize(corpus["siteA/cr1.cfg"], source="siteA/cr1.cfg")
        assert live["text"] == reference["siteA/cr1.cfg"]
        manager.close_all()

        # Restart: the journal carries the freeze, so the recovered
        # session produces the same frozen mappings.
        manager2, _, _ = _durable_manager(tmp_path / "state")
        restored = manager2.resume(SALT, session.id)
        again = restored.anonymize(
            corpus["siteB/cr1.cfg"], source="siteB/cr1.cfg"
        )
        assert again["text"] == reference["siteB/cr1.cfg"]
        manager2.close_all()

    def test_enospc_then_snapshot_eio_same_session_heals_losslessly(
        self, tmp_path, figure1_text
    ):
        """Two different disk faults in one session: ENOSPC parks the
        append, the healing retry's own snapshot rotation then hits EIO
        — park, heal, and replay must still lose nothing."""
        from repro.service.journal import JournalDiskError

        manager, _, metrics = _durable_manager(
            tmp_path / "state", snapshot_every=1
        )
        session = manager.create(
            SALT,
            {"fault_plan": "journal-enospc:full.cfg;snapshot-eio:snapshot"},
        )
        # Append fails at the disk level: rolled back, parked read-only.
        with pytest.raises(JournalDiskError):
            session.anonymize(figure1_text, source="full.cfg")
        assert session.disk_degraded is True

        # The healing retry commits the record — and its snapshot
        # rotation (snapshot_every=1) immediately hits the injected EIO.
        # The request must still succeed: the journal record is durable,
        # only the rotation is skipped.
        healed = session.anonymize(figure1_text, source="full.cfg")
        assert session.disk_degraded is False
        assert (
            metrics.counter_value(
                "repro_service_journal_snapshot_failures_total"
            )
            == 1
        )
        assert session.journal.appended_since_snapshot == 1

        # Both one-shot faults are spent: the next append rotates fine.
        ok = session.anonymize(figure1_text, source="fine.cfg")
        assert session.journal.appended_since_snapshot == 0
        manager.close_all()

        # Restart: nothing quarantined, nothing torn, both acknowledged
        # requests replay byte-identically.
        manager2, store2, _ = _durable_manager(tmp_path / "state")
        assert store2.summary.quarantined == {}
        assert store2.summary.torn_discarded == 0
        restored = manager2.resume(SALT, session.id)
        # The last rotation succeeded, so the whole history lives in the
        # snapshot and no journal deltas are left to replay.
        assert restored.describe()["requests_replayed"] == 0
        assert restored.anonymize(figure1_text, source="full.cfg")[
            "text"
        ] == healed["text"]
        assert restored.anonymize(figure1_text, source="fine.cfg")[
            "text"
        ] == ok["text"]
        manager2.close_all()

    def test_snapshot_eio_is_nonfatal_and_selfheals(
        self, tmp_path, figure1_text
    ):
        manager, _, metrics = _durable_manager(
            tmp_path / "state", snapshot_every=1
        )
        session = manager.create(
            SALT, {"fault_plan": "snapshot-eio:snapshot"}
        )
        # snapshot_every=1: this append triggers a snapshot whose write
        # fails with EIO.  The request must still succeed — the journal
        # record is already durable; only the rotation is skipped.
        ok = session.anonymize(figure1_text, source="a.cfg")
        assert ok["status"] in ("ok", "failed-closed")
        assert (
            metrics.counter_value(
                "repro_service_journal_snapshot_failures_total"
            )
            == 1
        )
        # The fault is one-shot: the next boundary snapshot succeeds,
        # so the journal rotates and the backlog self-heals.
        session.anonymize(figure1_text, source="b.cfg")
        assert session.journal.appended_since_snapshot == 0
        manager.close_all()

        manager2, _, _ = _durable_manager(tmp_path / "state")
        restored = manager2.resume(SALT, session.id)
        assert restored.anonymize(figure1_text, source="a.cfg")[
            "text"
        ] == ok["text"]
        manager2.close_all()


class TestReadOnlyStateRecovery:
    """recover() on a read-only or failing state dir: quarantine the
    affected sessions (in place if the rename itself fails) and keep
    serving everything else."""

    def _seed_sessions(self, state_dir, figure1_text, count=2):
        manager, store, _ = _durable_manager(state_dir)
        ids = []
        for i in range(count):
            session = manager.create(SALT)
            session.anonymize(figure1_text, source="cfg-{}.cfg".format(i))
            ids.append(session.id)
        manager.close_all()
        return ids

    def test_unreadable_journal_quarantines_only_that_session(
        self, tmp_path, figure1_text
    ):
        state_dir = tmp_path / "state"
        healthy_id, victim_id = self._seed_sessions(
            state_dir, figure1_text
        )
        # Replace the victim's journal with a directory: read_bytes()
        # raises OSError, the classic symptom of a disk gone bad.
        journal_path = state_dir / "sessions" / victim_id / "journal.jsonl"
        journal_path.unlink()
        journal_path.mkdir()

        manager2, store2, _ = _durable_manager(state_dir)
        assert victim_id in store2.summary.quarantined
        assert "unreadable" in store2.summary.quarantined[victim_id]
        assert healthy_id in store2.summary.recoverable
        restored = manager2.resume(SALT, healthy_id)
        assert restored.describe()["requests_replayed"] == 1
        manager2.close_all()

    def test_quarantine_move_failure_quarantines_in_place(
        self, tmp_path, figure1_text, monkeypatch
    ):
        state_dir = tmp_path / "state"
        healthy_id, victim_id = self._seed_sessions(
            state_dir, figure1_text
        )
        (state_dir / "sessions" / victim_id / "meta.json").write_text(
            "not json at all"
        )

        # A read-only filesystem fails the quarantine rename itself.
        import errno as _errno

        import repro.service.journal as journal_module

        real_replace = os.replace

        def replace_fails(src, dst, *args, **kwargs):
            if str(state_dir) in str(src):
                raise OSError(_errno.EROFS, "read-only file system")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr(journal_module.os, "replace", replace_fails)
        store = SessionStore(state_dir)
        summary = store.recover()
        assert victim_id in summary.quarantined
        assert "quarantined in place" in summary.quarantined[victim_id]
        # The directory was NOT renamed...
        assert (state_dir / "sessions" / victim_id).exists()
        # ...the session is not resumable...
        assert victim_id not in summary.recoverable
        # ...and the healthy session still is.
        assert healthy_id in summary.recoverable


class TestRetryAfterHardening:
    """Malformed or absurd Retry-After headers must never stall the
    client: anything unparsable or outside [0, 60] falls back to the
    client's own bounded backoff."""

    @pytest.mark.parametrize(
        "header",
        [
            "garbage",
            "Wed, 21 Oct 2015 07:28:00 GMT",  # HTTP-date form: unsupported
            "",
            "nan",
            "inf",
            "-5",
            "1e12",
            "86400",  # absurd: over the 60s cap
        ],
    )
    def test_garbage_headers_are_ignored(self, header):
        from repro.service.client import _parse_retry_after

        assert _parse_retry_after(header) is None

    def test_sane_headers_parse_and_clamp(self):
        from repro.service.client import MAX_RETRY_AFTER, _parse_retry_after

        assert _parse_retry_after("2") == 2.0
        assert _parse_retry_after("0") == 0.0
        assert _parse_retry_after("1.5") == 1.5
        assert _parse_retry_after(str(MAX_RETRY_AFTER)) == MAX_RETRY_AFTER
        assert _parse_retry_after(None) is None

    def test_mock_server_garbage_retry_after_bounded_backoff(self):
        """A server answering 503 with a garbage Retry-After must be
        retried on the normal exponential schedule, not a parsed-garbage
        one (and never crash the parser)."""
        import http.server
        import socketserver

        hits = []

        class Garbage503(http.server.BaseHTTPRequestHandler):
            def do_GET(self):
                hits.append(self.path)
                if len(hits) < 3:
                    body = b'{"error": "busy"}'
                    self.send_response(503)
                    self.send_header("Retry-After", "over 9000!!")
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                body = json.dumps({"status": "ok"}).encode()
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        with socketserver.TCPServer(("127.0.0.1", 0), Garbage503) as httpd:
            thread = threading.Thread(
                target=httpd.serve_forever, daemon=True
            )
            thread.start()
            sleeps = []
            client = RetryingServiceClient(
                base_url="http://127.0.0.1:{}".format(
                    httpd.server_address[1]
                ),
                salt=SALT,
                policy=RetryPolicy(
                    max_attempts=5, base_delay=0.1, jitter=0.0
                ),
                sleep=sleeps.append,
            )
            try:
                health = client._with_retries(client.healthz)
            finally:
                client.close()
                httpd.shutdown()
        assert health["status"] == "ok"
        assert len(hits) == 3
        # The garbage header was ignored: pure exponential backoff, not
        # a 9000-second stall.
        assert sleeps == [0.1, 0.2]
