"""The single-blind configuration clearinghouse (paper Section 7).

"Using the ability to anonymize router configuration files, we plan to
establish a single-blind methodology for working with private network data
through a website portal.  Network owners could download the configuration
anonymization tools … and upload their anonymized configurations after
taking whatever additional steps they felt necessary to verify the
anonymization.  Researchers with accounts on the portal could then be
given access to the data, communicating comments to the anonymous network
owners through a blinding function of the portal."

This module implements that workflow as a library:

* **Owners** register pseudonymously (the portal never learns who they
  are; their handle is a keyed digest of a registration token they keep).
* **Uploads** are gated: the portal re-runs the Section 6.1 leak scanner
  and the validation-oriented sanity checks before accepting a dataset;
  datasets failing the gate are rejected with the highlighted lines.
* **Researchers** browse accepted datasets and file *comments* addressed
  to a dataset; the portal relays them to the owner's message queue under
  the blind handle, so neither side learns the other's identity.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.attacks.textual import Leak, scan_for_leaks
from repro.configmodel import ParsedNetwork
from repro.core.engine import Anonymizer


class PortalError(Exception):
    """Raised for workflow violations (unknown handles, rejected uploads)."""


@dataclass
class Dataset:
    """One accepted anonymized config set."""

    dataset_id: str
    owner_handle: str
    configs: Dict[str, str]
    num_routers: int
    num_lines: int
    description: str = ""


@dataclass
class Comment:
    """A researcher's comment relayed through the blinding function."""

    dataset_id: str
    researcher_handle: str
    text: str


@dataclass
class UploadReceipt:
    accepted: bool
    dataset_id: Optional[str]
    highlighted: List[Leak] = field(default_factory=list)
    reason: str = ""


class Clearinghouse:
    """An in-memory portal implementing the Section 7 workflow."""

    def __init__(self, portal_secret: bytes = b"portal-secret"):
        self._secret = portal_secret
        self._owners: Dict[str, List[Comment]] = {}
        self._researchers: set = set()
        self._datasets: Dict[str, Dataset] = {}
        self._serial = 0

    # -- identity blinding -------------------------------------------------

    def _blind(self, role: str, token: str) -> str:
        digest = hmac.new(
            self._secret, (role + ":" + token).encode("utf-8"), hashlib.sha256
        )
        return role + "-" + digest.hexdigest()[:12]

    def register_owner(self, registration_token: str) -> str:
        """Register an owner; returns the blind handle they will act under.

        The token never leaves the owner's side again — the portal stores
        only the blind handle.
        """
        handle = self._blind("owner", registration_token)
        self._owners.setdefault(handle, [])
        return handle

    def register_researcher(self, registration_token: str) -> str:
        handle = self._blind("researcher", registration_token)
        self._researchers.add(handle)
        return handle

    # -- the upload gate -----------------------------------------------------

    def upload(
        self,
        owner_handle: str,
        anonymizer: Anonymizer,
        anonymized_configs: Dict[str, str],
        description: str = "",
    ) -> UploadReceipt:
        """Submit an anonymized dataset through the acceptance gate.

        The owner supplies the *anonymizer they used* (its report carries
        the recorded privileged values) so the portal can independently
        re-run the leak scan — without ever seeing the original configs or
        the salt.
        """
        if owner_handle not in self._owners:
            raise PortalError("unknown owner handle {!r}".format(owner_handle))

        highlighted = scan_for_leaks(
            anonymized_configs,
            seen_asns=anonymizer.report.seen_asns,
            hashed_tokens=anonymizer.hasher.hashed_inputs.keys(),
            public_ips=anonymizer.report.seen_public_ips,
        )
        if highlighted:
            return UploadReceipt(
                accepted=False,
                dataset_id=None,
                highlighted=highlighted,
                reason="leak scanner highlighted {} lines".format(len(highlighted)),
            )
        if anonymizer.report.flags:
            return UploadReceipt(
                accepted=False,
                dataset_id=None,
                reason="anonymizer flagged {} lines for human review".format(
                    len(anonymizer.report.flags)
                ),
            )
        parsed = ParsedNetwork.from_configs(anonymized_configs)
        if not parsed.routers or not any(
            r.addressed_interfaces() for r in parsed.routers.values()
        ):
            return UploadReceipt(
                accepted=False,
                dataset_id=None,
                reason="dataset does not parse as router configurations",
            )

        self._serial += 1
        dataset_id = "ds-{:04d}".format(self._serial)
        self._datasets[dataset_id] = Dataset(
            dataset_id=dataset_id,
            owner_handle=owner_handle,
            configs=dict(anonymized_configs),
            num_routers=len(anonymized_configs),
            num_lines=sum(len(t.splitlines()) for t in anonymized_configs.values()),
            description=description,
        )
        return UploadReceipt(accepted=True, dataset_id=dataset_id)

    # -- researcher side ------------------------------------------------------

    def catalog(self) -> List[Tuple[str, int, int, str]]:
        """(dataset_id, routers, lines, description) for every dataset —
        owner handles are not exposed to browsers."""
        return [
            (d.dataset_id, d.num_routers, d.num_lines, d.description)
            for d in sorted(self._datasets.values(), key=lambda d: d.dataset_id)
        ]

    def fetch(self, researcher_handle: str, dataset_id: str) -> Dict[str, str]:
        if researcher_handle not in self._researchers:
            raise PortalError("unknown researcher handle {!r}".format(researcher_handle))
        if dataset_id not in self._datasets:
            raise PortalError("no dataset {!r}".format(dataset_id))
        return dict(self._datasets[dataset_id].configs)

    def comment(self, researcher_handle: str, dataset_id: str, text: str) -> None:
        """Relay a comment to the dataset's owner through the blind."""
        if researcher_handle not in self._researchers:
            raise PortalError("unknown researcher handle {!r}".format(researcher_handle))
        dataset = self._datasets.get(dataset_id)
        if dataset is None:
            raise PortalError("no dataset {!r}".format(dataset_id))
        self._owners[dataset.owner_handle].append(
            Comment(dataset_id, researcher_handle, text)
        )

    def inbox(self, owner_handle: str) -> List[Comment]:
        if owner_handle not in self._owners:
            raise PortalError("unknown owner handle {!r}".format(owner_handle))
        return list(self._owners[owner_handle])
