"""Stanza lexer for IOS-style configuration text.

IOS running-configs are line-oriented with indentation marking stanza
membership: a line at column zero opens a stanza; subsequent indented
lines belong to it.  Banners are the one multi-line construct that ignores
this rule, so the lexer tracks their delimiters explicitly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List

_BANNER_RE = re.compile(r"^banner\s+\S+\s+(\S)", re.IGNORECASE)


@dataclass
class Stanza:
    """A top-level command plus its indented children."""

    command: str
    children: List[str] = field(default_factory=list)

    def first_word(self) -> str:
        parts = self.command.split()
        return parts[0].lower() if parts else ""


def lex_config(text: str) -> List[Stanza]:
    """Split config text into stanzas, skipping separators and banners."""
    stanzas: List[Stanza] = []
    current: Stanza = None
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index].rstrip()
        index += 1
        if not line or line.lstrip().startswith("!"):
            current = None
            continue

        banner = _BANNER_RE.match(line)
        if banner is not None:
            # Swallow the banner body up to its closing delimiter.
            delimiter = banner.group(1)
            if delimiter == "^" and len(line) > banner.start(1) + 1:
                delimiter = line[banner.start(1) : banner.start(1) + 2]
            remainder = line[banner.end(1):]
            if delimiter not in remainder:
                while index < len(lines) and delimiter not in lines[index]:
                    index += 1
                index += 1  # the closing-delimiter line
            current = None
            continue

        if line[0].isspace():
            if current is not None:
                current.children.append(line.strip())
            continue
        current = Stanza(command=line.strip())
        stanzas.append(current)
    return stanzas
