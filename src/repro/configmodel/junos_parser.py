"""Parser for JunOS-style hierarchical configurations -> ParsedRouter.

Walks the brace structure into (path, statement) pairs and maps the
statements onto the same :class:`~repro.configmodel.model.ParsedRouter`
model the IOS parser produces, so the validation suites and design
extraction run unchanged over either vendor's configs.

OSPF/RIP interface references are resolved to the referenced interface's
subnet so the design extractor's coverage logic (built around IOS
``network`` statements) sees equivalent (base, wildcard, area) tuples.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Tuple

from repro.configmodel.model import (
    ParsedAsPathAcl,
    ParsedBgp,
    ParsedBgpNeighbor,
    ParsedCommunityList,
    ParsedIgp,
    ParsedInterface,
    ParsedPrefixList,
    ParsedRouteMapClause,
    ParsedRouter,
    ParsedStaticRoute,
)
from repro.netutil import ip_to_int, is_ipv4, parse_prefix

Statement = Tuple[Tuple[str, ...], str]


def iter_statements(text: str) -> Iterator[Statement]:
    """Yield (context_path, statement) for every terminal statement."""
    path: List[str] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("/*"):
            continue
        # Strip trailing annotations/comments.
        line = re.sub(r"\s*##.*$", "", line)
        if line.endswith("{"):
            path.append(line[:-1].strip())
            continue
        if line == "}":
            if path:
                path.pop()
            continue
        if line.endswith(";"):
            yield tuple(path), line[:-1].strip()


def looks_like_junos(text: str) -> bool:
    """Cheap syntax sniff used to pick a parser automatically."""
    head = text[:2000]
    return bool(re.search(r"^\s*(system|interfaces)\s*\{", head, re.M)) or (
        head.count("{") >= 3 and ";" in head
    )


def parse_junos_config(text: str) -> ParsedRouter:
    router = ParsedRouter()
    bgp_asn: Optional[int] = None
    bgp = ParsedBgp(asn=0)
    has_bgp = False
    ospf_terms: List[Tuple[str, str, bool]] = []  # (area, ifl, passive)
    rip_neighbors: List[str] = []
    statics: List[Tuple[int, int, str]] = []

    group_peer_as: dict = {}
    current_clause_index: dict = {}
    pending_descriptions: dict = {}

    for path, statement in iter_statements(text):
        words = statement.split()
        if not words:
            continue
        head = words[0]

        if path[:1] == ("system",):
            if head == "host-name" and len(words) > 1:
                router.hostname = words[1]
            elif head == "domain-name" and len(words) > 1:
                router.domain_name = words[1]
            elif len(path) >= 2 and path[1].startswith("login") and path[-1].startswith("user "):
                pass  # statements inside a user block handled below
            elif head == "server" and path[-1] == "ntp" and is_ipv4(words[1]):
                router.ntp_servers.append(ip_to_int(words[1]))

        if len(path) >= 2 and path[0] == "system":
            for element in path:
                if element.startswith("user "):
                    user = element.split()[1]
                    if user not in router.usernames:
                        router.usernames.append(user)
                if element.startswith("host ") and "syslog" in path:
                    host = element.split()[1]
                    if is_ipv4(host):
                        value = ip_to_int(host)
                        if value not in router.logging_hosts:
                            router.logging_hosts.append(value)

        if path[:1] == ("interfaces",) and head == "address" and len(path) >= 3:
            ifd = path[1].split()[0]
            unit = path[2].split()[1] if path[2].startswith("unit") else "0"
            name = "{}.{}".format(ifd, unit)
            try:
                address, length = parse_prefix(words[1])
            except ValueError:
                continue
            interface = router.interfaces.setdefault(name, ParsedInterface(name=name))
            interface.address = address
            interface.prefix_len = length
        elif path[:1] == ("interfaces",) and head == "description" and len(path) >= 2:
            ifd = path[1].split()[0]
            pending_descriptions[ifd] = statement.split(None, 1)[1].strip('"')

        elif path[:1] == ("routing-options",):
            if head == "autonomous-system" and words[1].isdigit():
                bgp_asn = int(words[1])
            elif head == "router-id" and is_ipv4(words[1]):
                bgp.router_id = ip_to_int(words[1])
            elif head == "route" and len(path) >= 2 and path[1] == "static":
                try:
                    prefix, length = parse_prefix(words[1])
                except ValueError:
                    continue
                target = "Null0"
                if "next-hop" in words:
                    target = words[words.index("next-hop") + 1]
                elif "discard" in words:
                    target = "Null0"
                statics.append((prefix, length, target))

        elif path[:2] == ("protocols", "bgp") or (
            len(path) >= 2 and path[0] == "protocols" and path[1] == "bgp"
        ):
            has_bgp = True
            group = path[2].split()[1] if len(path) >= 3 and path[2].startswith("group") else None
            if head == "peer-as" and group and words[1].isdigit():
                group_peer_as[group] = int(words[1])
            elif head == "neighbor" and len(words) >= 2:
                peer = words[1]
                neighbor = bgp.neighbors.setdefault(peer, ParsedBgpNeighbor(address=peer))
                neighbor.remote_as = group_peer_as.get(group)
            elif head in ("import", "export", "authentication-key") and len(path) >= 4:
                neighbor_element = path[3]
                if neighbor_element.startswith("neighbor "):
                    peer = neighbor_element.split()[1]
                    neighbor = bgp.neighbors.setdefault(
                        peer, ParsedBgpNeighbor(address=peer)
                    )
                    neighbor.remote_as = group_peer_as.get(group)
                    if head == "import":
                        neighbor.route_map_in = words[1]
                    elif head == "export":
                        neighbor.route_map_out = words[1]
                    else:
                        neighbor.has_password = True
            elif head == "type" and group:
                pass

        elif path[:2] == ("protocols", "ospf"):
            if len(path) >= 3 and path[2].startswith("area"):
                area = path[2].split()[1].split(".")[-1]
                if head == "interface" and len(words) >= 2:
                    ospf_terms.append((area, words[1], False))
                elif head == "passive" and len(path) >= 4 and path[3].startswith("interface"):
                    ospf_terms.append((area, path[3].split()[1], True))

        elif path[:2] == ("protocols", "rip"):
            if head == "neighbor" and len(words) >= 2:
                rip_neighbors.append(words[1])

        elif path[:1] == ("policy-options",):
            _parse_policy_statement(
                router, path, statement, words, current_clause_index
            )

        elif path[:1] == ("snmp",):
            for element in path:
                if element.startswith("community "):
                    community = element.split()[1]
                    if community not in router.snmp_communities:
                        router.snmp_communities.append(community)

    # Attach buffered descriptions to real interfaces (never create one
    # from a description alone — pre/post interface counts must agree).
    for ifd, description in pending_descriptions.items():
        for name in sorted(router.interfaces):
            if name.split(".")[0] == ifd:
                router.interfaces[name].description = description
                break

    # Resolve IGP interface references into coverage tuples.
    def subnet_tuple(ifl: str, area):
        interface = router.interfaces.get(ifl)
        if interface is None or interface.address is None:
            return None
        length = interface.prefix_len or 32
        wildcard = (0xFFFFFFFF >> length) if length else 0xFFFFFFFF
        base = interface.address & ((~wildcard) & 0xFFFFFFFF)
        return (base, wildcard, area)

    if ospf_terms:
        igp = ParsedIgp(protocol="ospf", process_id=0)
        seen_passive = set()
        for area, ifl, passive in ospf_terms:
            entry = subnet_tuple(ifl, area)
            if entry is not None:
                igp.networks.append(entry)
            if passive and ifl not in seen_passive:
                seen_passive.add(ifl)
                igp.passive_interfaces.append(ifl)
        router.igps.append(igp)
    if rip_neighbors:
        igp = ParsedIgp(protocol="rip")
        for ifl in rip_neighbors:
            entry = subnet_tuple(ifl, None)
            if entry is not None:
                igp.networks.append(entry)
        router.igps.append(igp)

    for prefix, length, target in statics:
        router.static_routes.append(ParsedStaticRoute(prefix, length, target))

    if has_bgp or bgp_asn is not None:
        bgp.asn = bgp_asn or 0
        # peer-as statements may arrive after neighbors; re-resolve.
        router.bgp = bgp
    return router


def _parse_policy_statement(router, path, statement, words, clause_index) -> None:
    head = words[0]
    if head == "as-path" and len(words) >= 3:
        name = words[1]
        regex = statement.split(None, 2)[2].strip('"')
        router.aspath_acls.append(ParsedAsPathAcl(name, "permit", regex))
        return
    if head == "community" and "members" in words:
        name = words[1]
        body = statement.split("members", 1)[1].strip()
        expanded = body.startswith('"')
        body = body.strip('"').strip("[] ").strip()
        router.community_lists.append(
            ParsedCommunityList(name, "permit", body, expanded)
        )
        return
    if path[-1].startswith("prefix-list") and "/" in head:
        name = path[-1].split()[1]
        try:
            prefix, length = parse_prefix(head)
        except ValueError:
            return
        router.prefix_lists.append(
            ParsedPrefixList(name, None, "permit", prefix, length)
        )
        return

    # Inside a policy-statement term.
    statement_name = None
    term_name = None
    for element in path:
        if element.startswith("policy-statement "):
            statement_name = element.split()[1]
        elif element.startswith("term "):
            term_name = element.split()[1]
    if statement_name is None:
        return
    key = (statement_name, term_name)
    if key not in clause_index:
        clause = ParsedRouteMapClause(
            name=statement_name,
            action="permit",
            sequence=len([k for k in clause_index if k[0] == statement_name]) * 10 + 10,
        )
        clause_index[key] = clause
        router.route_maps.append(clause)
    clause = clause_index[key]
    if path[-1] == "from":
        clause.matches.append(statement)
    elif path[-1] == "then" or (len(path) >= 1 and path[-1].startswith("term")):
        if statement == "reject":
            clause.action = "deny"
        elif statement == "accept":
            pass
        else:
            clause.sets.append(statement)
