"""Network-level model assembled from parsed routers.

Derives the cross-router structure the validation suites and fingerprint
attacks need: subnets, physical adjacencies (shared subnets), iBGP/eBGP
session structure, and the subnet-size histogram.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.configmodel.model import ParsedRouter
from repro.configmodel.parser import parse_config
from repro.netutil import is_ipv4, ip_to_int, network_address


@dataclass
class BgpSessionView:
    router: str
    neighbor_address: str
    remote_as: int
    ebgp: bool


class ParsedNetwork:
    """All the routers of one network, parsed, plus derived structure."""

    def __init__(self, routers: Dict[str, ParsedRouter]):
        self.routers = routers

    @classmethod
    def from_configs(cls, configs: Dict[str, str]) -> "ParsedNetwork":
        """Parse a set of configs, auto-detecting IOS vs JunOS per file."""
        from repro.configmodel.junos_parser import looks_like_junos, parse_junos_config

        routers = {}
        for name, text in sorted(configs.items()):
            if looks_like_junos(text):
                routers[name] = parse_junos_config(text)
            else:
                routers[name] = parse_config(text)
        return cls(routers)

    # -- derived structure -------------------------------------------------

    def subnets(self) -> Set[Tuple[int, int]]:
        """Every (network_address, prefix_len) seen on an interface."""
        found: Set[Tuple[int, int]] = set()
        for router in self.routers.values():
            for interface in router.addressed_interfaces():
                if interface.prefix_len is None:
                    continue
                found.add(
                    (network_address(interface.address, interface.prefix_len),
                     interface.prefix_len)
                )
        return found

    def subnet_size_histogram(self) -> Counter:
        """prefix_len -> count of distinct subnets (paper Sections 5, 6.2)."""
        histogram: Counter = Counter()
        for _, prefix_len in self.subnets():
            histogram[prefix_len] += 1
        return histogram

    def adjacencies(self) -> Set[Tuple[str, str]]:
        """Router pairs sharing an interface subnet (physical topology)."""
        by_subnet: Dict[Tuple[int, int], List[str]] = {}
        for name, router in sorted(self.routers.items()):
            for interface in router.addressed_interfaces():
                if interface.prefix_len is None or interface.prefix_len >= 32:
                    continue
                key = (
                    network_address(interface.address, interface.prefix_len),
                    interface.prefix_len,
                )
                by_subnet.setdefault(key, []).append(name)
        pairs: Set[Tuple[str, str]] = set()
        for members in by_subnet.values():
            unique = sorted(set(members))
            for i, a in enumerate(unique):
                for b in unique[i + 1 :]:
                    pairs.add((a, b))
        return pairs

    def bgp_speakers(self) -> List[str]:
        return sorted(n for n, r in self.routers.items() if r.is_bgp_speaker)

    def local_asns(self) -> Set[int]:
        return {r.bgp.asn for r in self.routers.values() if r.bgp is not None}

    def bgp_sessions(self) -> List[BgpSessionView]:
        """Every configured BGP session, classified iBGP/eBGP."""
        sessions: List[BgpSessionView] = []
        for name, router in sorted(self.routers.items()):
            if router.bgp is None:
                continue
            for address, neighbor in sorted(router.bgp.neighbors.items()):
                if neighbor.remote_as is None:
                    continue
                sessions.append(
                    BgpSessionView(
                        router=name,
                        neighbor_address=address,
                        remote_as=neighbor.remote_as,
                        ebgp=neighbor.remote_as != router.bgp.asn,
                    )
                )
        return sessions

    def ebgp_sessions_per_router(self) -> Counter:
        """router -> number of eBGP sessions (peering structure, §6.3)."""
        counter: Counter = Counter()
        for session in self.bgp_sessions():
            if session.ebgp:
                counter[session.router] += 1
        return counter

    def interface_type_histogram(self) -> Counter:
        histogram: Counter = Counter()
        for router in self.routers.values():
            for interface in router.interfaces.values():
                histogram[interface.base_type] += 1
        return histogram

    def loopback_addresses(self) -> Set[int]:
        found: Set[int] = set()
        for router in self.routers.values():
            for interface in router.interfaces.values():
                if interface.base_type == "loopback" and interface.address is not None:
                    found.add(interface.address)
        return found

    def total_interfaces(self) -> int:
        return sum(len(r.interfaces) for r in self.routers.values())
