"""Parser: IOS-style config text -> :class:`ParsedRouter`.

Tolerant by design: unrecognized stanzas land in ``unparsed`` rather than
raising, because the parser must handle both pre-anonymization configs
(hostnames, real names) and post-anonymization configs (hash digests in
the same grammatical positions) across every generator dialect.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.configmodel.lexer import Stanza, lex_config
from repro.configmodel.model import (
    ParsedAclEntry,
    ParsedAsPathAcl,
    ParsedBgp,
    ParsedBgpNeighbor,
    ParsedCommunityList,
    ParsedIgp,
    ParsedInterface,
    ParsedPrefixList,
    ParsedRouteMapClause,
    ParsedRouter,
    ParsedStaticRoute,
)
from repro.netutil import ip_to_int, is_ipv4, mask_to_len

_ASPATH_RE = re.compile(
    r"^ip as-path access-list (\S+) (permit|deny) (.+)$", re.IGNORECASE
)
_COMMLIST_RE = re.compile(
    r"^ip community-list (?:(\d+)|standard (\S+)|expanded (\S+)) (permit|deny) (.+)$",
    re.IGNORECASE,
)
_PREFIXLIST_RE = re.compile(
    r"^ip prefix-list (\S+)(?: seq (\d+))? (permit|deny) (\S+?)/(\d+)"
    r"(?: ge (\d+))?(?: le (\d+))?$",
    re.IGNORECASE,
)
_ACL_RE = re.compile(r"^access-list (\d+) (permit|deny) (.+)$", re.IGNORECASE)
_ROUTEMAP_RE = re.compile(r"^route-map (\S+)(?: (permit|deny))?(?: (\d+))?$", re.IGNORECASE)
_STATIC_RE = re.compile(r"^ip route (\S+) (\S+) (\S+)", re.IGNORECASE)


def parse_config(text: str) -> ParsedRouter:
    """Parse one config file."""
    router = ParsedRouter()
    for stanza in lex_config(text):
        _dispatch(router, stanza)
    _resolve_isis_coverage(router)
    return router


def _resolve_isis_coverage(router: ParsedRouter) -> None:
    """IS-IS is interface-activated: build its coverage tuples from the
    interfaces carrying `ip router isis`."""
    isis = [igp for igp in router.igps if igp.protocol == "isis"]
    if not isis:
        return
    networks = []
    for interface in router.interfaces.values():
        if not getattr(interface, "isis_enabled", False):
            continue
        if interface.address is None or interface.prefix_len is None:
            continue
        wildcard = (
            (0xFFFFFFFF >> interface.prefix_len) if interface.prefix_len else 0xFFFFFFFF
        )
        base = interface.address & ((~wildcard) & 0xFFFFFFFF)
        networks.append((base, wildcard, None))
    for igp in isis:
        igp.networks.extend(networks)


def _dispatch(router: ParsedRouter, stanza: Stanza) -> None:
    command = stanza.command
    word = stanza.first_word()
    if word == "hostname":
        router.hostname = command.split(None, 1)[1] if " " in command else None
        return
    if word == "version":
        router.version = command.split(None, 1)[1] if " " in command else None
        return
    if word == "interface":
        _parse_interface(router, stanza)
        return
    if word == "router":
        _parse_router_stanza(router, stanza)
        return
    if word == "route-map":
        _parse_route_map(router, stanza)
        return
    if word == "access-list":
        match = _ACL_RE.match(command)
        if match:
            router.access_lists.append(
                ParsedAclEntry(match.group(1), match.group(2).lower(), match.group(3))
            )
            return
    if word == "ip":
        if _parse_ip_stanza(router, stanza):
            return
    if word == "username":
        parts = command.split()
        if len(parts) >= 2:
            router.usernames.append(parts[1])
        return
    if word == "snmp-server":
        parts = command.split()
        if len(parts) >= 3 and parts[1].lower() == "community":
            router.snmp_communities.append(parts[2])
        return
    if word == "ntp":
        parts = command.split()
        if len(parts) >= 3 and parts[1].lower() == "server" and is_ipv4(parts[2]):
            router.ntp_servers.append(ip_to_int(parts[2]))
        return
    if word == "logging":
        parts = command.split()
        if len(parts) == 2 and is_ipv4(parts[1]):
            router.logging_hosts.append(ip_to_int(parts[1]))
        return
    router.unparsed.append(command)


def _parse_interface(router: ParsedRouter, stanza: Stanza) -> None:
    parts = stanza.command.split()
    if len(parts) < 2:
        return
    interface = ParsedInterface(name=parts[1])
    for child in stanza.children:
        lowered = child.lower()
        words = child.split()
        if lowered.startswith("ip address") and len(words) >= 4:
            if is_ipv4(words[2]) and is_ipv4(words[3]):
                interface.address = ip_to_int(words[2])
                interface.prefix_len = mask_to_len(ip_to_int(words[3]))
        elif lowered.startswith("description"):
            interface.description = child.split(None, 1)[1] if " " in child else ""
        elif lowered.startswith("encapsulation") and len(words) >= 2:
            interface.encapsulation = words[1].lower()
        elif lowered.startswith("bandwidth") and len(words) >= 2 and words[1].isdigit():
            interface.bandwidth = int(words[1])
        elif lowered.startswith("ip helper-address") and len(words) >= 3:
            if is_ipv4(words[2]):
                interface.helper_addresses.append(ip_to_int(words[2]))
        elif lowered.startswith("ip access-group") and len(words) >= 3:
            interface.acl_groups.append(words[2])
        elif lowered == "ip router isis":
            interface.isis_enabled = True
        elif lowered == "shutdown":
            interface.shutdown = True
    router.interfaces[interface.name] = interface


def _parse_router_stanza(router: ParsedRouter, stanza: Stanza) -> None:
    parts = stanza.command.split()
    if len(parts) < 2:
        return
    protocol = parts[1].lower()
    if protocol == "bgp":
        _parse_bgp(router, stanza, parts)
        return
    igp = ParsedIgp(protocol=protocol)
    if len(parts) >= 3 and parts[2].isdigit():
        igp.process_id = int(parts[2])
    for child in stanza.children:
        if protocol == "isis" and child.lower().startswith("net "):
            igp.isis_net = child.split()[1]
            continue
        words = child.split()
        lowered = child.lower()
        if lowered.startswith("network") and len(words) >= 2 and is_ipv4(words[1]):
            base = ip_to_int(words[1])
            wildcard = None
            area = None
            if len(words) >= 3 and is_ipv4(words[2]):
                wildcard = ip_to_int(words[2])
            if "area" in lowered:
                area = words[words.index("area") + 1] if "area" in [w.lower() for w in words] else None
                # robust lookup below
                for i, token in enumerate(words):
                    if token.lower() == "area" and i + 1 < len(words):
                        area = words[i + 1]
            igp.networks.append((base, wildcard, area))
        elif lowered.startswith("passive-interface") and len(words) >= 2:
            igp.passive_interfaces.append(words[1])
        elif lowered.startswith("redistribute") and len(words) >= 2:
            igp.redistribute.append(words[1].lower())
    router.igps.append(igp)


def _parse_bgp(router: ParsedRouter, stanza: Stanza, parts) -> None:
    if len(parts) < 3 or not parts[2].isdigit():
        return
    bgp = ParsedBgp(asn=int(parts[2]))
    for child in stanza.children:
        words = child.split()
        lowered = child.lower()
        if lowered.startswith("neighbor") and len(words) >= 3:
            peer = words[1]
            neighbor = bgp.neighbors.setdefault(peer, ParsedBgpNeighbor(address=peer))
            keyword = words[2].lower()
            if keyword == "remote-as" and len(words) >= 4 and words[3].isdigit():
                neighbor.remote_as = int(words[3])
            elif keyword == "route-map" and len(words) >= 5:
                if words[4].lower() == "in":
                    neighbor.route_map_in = words[3]
                else:
                    neighbor.route_map_out = words[3]
            elif keyword == "update-source" and len(words) >= 4:
                neighbor.update_source = words[3]
            elif keyword == "next-hop-self":
                neighbor.next_hop_self = True
            elif keyword == "send-community":
                neighbor.send_community = True
            elif keyword == "route-reflector-client":
                neighbor.route_reflector_client = True
            elif keyword == "password":
                neighbor.has_password = True
        elif lowered.startswith("network") and len(words) >= 2 and is_ipv4(words[1]):
            mask = None
            if len(words) >= 4 and words[2].lower() == "mask" and is_ipv4(words[3]):
                mask = mask_to_len(ip_to_int(words[3]))
            bgp.networks.append((ip_to_int(words[1]), mask))
        elif lowered.startswith("redistribute") and len(words) >= 2:
            bgp.redistribute.append(words[1].lower())
        elif lowered.startswith("bgp router-id") and len(words) >= 3 and is_ipv4(words[2]):
            bgp.router_id = ip_to_int(words[2])
        elif lowered.startswith("bgp confederation identifier") and words[-1].isdigit():
            bgp.confederation_id = int(words[-1])
        elif lowered.startswith("bgp confederation peers"):
            bgp.confederation_peers = [int(w) for w in words[3:] if w.isdigit()]
    router.bgp = bgp


def _parse_route_map(router: ParsedRouter, stanza: Stanza) -> None:
    match = _ROUTEMAP_RE.match(stanza.command)
    if not match:
        return
    clause = ParsedRouteMapClause(
        name=match.group(1),
        action=(match.group(2) or "permit").lower(),
        sequence=int(match.group(3)) if match.group(3) else None,
    )
    for child in stanza.children:
        if child.lower().startswith("match "):
            clause.matches.append(child[6:].strip())
        elif child.lower().startswith("set "):
            clause.sets.append(child[4:].strip())
    router.route_maps.append(clause)


def _parse_ip_stanza(router: ParsedRouter, stanza: Stanza) -> bool:
    command = stanza.command
    match = _ASPATH_RE.match(command)
    if match:
        router.aspath_acls.append(
            ParsedAsPathAcl(match.group(1), match.group(2).lower(), match.group(3))
        )
        return True
    match = _COMMLIST_RE.match(command)
    if match:
        number, std_name, exp_name = match.group(1), match.group(2), match.group(3)
        identifier = number or std_name or exp_name
        expanded = exp_name is not None or (number is not None and int(number) >= 100)
        router.community_lists.append(
            ParsedCommunityList(identifier, match.group(4).lower(), match.group(5), expanded)
        )
        return True
    match = _PREFIXLIST_RE.match(command)
    if match and is_ipv4(match.group(4)):
        router.prefix_lists.append(
            ParsedPrefixList(
                name=match.group(1),
                sequence=int(match.group(2)) if match.group(2) else None,
                action=match.group(3).lower(),
                prefix=ip_to_int(match.group(4)),
                prefix_len=int(match.group(5)),
                ge=int(match.group(6)) if match.group(6) else None,
                le=int(match.group(7)) if match.group(7) else None,
            )
        )
        return True
    match = _STATIC_RE.match(command)
    if match and is_ipv4(match.group(1)) and is_ipv4(match.group(2)):
        length = mask_to_len(ip_to_int(match.group(2)))
        if length is not None:
            router.static_routes.append(
                ParsedStaticRoute(ip_to_int(match.group(1)), length, match.group(3))
            )
            return True
    words = command.split()
    if (
        len(words) >= 4
        and words[1].lower() == "access-list"
        and words[2].lower() in ("extended", "standard")
    ):
        name = words[3]
        for child in stanza.children:
            child_words = child.split(None, 1)
            if child_words and child_words[0].lower() in ("permit", "deny"):
                router.access_lists.append(
                    ParsedAclEntry(
                        name,
                        child_words[0].lower(),
                        child_words[1] if len(child_words) > 1 else "",
                    )
                )
        return True
    if len(words) >= 3 and words[1].lower() in ("domain-name",):
        router.domain_name = words[2]
        return True
    if len(words) >= 2 and words[1].lower() == "domain-name":
        router.domain_name = words[2] if len(words) > 2 else None
        return True
    if len(words) >= 4 and words[1].lower() == "dhcp" and words[2].lower() == "pool":
        pool_name = words[3]
        for child in stanza.children:
            child_words = child.split()
            if (
                child.lower().startswith("network")
                and len(child_words) >= 3
                and is_ipv4(child_words[1])
                and is_ipv4(child_words[2])
            ):
                length = mask_to_len(ip_to_int(child_words[2]))
                router.dhcp_pools.append(
                    (pool_name, ip_to_int(child_words[1]), length or 0)
                )
        return True
    return False
