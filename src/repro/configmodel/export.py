"""Exporting parsed networks as a vendor-neutral data model (JSON).

The paper's footnote 1: "Ultimately, we believe that researchers should
not need to work at the level of the configs themselves, but with a
higher-level representation that abstracts away the idiosyncrasies of
particular configuration languages … We see our work as the first logical
stepping stone to the creation of a high-level representation."

This module takes the step: a :class:`ParsedNetwork` (from IOS, JunOS, or
mixed configs — pre- or post-anonymization) serializes to one JSON
document describing routers, interfaces, subnets, routing processes, BGP
sessions, and policies in vendor-neutral terms.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.configmodel.model import ParsedRouter
from repro.configmodel.network import ParsedNetwork
from repro.netutil import int_to_ip

EXPORT_FORMAT_VERSION = 1


def router_to_dict(router: ParsedRouter) -> Dict:
    """Vendor-neutral dictionary form of one router."""
    return {
        "hostname": router.hostname,
        "interfaces": [
            {
                "name": interface.name,
                "type": interface.base_type,
                "address": int_to_ip(interface.address)
                if interface.address is not None
                else None,
                "prefix_len": interface.prefix_len,
                "shutdown": interface.shutdown,
            }
            for interface in router.interfaces.values()
        ],
        "routing_processes": [
            {
                "protocol": igp.protocol,
                "process_id": igp.process_id,
                "networks": [
                    {
                        "base": int_to_ip(base),
                        "wildcard": int_to_ip(wildcard) if wildcard is not None else None,
                        "area": area,
                    }
                    for base, wildcard, area in igp.networks
                ],
                "passive_interfaces": list(igp.passive_interfaces),
                "redistribute": list(igp.redistribute),
            }
            for igp in router.igps
        ],
        "bgp": None
        if router.bgp is None
        else {
            "asn": router.bgp.asn,
            "router_id": int_to_ip(router.bgp.router_id)
            if router.bgp.router_id is not None
            else None,
            "networks": [
                {"base": int_to_ip(base), "prefix_len": length}
                for base, length in router.bgp.networks
            ],
            "redistribute": list(router.bgp.redistribute),
            "neighbors": [
                {
                    "address": neighbor.address,
                    "remote_as": neighbor.remote_as,
                    "import_policy": neighbor.route_map_in,
                    "export_policy": neighbor.route_map_out,
                    "authenticated": neighbor.has_password,
                }
                for neighbor in router.bgp.neighbors.values()
            ],
        },
        "policies": [
            {
                "name": clause.name,
                "action": clause.action,
                "sequence": clause.sequence,
                "matches": list(clause.matches),
                "actions": list(clause.sets),
            }
            for clause in router.route_maps
        ],
        "static_routes": [
            {
                "prefix": "{}/{}".format(int_to_ip(route.prefix), route.prefix_len),
                "target": route.target,
            }
            for route in router.static_routes
        ],
    }


def network_to_dict(network: ParsedNetwork) -> Dict:
    """Vendor-neutral dictionary form of a whole network, with derived
    cross-router structure included."""
    return {
        "format_version": EXPORT_FORMAT_VERSION,
        "routers": {
            name: router_to_dict(router) for name, router in network.routers.items()
        },
        "derived": {
            "subnets": [
                {"base": int_to_ip(base), "prefix_len": length}
                for base, length in sorted(network.subnets())
            ],
            "subnet_size_histogram": {
                str(length): count
                for length, count in sorted(network.subnet_size_histogram().items())
            },
            "adjacencies": [list(pair) for pair in sorted(network.adjacencies())],
            "bgp_speakers": network.bgp_speakers(),
            "ebgp_sessions_per_router": dict(network.ebgp_sessions_per_router()),
        },
    }


def network_to_json(network: ParsedNetwork, indent: int = 2) -> str:
    """JSON text form of :func:`network_to_dict`."""
    return json.dumps(network_to_dict(network), indent=indent, sort_keys=True)
