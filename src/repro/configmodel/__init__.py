"""Config parsing and network modeling.

Parses IOS-style config text (pre- or post-anonymization) into a structured
router model, and assembles routers into a network model with derived
subnets, adjacencies, and BGP sessions.  The validation suites (paper
Section 5) run over these models for both sides of an anonymization and
compare.
"""

from repro.configmodel.lexer import Stanza, lex_config
from repro.configmodel.model import (
    ParsedAclEntry,
    ParsedAsPathAcl,
    ParsedBgp,
    ParsedBgpNeighbor,
    ParsedCommunityList,
    ParsedIgp,
    ParsedInterface,
    ParsedPrefixList,
    ParsedRouteMapClause,
    ParsedRouter,
    ParsedStaticRoute,
)
from repro.configmodel.parser import parse_config
from repro.configmodel.network import ParsedNetwork

__all__ = [
    "Stanza",
    "lex_config",
    "parse_config",
    "ParsedNetwork",
    "ParsedRouter",
    "ParsedInterface",
    "ParsedIgp",
    "ParsedBgp",
    "ParsedBgpNeighbor",
    "ParsedRouteMapClause",
    "ParsedAclEntry",
    "ParsedAsPathAcl",
    "ParsedCommunityList",
    "ParsedPrefixList",
    "ParsedStaticRoute",
]
