"""Parsed-config data model."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class ParsedInterface:
    name: str
    address: Optional[int] = None
    prefix_len: Optional[int] = None
    description: Optional[str] = None
    encapsulation: Optional[str] = None
    bandwidth: Optional[int] = None
    shutdown: bool = False
    helper_addresses: List[int] = field(default_factory=list)
    acl_groups: List[str] = field(default_factory=list)  # ip access-group refs
    isis_enabled: bool = False  # `ip router isis` present

    @property
    def base_type(self) -> str:
        """Interface hardware type: the leading alphabetic run of the name."""
        match = re.match(r"[A-Za-z-]+", self.name)
        return match.group(0).lower() if match else ""

    @property
    def is_subinterface(self) -> bool:
        return "." in self.name


@dataclass
class ParsedBgpNeighbor:
    address: str
    remote_as: Optional[int] = None
    route_map_in: Optional[str] = None
    route_map_out: Optional[str] = None
    update_source: Optional[str] = None
    next_hop_self: bool = False
    send_community: bool = False
    has_password: bool = False
    route_reflector_client: bool = False


@dataclass
class ParsedBgp:
    asn: int
    router_id: Optional[int] = None
    networks: List[Tuple[int, Optional[int]]] = field(default_factory=list)
    neighbors: Dict[str, ParsedBgpNeighbor] = field(default_factory=dict)
    redistribute: List[str] = field(default_factory=list)
    confederation_id: Optional[int] = None
    confederation_peers: List[int] = field(default_factory=list)


@dataclass
class ParsedIgp:
    protocol: str
    process_id: Optional[int] = None
    networks: List[Tuple[int, Optional[int], Optional[str]]] = field(default_factory=list)
    passive_interfaces: List[str] = field(default_factory=list)
    redistribute: List[str] = field(default_factory=list)
    isis_net: Optional[str] = None  # IS-IS NET (area.system-id.sel)


@dataclass
class ParsedRouteMapClause:
    name: str
    action: str
    sequence: Optional[int] = None
    matches: List[str] = field(default_factory=list)
    sets: List[str] = field(default_factory=list)


@dataclass
class ParsedAclEntry:
    number: str
    action: str
    body: str


@dataclass
class ParsedAsPathAcl:
    number: str
    action: str
    regex: str


@dataclass
class ParsedCommunityList:
    number: str
    action: str
    body: str
    expanded: bool = False


@dataclass
class ParsedPrefixList:
    name: str
    sequence: Optional[int]
    action: str
    prefix: int
    prefix_len: int
    le: Optional[int] = None
    ge: Optional[int] = None


@dataclass
class ParsedStaticRoute:
    prefix: int
    prefix_len: int
    target: str  # next-hop address or interface name


@dataclass
class ParsedRouter:
    hostname: Optional[str] = None
    version: Optional[str] = None
    interfaces: Dict[str, ParsedInterface] = field(default_factory=dict)
    igps: List[ParsedIgp] = field(default_factory=list)
    bgp: Optional[ParsedBgp] = None
    route_maps: List[ParsedRouteMapClause] = field(default_factory=list)
    access_lists: List[ParsedAclEntry] = field(default_factory=list)
    aspath_acls: List[ParsedAsPathAcl] = field(default_factory=list)
    community_lists: List[ParsedCommunityList] = field(default_factory=list)
    prefix_lists: List[ParsedPrefixList] = field(default_factory=list)
    static_routes: List[ParsedStaticRoute] = field(default_factory=list)
    usernames: List[str] = field(default_factory=list)
    snmp_communities: List[str] = field(default_factory=list)
    ntp_servers: List[int] = field(default_factory=list)
    logging_hosts: List[int] = field(default_factory=list)
    domain_name: Optional[str] = None
    dhcp_pools: List[Tuple[str, int, int]] = field(default_factory=list)
    unparsed: List[str] = field(default_factory=list)

    @property
    def is_bgp_speaker(self) -> bool:
        return self.bgp is not None

    def addressed_interfaces(self) -> List[ParsedInterface]:
        return [i for i in self.interfaces.values() if i.address is not None]

    def route_map_names(self) -> List[str]:
        seen = []
        for clause in self.route_maps:
            if clause.name not in seen:
                seen.append(clause.name)
        return seen
