"""Small IPv4 utility functions shared across the library.

Deliberately integer-based (an IPv4 address is a 32-bit int everywhere
internally); strings only appear at the parse/format boundary.
"""

from __future__ import annotations

import ipaddress as _ipaddress
import re
from typing import Optional, Tuple

_DOTTED_QUAD = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")

IPV4_MAX = 0xFFFFFFFF


def ip_to_int(text: str) -> int:
    """Parse a dotted quad into a 32-bit integer; raises ValueError."""
    match = _DOTTED_QUAD.match(text)
    if not match:
        raise ValueError("not a dotted quad: {!r}".format(text))
    value = 0
    for octet_text in match.groups():
        octet = int(octet_text)
        if octet > 255:
            raise ValueError("octet out of range in {!r}".format(text))
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted quad."""
    if not 0 <= value <= IPV4_MAX:
        raise ValueError("not a 32-bit address: {!r}".format(value))
    return "{}.{}.{}.{}".format(
        (value >> 24) & 0xFF, (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF
    )


def is_ipv4(text: str) -> bool:
    """Whether *text* is a syntactically valid dotted quad."""
    try:
        ip_to_int(text)
    except ValueError:
        return False
    return True


def parse_prefix(text: str) -> Tuple[int, int]:
    """Parse ``a.b.c.d/len`` into ``(address_int, prefix_len)``."""
    addr_text, _, len_text = text.partition("/")
    if not len_text:
        raise ValueError("missing /len in {!r}".format(text))
    prefix_len = int(len_text)
    if not 0 <= prefix_len <= 32:
        raise ValueError("bad prefix length in {!r}".format(text))
    return ip_to_int(addr_text), prefix_len


def format_prefix(addr: int, prefix_len: int) -> str:
    return "{}/{}".format(int_to_ip(addr), prefix_len)


def mask_for_len(prefix_len: int) -> int:
    """Contiguous netmask for a prefix length (0 -> 0, 32 -> all ones)."""
    if not 0 <= prefix_len <= 32:
        raise ValueError("bad prefix length {!r}".format(prefix_len))
    if prefix_len == 0:
        return 0
    return (IPV4_MAX << (32 - prefix_len)) & IPV4_MAX


#: The 33 contiguous netmasks, inverted (mask -> prefix length).
_MASK_TO_LEN = {
    ((IPV4_MAX << (32 - n)) & IPV4_MAX if n else 0): n for n in range(33)
}


def mask_to_len(mask: int) -> Optional[int]:
    """Prefix length of a contiguous netmask, or None if non-contiguous."""
    return _MASK_TO_LEN.get(mask)


def wildcard_to_len(wildcard: int) -> Optional[int]:
    """Prefix length implied by a contiguous inverse (wildcard) mask."""
    return mask_to_len(wildcard ^ IPV4_MAX)


def trailing_zero_bits(value: int) -> int:
    """Number of trailing zero bits in a 32-bit value (32 for zero)."""
    if value == 0:
        return 32
    # The lowest set bit isolated; its bit position is the zero count.
    return (value & -value).bit_length() - 1


def address_class(value: int) -> str:
    """Classful class of an address: 'A', 'B', 'C', 'D' (multicast), 'E'."""
    top = (value >> 28) & 0xF
    if top < 0x8:
        return "A"
    if top < 0xC:
        return "B"
    if top < 0xE:
        return "C"
    if top < 0xF:
        return "D"
    return "E"


def classful_prefix_len(value: int) -> int:
    """The implicit prefix length classful protocols (RIP v1) assume."""
    cls = address_class(value)
    return {"A": 8, "B": 16, "C": 24}.get(cls, 32)


def network_address(addr: int, prefix_len: int) -> int:
    return addr & mask_for_len(prefix_len)


def is_private_rfc1918(value: int) -> bool:
    """Whether the address falls in 10/8, 172.16/12, or 192.168/16."""
    return (
        (value >> 24) == 10
        or (value >> 20) == (172 << 4 | 1)  # 172.16.0.0/12
        or (value >> 16) == (192 << 8 | 168)
    )


# -- IPv6 ------------------------------------------------------------------
#
# Same shape as the IPv4 helpers above: an IPv6 address is a 128-bit int
# everywhere internally; RFC 4291 text only appears at the parse/format
# boundary.  Formatting is RFC 5952 canonical (lowercase hex, longest
# zero run compressed), delegated to the stdlib ``ipaddress`` module.

IPV6_MAX = (1 << 128) - 1

#: Necessary syntactic condition for IPv6 text: either a ``::`` or two
#: hex groups joined by a colon with a trailing colon after the second
#: (``h:h:``).  BGP communities like ``65000:100`` have no trailing
#: colon, so ordinary IOS lines do not match.
_IPV6_HINT = re.compile(r"::|[0-9A-Fa-f]{1,4}:[0-9A-Fa-f]{1,4}:")


def ip6_to_int(text: str) -> int:
    """Parse IPv6 text into a 128-bit integer; raises ValueError."""
    try:
        return int(_ipaddress.IPv6Address(text))
    except _ipaddress.AddressValueError as exc:
        raise ValueError(str(exc)) from None


def int_to_ip6(value: int) -> str:
    """Format a 128-bit integer as RFC 5952 canonical IPv6 text."""
    if not 0 <= value <= IPV6_MAX:
        raise ValueError("not a 128-bit address: {!r}".format(value))
    return str(_ipaddress.IPv6Address(value))


def is_ipv6(text: str) -> bool:
    """Whether *text* is syntactically valid IPv6 (no /len, no zone)."""
    if "%" in text or not _IPV6_HINT.search(text):
        return False
    try:
        _ipaddress.IPv6Address(text)
    except (ValueError, _ipaddress.AddressValueError):
        return False
    return True


def parse_prefix6(text: str) -> Tuple[int, int]:
    """Parse ``addr/len`` IPv6 notation into ``(address_int, prefix_len)``."""
    addr_text, _, len_text = text.partition("/")
    if not len_text:
        raise ValueError("missing /len in {!r}".format(text))
    prefix_len = int(len_text)
    if not 0 <= prefix_len <= 128:
        raise ValueError("bad prefix length in {!r}".format(text))
    return ip6_to_int(addr_text), prefix_len


def trailing_zero_bits128(value: int) -> int:
    """Number of trailing zero bits in a 128-bit value (128 for zero)."""
    if value == 0:
        return 128
    return (value & -value).bit_length() - 1
