"""Simplified static reachability analysis over parsed networks.

The supplied paper text's companion work ("On Static Reachability Analysis
of IP Networks", Xie et al. — same author group) asks: given only the
configs, which destinations can each router reach through the control
plane?  This module implements the control-plane core of that analysis on
our parsed model:

* a router *originates* the prefixes of its connected interfaces and its
  static routes;
* prefixes propagate to every router in the same IGP routing instance
  (IGPs flood within an instance);
* redistribution copies an instance's prefixes into the redistributing
  router's other protocols, from which they flood again;
* iBGP propagates BGP-learned prefixes among the BGP speakers of one AS.

The result is a per-router reachable-prefix set.  Because it is derived
entirely from structure the anonymizer preserves, the *reachability
matrix shape* (who reaches how much) is anonymization-invariant — asserted
by the tests and measured at corpus scale by bench E19.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.configmodel.network import ParsedNetwork
from repro.netutil import network_address
from repro.validation.designextract import RoutingInstance, extract_design

Prefix = Tuple[int, int]  # (network_address, prefix_len)


@dataclass
class ReachabilityResult:
    """Per-router reachable prefixes plus summary shape."""

    reachable: Dict[str, FrozenSet[Prefix]]

    def matrix_shape(self) -> List[int]:
        """Sorted per-router reachable-prefix counts (anonymization-invariant)."""
        return sorted(len(prefixes) for prefixes in self.reachable.values())

    def universally_reachable(self) -> Set[Prefix]:
        """Prefixes every router can reach."""
        sets = list(self.reachable.values())
        if not sets:
            return set()
        universal = set(sets[0])
        for prefixes in sets[1:]:
            universal &= prefixes
        return universal


def _originated(network: ParsedNetwork) -> Dict[str, Set[Prefix]]:
    """Connected + static prefixes per router."""
    origins: Dict[str, Set[Prefix]] = defaultdict(set)
    for name, router in network.routers.items():
        for interface in router.addressed_interfaces():
            if interface.prefix_len is None:
                continue
            origins[name].add(
                (network_address(interface.address, interface.prefix_len),
                 interface.prefix_len)
            )
        for route in router.static_routes:
            origins[name].add((route.prefix, route.prefix_len))
    return origins


def compute_reachability(network: ParsedNetwork) -> ReachabilityResult:
    """Fixed-point propagation of prefixes through the routing design."""
    origins = _originated(network)
    design = extract_design(network)

    # Which instances each router participates in, and which routers carry
    # redistribution between protocol families.
    instance_members: List[Tuple[RoutingInstance, Set[str]]] = [
        (instance, instance.routers) for instance in design.instances
    ]
    speakers = set(network.bgp_speakers())

    # knowledge[router] = prefixes the router's routing table can hold.
    knowledge: Dict[str, Set[Prefix]] = {
        name: set(prefixes) for name, prefixes in origins.items()
    }
    for name in network.routers:
        knowledge.setdefault(name, set())

    redistributors: Set[str] = set()
    for name, router in network.routers.items():
        if any(igp.redistribute for igp in router.igps):
            redistributors.add(name)
        if router.bgp is not None and router.bgp.redistribute:
            redistributors.add(name)

    changed = True
    iterations = 0
    while changed and iterations < 2 * (len(knowledge) + 2):
        changed = False
        iterations += 1
        # IGP flooding: every member of an instance learns the union of
        # what members know from origination/redistribution.
        for _instance, members in instance_members:
            if not members:
                continue
            pool: Set[Prefix] = set()
            for member in members:
                pool |= knowledge[member]
            for member in members:
                if not pool <= knowledge[member]:
                    knowledge[member] |= pool
                    changed = True
        # iBGP mesh: speakers share what they know (full-mesh assumption,
        # which matches the generator; route reflection would refine this).
        if speakers:
            pool = set()
            for speaker in speakers:
                pool |= knowledge[speaker]
            for speaker in speakers:
                if not pool <= knowledge[speaker]:
                    knowledge[speaker] |= pool
                    changed = True
        # Redistribution points glue the families; since our flooding is
        # union-based per instance, their effect is realized by the member
        # unions above once the redistributor knows the prefixes.
        _ = redistributors
    return ReachabilityResult(
        reachable={name: frozenset(prefixes) for name, prefixes in knowledge.items()}
    )
