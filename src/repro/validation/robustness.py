"""Robustness analysis of routing designs (the paper's motivating use case).

Section 1: configs make "it possible to develop more precise analysis
techniques for evaluating essential network properties such as the
robustness of the routing design [1]".  This module provides those
analyses over the parsed network model — and because the anonymizer
preserves the relevant structure, they produce identical results pre- and
post-anonymization (which the test suite asserts: the strongest possible
demonstration that the anonymized data retains its research value).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.configmodel.network import ParsedNetwork


@dataclass
class RobustnessReport:
    """Single-failure robustness of a network's physical connectivity."""

    num_routers: int
    num_links: int
    connected: bool
    articulation_points: int
    bridge_links: int
    min_degree: int
    singly_attached_routers: int
    bgp_speaker_redundancy: int  # speakers reachable after any 1 cut? count of speakers
    component_count: int

    @property
    def articulation_fraction(self) -> float:
        return self.articulation_points / self.num_routers if self.num_routers else 0.0


def topology_graph(network: ParsedNetwork) -> "nx.Graph":
    """Physical connectivity graph derived from shared interface subnets."""
    graph = nx.Graph()
    graph.add_nodes_from(network.routers)
    graph.add_edges_from(network.adjacencies())
    return graph


def robustness_report(network: ParsedNetwork) -> RobustnessReport:
    """Single-point-of-failure analysis."""
    graph = topology_graph(network)
    connected = nx.is_connected(graph) if len(graph) else False
    articulation = list(nx.articulation_points(graph)) if connected else []
    bridges = list(nx.bridges(graph)) if connected else []
    degrees = dict(graph.degree())
    return RobustnessReport(
        num_routers=len(graph),
        num_links=graph.number_of_edges(),
        connected=connected,
        articulation_points=len(articulation),
        bridge_links=len(bridges),
        min_degree=min(degrees.values()) if degrees else 0,
        singly_attached_routers=sum(1 for d in degrees.values() if d <= 1),
        bgp_speaker_redundancy=len(network.bgp_speakers()),
        component_count=nx.number_connected_components(graph) if len(graph) else 0,
    )


@dataclass
class FailureImpact:
    """What breaks when one router fails."""

    router: str
    disconnected_routers: int
    isolates_bgp_speaker: bool


def single_router_failures(network: ParsedNetwork) -> List[FailureImpact]:
    """Impact of each single-router failure, worst first."""
    graph = topology_graph(network)
    speakers = set(network.bgp_speakers())
    impacts: List[FailureImpact] = []
    if not len(graph) or not nx.is_connected(graph):
        return impacts
    for router in sorted(graph.nodes):
        remaining = graph.copy()
        remaining.remove_node(router)
        if len(remaining) == 0:
            continue
        components = list(nx.connected_components(remaining))
        if len(components) <= 1:
            continue
        largest = max(components, key=len)
        cut_off = set(remaining.nodes) - largest
        impacts.append(
            FailureImpact(
                router=router,
                disconnected_routers=len(cut_off),
                isolates_bgp_speaker=bool(cut_off & speakers),
            )
        )
    impacts.sort(key=lambda i: -i.disconnected_routers)
    return impacts


def ospf_area_exposure(network: ParsedNetwork) -> Dict[str, int]:
    """Routers per OSPF area (small non-zero areas hang off few ABRs)."""
    areas: Dict[str, Set[str]] = {}
    for name, router in network.routers.items():
        for igp in router.igps:
            if igp.protocol != "ospf":
                continue
            for _base, _wildcard, area in igp.networks:
                if area is not None:
                    areas.setdefault(str(area), set()).add(name)
    return {area: len(members) for area, members in sorted(areas.items())}
