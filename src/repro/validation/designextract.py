"""Routing-design extraction (validation suite 2 substrate).

Reimplements the relevant core of the paper's reference [1] (Maltz et al.,
"Routing design in operational networks: A look from the inside", SIGCOMM
2004): identify every routing process, which interfaces it covers, how
processes join into *routing instances* via shared subnets, where
redistribution glues instances together, and the BGP session/policy
structure layered on top.

"Extracting the routing design makes an excellent test case, as it depends
on many aspects of the configuration files being consistent inside each
file and across all the files in the network."
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.configmodel.model import ParsedIgp, ParsedRouter
from repro.configmodel.network import ParsedNetwork
from repro.netutil import classful_prefix_len, network_address


@dataclass
class RoutingProcess:
    router: str
    protocol: str
    process_id: Optional[int]
    covered: Set[Tuple[int, int]] = field(default_factory=set)  # subnets
    areas: Set[str] = field(default_factory=set)


@dataclass
class RoutingInstance:
    protocol: str
    processes: List[RoutingProcess]

    @property
    def routers(self) -> Set[str]:
        return {p.router for p in self.processes}

    @property
    def covered_subnets(self) -> Set[Tuple[int, int]]:
        subnets: Set[Tuple[int, int]] = set()
        for process in self.processes:
            subnets.update(process.covered)
        return subnets


@dataclass
class RoutingDesign:
    instances: List[RoutingInstance]
    redistribution: Counter  # (from_proto, to_proto) -> count
    bgp_speakers: int
    ibgp_sessions: int
    ebgp_session_shape: List[int]
    route_map_attachments: Tuple[int, int]  # (in, out)
    ospf_area_count: int
    ibgp_topology: str = "none"  # "none" | "full-mesh" | "route-reflector" | "partial" 


def _covered_subnets(router: ParsedRouter, igp: ParsedIgp) -> Set[Tuple[int, int]]:
    """Which interface subnets this IGP process covers."""
    covered: Set[Tuple[int, int]] = set()
    for interface in router.addressed_interfaces():
        if interface.prefix_len is None:
            continue
        subnet = (
            network_address(interface.address, interface.prefix_len),
            interface.prefix_len,
        )
        for base, wildcard, _area in igp.networks:
            if wildcard is not None:
                mask = (~wildcard) & 0xFFFFFFFF
                if (interface.address & mask) == (base & mask):
                    covered.add(subnet)
                    break
            else:
                length = classful_prefix_len(base)
                if network_address(interface.address, length) == network_address(base, length):
                    covered.add(subnet)
                    break
    return covered


class _UnionFind:
    def __init__(self):
        self.parent: Dict[int, int] = {}

    def find(self, item: int) -> int:
        root = item
        while self.parent.setdefault(root, root) != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        self.parent[self.find(a)] = self.find(b)


def extract_design(network: ParsedNetwork) -> RoutingDesign:
    """Reverse-engineer the routing design of a parsed network."""
    processes: List[RoutingProcess] = []
    for name, router in sorted(network.routers.items()):
        for igp in router.igps:
            process = RoutingProcess(
                router=name, protocol=igp.protocol, process_id=igp.process_id
            )
            process.covered = _covered_subnets(router, igp)
            process.areas = {
                str(area) for _, _, area in igp.networks if area is not None
            }
            processes.append(process)

    # Group processes into instances: same protocol + shared covered subnet.
    uf = _UnionFind()
    by_subnet: Dict[Tuple[str, Tuple[int, int]], List[int]] = {}
    for index, process in enumerate(processes):
        for subnet in process.covered:
            by_subnet.setdefault((process.protocol, subnet), []).append(index)
    for members in by_subnet.values():
        for other in members[1:]:
            uf.union(members[0], other)

    groups: Dict[int, List[RoutingProcess]] = {}
    for index, process in enumerate(processes):
        groups.setdefault(uf.find(index), []).append(process)
    instances = [
        RoutingInstance(protocol=group[0].protocol, processes=group)
        for group in groups.values()
    ]

    redistribution: Counter = Counter()
    for router in network.routers.values():
        for igp in router.igps:
            for target in igp.redistribute:
                redistribution[(target, igp.protocol)] += 1
        if router.bgp is not None:
            for target in router.bgp.redistribute:
                redistribution[(target, "bgp")] += 1

    sessions = network.bgp_sessions()
    ibgp = sum(1 for s in sessions if not s.ebgp)
    speakers = network.bgp_speakers()
    rr_sessions = sum(
        1
        for router in network.routers.values()
        if router.bgp
        for neighbor in router.bgp.neighbors.values()
        if neighbor.route_reflector_client
    )
    if ibgp == 0:
        ibgp_topology = "none"
    elif rr_sessions > 0:
        ibgp_topology = "route-reflector"
    elif len(speakers) > 1 and ibgp == len(speakers) * (len(speakers) - 1):
        ibgp_topology = "full-mesh"
    else:
        ibgp_topology = "partial" 
    route_map_in = sum(
        1
        for router in network.routers.values()
        if router.bgp
        for neighbor in router.bgp.neighbors.values()
        if neighbor.route_map_in
    )
    route_map_out = sum(
        1
        for router in network.routers.values()
        if router.bgp
        for neighbor in router.bgp.neighbors.values()
        if neighbor.route_map_out
    )
    areas: Set[str] = set()
    for process in processes:
        if process.protocol == "ospf":
            areas.update(process.areas)

    return RoutingDesign(
        instances=instances,
        redistribution=redistribution,
        bgp_speakers=len(network.bgp_speakers()),
        ibgp_sessions=ibgp,
        ebgp_session_shape=sorted(network.ebgp_sessions_per_router().values()),
        route_map_attachments=(route_map_in, route_map_out),
        ospf_area_count=len(areas),
        ibgp_topology=ibgp_topology,
    )


def design_signature(design: RoutingDesign) -> Dict[str, object]:
    """An anonymization-invariant canonical form of a routing design.

    Names, addresses, and ASNs differ between pre- and post-anonymization
    configs, but the *structure* — instance sizes, coverage counts,
    redistribution shape, session shape — must be identical.
    """
    instance_signature = sorted(
        (
            instance.protocol,
            len(instance.processes),
            len(instance.routers),
            len(instance.covered_subnets),
        )
        for instance in design.instances
    )
    return {
        "instances": instance_signature,
        "num_instances": len(design.instances),
        "redistribution": sorted(
            (src, dst, count) for (src, dst), count in design.redistribution.items()
        ),
        "bgp_speakers": design.bgp_speakers,
        "ibgp_sessions": design.ibgp_sessions,
        "ebgp_session_shape": design.ebgp_session_shape,
        "route_map_attachments": design.route_map_attachments,
        "ospf_area_count": design.ospf_area_count,
        "ibgp_topology": design.ibgp_topology,
    }
