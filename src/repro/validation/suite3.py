"""Validation suite 3: research-analysis invariance (extension).

The paper (Section 5): "As more research is conducted using anonymized
configs, we expect the number of tests in the validation suite to
increase."  This suite is that growth: it asserts the *outputs of actual
research analyses* — robustness reports, failure-impact rankings, OSPF
area exposure, and static reachability shapes — are identical pre- and
post-anonymization.
"""

from __future__ import annotations

from repro.configmodel.network import ParsedNetwork
from repro.validation.compare import ValidationResult, compare_values
from repro.validation.reachability import compute_reachability
from repro.validation.robustness import (
    ospf_area_exposure,
    robustness_report,
    single_router_failures,
)


def _analysis_signature(network: ParsedNetwork) -> dict:
    report = robustness_report(network)
    failures = sorted(
        (impact.disconnected_routers, impact.isolates_bgp_speaker)
        for impact in single_router_failures(network)
    )
    reachability = compute_reachability(network)
    return {
        "robustness": (
            report.num_routers,
            report.num_links,
            report.connected,
            report.articulation_points,
            report.bridge_links,
            report.min_degree,
            report.singly_attached_routers,
            report.component_count,
        ),
        "failure_impacts": failures,
        "ospf_area_exposure": ospf_area_exposure(network),
        "reachability_shape": reachability.matrix_shape(),
        "universally_reachable": len(reachability.universally_reachable()),
    }


def compare_research_analyses(
    pre: ParsedNetwork, post: ParsedNetwork
) -> ValidationResult:
    """Suite-3 comparison: research analyses must answer identically."""
    result = ValidationResult(suite="suite3-research-analyses", passed=True)
    pre_signature = _analysis_signature(pre)
    post_signature = _analysis_signature(post)
    for key in pre_signature:
        compare_values(result, key, pre_signature[key], post_signature[key])
    return result
