"""Validation suite 2: routing-design comparison (paper Section 5).

"The second suite of tests consists of running our tools to reverse
engineer the routing design of a network and comparing the extracted
designs."
"""

from __future__ import annotations

from repro.configmodel.network import ParsedNetwork
from repro.validation.compare import ValidationResult, compare_values
from repro.validation.designextract import design_signature, extract_design


def compare_designs(pre: ParsedNetwork, post: ParsedNetwork) -> ValidationResult:
    """Extract both routing designs and compare their canonical forms."""
    result = ValidationResult(suite="suite2-routing-design", passed=True)
    pre_signature = design_signature(extract_design(pre))
    post_signature = design_signature(extract_design(post))
    for key in pre_signature:
        compare_values(result, key, pre_signature[key], post_signature[key])
    return result
