"""End-to-end validation of anonymization accuracy (paper Section 5).

Two suites compare pre- and post-anonymization configurations:

* :mod:`repro.validation.suite1` — independent characteristics
  (# BGP speakers, # interfaces, the subnet-size histogram, ...).
* :mod:`repro.validation.suite2` — full routing-design extraction
  (per Maltz et al., SIGCOMM 2004 [1]) compared structurally.
* :mod:`repro.validation.suite3` — research-analysis invariance
  (robustness, failure impact, reachability), the suite growth the paper
  anticipates.
"""

from repro.validation.suite1 import characteristics, compare_characteristics
from repro.validation.designextract import extract_design, design_signature
from repro.validation.suite2 import compare_designs
from repro.validation.suite3 import compare_research_analyses
from repro.validation.compare import ValidationResult

__all__ = [
    "characteristics",
    "compare_characteristics",
    "extract_design",
    "design_signature",
    "compare_designs",
    "compare_research_analyses",
    "ValidationResult",
]
