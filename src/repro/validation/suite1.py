"""Validation suite 1: independent characteristics (paper Section 5).

"The first suite of tests verifies that independent characteristics of the
configurations are being preserved by comparing properties such as: (a)
the number of BGP speakers; (b) the number of interfaces; and (c) the
structure of the address space (i.e., number of subnets of each size)."

We extend the list with every further property the anonymizer is expected
to preserve: route-map/ACL/prefix-list counts, interface-type mix, IGP
protocol inventory, eBGP session structure, static-route counts.
"""

from __future__ import annotations

from typing import Dict

from repro.configmodel.network import ParsedNetwork
from repro.validation.compare import ValidationResult, compare_values


def characteristics(network: ParsedNetwork) -> Dict[str, object]:
    """The full characteristic vector of one (parsed) network."""
    per_router_interfaces = sorted(
        len(router.interfaces) for router in network.routers.values()
    )
    per_router_route_maps = sorted(
        len(router.route_map_names()) for router in network.routers.values()
    )
    igp_inventory = sorted(
        (igp.protocol, len(igp.networks))
        for router in network.routers.values()
        for igp in router.igps
    )
    return {
        "num_routers": len(network.routers),
        "num_bgp_speakers": len(network.bgp_speakers()),
        "num_interfaces": network.total_interfaces(),
        "per_router_interfaces": per_router_interfaces,
        "subnet_size_histogram": dict(network.subnet_size_histogram()),
        "num_subnets": len(network.subnets()),
        "interface_type_histogram": dict(network.interface_type_histogram()),
        "num_adjacencies": len(network.adjacencies()),
        "num_loopbacks": len(network.loopback_addresses()),
        "per_router_route_maps": per_router_route_maps,
        "num_route_map_clauses": sum(
            len(router.route_maps) for router in network.routers.values()
        ),
        "num_acl_entries": sum(
            len(router.access_lists) for router in network.routers.values()
        ),
        "num_aspath_acls": sum(
            len(router.aspath_acls) for router in network.routers.values()
        ),
        "num_community_lists": sum(
            len(router.community_lists) for router in network.routers.values()
        ),
        "num_prefix_list_entries": sum(
            len(router.prefix_lists) for router in network.routers.values()
        ),
        "num_static_routes": sum(
            len(router.static_routes) for router in network.routers.values()
        ),
        "igp_inventory": igp_inventory,
        "num_ebgp_sessions": sum(network.ebgp_sessions_per_router().values()),
        "ebgp_sessions_shape": sorted(network.ebgp_sessions_per_router().values()),
        "num_local_asns": len(network.local_asns()),
    }


def compare_characteristics(
    pre: ParsedNetwork, post: ParsedNetwork
) -> ValidationResult:
    """Suite-1 comparison: every characteristic must survive unchanged."""
    result = ValidationResult(suite="suite1-independent-characteristics", passed=True)
    pre_chars = characteristics(pre)
    post_chars = characteristics(post)
    for key in pre_chars:
        compare_values(result, key, pre_chars[key], post_chars[key])
    return result
