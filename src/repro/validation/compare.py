"""Shared result type for validation comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class ValidationResult:
    """Outcome of one validation suite run."""

    suite: str
    passed: bool
    differences: List[str] = field(default_factory=list)

    def add_difference(self, message: str) -> None:
        self.differences.append(message)
        self.passed = False

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = ["[{}] {}".format(status, self.suite)]
        lines.extend("  - " + d for d in self.differences)
        return "\n".join(lines)


def compare_values(result: ValidationResult, label: str, pre, post) -> None:
    """Record a difference when pre != post."""
    if pre != post:
        result.add_difference("{}: pre={!r} post={!r}".format(label, pre, post))
