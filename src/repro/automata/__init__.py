"""Finite-automata machinery for anonymizing routing-policy regular expressions.

The paper (Section 4.4) anonymizes AS-path and community-list regular
expressions by computing the *language* each regexp accepts over the 16-bit
ASN space, permuting the accepted public ASNs, and rewriting the regexp.  It
also notes that "known polynomial-time algorithms for constructing the
minimum finite automata" could compress the rewritten regexp; this package
implements that full path:

    parse  ->  NFA (Thompson)  ->  DFA (subset)  ->  min DFA (Hopcroft)
           ->  regexp (state elimination)

The regexp dialect is the POSIX-ish dialect used by Cisco IOS route policy,
including the ``_`` metacharacter that matches a delimiter or the start/end
of the subject string.
"""

from repro.automata.ast import (
    Alt,
    Anchor,
    Boundary,
    CharClass,
    Concat,
    Dot,
    Empty,
    Literal,
    Plus,
    Opt,
    RegexNode,
    Star,
)
from repro.automata.reparse import RegexParseError, parse_regex
from repro.automata.nfa import NFA, nfa_from_ast
from repro.automata.dfa import DFA, dfa_from_nfa
from repro.automata.minimize import minimize_dfa
from repro.automata.fa2re import dfa_to_regex
from repro.automata.matcher import RegexMatcher

__all__ = [
    "Alt",
    "Anchor",
    "Boundary",
    "CharClass",
    "Concat",
    "Dot",
    "Empty",
    "Literal",
    "Plus",
    "Opt",
    "RegexNode",
    "Star",
    "RegexParseError",
    "parse_regex",
    "NFA",
    "nfa_from_ast",
    "DFA",
    "dfa_from_nfa",
    "minimize_dfa",
    "dfa_to_regex",
    "RegexMatcher",
]
