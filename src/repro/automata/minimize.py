"""Hopcroft DFA minimization.

Used for the paper's noted-but-unimplemented optimization (Section 4.4):
rather than rewriting an anonymized ASN regexp as a flat alternation, build
the minimum DFA for the permuted language and convert it back to a regexp.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.automata.dfa import DFA

_DEAD = -1


def minimize_dfa(dfa: DFA) -> DFA:
    """Return the minimum DFA for the same language.

    The input may have a partial transition function; it is completed with a
    dead state internally and the dead class is stripped from the result.
    """
    alphabet = sorted(dfa.alphabet)
    states = set(dfa.states)
    states.add(_DEAD)

    def delta(state: int, char: str) -> int:
        if state == _DEAD:
            return _DEAD
        return dfa.transitions.get(state, {}).get(char, _DEAD)

    accepting = frozenset(s for s in states if s in dfa.accepts)
    rejecting = frozenset(states - accepting)

    partition: Set[FrozenSet[int]] = set()
    worklist: List[FrozenSet[int]] = []
    for block in (accepting, rejecting):
        if block:
            partition.add(block)
    if accepting and rejecting:
        worklist.append(min(accepting, rejecting, key=len))
    elif partition:
        worklist.append(next(iter(partition)))

    # Reverse transition index: char -> dst -> set(src)
    reverse: Dict[str, Dict[int, Set[int]]] = {c: {} for c in alphabet}
    for state in states:
        for char in alphabet:
            reverse[char].setdefault(delta(state, char), set()).add(state)

    while worklist:
        splitter = worklist.pop()
        for char in alphabet:
            # X = states whose char-successor is inside the splitter.
            x: Set[int] = set()
            for dst in splitter:
                x.update(reverse[char].get(dst, ()))
            if not x:
                continue
            for block in list(partition):
                inside = block & x
                outside = block - x
                if not inside or not outside:
                    continue
                partition.discard(block)
                inside_f = frozenset(inside)
                outside_f = frozenset(outside)
                partition.add(inside_f)
                partition.add(outside_f)
                if block in worklist:
                    worklist.remove(block)
                    worklist.append(inside_f)
                    worklist.append(outside_f)
                else:
                    worklist.append(min(inside_f, outside_f, key=len))

    # Rebuild the quotient DFA.
    block_of: Dict[int, FrozenSet[int]] = {}
    for block in partition:
        for state in block:
            block_of[state] = block
    dead_block = block_of[_DEAD]

    block_ids: Dict[FrozenSet[int], int] = {}

    def block_id(block: FrozenSet[int]) -> int:
        if block not in block_ids:
            block_ids[block] = len(block_ids)
        return block_ids[block]

    start_block = block_of[dfa.start]
    start_id = block_id(start_block)
    transitions: Dict[int, Dict[str, int]] = {}
    accepts: Set[int] = set()
    worklist2 = [start_block]
    seen = {start_block}
    while worklist2:
        block = worklist2.pop()
        src_id = block_id(block)
        representative = next(iter(block))
        if representative in dfa.accepts:
            accepts.add(src_id)
        for char in alphabet:
            dst_block = block_of[delta(representative, char)]
            if dst_block == dead_block:
                continue
            transitions.setdefault(src_id, {})[char] = block_id(dst_block)
            if dst_block not in seen:
                seen.add(dst_block)
                worklist2.append(dst_block)
    return DFA(transitions, start_id, accepts, set(dfa.alphabet))
