"""Regexp matching with Cisco route-policy semantics.

Two independent implementations are provided:

* :class:`RegexMatcher` — our own parser -> NFA -> DFA pipeline (the
  reference oracle; no reliance on Python's ``re`` semantics).
* :func:`to_python_regex` — a translation into Python ``re`` syntax used as
  the fast path for the 2^16 brute-force language scans of Section 4.4.

The two are differentially tested against each other.
"""

from __future__ import annotations

import re

from repro.automata.ast import (
    Alt,
    Anchor,
    Boundary,
    CharClass,
    Concat,
    Dot,
    Empty,
    Literal,
    Opt,
    Plus,
    RegexNode,
    Star,
)
from repro.automata.dfa import DFA, dfa_from_nfa
from repro.automata.nfa import END_SENTINEL, START_SENTINEL, compile_search_nfa
from repro.automata.reparse import parse_regex

#: Default subject alphabet: ASN digits plus the community separator and
#: the delimiter characters ``_`` can consume.
DEFAULT_ALPHABET = frozenset("0123456789:. ,{}()")


class RegexMatcher:
    """Compiled Cisco-dialect regexp with search (unanchored) semantics."""

    def __init__(self, pattern: str, alphabet=DEFAULT_ALPHABET):
        self.pattern = pattern
        self.ast = parse_regex(pattern)
        self.alphabet = frozenset(alphabet)
        nfa = compile_search_nfa(self.ast, self.alphabet)
        self._dfa: DFA = dfa_from_nfa(nfa)

    def matches(self, subject: str) -> bool:
        """Whether the pattern matches anywhere within *subject*."""
        unknown = set(subject) - self.alphabet
        if unknown:
            raise ValueError(
                "subject contains characters outside the compile alphabet: {!r}".format(
                    sorted(unknown)
                )
            )
        return self._dfa.accepts_string(START_SENTINEL + subject + END_SENTINEL)


def to_python_regex(node: RegexNode) -> str:
    """Translate a Cisco-dialect AST into Python ``re`` syntax.

    ``_`` becomes ``(?:^|$|[ ,{}()])`` which consumes a delimiter in the
    middle of the subject and matches zero-width at either end — the
    documented IOS behavior.  Use with ``re.search`` for Cisco's
    unanchored matching.
    """
    if isinstance(node, Empty):
        return ""
    if isinstance(node, Literal):
        return re.escape(node.char)
    if isinstance(node, Dot):
        return "."
    if isinstance(node, CharClass):
        body = "".join(_escape_for_class(c) for c in sorted(node.chars))
        return "[{}{}]".format("^" if node.negated else "", body)
    if isinstance(node, Anchor):
        return "^" if node.kind == "start" else "$"
    if isinstance(node, Boundary):
        return "(?:^|$|[ ,{}()])"
    if isinstance(node, Concat):
        return "".join(_wrap(p) for p in node.parts)
    if isinstance(node, Alt):
        return "(?:" + "|".join(to_python_regex(p) for p in node.parts) + ")"
    if isinstance(node, Star):
        return _wrap(node.child) + "*"
    if isinstance(node, Plus):
        return _wrap(node.child) + "+"
    if isinstance(node, Opt):
        return _wrap(node.child) + "?"
    raise TypeError("unknown regexp node {!r}".format(node))


def _escape_for_class(char: str) -> str:
    if char in "]-^\\":
        return "\\" + char
    return char


def _wrap(node: RegexNode) -> str:
    """Render a child that will receive a postfix operator or concatenation."""
    text = to_python_regex(node)
    if isinstance(node, (Alt, Concat)) or (isinstance(node, Empty)):
        return "(?:" + text + ")"
    if len(text) > 1 and not (
        text.startswith("(?:") or text.startswith("[") or text.startswith("\\")
    ):
        return "(?:" + text + ")"
    return text


def compile_python_regex(pattern: str):
    """Parse a Cisco-dialect pattern and compile the Python translation."""
    return re.compile(to_python_regex(parse_regex(pattern)))
