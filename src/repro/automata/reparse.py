"""Recursive-descent parser for the Cisco IOS route-policy regexp dialect.

The grammar (loosest-binding first)::

    alternation   :=  concatenation ('|' concatenation)*
    concatenation :=  repetition*
    repetition    :=  atom ('*' | '+' | '?')*
    atom          :=  literal | '.' | '_' | '^' | '$'
                    | '[' class ']' | '(' alternation ')' | '\\' any

Cisco regexps do not support ``{m,n}`` counted repetition, back-references,
or non-greedy operators, so neither do we; encountering unsupported syntax
raises :class:`RegexParseError` so the anonymizer can flag the line for
human review instead of silently mis-anonymizing it (the paper's iterative
leak-closure loop, Section 6.1).
"""

from __future__ import annotations

from repro.automata.ast import (
    Alt,
    Anchor,
    Boundary,
    CharClass,
    Concat,
    Dot,
    Empty,
    Literal,
    Opt,
    Plus,
    RegexNode,
    Star,
)


class RegexParseError(ValueError):
    """Raised when a pattern is not valid in the supported dialect."""

    def __init__(self, pattern: str, position: int, message: str):
        super().__init__(
            "bad regexp {!r} at position {}: {}".format(pattern, position, message)
        )
        self.pattern = pattern
        self.position = position


class _Parser:
    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0

    def error(self, message: str) -> RegexParseError:
        return RegexParseError(self.pattern, self.pos, message)

    def peek(self) -> str:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return ""

    def take(self) -> str:
        char = self.peek()
        self.pos += 1
        return char

    # grammar rules -----------------------------------------------------

    def parse_alternation(self) -> RegexNode:
        branches = [self.parse_concatenation()]
        while self.peek() == "|":
            self.take()
            branches.append(self.parse_concatenation())
        if len(branches) == 1:
            return branches[0]
        return Alt(tuple(branches))

    def parse_concatenation(self) -> RegexNode:
        parts = []
        while self.peek() not in ("", "|", ")"):
            parts.append(self.parse_repetition())
        if not parts:
            return Empty()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def parse_repetition(self) -> RegexNode:
        node = self.parse_atom()
        while self.peek() in ("*", "+", "?"):
            op = self.take()
            if op == "*":
                node = Star(node)
            elif op == "+":
                node = Plus(node)
            else:
                node = Opt(node)
        return node

    def parse_atom(self) -> RegexNode:
        char = self.peek()
        if char == "":
            raise self.error("expected an atom")
        if char == "(":
            self.take()
            node = self.parse_alternation()
            if self.peek() != ")":
                raise self.error("unbalanced parenthesis")
            self.take()
            return node
        if char == "[":
            return self.parse_class()
        if char == ".":
            self.take()
            return Dot()
        if char == "_":
            self.take()
            return Boundary()
        if char == "^":
            self.take()
            return Anchor("start")
        if char == "$":
            self.take()
            return Anchor("end")
        if char == "\\":
            self.take()
            escaped = self.take()
            if escaped == "":
                raise self.error("dangling backslash")
            return Literal(escaped)
        if char in ("*", "+", "?"):
            raise self.error("repetition operator with nothing to repeat")
        if char == "{":
            raise self.error("counted repetition {m,n} is not supported")
        self.take()
        return Literal(char)

    def parse_class(self) -> CharClass:
        assert self.take() == "["
        negated = False
        if self.peek() == "^":
            negated = True
            self.take()
        chars = set()
        first = True
        while True:
            char = self.peek()
            if char == "":
                raise self.error("unterminated character class")
            if char == "]" and not first:
                self.take()
                break
            first = False
            if char == "\\":
                self.take()
                char = self.take()
                if char == "":
                    raise self.error("dangling backslash in class")
            else:
                self.take()
            if self.peek() == "-" and self._range_continues():
                self.take()  # the '-'
                hi = self.take()
                if hi == "\\":
                    hi = self.take()
                if ord(hi) < ord(char):
                    raise self.error("reversed range in character class")
                for code in range(ord(char), ord(hi) + 1):
                    chars.add(chr(code))
            else:
                chars.add(char)
        return CharClass(frozenset(chars), negated)

    def _range_continues(self) -> bool:
        """Whether the '-' at the cursor introduces a range (vs a literal '-')."""
        nxt = self.pos + 1
        return nxt < len(self.pattern) and self.pattern[nxt] != "]"


def parse_regex(pattern: str) -> RegexNode:
    """Parse *pattern* into a :class:`RegexNode` AST.

    Raises :class:`RegexParseError` for syntax outside the Cisco dialect.
    """
    parser = _Parser(pattern)
    node = parser.parse_alternation()
    if parser.pos != len(pattern):
        raise parser.error("trailing characters after end of pattern")
    return node
