"""Deterministic finite automata: subset construction and language utilities."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.automata.nfa import NFA


class DFA:
    """A DFA with a partial transition function (missing edge = reject)."""

    def __init__(
        self,
        transitions: Dict[int, Dict[str, int]],
        start: int,
        accepts: Set[int],
        alphabet: Set[str],
    ) -> None:
        self.transitions = transitions
        self.start = start
        self.accepts = set(accepts)
        self.alphabet = set(alphabet)

    @property
    def states(self) -> Set[int]:
        found = {self.start} | set(self.accepts)
        for src, edges in self.transitions.items():
            found.add(src)
            found.update(edges.values())
        return found

    def accepts_string(self, text: str) -> bool:
        """Exact-match acceptance of *text*."""
        state: Optional[int] = self.start
        for char in text:
            state = self.transitions.get(state, {}).get(char)
            if state is None:
                return False
        return state in self.accepts

    def enumerate_language(self, max_length: int) -> List[str]:
        """All accepted strings of length <= *max_length*, sorted.

        Breadth-first walk; intended for small test languages (e.g. the set
        of ASN strings a policy regexp accepts).
        """
        results = []
        frontier: List[Tuple[int, str]] = [(self.start, "")]
        for _ in range(max_length + 1):
            next_frontier = []
            for state, prefix in frontier:
                if state in self.accepts:
                    results.append(prefix)
                for char, dst in sorted(self.transitions.get(state, {}).items()):
                    next_frontier.append((dst, prefix + char))
            frontier = next_frontier
        return sorted(results)

    def is_empty(self) -> bool:
        """Whether the accepted language is empty."""
        seen = {self.start}
        stack = [self.start]
        while stack:
            state = stack.pop()
            if state in self.accepts:
                return False
            for dst in self.transitions.get(state, {}).values():
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return True

    def equivalent_to(self, other: "DFA") -> bool:
        """Language equivalence via synchronized product walk.

        ``None`` stands for the implicit dead state on either side.
        """
        alphabet = self.alphabet | other.alphabet
        start_pair = (self.start, other.start)
        seen = {start_pair}
        stack = [start_pair]
        while stack:
            a, b = stack.pop()
            a_accept = a in self.accepts if a is not None else False
            b_accept = b in other.accepts if b is not None else False
            if a_accept != b_accept:
                return False
            for char in alphabet:
                a_next = self.transitions.get(a, {}).get(char) if a is not None else None
                b_next = other.transitions.get(b, {}).get(char) if b is not None else None
                pair = (a_next, b_next)
                if pair == (None, None):
                    continue
                if pair not in seen:
                    seen.add(pair)
                    stack.append(pair)
        return True


def _complete(dfa: DFA, alphabet: Set[str]) -> Tuple[Dict[int, Dict[str, int]], int]:
    """Complete transition table over *alphabet* with an explicit dead state.

    Returns (transitions, dead_state_id)."""
    dead = max(dfa.states, default=0) + 1
    transitions: Dict[int, Dict[str, int]] = {}
    for state in dfa.states | {dead}:
        row = {}
        for char in alphabet:
            row[char] = dfa.transitions.get(state, {}).get(char, dead)
        transitions[state] = row
    transitions[dead] = {char: dead for char in alphabet}
    return transitions, dead


def complement_dfa(dfa: DFA, alphabet: Iterable[str]) -> DFA:
    """DFA accepting exactly the strings over *alphabet* that *dfa* rejects."""
    alphabet = set(alphabet) | set(dfa.alphabet)
    transitions, dead = _complete(dfa, alphabet)
    accepts = {s for s in transitions if s not in dfa.accepts}
    return DFA(transitions, dfa.start, accepts, alphabet)


def _product(a: DFA, b: DFA, accept_rule) -> DFA:
    """Synchronized product; acceptance decided by accept_rule(in_a, in_b)."""
    alphabet = a.alphabet | b.alphabet
    a_table, a_dead = _complete(a, alphabet)
    b_table, b_dead = _complete(b, alphabet)
    ids: Dict[Tuple[int, int], int] = {}
    transitions: Dict[int, Dict[str, int]] = {}
    accepts: Set[int] = set()

    def intern(pair):
        if pair not in ids:
            ids[pair] = len(ids)
        return ids[pair]

    start_pair = (a.start, b.start)
    worklist = [start_pair]
    intern(start_pair)
    seen = {start_pair}
    while worklist:
        pair = worklist.pop()
        pair_id = ids[pair]
        if accept_rule(pair[0] in a.accepts, pair[1] in b.accepts):
            accepts.add(pair_id)
        for char in alphabet:
            nxt = (a_table[pair[0]][char], b_table[pair[1]][char])
            transitions.setdefault(pair_id, {})[char] = intern(nxt)
            if nxt not in seen:
                seen.add(nxt)
                worklist.append(nxt)
    return DFA(transitions, ids[start_pair], accepts, alphabet)


def intersect_dfa(a: DFA, b: DFA) -> DFA:
    """DFA accepting the intersection of the two languages."""
    return _product(a, b, lambda in_a, in_b: in_a and in_b)


def union_dfa(a: DFA, b: DFA) -> DFA:
    """DFA accepting the union of the two languages."""
    return _product(a, b, lambda in_a, in_b: in_a or in_b)


def difference_dfa(a: DFA, b: DFA) -> DFA:
    """DFA accepting strings in *a*'s language but not *b*'s."""
    return _product(a, b, lambda in_a, in_b: in_a and not in_b)


def dfa_from_nfa(nfa: NFA) -> DFA:
    """Subset construction."""
    start_set = nfa.epsilon_closure({nfa.start})
    ids: Dict[FrozenSet[int], int] = {start_set: 0}
    transitions: Dict[int, Dict[str, int]] = {}
    accepts: Set[int] = set()
    worklist: List[FrozenSet[int]] = [start_set]
    while worklist:
        current = worklist.pop()
        current_id = ids[current]
        if current & nfa.accepts:
            accepts.add(current_id)
        # Collect the characters actually leaving this state set.
        outgoing: Dict[str, Set[int]] = {}
        for state in current:
            for char, dests in nfa.transitions.get(state, {}).items():
                outgoing.setdefault(char, set()).update(dests)
        for char, dests in outgoing.items():
            closure = nfa.epsilon_closure(dests)
            if closure not in ids:
                ids[closure] = len(ids)
                worklist.append(closure)
            transitions.setdefault(current_id, {})[char] = ids[closure]
    return DFA(transitions, 0, accepts, set(nfa.alphabet))


def dfa_from_strings(strings: Iterable[str]) -> DFA:
    """Build a trie-shaped DFA accepting exactly the given finite language."""
    transitions: Dict[int, Dict[str, int]] = {}
    accepts: Set[int] = set()
    alphabet: Set[str] = set()
    next_id = 1
    for text in strings:
        state = 0
        for char in text:
            alphabet.add(char)
            edges = transitions.setdefault(state, {})
            if char not in edges:
                edges[char] = next_id
                next_id += 1
            state = edges[char]
        accepts.add(state)
    return DFA(transitions, 0, accepts, alphabet)
