"""DFA -> regexp conversion via GNFA state elimination.

Completes the pipeline the paper lists as an available-but-unneeded
optimization: regexp -> language -> permuted language -> minimum DFA ->
regexp, producing rewritten patterns far shorter than a flat alternation
when the permuted ASNs share structure.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.automata import ast
from repro.automata.ast import CharClass, Empty, Literal, RegexNode, Star
from repro.automata.dfa import DFA


def _char_node(chars) -> RegexNode:
    chars = sorted(chars)
    if len(chars) == 1:
        return Literal(chars[0])
    return CharClass(frozenset(chars), negated=False)


def _star(node: RegexNode) -> RegexNode:
    if isinstance(node, Empty):
        return Empty()
    if isinstance(node, Star):
        return node
    return Star(node)


def dfa_to_regex(dfa: DFA) -> Optional[RegexNode]:
    """Convert *dfa* into an equivalent regexp AST.

    Returns ``None`` when the DFA accepts the empty language.  The result
    has exact-match semantics: it describes precisely the strings the DFA
    accepts (callers add anchors/boundaries as needed).
    """
    if dfa.is_empty():
        return None

    # GNFA: fresh start (-1) and accept (-2) states, edges labeled with ASTs.
    edges: Dict[Tuple[int, int], RegexNode] = {}

    def add_edge(src: int, dst: int, label: RegexNode) -> None:
        if (src, dst) in edges:
            edges[(src, dst)] = ast.alternate(edges[(src, dst)], label)
        else:
            edges[(src, dst)] = label

    start, accept = -1, -2
    add_edge(start, dfa.start, Empty())
    for final in dfa.accepts:
        add_edge(final, accept, Empty())

    # Group parallel character edges into classes.
    grouped: Dict[Tuple[int, int], set] = {}
    for src, row in dfa.transitions.items():
        for char, dst in row.items():
            grouped.setdefault((src, dst), set()).add(char)
    for (src, dst), chars in grouped.items():
        add_edge(src, dst, _char_node(chars))

    interior = set(dfa.states)

    def elimination_cost(state: int) -> int:
        preds = sum(1 for (s, d) in edges if d == state and s != state)
        succs = sum(1 for (s, d) in edges if s == state and d != state)
        return preds * succs

    while interior:
        rip = min(interior, key=elimination_cost)
        interior.discard(rip)
        self_loop = edges.pop((rip, rip), None)
        loop_part = _star(self_loop) if self_loop is not None else Empty()
        incoming = [(s, label) for (s, d), label in edges.items() if d == rip]
        outgoing = [(d, label) for (s, d), label in edges.items() if s == rip]
        for (s, _) in incoming:
            edges.pop((s, rip))
        for (d, _) in outgoing:
            edges.pop((rip, d))
        for s, in_label in incoming:
            for d, out_label in outgoing:
                add_edge(s, d, ast.concat(in_label, loop_part, out_label))

    return edges.get((start, accept))
