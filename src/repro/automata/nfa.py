"""Thompson construction of NFAs from regexp ASTs.

Anchors and the Cisco ``_`` metacharacter are zero-width in regexp syntax
but are realized here as *consuming* transitions over two sentinel
characters wrapped around the subject string:

    subject' = START + subject + END

``^`` becomes a transition on START, ``$`` on END, and ``_`` a transition on
{START, END} | delimiters.  Unanchored (search) semantics are realized by
bracketing the compiled pattern with ``.*`` over the extended alphabet.
This keeps the automaton a plain character NFA with no zero-width tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set

from repro.automata.ast import (
    Alt,
    Anchor,
    Boundary,
    CharClass,
    Concat,
    Dot,
    Empty,
    Literal,
    Opt,
    Plus,
    RegexNode,
    Star,
)
from repro.automata.ast import UNDERSCORE_DELIMITERS

#: Sentinel marking the start of the subject string.
START_SENTINEL = "\x02"
#: Sentinel marking the end of the subject string.
END_SENTINEL = "\x03"


class NFA:
    """A nondeterministic finite automaton with epsilon transitions."""

    def __init__(self) -> None:
        self.next_state = 0
        self.transitions: Dict[int, Dict[str, Set[int]]] = {}
        self.epsilon: Dict[int, Set[int]] = {}
        self.start = 0
        self.accepts: Set[int] = set()
        self.alphabet: Set[str] = set()

    def new_state(self) -> int:
        state = self.next_state
        self.next_state += 1
        return state

    def add_transition(self, src: int, char: str, dst: int) -> None:
        self.transitions.setdefault(src, {}).setdefault(char, set()).add(dst)
        self.alphabet.add(char)

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilon.setdefault(src, set()).add(dst)

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable from *states* via epsilon transitions."""
        stack = list(states)
        closure = set(stack)
        while stack:
            state = stack.pop()
            for nxt in self.epsilon.get(state, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def step(self, states: Iterable[int], char: str) -> FrozenSet[int]:
        """One consuming step from the state set *states* on *char*."""
        result = set()
        for state in states:
            result.update(self.transitions.get(state, {}).get(char, ()))
        return self.epsilon_closure(result)

    def accepts_string(self, text: str) -> bool:
        """Simulate the NFA over *text* (already sentinel-wrapped if needed)."""
        current = self.epsilon_closure({self.start})
        for char in text:
            current = self.step(current, char)
            if not current:
                return False
        return bool(current & self.accepts)


def _expand_chars(node: RegexNode, alphabet: Set[str]) -> Set[str]:
    """The set of concrete characters a single-char node can consume."""
    if isinstance(node, Literal):
        return {node.char}
    if isinstance(node, Dot):
        # '.' matches any character of the subject, never the sentinels.
        return set(alphabet) - {START_SENTINEL, END_SENTINEL}
    if isinstance(node, CharClass):
        plain = set(alphabet) - {START_SENTINEL, END_SENTINEL}
        if node.negated:
            return plain - set(node.chars)
        return set(node.chars)
    if isinstance(node, Anchor):
        return {START_SENTINEL if node.kind == "start" else END_SENTINEL}
    if isinstance(node, Boundary):
        return {START_SENTINEL, END_SENTINEL} | set(UNDERSCORE_DELIMITERS)
    raise TypeError("not a character node: {!r}".format(node))


def nfa_from_ast(node: RegexNode, alphabet: Iterable[str]) -> NFA:
    """Compile *node* into an NFA with exact-match semantics.

    *alphabet* is the set of subject characters; the sentinels are added
    automatically.  The compiled NFA matches sentinel-wrapped subjects when
    the pattern uses anchors or boundaries, otherwise raw subjects.
    """
    nfa = NFA()
    full_alphabet = set(alphabet) | {START_SENTINEL, END_SENTINEL}
    nfa.alphabet = set(full_alphabet)
    start, accept = _build(nfa, node, full_alphabet)
    nfa.start = start
    nfa.accepts = {accept}
    return nfa


def compile_search_nfa(node: RegexNode, alphabet: Iterable[str]) -> NFA:
    """Compile *node* with Cisco *search* semantics.

    The resulting NFA must be run on ``START + subject + END``; it accepts
    iff the pattern matches anywhere within the subject.
    """
    nfa = NFA()
    full_alphabet = set(alphabet) | {START_SENTINEL, END_SENTINEL}
    nfa.alphabet = set(full_alphabet)
    inner_start, inner_accept = _build(nfa, node, full_alphabet)

    # Leading and trailing .* over the *full* alphabet (sentinels included)
    # so an unanchored pattern may begin/end anywhere in the wrapped subject.
    start = nfa.new_state()
    accept = nfa.new_state()
    nfa.add_epsilon(start, inner_start)
    for char in full_alphabet:
        nfa.add_transition(start, char, start)
        nfa.add_transition(accept, char, accept)
    nfa.add_epsilon(inner_accept, accept)
    nfa.start = start
    nfa.accepts = {accept}
    return nfa


def _build(nfa: NFA, node: RegexNode, alphabet: Set[str]):
    """Thompson construction; returns (start, accept) for *node*."""
    if isinstance(node, Empty):
        start = nfa.new_state()
        accept = nfa.new_state()
        nfa.add_epsilon(start, accept)
        return start, accept
    if isinstance(node, (Literal, Dot, CharClass, Anchor, Boundary)):
        start = nfa.new_state()
        accept = nfa.new_state()
        for char in _expand_chars(node, alphabet):
            nfa.add_transition(start, char, accept)
        return start, accept
    if isinstance(node, Concat):
        first_start, prev_accept = _build(nfa, node.parts[0], alphabet)
        for part in node.parts[1:]:
            part_start, part_accept = _build(nfa, part, alphabet)
            nfa.add_epsilon(prev_accept, part_start)
            prev_accept = part_accept
        return first_start, prev_accept
    if isinstance(node, Alt):
        start = nfa.new_state()
        accept = nfa.new_state()
        for part in node.parts:
            part_start, part_accept = _build(nfa, part, alphabet)
            nfa.add_epsilon(start, part_start)
            nfa.add_epsilon(part_accept, accept)
        return start, accept
    if isinstance(node, Star):
        inner_start, inner_accept = _build(nfa, node.child, alphabet)
        start = nfa.new_state()
        accept = nfa.new_state()
        nfa.add_epsilon(start, inner_start)
        nfa.add_epsilon(start, accept)
        nfa.add_epsilon(inner_accept, inner_start)
        nfa.add_epsilon(inner_accept, accept)
        return start, accept
    if isinstance(node, Plus):
        inner_start, inner_accept = _build(nfa, node.child, alphabet)
        start = nfa.new_state()
        accept = nfa.new_state()
        nfa.add_epsilon(start, inner_start)
        nfa.add_epsilon(inner_accept, inner_start)
        nfa.add_epsilon(inner_accept, accept)
        return start, accept
    if isinstance(node, Opt):
        inner_start, inner_accept = _build(nfa, node.child, alphabet)
        start = nfa.new_state()
        accept = nfa.new_state()
        nfa.add_epsilon(start, inner_start)
        nfa.add_epsilon(start, accept)
        nfa.add_epsilon(inner_accept, accept)
        return start, accept
    raise TypeError("unknown regexp node {!r}".format(node))
