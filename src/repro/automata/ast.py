"""Abstract syntax tree for the Cisco IOS route-policy regexp dialect.

The dialect is the POSIX-ish flavor accepted by ``ip as-path access-list``
and ``ip community-list`` commands:

* literals and escaped literals (``\\.``)
* ``.`` matches any single character of the subject
* character classes ``[0-9]``, ``[^ab]``, with ranges
* grouping ``( ... )`` and alternation ``|``
* postfix ``*``, ``+``, ``?``
* anchors ``^`` and ``$``
* ``_`` (Cisco-specific): matches a delimiter character (space, comma,
  braces, parentheses) or the start or end of the subject string

Nodes are immutable and hashable so they can be deduplicated and used as
dictionary keys during regexp simplification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Characters the Cisco ``_`` metacharacter matches (in addition to the
#: start and end of the input string).
UNDERSCORE_DELIMITERS = frozenset(" ,{}()")


class RegexNode:
    """Base class for all regexp AST nodes."""

    def to_pattern(self) -> str:
        """Render this node back into Cisco regexp syntax."""
        raise NotImplementedError

    def _precedence(self) -> int:
        """Binding tightness: 0=alt, 1=concat, 2=repeat, 3=atom."""
        raise NotImplementedError

    def _child_pattern(self, child: "RegexNode", min_prec: int) -> str:
        text = child.to_pattern()
        if child._precedence() < min_prec:
            return "(" + text + ")"
        return text

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "{}({!r})".format(type(self).__name__, self.to_pattern())


@dataclass(frozen=True)
class Empty(RegexNode):
    """The empty string (epsilon)."""

    def to_pattern(self) -> str:
        return ""

    def _precedence(self) -> int:
        return 3


#: Characters that must be escaped when rendered as literals.
_METACHARS = frozenset(".^$*+?()[]|\\_")


@dataclass(frozen=True)
class Literal(RegexNode):
    """A single literal character."""

    char: str

    def to_pattern(self) -> str:
        if self.char in _METACHARS:
            return "\\" + self.char
        return self.char

    def _precedence(self) -> int:
        return 3


@dataclass(frozen=True)
class Dot(RegexNode):
    """``.`` — any single character."""

    def to_pattern(self) -> str:
        return "."

    def _precedence(self) -> int:
        return 3


@dataclass(frozen=True)
class CharClass(RegexNode):
    """A character class such as ``[0-9]`` or ``[^ab]``.

    ``chars`` holds the explicit member characters (ranges are expanded at
    parse time; re-rendering re-compresses runs back into ranges).
    """

    chars: frozenset = field(default_factory=frozenset)
    negated: bool = False

    def to_pattern(self) -> str:
        body = _render_class_body(self.chars)
        return "[{}{}]".format("^" if self.negated else "", body)

    def _precedence(self) -> int:
        return 3

    def matches(self, char: str) -> bool:
        """Whether *char* is accepted by this class."""
        return (char in self.chars) != self.negated


@dataclass(frozen=True)
class Anchor(RegexNode):
    """``^`` (kind='start') or ``$`` (kind='end')."""

    kind: str

    def to_pattern(self) -> str:
        return "^" if self.kind == "start" else "$"

    def _precedence(self) -> int:
        return 3


@dataclass(frozen=True)
class Boundary(RegexNode):
    """Cisco ``_``: a delimiter character or the start/end of the subject."""

    def to_pattern(self) -> str:
        return "_"

    def _precedence(self) -> int:
        return 3


@dataclass(frozen=True)
class Concat(RegexNode):
    """Concatenation of two or more parts."""

    parts: Tuple[RegexNode, ...]

    def to_pattern(self) -> str:
        return "".join(self._child_pattern(p, 1) for p in self.parts)

    def _precedence(self) -> int:
        return 1


@dataclass(frozen=True)
class Alt(RegexNode):
    """Alternation of two or more branches."""

    parts: Tuple[RegexNode, ...]

    def to_pattern(self) -> str:
        return "|".join(self._child_pattern(p, 1) for p in self.parts)

    def _precedence(self) -> int:
        return 0


@dataclass(frozen=True)
class Star(RegexNode):
    """Zero or more repetitions."""

    child: RegexNode

    def to_pattern(self) -> str:
        return self._child_pattern(self.child, 3) + "*"

    def _precedence(self) -> int:
        return 2


@dataclass(frozen=True)
class Plus(RegexNode):
    """One or more repetitions."""

    child: RegexNode

    def to_pattern(self) -> str:
        return self._child_pattern(self.child, 3) + "+"

    def _precedence(self) -> int:
        return 2


@dataclass(frozen=True)
class Opt(RegexNode):
    """Zero or one occurrence."""

    child: RegexNode

    def to_pattern(self) -> str:
        return self._child_pattern(self.child, 3) + "?"

    def _precedence(self) -> int:
        return 2


def _render_class_body(chars: frozenset) -> str:
    """Compress a set of characters into class-body syntax with ranges."""
    ordered = sorted(chars)
    pieces = []
    i = 0
    while i < len(ordered):
        j = i
        while j + 1 < len(ordered) and ord(ordered[j + 1]) == ord(ordered[j]) + 1:
            j += 1
        if j - i >= 2:
            pieces.append(_escape_class_char(ordered[i]) + "-" + _escape_class_char(ordered[j]))
        else:
            pieces.extend(_escape_class_char(c) for c in ordered[i : j + 1])
        i = j + 1
    return "".join(pieces)


def _escape_class_char(char: str) -> str:
    if char in "]-^\\":
        return "\\" + char
    return char


def concat(*parts: RegexNode) -> RegexNode:
    """Build a concatenation, flattening nested Concats and dropping epsilons."""
    flat = []
    for part in parts:
        if isinstance(part, Empty):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return Empty()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def alternate(*parts: RegexNode) -> RegexNode:
    """Build an alternation, flattening nested Alts and deduplicating."""
    flat = []
    seen = set()
    for part in parts:
        branches = part.parts if isinstance(part, Alt) else (part,)
        for branch in branches:
            if branch not in seen:
                seen.add(branch)
                flat.append(branch)
    if not flat:
        raise ValueError("alternation of zero branches has no regexp form")
    if len(flat) == 1:
        return flat[0]
    return Alt(tuple(flat))
