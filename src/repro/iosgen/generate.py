"""Network generation orchestrator: topology -> addresses -> routing ->
policies -> rendered configs."""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.iosgen.addressing import AddressPlanner
from repro.iosgen.dialects import all_version_strings, dialect_for_version, interface_names
from repro.iosgen.naming import NameFactory, PEER_NAMES
from repro.iosgen.plan import (
    BgpNeighborPlan,
    NamedAclPlan,
    RouteMapClause,
    BgpPlan,
    IgpPlan,
    InterfacePlan,
    NetworkPlan,
    PrefixListEntry,
    RouterPlan,
    StaticRoute,
    SubnetRecord,
)
from repro.iosgen.policies import FAMOUS_ASNS, PolicyFactory
from repro.iosgen.render import render_config
from repro.iosgen.spec import NetworkSpec
from repro.iosgen.topology import build_topology
from repro.netutil import classful_prefix_len, int_to_ip as _ip, network_address


def _skewed(rng: random.Random, low: int, high: int, power: float = 2.5) -> int:
    """A heavy-tailed draw in [low, high]: most values near *low*, a long
    tail toward *high* (real config-size distributions are skewed)."""
    if high <= low:
        return low
    return low + int((high - low + 1) * (rng.random() ** power))


@dataclass
class GeneratedNetwork:
    """A fully generated network: ground-truth plan plus rendered text."""

    spec: NetworkSpec
    plan: NetworkPlan
    graph: "nx.Graph"
    configs: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name


class _InterfaceNamer:
    """Per-router interface name allocation honoring the dialect era."""

    def __init__(self, dialect):
        self.lan_base, self.wan_base, _ = interface_names(dialect)
        self.era = dialect.interface_era
        self.counts = {"lan": 0, "wan": 0, "loop": 0}

    def next_name(self, media: str) -> str:
        if media == "loopback":
            index = self.counts["loop"]
            self.counts["loop"] += 1
            return "Loopback{}".format(index)
        if media == "serial":
            index = self.counts["wan"]
            self.counts["wan"] += 1
            if self.era == 0:
                return "{}{}".format(self.wan_base, index)
            return "{}{}/{}".format(self.wan_base, index // 4, index % 4)
        index = self.counts["lan"]
        self.counts["lan"] += 1
        if self.era == 0:
            return "{}{}".format(self.lan_base, index)
        return "{}{}/{}".format(self.lan_base, index // 4, index % 4)


def generate_network(spec: NetworkSpec) -> GeneratedNetwork:
    """Generate one network deterministically from its spec."""
    rng = random.Random(("net", spec.name, spec.seed).__repr__())
    names = NameFactory(spec.seed * 1000003 + 17)
    graph = build_topology(spec, names, rng)
    planner = AddressPlanner(spec, rng)
    plan = NetworkPlan(spec=spec)

    versions = spec.versions or rng.sample(
        all_version_strings(), min(12, len(all_version_strings()))
    )

    routers: Dict[str, RouterPlan] = {}
    namers: Dict[str, _InterfaceNamer] = {}
    for node in sorted(graph.nodes):
        data = graph.nodes[node]
        version = rng.choice(versions)
        router = RouterPlan(
            hostname=node,
            role=data["role"],
            pop_index=data["pop"],
            version=version,
        )
        routers[node] = router
        namers[node] = _InterfaceNamer(dialect_for_version(version))
        loop = planner.loopback()
        router.interfaces.append(
            InterfacePlan(
                name=namers[node].next_name("loopback"),
                kind="loopback",
                address=loop.address,
                prefix_len=32,
            )
        )

    _assign_links(spec, rng, names, graph, planner, routers, namers, plan)
    _assign_lans(spec, rng, names, graph, planner, routers, namers, plan)
    _assign_igp(spec, rng, routers)
    peer_assignments = _assign_bgp(spec, rng, names, graph, planner, routers, namers, plan)
    _assign_policies(spec, rng, routers, peer_assignments, planner)
    _assign_misc(spec, rng, names, routers, planner)

    plan.routers = routers
    plan.subnets = planner.records

    network = GeneratedNetwork(spec=spec, plan=plan, graph=graph)
    use_junos = spec.junos_fraction > 0 and spec.igp in ("ospf", "rip")
    use_eos = spec.eos_fraction > 0
    for node, router in routers.items():
        if use_junos and rng.random() < spec.junos_fraction:
            from repro.iosgen.junos_render import render_junos_config

            network.configs[node] = render_junos_config(router, names, spec, rng)
        elif use_eos and rng.random() < spec.eos_fraction:
            from repro.iosgen.eos_render import render_eos_config

            network.configs[node] = render_eos_config(router, names, spec, rng)
        else:
            network.configs[node] = render_config(
                router, dialect_for_version(router.version), names, spec, rng
            )
    return network


def _assign_links(spec, rng, names, graph, planner, routers, namers, plan) -> None:
    for a, b in sorted(graph.edges):
        media = graph.edges[a, b].get("media", "ethernet")
        subnet = planner.p2p_link()
        hosts = list(AddressPlanner.hosts(subnet))
        for endpoint, address, remote in ((a, hosts[0], b), (b, hosts[1], a)):
            router = routers[endpoint]
            interface = InterfacePlan(
                name=namers[endpoint].next_name(media),
                kind="p2p",
                address=address,
                prefix_len=subnet.prefix_len,
            )
            if media == "serial":
                interface.bandwidth = rng.choice([1544, 44210, 155000])
                interface.encapsulation = rng.choice(["ppp", "hdlc", "frame-relay"])
                interface.point_to_point = interface.encapsulation == "frame-relay"
            if rng.random() < spec.comment_density:
                interface.description = names.description(
                    "link", routers[endpoint].pop_index, remote=remote
                )
            router.interfaces.append(interface)
        plan.links.append((a, b, subnet, media))


def _assign_lans(spec, rng, names, graph, planner, routers, namers, plan) -> None:
    """User LANs as 802.1Q VLAN subinterfaces on access/branch routers."""
    for node in sorted(graph.nodes):
        router = routers[node]
        if router.role not in ("access", "branch"):
            continue
        trunk = namers[node].next_name("ethernet")
        router.interfaces.append(InterfacePlan(name=trunk, kind="lan", address=None))
        low, high = spec.lans_per_access
        vlan = 10
        for _ in range(_skewed(rng, low, high)):
            subnet = planner.lan_subnet()
            interface = InterfacePlan(
                name="{}.{}".format(trunk, vlan),
                kind="lan",
                address=subnet.address + 1,
                prefix_len=subnet.prefix_len,
                extra=["encapsulation dot1Q {}".format(vlan)],
            )
            if rng.random() < 0.5:
                helper = subnet.address + 2
                interface.extra.append("ip helper-address {}".format(_ip(helper)))
            if rng.random() < 0.03:
                # Pinned MAC (burned-in address override) — rule R8's prey.
                interface.extra.append(
                    "mac-address 00{:02x}.{:04x}.{:04x}".format(
                        rng.randrange(256), rng.randrange(65536), rng.randrange(65536)
                    )
                )
            if rng.random() < spec.comment_density:
                interface.description = names.description("lan", router.pop_index)
            if vlan == 10 and rng.random() < 0.4:
                # Guard the first user VLAN with a named extended ACL —
                # the name is privileged and must hash consistently with
                # its `ip access-group` reference.
                acl_name = "protect-{}-v{}".format(names.company, vlan)
                wildcard = (0xFFFFFFFF >> subnet.prefix_len) if subnet.prefix_len else 0
                router.named_acls.append(
                    NamedAclPlan(
                        name=acl_name,
                        entries=[
                            ("permit", "tcp any {} {} eq www".format(
                                _ip(subnet.address), _ip(wildcard))),
                            ("permit", "udp any any eq domain"),
                            ("deny", "ip any any log"),
                        ],
                    )
                )
                interface.extra.append("ip access-group {} in".format(acl_name))
            router.interfaces.append(interface)
            if rng.random() < 0.5:
                router.dhcp_pools.append(
                    ("vlan{}".format(vlan), subnet.address, subnet.prefix_len)
                )
            vlan += rng.randrange(1, 11)


def _assign_igp(spec, rng, routers) -> None:
    for router in routers.values():
        igp = IgpPlan(protocol=spec.igp)
        if spec.igp == "ospf":
            igp.process_id = 100
            for interface in router.interfaces:
                if interface.address is None:
                    continue
                area = 0 if router.role in ("core", "hub") else router.pop_index
                base = network_address(interface.address, interface.prefix_len)
                wildcard = (0xFFFFFFFF >> interface.prefix_len) if interface.prefix_len else 0
                igp.networks.append((base, wildcard, area))
        elif spec.igp == "isis":
            # Interface-activated; coverage tuples mirror the interfaces.
            for interface in router.interfaces:
                if interface.address is None:
                    continue
                base = network_address(interface.address, interface.prefix_len)
                wildcard = (0xFFFFFFFF >> interface.prefix_len) if interface.prefix_len else 0
                igp.networks.append((base, wildcard, None))
        else:
            if spec.igp == "eigrp":
                igp.process_id = 64000 + (zlib.crc32(spec.name.encode()) % 100)
            nets = set()
            for interface in router.interfaces:
                if interface.address is None:
                    continue
                length = classful_prefix_len(interface.address)
                nets.add(network_address(interface.address, length))
            igp.networks = [(net, None, None) for net in sorted(nets)]
        for interface in router.interfaces:
            if interface.kind == "lan" and rng.random() < 0.6:
                igp.passive_interfaces.append(interface.name)
        router.igp = igp


def _assign_bgp(spec, rng, names, graph, planner, routers, namers, plan):
    """Create EBGP peerings and the iBGP mesh; returns peer assignments."""
    borders = sorted(n for n, d in graph.nodes(data=True) if d.get("is_border"))
    if not borders:
        return {}
    peer_pool = rng.sample(PEER_NAMES, min(spec.num_ebgp_peers, len(PEER_NAMES)))
    asn_pool = rng.sample(FAMOUS_ASNS, len(peer_pool))
    assignments: Dict[str, List[Tuple[str, int]]] = {b: [] for b in borders}

    advertised = [spec.public_block]
    confed_peers = (
        sorted(rng.sample(range(65001, 65090), 3)) if spec.use_confederation else []
    )
    for border in borders:
        router = routers[border]
        router.bgp = BgpPlan(
            asn=spec.local_asn,
            router_id=router.loopback_address(),
            networks=list(advertised),
        )
        if spec.use_confederation:
            # The confederation identifier is the network's public AS;
            # members run private sub-AS numbers (rules R19/R20).
            router.bgp.confederation_id = spec.local_asn
            router.bgp.confederation_peers = list(confed_peers)

    for peer_name, peer_asn in zip(peer_pool, asn_pool):
        low, high = spec.sessions_per_peer
        sessions = rng.randrange(low, high + 1)
        for session in range(sessions):
            border = borders[(zlib.crc32(peer_name.encode()) + session) % len(borders)]
            router = routers[border]
            subnet = planner.peer_link()
            hosts = list(AddressPlanner.hosts(subnet))
            our_addr, their_addr = hosts[0], hosts[1]
            interface = InterfacePlan(
                name=namers[border].next_name("serial"),
                kind="peer",
                address=our_addr,
                prefix_len=subnet.prefix_len,
                bandwidth=rng.choice([44210, 155000, 622000]),
                encapsulation="ppp",
            )
            if rng.random() < spec.comment_density:
                interface.description = names.description(
                    "peer", router.pop_index, peer=peer_name
                )
            router.interfaces.append(interface)
            neighbor = BgpNeighborPlan(
                address=their_addr,
                remote_as=peer_asn,
                ebgp=True,
                route_map_in="{}-import".format(peer_name.upper()),
                route_map_out="{}-export".format(peer_name.upper()),
                send_community=True,
            )
            if rng.random() < 0.4:
                neighbor.password = names.secret()
            if rng.random() < 0.2:
                # Present a legacy AS to this peer (rule R12's context).
                neighbor.local_as = rng.choice(FAMOUS_ASNS)
            router.bgp.neighbors.append(neighbor)
            assignments[border].append((peer_name, peer_asn))
            plan.peerings.append((border, peer_name, peer_asn, subnet))

    # iBGP: route-reflector pair or full mesh over loopbacks.
    if spec.use_route_reflectors and len(borders) > 2:
        reflectors = borders[:2]
        clients = borders[2:]
        for reflector in reflectors:
            router = routers[reflector]
            for other in borders:
                if other == reflector:
                    continue
                router.bgp.neighbors.append(
                    BgpNeighborPlan(
                        address=routers[other].loopback_address(),
                        remote_as=spec.local_asn,
                        ebgp=False,
                        update_source="Loopback0",
                        next_hop_self=True,
                        route_reflector_client=other in clients,
                    )
                )
        for client in clients:
            router = routers[client]
            for reflector in reflectors:
                router.bgp.neighbors.append(
                    BgpNeighborPlan(
                        address=routers[reflector].loopback_address(),
                        remote_as=spec.local_asn,
                        ebgp=False,
                        update_source="Loopback0",
                        next_hop_self=True,
                    )
                )
    elif spec.ibgp_full_mesh and len(borders) > 1:
        for border in borders:
            router = routers[border]
            for other in borders:
                if other == border:
                    continue
                loop = routers[other].loopback_address()
                router.bgp.neighbors.append(
                    BgpNeighborPlan(
                        address=loop,
                        remote_as=spec.local_asn,
                        ebgp=False,
                        update_source="Loopback0",
                        next_hop_self=True,
                    )
                )
    for border in borders:
        router = routers[border]
        if rng.random() < 0.6:
            router.bgp.redistribute.append(spec.igp)
    return assignments


def _assign_policies(spec, rng, routers, peer_assignments, planner) -> None:
    lan_subnets = [
        (record.address, record.prefix_len)
        for record in planner.records
        if record.kind == "lan"
    ]
    for border, peers in peer_assignments.items():
        router = routers[border]
        factory = PolicyFactory(spec, rng)
        seen = set()
        for peer_name, peer_asn in peers:
            if peer_name in seen:
                continue
            seen.add(peer_name)
            bundle = factory.peer_policies(
                peer_name, peer_asn, spec.local_asn, [spec.public_block]
            )
            router.route_maps.extend(bundle.route_maps)
            router.aspath_acls.extend(bundle.aspath_acls)
            router.community_lists.extend(bundle.community_lists)
            router.access_lists.extend(bundle.access_lists)
            # An inbound prefix-list per peer (referenced or standalone —
            # both occur in real configs).
            low, high = spec.prefix_list_entries
            name = "{}-in".format(peer_name.upper())
            sequence = 5
            for _ in range(_skewed(rng, low, high, power=1.8)):
                record = planner.customer_route()
                router.prefix_lists.append(
                    PrefixListEntry(
                        name,
                        sequence,
                        "permit",
                        record.address,
                        record.prefix_len,
                        le=24 if rng.random() < 0.4 else None,
                    )
                )
                sequence += 5
        router.access_lists.extend(factory.security_acl(lan_subnets))
        if spec.use_vrfs:
            # An MPLS-VPN customer VRF on the border (rules R17/R18).
            vrf_value = rng.randrange(1, 4000)
            router.extra_global.extend([
                "ip vrf cust-{}".format(rng.choice(("alpha", "beta", "gamma"))),
                " rd {}:{}".format(spec.local_asn, vrf_value),
                " route-target export {}:{}".format(spec.local_asn, vrf_value),
                " route-target import {}:{}".format(spec.local_asn, vrf_value),
            ])
            router.route_maps.append(
                RouteMapClause(
                    "VPN-export", "permit", 10,
                    sets=["extcommunity rt {}:{}".format(spec.local_asn, vrf_value)],
                )
            )
        if spec.archaic_policies:
            # Ancient IOS route-maps sometimes set EGP origins (rule R21).
            router.route_maps.append(
                RouteMapClause(
                    "LEGACY-origin", "permit", 10,
                    sets=["origin egp {}".format(rng.choice(FAMOUS_ASNS))],
                )
            )
        # Customer aggregate statics (borders of provider-style networks
        # carry these by the hundred).
        low, high = spec.static_burst
        p2p_addresses = [
            interface.address
            for interface in router.interfaces
            if interface.kind == "p2p" and interface.address is not None
        ]
        for _ in range(_skewed(rng, low, high, power=1.6)):
            record = planner.customer_route()
            next_hop = rng.choice(p2p_addresses) if p2p_addresses and rng.random() < 0.7 else 0
            router.static_routes.append(
                StaticRoute(record.address, record.prefix_len, next_hop)
            )
    if spec.compartmentalized:
        interior = [r for r in routers.values() if r.role in ("agg", "branch")]
        factory = PolicyFactory(spec, rng)
        for router in interior[: max(1, len(interior) // 2)]:
            router.access_lists.extend(factory.compartment_acl(lan_subnets[:3]))
            router.extra_global.append("no ip source-route")


def _assign_misc(spec, rng, names, routers, planner) -> None:
    hub_loopbacks = [
        router.loopback_address()
        for router in routers.values()
        if router.role in ("core", "hub")
    ]
    hub_loopbacks = [addr for addr in hub_loopbacks if addr is not None][:2]
    for router in routers.values():
        if rng.random() < spec.banner_probability:
            router.banner = names.banner(router.pop_index)
        router.enable_secret = names.secret()
        router.usernames = [(user, names.secret()) for user in names.usernames()]
        router.snmp_community = names.snmp_community()
        router.snmp_location = "{} {} st".format(
            names.city(router.pop_index)[1], rng.choice(["main", "oak", "market"])
        )
        router.snmp_contact = names.person_email()
        router.vty_password = names.secret()
        router.domain_name = names.domain
        router.ntp_servers = list(hub_loopbacks)
        router.logging_hosts = list(hub_loopbacks[:1])
        if router.role in ("branch",) and spec.dialer_backup:
            router.dialer_number = names.phone()
        if router.role in ("hub", "border", "core") and rng.random() < 0.5:
            # A couple of static routes (aggregates to Null0, defaults).
            base, length = spec.public_block
            router.static_routes.append(StaticRoute(base, length, 0))
        if spec.kind == "backbone" and router.role == "agg":
            # Aggregation routers in provider networks carry customer
            # aggregates by the dozen.
            low, high = spec.static_burst
            p2p_addresses = [
                interface.address
                for interface in router.interfaces
                if interface.kind == "p2p" and interface.address is not None
            ]
            for _ in range(_skewed(rng, low // 3, high // 3, power=2.2)):
                record = planner.customer_route()
                next_hop = (
                    rng.choice(p2p_addresses)
                    if p2p_addresses and rng.random() < 0.7
                    else 0
                )
                router.static_routes.append(
                    StaticRoute(record.address, record.prefix_len, next_hop)
                )
