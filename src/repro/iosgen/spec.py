"""Network specification: all the parameters of one generated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class NetworkSpec:
    """Parameters controlling one synthetic network.

    The defaults describe a mid-sized enterprise; :func:`repro.iosgen.dataset.paper_dataset`
    builds 31 of these calibrated to the paper's corpus statistics.
    """

    name: str = "net0"
    kind: str = "enterprise"  # "backbone" | "enterprise"
    seed: int = 0

    # -- size knobs ------------------------------------------------------
    num_pops: int = 3               # backbone PoPs or enterprise sites
    aggs_per_pop: int = 2
    access_per_pop: int = 3
    lans_per_access: Tuple[int, int] = (4, 14)   # dot1q subinterface VLANs
    static_burst: Tuple[int, int] = (0, 8)       # customer statics on borders
    prefix_list_entries: Tuple[int, int] = (3, 12)

    # -- routing design --------------------------------------------------
    igp: str = "ospf"               # "ospf" | "rip" | "eigrp"
    local_asn: int = 64512          # public for backbones, often private else
    num_ebgp_peers: int = 2         # distinct neighbor networks
    sessions_per_peer: Tuple[int, int] = (1, 3)
    ibgp_full_mesh: bool = True
    use_route_reflectors: bool = False  # RR pair instead of full mesh

    # -- addressing ------------------------------------------------------
    public_block: Tuple[int, int] = (0x06000000, 8)   # (base, len), e.g. 6/8
    use_rfc1918: bool = True

    # -- content knobs (calibrated against the paper) ---------------------
    comment_density: float = 0.3    # P(interface gets a description)
    banner_probability: float = 0.8
    use_aspath_range_regexps: bool = False     # public-ASN ranges (2/31)
    use_private_range_regexps: bool = False    # private-ASN ranges (3/31)
    use_alternation_regexps: bool = True       # alternations (10/31)
    use_community_regexps: bool = False        # community regexps (5/31)
    use_community_range_regexps: bool = False  # ranges in them (2/31)
    compartmentalized: bool = False            # NAT/filtering interior (10/31)
    use_confederation: bool = False            # BGP confederation (R19/R20)
    use_vrfs: bool = False                     # MPLS VPN vrfs (R17/R18)
    archaic_policies: bool = False             # `set origin egp` era (R21)
    acl_burst: Tuple[int, int] = (2, 12)       # extended ACL entries per border
    dialer_backup: bool = False                # ISDN dial backup on branches

    #: IOS versions available to this network's routers (assigned per
    #: router round-robin with jitter).  ``None`` means sample from the
    #: full synthetic version family.
    versions: Optional[List[str]] = None

    #: Fraction of routers rendered in JunOS syntax (multi-vendor
    #: networks).  Ignored for EIGRP networks (no JunOS equivalent).
    junos_fraction: float = 0.0

    #: Fraction of routers rendered in Arista EOS syntax (exercises the
    #: ``eos``/``ipv6``/``blobs`` recognizer plugins: sha512 secrets,
    #: dual-stack interfaces, SSH keys, SNMPv3 users, certificate blobs).
    #: Zero draws nothing from the RNG, so existing specs render
    #: byte-identically.
    eos_fraction: float = 0.0

    def total_router_estimate(self) -> int:
        per_pop = 2 + self.aggs_per_pop + self.access_per_pop
        return self.num_pops * per_pop
