"""Deterministic fake identity material for generated networks.

Company names, cities, airport codes, people, e-mail addresses, phone
numbers, banner text — the *privileged* strings a real config leaks and the
anonymizer must remove.  Everything is drawn from a seeded RNG so a network
generates byte-identically for a given spec.

None of these fabricated names should appear on the pass-list; tests assert
that every one of them is hashed or stripped by the anonymizer.
"""

from __future__ import annotations

import random
from typing import List

COMPANY_STEMS = [
    "acme", "globex", "initech", "umbra", "vandelay", "wayne", "stark",
    "tyrell", "cyberdyne", "wonka", "oscorp", "dunder", "hooli", "pied",
    "aperture", "weyland", "zorg", "gringott", "monarch", "nakatomi",
    "octan", "prestige", "sirius", "virtucon", "yoyodyne", "zenith",
    "bluth", "chotchkie", "duff", "ewing", "frobozz", "gekko",
]

COMPANY_SUFFIXES = ["net", "com", "corp", "tel", "link", "wave", "grid", "core"]

CITIES = [
    ("lax", "losangeles"), ("sfo", "sanfrancisco"), ("jfk", "newyork"),
    ("ord", "chicago"), ("dfw", "dallas"), ("atl", "atlanta"),
    ("sea", "seattle"), ("den", "denver"), ("iad", "washington"),
    ("bos", "boston"), ("mia", "miami"), ("phx", "phoenix"),
    ("msp", "minneapolis"), ("slc", "saltlake"), ("iah", "houston"),
    ("lhr", "london"), ("fra", "frankfurt"), ("ams", "amsterdam"),
    ("cdg", "paris"), ("nrt", "tokyo"), ("syd", "sydney"),
    ("hkg", "hongkong"), ("sin", "singapore"), ("yyz", "toronto"),
]

PEOPLE = [
    "jsmith", "mjones", "bwilson", "kchen", "rpatel", "lgarcia",
    "tnguyen", "dmiller", "sbrown", "ajohnson", "fkafka", "hmelville",
]

PEER_NAMES = [
    "uunet", "sprintlink", "genuity", "ebone", "telia", "qwest",
    "cablewireless", "level3", "abovenet", "exodus", "psinet", "verio",
    "concert", "teleglobe", "savvis", "cogent",
]

STREETS = ["main", "oak", "market", "broadway", "fifth", "elm", "harbor", "lake"]

BANNER_TEMPLATES = [
    "{company} network operations center\nUnauthorized access prohibited!\nContact {email} or call {phone}",
    "WARNING: {company} property.\nAll activity is monitored and logged.\nReport problems to {email}",
    "{company} - {city} POP\nAuthorized users only.\nNOC: {phone}",
]

DESCRIPTION_TEMPLATES = [
    "{company} {city} {street} St offices",
    "link to {remote} via {circuit}",
    "{peer} peering - circuit {circuit}",
    "backbone {city} to {remote_city}",
    "customer {customer} - {circuit}",
    "mgmt lan {city}",
]


class NameFactory:
    """Seeded generator of fake identity strings for one network."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        stem = self.rng.choice(COMPANY_STEMS)
        suffix = self.rng.choice(COMPANY_SUFFIXES)
        self.company = stem
        self.domain = "{}.{}".format(stem, "com" if suffix == "corp" else suffix)
        self.company_display = stem.capitalize() + suffix.capitalize()
        self._city_pool = self.rng.sample(CITIES, len(CITIES))
        self._circuit_serial = self.rng.randrange(1000, 9000)

    def city(self, index: int):
        """(airport_code, long_name) for PoP *index* (stable per network)."""
        return self._city_pool[index % len(self._city_pool)]

    def hostname(self, role: str, index: int, pop_index: int) -> str:
        code, _ = self.city(pop_index)
        return "{}{}.{}.{}".format(role, index, code, self.domain)

    def person_email(self) -> str:
        return "{}@{}".format(self.rng.choice(PEOPLE), self.domain)

    def phone(self) -> str:
        return "{}{:03d}{:04d}".format(
            self.rng.choice(["1408", "1212", "1703", "1650", "1312"]),
            self.rng.randrange(200, 999),
            self.rng.randrange(0, 9999),
        )

    def circuit_id(self) -> str:
        self._circuit_serial += self.rng.randrange(1, 17)
        return "DS{}-{}".format(self.rng.choice("013"), self._circuit_serial)

    def banner(self, pop_index: int) -> str:
        template = self.rng.choice(BANNER_TEMPLATES)
        _, city = self.city(pop_index)
        return template.format(
            company=self.company_display,
            email=self.person_email(),
            phone=self.phone(),
            city=city,
        )

    def description(self, kind: str, pop_index: int, remote: str = "", peer: str = "") -> str:
        _, city = self.city(pop_index)
        _, remote_city = self.city(pop_index + 1)
        template = self.rng.choice(DESCRIPTION_TEMPLATES)
        return template.format(
            company=self.company_display,
            city=city,
            street=self.rng.choice(STREETS),
            remote=remote or "core1." + remote_city,
            remote_city=remote_city,
            peer=peer or self.rng.choice(PEER_NAMES),
            circuit=self.circuit_id(),
            customer=self.rng.choice(COMPANY_STEMS),
        )

    def secret(self) -> str:
        alphabet = "abcdefghjkmnpqrstuvwxyz23456789"
        return "".join(self.rng.choice(alphabet) for _ in range(self.rng.randrange(8, 13)))

    def snmp_community(self) -> str:
        return self.rng.choice(
            ["public", "private", self.company + "ro", self.company + "rw", "n0cw4tch"]
        )

    def usernames(self) -> List[str]:
        return self.rng.sample(PEOPLE, self.rng.randrange(1, 4))
