"""Render a RouterPlan as a JunOS-style hierarchical configuration.

The paper (footnote 2): "We have implemented our approach for Cisco IOS,
but the techniques are directly applicable to JunOS and other router
configuration languages as well."  This module makes that claim testable:
the *same* network plan renders to JunOS syntax, anonymizes through the
same engine (with the JunOS rule extensions), and validates with the same
suites.

Syntax simplifications, documented for honesty:

* AS-path regexps are emitted in a restricted dialect (alternations,
  literals, and single bracket ranges) shared with the IOS generator,
  minus the ``_`` metacharacter JunOS does not use.
* Firewall filters carry the source prefixes of the plan's ACL entries;
  port-level match conditions are not translated.
* EIGRP has no JunOS equivalent; plans using EIGRP render their IGP as
  OSPF when forced to JunOS (callers control the vendor choice).
"""

from __future__ import annotations

import random
import re
from typing import List, Optional, Tuple

from repro.iosgen.plan import RouterPlan
from repro.iosgen.spec import NetworkSpec
from repro.netutil import int_to_ip, mask_to_len, network_address


def junos_interface_name(ios_name: str) -> Tuple[str, int]:
    """Map an IOS-style interface name to a JunOS (ifd, unit) pair."""
    base_match = re.match(r"([A-Za-z]+)([\d/]*)(?:\.(\d+))?$", ios_name)
    if not base_match:
        return ios_name.lower(), 0
    base, numbers, unit = base_match.groups()
    unit_number = int(unit) if unit else 0
    prefix = {
        "Loopback": "lo",
        "Ethernet": "fe",
        "FastEthernet": "fe",
        "GigabitEthernet": "ge",
        "Serial": "so",
        "POS": "so",
        "Dialer": "dl",
    }.get(base, base.lower()[:2])
    if prefix == "lo":
        return "lo0", unit_number
    digits = [d for d in numbers.split("/") if d]
    while len(digits) < 3:
        digits.insert(0, "0")
    return "{}-{}/{}/{}".format(prefix, *digits[:3]), unit_number


class _Writer:
    def __init__(self):
        self.lines: List[str] = []
        self.depth = 0

    def open(self, header: str) -> None:
        self.lines.append("    " * self.depth + header + " {")
        self.depth += 1

    def close(self) -> None:
        self.depth -= 1
        self.lines.append("    " * self.depth + "}")

    def stmt(self, text: str) -> None:
        self.lines.append("    " * self.depth + text + ";")

    def comment(self, text: str) -> None:
        self.lines.append("    " * self.depth + "/* " + text + " */")

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def _strip_underscores(pattern: str) -> str:
    """IOS-dialect policy regex -> the restricted JunOS form."""
    return pattern.replace("_", "")


def render_junos_config(
    router: RouterPlan,
    names,
    spec: NetworkSpec,
    rng: random.Random,
) -> str:
    w = _Writer()
    w.comment("juniper router configuration")
    _render_system(w, router, names, rng)
    _render_interfaces(w, router, spec, rng)
    _render_routing_options(w, router)
    _render_protocols(w, router)
    _render_policy_options(w, router)
    _render_firewall(w, router)
    _render_snmp(w, router)
    return w.render()


def _render_system(w: _Writer, router: RouterPlan, names, rng) -> None:
    w.open("system")
    w.stmt("host-name {}".format(router.hostname))
    if router.domain_name:
        w.stmt("domain-name {}".format(router.domain_name))
    if router.enable_secret:
        w.open("root-authentication")
        w.stmt('encrypted-password "{}"'.format(router.enable_secret))
        w.close()
    if router.usernames:
        w.open("login")
        if router.banner:
            w.stmt('message "{}"'.format(router.banner.replace("\n", " / ")))
        for user, password in router.usernames:
            w.open("user {}".format(user))
            w.stmt("class super-user")
            w.open("authentication")
            w.stmt('encrypted-password "{}"'.format(password))
            w.close()
            w.close()
        w.close()
    w.open("services")
    w.stmt("ssh")
    w.stmt("telnet")
    w.close()
    if router.logging_hosts:
        w.open("syslog")
        for host in router.logging_hosts:
            w.open("host {}".format(int_to_ip(host)))
            w.stmt("any notice")
            w.close()
        w.close()
    if router.ntp_servers:
        w.open("ntp")
        for server in router.ntp_servers:
            w.stmt("server {}".format(int_to_ip(server)))
        w.close()
    w.close()


def _render_interfaces(w: _Writer, router: RouterPlan, spec, rng) -> None:
    # Group plan interfaces by JunOS ifd.
    grouped = {}
    for interface in router.interfaces:
        ifd, unit = junos_interface_name(interface.name)
        grouped.setdefault(ifd, []).append((unit, interface))
    w.open("interfaces")
    for ifd in sorted(grouped):
        w.open(ifd)
        units = sorted(grouped[ifd], key=lambda pair: pair[0])
        if any(unit != 0 for unit, _ in units):
            w.stmt("vlan-tagging")
        for unit, interface in units:
            if interface.description:
                w.stmt('description "{}"'.format(interface.description))
            w.open("unit {}".format(unit))
            if unit != 0:
                w.stmt("vlan-id {}".format(unit))
            if interface.address is not None:
                w.open("family inet")
                w.stmt(
                    "address {}/{}".format(
                        int_to_ip(interface.address), interface.prefix_len
                    )
                )
                w.close()
            w.close()
        w.close()
    w.close()


def _render_routing_options(w: _Writer, router: RouterPlan) -> None:
    has_statics = bool(router.static_routes)
    has_bgp = router.bgp is not None
    if not (has_statics or has_bgp):
        return
    w.open("routing-options")
    if has_statics:
        w.open("static")
        for route in router.static_routes:
            target = (
                "discard" if route.next_hop == 0 else "next-hop " + int_to_ip(route.next_hop)
            )
            w.stmt(
                "route {}/{} {}".format(int_to_ip(route.prefix), route.prefix_len, target)
            )
        w.close()
    if has_bgp:
        if router.bgp.router_id is not None:
            w.stmt("router-id {}".format(int_to_ip(router.bgp.router_id)))
        w.stmt("autonomous-system {}".format(router.bgp.asn))
    w.close()


def _interface_area(router: RouterPlan, interface) -> Optional[str]:
    igp = router.igp
    if igp is None or interface.address is None:
        return None
    for base, wildcard, area in igp.networks:
        if wildcard is None:
            continue
        mask = (~wildcard) & 0xFFFFFFFF
        if (interface.address & mask) == (base & mask):
            return str(area)
    return None


def _render_protocols(w: _Writer, router: RouterPlan) -> None:
    igp = router.igp
    bgp = router.bgp
    if igp is None and bgp is None:
        return
    w.open("protocols")
    if igp is not None and igp.protocol == "ospf" and igp.networks:
        w.open("ospf")
        by_area = {}
        for interface in router.interfaces:
            area = _interface_area(router, interface)
            if area is None:
                continue
            ifd, unit = junos_interface_name(interface.name)
            by_area.setdefault(area, []).append("{}.{}".format(ifd, unit))
        for area in sorted(by_area):
            w.open("area 0.0.0.{}".format(area))
            for ifl in by_area[area]:
                entry = "interface {}".format(ifl)
                if ifl.split(".")[0] in {n.split(".")[0] for n in igp.passive_interfaces}:
                    w.open(entry)
                    w.stmt("passive")
                    w.close()
                else:
                    w.stmt(entry)
            w.close()
        for target in igp.redistribute:
            w.stmt("export redistribute-{}".format(target))
        w.close()
    elif igp is not None and igp.networks:
        # RIP (EIGRP plans are rendered as RIP-style groups too: the
        # vendor translation has no EIGRP equivalent).
        w.open("rip")
        w.open("group internal-rip")
        for interface in router.interfaces:
            if interface.address is None:
                continue
            ifd, unit = junos_interface_name(interface.name)
            w.stmt("neighbor {}.{}".format(ifd, unit))
        w.close()
        w.close()
    if bgp is not None:
        w.open("bgp")
        external = [n for n in bgp.neighbors if n.ebgp]
        internal = [n for n in bgp.neighbors if not n.ebgp]
        for index, neighbor in enumerate(external):
            w.open("group ext-{}".format(index))
            w.stmt("type external")
            w.stmt("peer-as {}".format(neighbor.remote_as))
            w.open("neighbor {}".format(int_to_ip(neighbor.address)))
            if neighbor.route_map_in:
                w.stmt("import {}".format(neighbor.route_map_in))
            if neighbor.route_map_out:
                w.stmt("export {}".format(neighbor.route_map_out))
            if neighbor.password:
                w.stmt('authentication-key "{}"'.format(neighbor.password))
            w.close()
            w.close()
        if internal:
            w.open("group internal-peers")
            w.stmt("type internal")
            for neighbor in internal:
                w.stmt("neighbor {}".format(int_to_ip(neighbor.address)))
            w.close()
        w.close()
    w.close()


def _policy_object_names(router: RouterPlan):
    """Map IOS numbered references to JunOS object names."""
    aspath = {str(e.number): "aspath-{}".format(e.number) for e in router.aspath_acls}
    community = {
        str(e.number): "comm-{}".format(e.number) for e in router.community_lists
    }
    acl = {str(e.number): "pfx-{}".format(e.number) for e in router.access_lists}
    return aspath, community, acl


def _render_policy_options(w: _Writer, router: RouterPlan) -> None:
    if not (router.route_maps or router.aspath_acls or router.community_lists
            or router.prefix_lists):
        return
    aspath_names, community_names, acl_names = _policy_object_names(router)
    w.open("policy-options")

    for entry in router.prefix_lists:
        w.open("prefix-list {}".format(entry.name))
        w.stmt("{}/{}".format(int_to_ip(entry.prefix), entry.prefix_len))
        w.close()

    grouped = {}
    for clause in router.route_maps:
        grouped.setdefault(clause.name, []).append(clause)
    for name in grouped:
        w.open("policy-statement {}".format(name))
        for clause in grouped[name]:
            w.open("term t{}".format(clause.sequence))
            froms = []
            for match in clause.matches:
                words = match.split()
                if words[0] == "as-path" and words[1] in aspath_names:
                    froms.append("as-path {}".format(aspath_names[words[1]]))
                elif words[0] == "community" and words[1] in community_names:
                    froms.append("community {}".format(community_names[words[1]]))
                elif words[:2] == ["ip", "address"] and words[2] in acl_names:
                    froms.append("prefix-list {}".format(acl_names[words[2]]))
            if froms:
                w.open("from")
                for item in froms:
                    w.stmt(item)
                w.close()
            w.open("then")
            for action in clause.sets:
                words = action.split()
                if words[0] == "local-preference":
                    w.stmt("local-preference {}".format(words[1]))
                elif words[0] == "community":
                    mode = "add" if "additive" in words else "set"
                    values = [t for t in words[1:] if ":" in t]
                    for value in values:
                        w.stmt("community {} [ {} ]".format(mode, value))
                elif words[:2] == ["as-path", "prepend"]:
                    w.stmt('as-path-prepend "{}"'.format(" ".join(words[2:])))
            w.stmt("reject" if clause.action == "deny" else "accept")
            w.close()
            w.close()
        w.close()

    for entry in router.aspath_acls:
        w.stmt(
            'as-path {} "{}"'.format(
                aspath_names[str(entry.number)], _strip_underscores(entry.regex)
            )
        )
    for entry in router.community_lists:
        name = community_names[str(entry.number)]
        if entry.expanded:
            w.stmt(
                'community {} members "{}"'.format(
                    name, _strip_underscores(entry.body)
                )
            )
        else:
            w.stmt("community {} members [ {} ]".format(name, entry.body))

    # IOS extended ACLs referenced by export maps become prefix-lists of
    # their source prefixes.
    rendered_acls = set()
    for entry in router.access_lists:
        name = acl_names[str(entry.number)]
        if name in rendered_acls:
            continue
        prefixes = []
        for acl in router.access_lists:
            if acl.number != entry.number:
                continue
            words = acl.body.split()
            if len(words) >= 3 and words[0] == "ip" and words[1][0].isdigit():
                from repro.netutil import ip_to_int, is_ipv4

                if is_ipv4(words[1]) and is_ipv4(words[2]):
                    wildcard = ip_to_int(words[2])
                    length = mask_to_len(wildcard ^ 0xFFFFFFFF)
                    if length is not None:
                        prefixes.append("{}/{}".format(words[1], length))
        if prefixes:
            rendered_acls.add(name)
            w.open("prefix-list {}".format(name))
            for prefix in prefixes:
                w.stmt(prefix)
            w.close()
    w.close()


def _render_firewall(w: _Writer, router: RouterPlan) -> None:
    entries = [e for e in router.access_lists if not e.body.startswith("ip ")]
    if not entries:
        return
    w.open("firewall")
    w.open("family inet")
    w.open("filter protect-{}".format(entries[0].number))
    for index, entry in enumerate(entries[:20]):
        w.open("term t{}".format(index))
        w.open("then")
        w.stmt("accept" if entry.action == "permit" else "discard")
        w.close()
        w.close()
    w.close()
    w.close()
    w.close()


def _render_snmp(w: _Writer, router: RouterPlan) -> None:
    if not router.snmp_community:
        return
    w.open("snmp")
    if router.snmp_location:
        w.stmt('location "{}"'.format(router.snmp_location))
    if router.snmp_contact:
        w.stmt('contact "{}"'.format(router.snmp_contact))
    w.open("community {}".format(router.snmp_community))
    w.stmt("authorization read-only")
    w.close()
    w.close()
