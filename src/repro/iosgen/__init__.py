"""Synthetic router-configuration dataset generator.

This package substitutes for the paper's proprietary input: 7655 real
router configs from 31 backbone and enterprise networks, 4.3 million lines,
200+ IOS versions.  It generates *networks* (topology, addressing, routing
design, policies) and renders them to Cisco-IOS-style config text across a
family of syntax dialects, so that every anonymizer code path — comments,
banners, secrets, ASN regexps, community lists, dialer strings — is
exercised with the same structure the paper describes.

Entry points::

    from repro.iosgen import NetworkSpec, generate_network, paper_dataset

    net = generate_network(NetworkSpec(name="foonet", kind="enterprise", seed=7))
    net.configs            # {router_name: config_text}
    dataset = paper_dataset(seed=42, scale=0.05)   # the 31-network corpus
"""

from repro.iosgen.spec import NetworkSpec
from repro.iosgen.generate import GeneratedNetwork, generate_network
from repro.iosgen.dataset import paper_dataset, dataset_statistics
from repro.iosgen.corpus import (
    build_reference_corpus,
    build_passlist_from_corpus,
    scraped_passlist,
)

__all__ = [
    "NetworkSpec",
    "GeneratedNetwork",
    "generate_network",
    "paper_dataset",
    "dataset_statistics",
    "build_reference_corpus",
    "build_passlist_from_corpus",
    "scraped_passlist",
]
