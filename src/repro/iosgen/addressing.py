"""Hierarchical address allocation for generated networks.

Carves the network's public block (plus RFC1918 space for enterprises)
into regions — loopbacks, point-to-point infrastructure, LANs — and hands
out subnets deterministically.  Every allocation is recorded as a
:class:`~repro.iosgen.plan.SubnetRecord` so the dataset's subnet-size
histogram (validation suite 1, fingerprint attack E11) is known ground
truth.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.iosgen.plan import SubnetRecord
from repro.iosgen.spec import NetworkSpec
from repro.netutil import mask_for_len


class BlockCarver:
    """Sequentially carve variable-length subnets out of one block."""

    def __init__(self, base: int, prefix_len: int):
        self.base = base
        self.prefix_len = prefix_len
        self.limit = base + (1 << (32 - prefix_len))
        self.cursor = base

    def carve(self, subnet_len: int) -> Tuple[int, int]:
        """Allocate the next aligned subnet of the given length."""
        size = 1 << (32 - subnet_len)
        aligned = (self.cursor + size - 1) & ~(size - 1) & 0xFFFFFFFF
        if aligned + size > self.limit:
            raise RuntimeError(
                "address block {}/{} exhausted".format(self.base, self.prefix_len)
            )
        self.cursor = aligned + size
        return aligned, subnet_len

    @property
    def remaining(self) -> int:
        return self.limit - self.cursor


class AddressPlanner:
    """Allocates loopbacks, p2p links, LANs and peering demarcs."""

    #: LAN subnet sizes with weights (gives the histogram its shape).
    LAN_SIZES = [(24, 5), (25, 3), (26, 3), (27, 2), (28, 2), (23, 1)]

    def __init__(self, spec: NetworkSpec, rng: random.Random):
        self.spec = spec
        self.rng = rng
        base, length = spec.public_block
        self.public = BlockCarver(base, length)
        # Regions inside the public block: loopbacks then infrastructure.
        # Sized generously relative to the block so even the largest
        # generated networks cannot exhaust them.
        self.loopbacks = BlockCarver(*self.public.carve(min(length + 6, 24)))
        self.p2p = BlockCarver(*self.public.carve(min(length + 4, 20)))
        if spec.use_rfc1918:
            # All of 10/8: RFC1918 space legitimately overlaps between
            # networks, so every enterprise gets the full block.
            self.lan = BlockCarver(0x0A000000, 8)
        else:
            self.lan = self.public
        # Peering demarcs live in "neighbor" space: a distinct block that
        # stands in for the peer's addresses.
        peer_base = 0x90000000 + ((spec.seed * 2654435761) & 0x3FFF) * 0x10000
        self.peer = BlockCarver(peer_base, 16)
        self.records: List[SubnetRecord] = []
        self._customer_records: List[SubnetRecord] = []

    def loopback(self) -> SubnetRecord:
        addr, _ = self.loopbacks.carve(32)
        record = SubnetRecord(addr, 32, "loopback")
        self.records.append(record)
        return record

    def p2p_link(self) -> SubnetRecord:
        addr, _ = self.p2p.carve(30)
        record = SubnetRecord(addr, 30, "p2p")
        self.records.append(record)
        return record

    def lan_subnet(self) -> SubnetRecord:
        sizes = [s for s, w in self.LAN_SIZES for _ in range(w)]
        length = self.rng.choice(sizes)
        addr, _ = self.lan.carve(length)
        record = SubnetRecord(addr, length, "lan")
        self.records.append(record)
        return record

    def peer_link(self) -> SubnetRecord:
        addr, _ = self.peer.carve(30)
        record = SubnetRecord(addr, 30, "peer")
        self.records.append(record)
        return record

    def customer_route(self) -> SubnetRecord:
        """A customer aggregate (for static-route bursts on borders).

        When the block runs dry (possible at extreme scales) an existing
        customer record is reused — different routers legitimately carry
        statics for the same customer prefix.
        """
        length = self.rng.choice([24, 24, 24, 24, 23, 23, 22, 21, 20])
        base = self.lan if self.lan is not self.public else self.public
        try:
            addr, _ = base.carve(length)
        except RuntimeError:
            if not self._customer_records:
                raise
            return self.rng.choice(self._customer_records)
        record = SubnetRecord(addr, length, "customer")
        self.records.append(record)
        self._customer_records.append(record)
        return record

    @staticmethod
    def hosts(record: SubnetRecord) -> Iterator[int]:
        """Usable host addresses of a subnet (network/broadcast skipped)."""
        if record.prefix_len >= 31:
            yield record.address
            return
        size = 1 << (32 - record.prefix_len)
        for offset in range(1, size - 1):
            yield record.address + offset

    @staticmethod
    def mask(record: SubnetRecord) -> int:
        return mask_for_len(record.prefix_len)
