"""Render a RouterPlan into Arista-EOS-style configuration text.

EOS is IOS-shaped — stanzas, ``!`` separators, the same BGP/IGP grammar —
but drifts exactly where the recognizer plugins earn their keep:

* CIDR interface addressing (``ip address 10.1.2.3/24``, rule R23) and
  dual-stack ``ipv6 address`` lines whose addresses are derived
  deterministically from the v4 plan under ``2001:db8::/32`` (the v4
  bits ride in bits 95..64, so two v4 addresses sharing a *k*-bit prefix
  yield v6 addresses sharing a ``32+k``-bit prefix — real prefix
  structure for the 128-bit trie to preserve).
* ``secret sha512 <blob>`` hashed credentials (rule E1).
* ``match as-range <lo>-<hi>`` route-map clauses (rule E2).
* eAPI certificate profiles (``protocol https certificate .. key ..``,
  rule E3).
* SSH public keys (``username .. sshkey ssh-rsa ..``, rule B2), SNMPv3
  users (rule B3), and inline PEM certificate blocks (rule B1).

``NetworkSpec.eos_fraction`` selects how many routers render through
this module; zero draws nothing from the RNG, so pre-EOS specs render
byte-identically.
"""

from __future__ import annotations

import random
from typing import List

from repro.iosgen.dialects import eos_version_strings
from repro.iosgen.plan import RouterPlan
from repro.iosgen.spec import NetworkSpec
from repro.netutil import int_to_ip, int_to_ip6

#: IPv6 documentation prefix the synthetic dual-stack plan lives under.
_V6_BASE = 0x20010DB8 << 96

_B64_ALPHABET = (
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
)


def v6_for_v4(address: int, host: int = 0) -> int:
    """The deterministic IPv6 counterpart of a planned v4 address."""
    return _V6_BASE | (address << 64) | host


def _blob(rng: random.Random, length: int) -> str:
    return "".join(rng.choice(_B64_ALPHABET) for _ in range(length))


def _sha512_blob(rng: random.Random) -> str:
    return "$6${}${}".format(_blob(rng, 8), _blob(rng, 43))


def render_eos_config(
    router: RouterPlan,
    names,
    spec: NetworkSpec,
    rng: random.Random,
) -> str:
    lines: List[str] = []
    add = lines.append

    add("! device: {} (EOS-{})".format(router.hostname, "vEOS"))
    add("!")
    add("! boot system flash:/vEOS-lab.swi")
    add("!")
    add("transceiver qsfp default-mode 4x10G")
    add("!")
    add("hostname {}".format(router.hostname))
    if router.domain_name:
        add("ip domain-name {}".format(router.domain_name))
    for server in router.name_servers:
        add("ip name-server {}".format(int_to_ip(server)))
    add("!")
    add("spanning-tree mode mstp")
    add("!")
    if router.enable_secret:
        add("enable secret sha512 {}".format(_sha512_blob(rng)))
    for user, _password in router.usernames:
        add(
            "username {} privilege 15 secret sha512 {}".format(
                user, _sha512_blob(rng)
            )
        )
        if rng.random() < 0.5:
            add(
                "username {} sshkey ssh-rsa {} {}@{}".format(
                    user,
                    _blob(rng, 64),
                    user,
                    router.domain_name or "example.net",
                )
            )
    add("!")

    if router.snmp_community:
        add("snmp-server community {} ro".format(router.snmp_community))
        add(
            "snmp-server user {} {} v3 auth sha {} priv aes 128 {}".format(
                names.usernames()[0],
                "netops",
                _blob(rng, 16),
                _blob(rng, 16),
            )
        )
        for host in router.logging_hosts:
            add(
                "snmp-server host {} {}".format(
                    int_to_ip(host), router.snmp_community
                )
            )
    add("!")

    if router.banner:
        add("banner motd")
        lines.extend(router.banner.splitlines())
        add("EOF")
        add("!")

    _render_interfaces(router, add)
    _render_igp(router, add)
    _render_bgp(router, add)
    _render_statics(router, add)
    _render_route_maps(router, rng, add)

    add("management api http-commands")
    add(
        "   protocol https certificate {} key {}".format(
            "{}-api.crt".format(router.hostname),
            "{}-api.key".format(router.hostname),
        )
    )
    add("   no shutdown")
    add("!")

    if rng.random() < 0.5:
        _render_pem_block(rng, add)

    for server in router.ntp_servers:
        add("ntp server {}".format(int_to_ip(server)))
    for host in router.logging_hosts:
        add("logging host {}".format(int_to_ip(host)))
    add("!")
    add("end")
    return "\n".join(lines) + "\n"


def _render_interfaces(router: RouterPlan, add) -> None:
    for interface in router.interfaces:
        add("interface {}".format(interface.name))
        if interface.description:
            add("   description {}".format(interface.description))
        if interface.address is not None:
            add(
                "   ip address {}/{}".format(
                    int_to_ip(interface.address), interface.prefix_len
                )
            )
            add(
                "   ipv6 address {}/{}".format(
                    int_to_ip6(v6_for_v4(interface.address)),
                    32 + interface.prefix_len,
                )
            )
        else:
            add("   no ip address")
        if (
            router.igp is not None
            and router.igp.protocol == "isis"
            and interface.address is not None
        ):
            add("   isis enable CORE")
        if interface.shutdown:
            add("   shutdown")
        add("!")


def _render_igp(router: RouterPlan, add) -> None:
    igp = router.igp
    if igp is None or not igp.networks:
        return
    if igp.protocol == "isis":
        add("router isis CORE")
        loopback = router.loopback_address() or 0
        padded = "{:03d}{:03d}{:03d}{:03d}".format(
            (loopback >> 24) & 0xFF,
            (loopback >> 16) & 0xFF,
            (loopback >> 8) & 0xFF,
            loopback & 0xFF,
        )
        add(
            "   net 49.0001.{}.{}.{}.00".format(
                padded[0:4], padded[4:8], padded[8:12]
            )
        )
        add("   is-type level-2")
        add("!")
        return
    if igp.protocol == "ospf":
        add("router ospf {}".format(igp.process_id))
        for base, wildcard, area in igp.networks:
            add(
                "   network {} {} area {}".format(
                    int_to_ip(base), int_to_ip(wildcard or 0), area
                )
            )
    elif igp.protocol == "rip":
        add("router rip")
        for base, _, _ in igp.networks:
            add("   network {}".format(int_to_ip(base)))
    else:
        add("router eigrp {}".format(igp.process_id))
        for base, _, _ in igp.networks:
            add("   network {}".format(int_to_ip(base)))
    add("!")


def _render_bgp(router: RouterPlan, add) -> None:
    bgp = router.bgp
    if bgp is None:
        return
    add("router bgp {}".format(bgp.asn))
    if bgp.router_id is not None:
        add("   router-id {}".format(int_to_ip(bgp.router_id)))
    for neighbor in bgp.neighbors:
        peer = int_to_ip(neighbor.address)
        add("   neighbor {} remote-as {}".format(peer, neighbor.remote_as))
        if neighbor.password:
            add("   neighbor {} password {}".format(peer, neighbor.password))
        if neighbor.route_map_in:
            add(
                "   neighbor {} route-map {} in".format(
                    peer, neighbor.route_map_in
                )
            )
        if neighbor.route_map_out:
            add(
                "   neighbor {} route-map {} out".format(
                    peer, neighbor.route_map_out
                )
            )
    for base, length in bgp.networks:
        add("   network {}/{}".format(int_to_ip(base), length))
    add("!")


def _render_statics(router: RouterPlan, add) -> None:
    if not router.static_routes:
        return
    for route in router.static_routes:
        target = "Null0" if route.next_hop == 0 else int_to_ip(route.next_hop)
        add(
            "ip route {}/{} {}".format(
                int_to_ip(route.prefix), route.prefix_len, target
            )
        )
        if route.next_hop != 0:
            add(
                "ipv6 route {}/{} {}".format(
                    int_to_ip6(v6_for_v4(route.prefix)),
                    32 + route.prefix_len,
                    int_to_ip6(v6_for_v4(route.next_hop)),
                )
            )
    add("!")


def _render_route_maps(router: RouterPlan, rng: random.Random, add) -> None:
    for clause in router.route_maps:
        add(
            "route-map {} {} {}".format(
                clause.name, clause.action, clause.sequence
            )
        )
        for match in clause.matches:
            add("   match {}".format(match))
        for action in clause.sets:
            add("   set {}".format(action))
    if router.bgp is not None and router.bgp.neighbors:
        low = min(n.remote_as for n in router.bgp.neighbors)
        high = max(low + rng.randint(0, 50), low)
        add("route-map AS-RANGE-FILTER deny 10")
        add("   match as-range {}-{}".format(low, high))
        add("route-map AS-RANGE-FILTER permit 20")
    if router.route_maps or router.bgp is not None:
        add("!")


def _render_pem_block(rng: random.Random, add) -> None:
    add("management security")
    add("   ssl certificate inline")
    add("-----BEGIN CERTIFICATE-----")
    for _ in range(rng.randint(3, 6)):
        add(_blob(rng, 64))
    add(_blob(rng, 32) + "==")
    add("-----END CERTIFICATE-----")
    add("!")


def pick_eos_version(rng: random.Random) -> str:
    """Draw one synthetic EOS version string."""
    return rng.choice(eos_version_strings())
