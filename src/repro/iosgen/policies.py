"""Routing-policy object generation: route-maps, ACLs, regexp lists.

Generates the policy shapes the paper's Section 4.4/4.5 statistics talk
about: alternation AS-path regexps (10 of 31 networks), digit-range
regexps over public ASNs (2/31) and private ASNs (3/31), community-list
regexps (5/31) with ranges (2/31).  Which shapes appear is controlled by
:class:`~repro.iosgen.spec.NetworkSpec` flags so the dataset reproduces the
paper's prevalence counts exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.iosgen.plan import (
    AccessListEntry,
    AsPathAclEntry,
    CommunityListEntry,
    RouteMapClause,
)
from repro.iosgen.spec import NetworkSpec
from repro.netutil import int_to_ip

#: Well-known public ASNs of the paper's era, used as "other networks".
FAMOUS_ASNS = [701, 1239, 3356, 7018, 209, 3561, 2914, 6453, 1299, 6461, 3549, 2828]


@dataclass
class PolicyBundle:
    """All the policy objects one border router needs for one peer."""

    route_maps: List[RouteMapClause] = field(default_factory=list)
    aspath_acls: List[AsPathAclEntry] = field(default_factory=list)
    community_lists: List[CommunityListEntry] = field(default_factory=list)
    access_lists: List[AccessListEntry] = field(default_factory=list)


class PolicyFactory:
    """Stateful per-network policy generator (keeps list numbers unique)."""

    def __init__(self, spec: NetworkSpec, rng: random.Random):
        self.spec = spec
        self.rng = rng
        self.next_aspath_acl = 50
        self.next_std_comm_list = 1
        self.next_exp_comm_list = 100
        self.next_ext_acl = 140
        self.next_std_acl = 10
        self._alternation_emitted = False
        self._public_range_emitted = False
        self._private_range_emitted = False
        self._community_regex_emitted = False
        self._community_range_emitted = False

    # -- regexp builders --------------------------------------------------

    def _aspath_regex(self, peer_asn: int) -> str:
        """One AS-path regexp honoring the spec's shape flags."""
        if self.spec.use_aspath_range_regexps and not self._public_range_emitted:
            self._public_range_emitted = True
            base = peer_asn - (peer_asn % 10)
            low, high = 1, min(9, 5 + self.rng.randrange(0, 5))
            return "_{}[{}-{}]_".format(base // 10, low, high)
        if self.spec.use_private_range_regexps and not self._private_range_emitted:
            self._private_range_emitted = True
            return "_6451[2-9]_"
        if self.spec.use_alternation_regexps:
            self._alternation_emitted = True
            others = self.rng.sample(FAMOUS_ASNS, 2)
            asns = [peer_asn] + [a for a in others if a != peer_asn][:2]
            return "(" + "|".join("_{}_".format(a) for a in asns) + ")"
        return "_{}_".format(peer_asn)

    def _community_regex(self, peer_asn: int) -> str:
        if self.spec.use_community_range_regexps and not self._community_range_emitted:
            self._community_range_emitted = True
            return "_{}:7[1-5].._".format(peer_asn)
        self._community_regex_emitted = True
        values = sorted(self.rng.sample(range(100, 9999), 2))
        return "(_{}:{}_|_{}:{}_)".format(peer_asn, values[0], peer_asn, values[1])

    # -- public API --------------------------------------------------------

    def peer_policies(
        self,
        peer_name: str,
        peer_asn: int,
        local_asn: int,
        advertised: List[tuple],
    ) -> PolicyBundle:
        """Build the import/export pair for one EBGP peer.

        *advertised* is a list of (address, prefix_len) this network
        announces; the export route-map matches them with an ACL.
        """
        bundle = PolicyBundle()
        import_map = "{}-import".format(peer_name.upper())
        export_map = "{}-export".format(peer_name.upper())

        aspath_num = self.next_aspath_acl
        self.next_aspath_acl += 1
        bundle.aspath_acls.append(
            AsPathAclEntry(aspath_num, "permit", self._aspath_regex(peer_asn))
        )

        matches = ["as-path {}".format(aspath_num)]
        if self.spec.use_community_regexps or self.spec.use_community_range_regexps:
            comm_num = self.next_exp_comm_list
            self.next_exp_comm_list += 1
            bundle.community_lists.append(
                CommunityListEntry(
                    comm_num, "permit", self._community_regex(peer_asn), expanded=True
                )
            )
            matches.append("community {}".format(comm_num))
        else:
            comm_num = self.next_std_comm_list
            self.next_std_comm_list += 1
            values = "{}:{}".format(peer_asn, self.rng.randrange(100, 9999))
            bundle.community_lists.append(
                CommunityListEntry(comm_num, "permit", values, expanded=False)
            )
            matches.append("community {}".format(comm_num))

        bundle.route_maps.append(
            RouteMapClause(import_map, "deny", 10, matches=matches)
        )
        import_sets = [
            "local-preference {}".format(self.rng.choice([80, 90, 100, 120, 200]))
        ]
        if self.rng.random() < 0.5:
            import_sets.append(
                "community {}:{} additive".format(local_asn, self.rng.randrange(1, 999))
            )
        bundle.route_maps.append(
            RouteMapClause(import_map, "permit", 20, sets=import_sets)
        )

        acl_num = self.next_ext_acl
        self.next_ext_acl += 1
        for address, prefix_len in advertised[:4]:
            wildcard = (0xFFFFFFFF >> prefix_len) if prefix_len else 0xFFFFFFFF
            bundle.access_lists.append(
                AccessListEntry(
                    acl_num,
                    "permit",
                    "ip {} {} any".format(int_to_ip(address), int_to_ip(wildcard)),
                )
            )
        export_sets = ["community {}:{}".format(peer_asn, self.rng.randrange(100, 9999))]
        if self.rng.random() < 0.3:
            export_sets.append("as-path prepend {} {}".format(local_asn, local_asn))
        bundle.route_maps.append(
            RouteMapClause(
                export_map,
                "permit",
                10,
                matches=["ip address {}".format(acl_num)],
                sets=export_sets,
            )
        )
        return bundle

    def security_acl(self, lan_subnets: List[tuple]) -> List[AccessListEntry]:
        """An extended ACL burst protecting local LANs (border routers)."""
        number = self.next_ext_acl
        self.next_ext_acl += 1
        entries: List[AccessListEntry] = []
        low, high = self.spec.acl_burst
        count = self.rng.randrange(low, high + 1)
        services = [
            ("tcp", "eq telnet"),
            ("tcp", "eq 22"),
            ("tcp", "eq smtp"),
            ("tcp", "eq www"),
            ("udp", "eq snmp"),
            ("udp", "eq ntp"),
            ("tcp", "eq domain"),
            ("icmp", "echo"),
        ]
        for index in range(count):
            proto, port = self.rng.choice(services)
            action = "permit" if self.rng.random() < 0.6 else "deny"
            if lan_subnets and self.rng.random() < 0.7:
                address, prefix_len = self.rng.choice(lan_subnets)
                wildcard = (0xFFFFFFFF >> prefix_len) if prefix_len else 0xFFFFFFFF
                body = "{} any {} {} {}".format(
                    proto, int_to_ip(address), int_to_ip(wildcard), port
                )
            else:
                body = "{} any any {}".format(proto, port)
            entries.append(AccessListEntry(number, action, body))
        entries.append(AccessListEntry(number, "deny", "ip any any log"))
        return entries

    def compartment_acl(self, lan_subnets: List[tuple]) -> List[AccessListEntry]:
        """Interior filtering for compartmentalized networks (Section 6.3):
        blocks probe traffic (traceroute/ping) between compartments."""
        number = self.next_ext_acl
        self.next_ext_acl += 1
        entries = [
            AccessListEntry(number, "deny", "icmp any any echo"),
            AccessListEntry(number, "deny", "icmp any any traceroute"),
            AccessListEntry(number, "deny", "udp any any range 33434 33523"),
        ]
        for address, prefix_len in lan_subnets[:2]:
            wildcard = (0xFFFFFFFF >> prefix_len) if prefix_len else 0xFFFFFFFF
            entries.append(
                AccessListEntry(
                    number,
                    "permit",
                    "ip {} {} any".format(int_to_ip(address), int_to_ip(wildcard)),
                )
            )
        entries.append(AccessListEntry(number, "deny", "ip any any"))
        return entries
