"""Synthetic command-reference corpus and the pass-list web-walker.

The paper built its pass-list by string-scraping the public Cisco IOS
command reference guides: "In theory, most Cisco keywords will appear
somewhere in the guides, and non-keywords used in the guides are so common
they cannot leak information."  We reproduce the *method*: render a corpus
of reference-guide-shaped documents from the keyword inventory, then scrape
the documents (not the inventory) into a :class:`PassList`.

The scraper is exactly the production code path — tests feed it adversarial
documents to check that numbers, punctuation, and single letters never make
it onto the list.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.core.passlist import BASE_KEYWORDS, PassList

_PAGE_TEMPLATE = """\
{title}

Usage Guidelines

To configure this feature, use the {command} command in {mode} mode.
To disable the feature, use the no form of this command.

Syntax Description

{syntax_rows}

Command Default

The command is disabled by default. This command was introduced in a
release before the earliest supported release of this guide.

Examples

The following example shows how the {command} command is entered:

Router(config)# {command} {example_args}

Related Commands

{related}
"""


def build_reference_corpus(seed: int = 0, pages: int = 120) -> Dict[str, str]:
    """Render a corpus of command-reference pages keyed by page name."""
    rng = random.Random(seed)
    keywords = BASE_KEYWORDS.split()
    corpus: Dict[str, str] = {}
    for index in range(pages):
        command_words = rng.sample(keywords, rng.randrange(2, 4))
        command = " ".join(command_words)
        syntax_rows = "\n".join(
            "{:<20} {}".format(word, "Specifies the {} parameter.".format(word))
            for word in rng.sample(keywords, rng.randrange(3, 7))
        )
        related = "\n".join(
            "{:<24} Configures {} behavior.".format(
                " ".join(rng.sample(keywords, 2)), rng.choice(keywords)
            )
            for _ in range(rng.randrange(2, 5))
        )
        page = _PAGE_TEMPLATE.format(
            title=command,
            command=command,
            mode=rng.choice(
                ["global configuration", "interface configuration", "router configuration"]
            ),
            syntax_rows=syntax_rows,
            example_args=" ".join(rng.sample(keywords, rng.randrange(1, 3))),
            related=related,
        )
        corpus["{}-{:03d}".format(command_words[0], index)] = page
    return corpus


def build_passlist_from_corpus(corpus: Dict[str, str]) -> PassList:
    """The web-walker: scrape every document into one pass-list."""
    passlist = PassList()
    for text in corpus.values():
        passlist.update(PassList.from_text(text))
    return passlist


def scraped_passlist(seed: int = 0, pages: int = 400) -> PassList:
    """Convenience: corpus + scrape in one call.

    With enough pages the scraped list converges on the full keyword
    inventory (every keyword appears in some page); tests measure the
    coverage curve.
    """
    return build_passlist_from_corpus(build_reference_corpus(seed, pages))
