"""The paper-calibrated 31-network dataset.

The paper's corpus: 7655 routers across 31 backbone and enterprise
networks, 4.3 M config lines, 200+ IOS versions, with

* config sizes 50–10,000 lines, P25 = 183, P90 = 1123 (Section 2);
* comments averaging 1.5 % of words, P90 = 6 % (Section 4.2);
* digit-range regexps over public ASNs in 2/31 networks, over private ASNs
  in 3/31, alternation regexps in 10/31, community regexps in 5/31 with
  ranges in 2/31 (Sections 4.4–4.5);
* internal compartmentalization in 10/31 networks (Section 6.3).

:func:`paper_dataset` generates 31 specs hitting those *categorical* counts
exactly and the size/comment distributions approximately; ``scale`` shrinks
router counts proportionally so tests stay fast while benchmarks can run
closer to full scale.
"""

from __future__ import annotations

import random
import statistics
from typing import Dict, List, Sequence

from repro.iosgen.generate import GeneratedNetwork, generate_network
from repro.iosgen.spec import NetworkSpec

#: Index sets realizing the paper's categorical counts over the 31 networks.
PUBLIC_RANGE_NETWORKS = frozenset({2, 17})                     # 2 of 31
PRIVATE_RANGE_NETWORKS = frozenset({5, 11, 23})                # 3 of 31
ALTERNATION_NETWORKS = frozenset({0, 1, 3, 4, 8, 12, 16, 20, 24, 28})  # 10 of 31
COMMUNITY_REGEX_NETWORKS = frozenset({1, 7, 14, 21, 27})       # 5 of 31
COMMUNITY_RANGE_NETWORKS = frozenset({7, 21})                  # 2 of those
COMPARTMENTALIZED_NETWORKS = frozenset({3, 6, 9, 12, 15, 18, 21, 24, 27, 30})  # 10 of 31

#: Public ASNs assigned to the networks themselves (backbones get famous-era
#: allocations; enterprises often run private ASNs).
_BACKBONE_ASNS = [7132, 4200, 5511, 3300, 2548, 6079]


def paper_dataset_specs(seed: int = 42, scale: float = 1.0) -> List[NetworkSpec]:
    """The 31 network specifications (not yet generated)."""
    rng = random.Random(seed)
    specs: List[NetworkSpec] = []

    def scaled(value: int, minimum: int = 1) -> int:
        return max(minimum, round(value * scale))

    for index in range(31):
        is_backbone = index < 6
        if is_backbone:
            num_pops = scaled(rng.randrange(20, 44), 2)
            aggs = rng.randrange(2, 4)
            access = rng.randrange(8, 17)
            igp = "isis" if index in (2, 4) else "ospf"
            local_asn = _BACKBONE_ASNS[index % len(_BACKBONE_ASNS)]
            block = ((4 + index * 7) << 24, 8)  # distinct class-A blocks
            comment_density = rng.uniform(0.01, 0.07)
            peers = rng.randrange(3, 7)
            sessions = (1, 4)
            lans = (18, 280)
            statics = (60, 2800)
            prefix_entries = (10, 120)
        else:
            num_pops = scaled(rng.randrange(4, 34), 1)
            aggs = rng.randrange(1, 3)
            access = rng.randrange(5, 12)
            igp = rng.choice(["ospf", "rip", "eigrp", "ospf"])
            local_asn = rng.choice([64512 + index, 65000 + index, 1800 + index * 13])
            block = (
                (0x80000000 | ((index * 37 % 64) << 24) | ((index * 101 % 250) << 16)),
                16,
            )  # distinct class-B blocks
            comment_density = 0.005 + 0.45 * rng.random() ** 3
            peers = rng.randrange(1, 3)
            sessions = (1, 2)
            lans = (12, 120)
            statics = (4, 140)
            prefix_entries = (3, 12)

        specs.append(
            NetworkSpec(
                name="net{:02d}".format(index),
                kind="backbone" if is_backbone else "enterprise",
                seed=seed * 1000 + index,
                num_pops=num_pops,
                aggs_per_pop=aggs,
                access_per_pop=access,
                igp=igp,
                local_asn=local_asn,
                num_ebgp_peers=peers,
                sessions_per_peer=sessions,
                lans_per_access=lans,
                static_burst=statics,
                prefix_list_entries=prefix_entries,
                public_block=block,
                use_rfc1918=not is_backbone,
                comment_density=comment_density,
                banner_probability=rng.uniform(0.4, 1.0),
                use_aspath_range_regexps=index in PUBLIC_RANGE_NETWORKS,
                use_private_range_regexps=index in PRIVATE_RANGE_NETWORKS,
                use_alternation_regexps=index in ALTERNATION_NETWORKS,
                use_community_regexps=index in COMMUNITY_REGEX_NETWORKS,
                use_community_range_regexps=index in COMMUNITY_RANGE_NETWORKS,
                compartmentalized=index in COMPARTMENTALIZED_NETWORKS,
                dialer_backup=(not is_backbone) and rng.random() < 0.4,
                use_confederation=index == 0,
                use_route_reflectors=is_backbone and index in (3, 5),
                use_vrfs=index in (1, 4, 13),
                archaic_policies=index in (2, 19),
                acl_burst=(4, 40) if is_backbone else (2, 12),
            )
        )
    return specs


def paper_dataset(seed: int = 42, scale: float = 1.0) -> List[GeneratedNetwork]:
    """Generate the full 31-network corpus."""
    return [generate_network(spec) for spec in paper_dataset_specs(seed, scale)]


def dataset_statistics(networks: Sequence[GeneratedNetwork]) -> Dict[str, object]:
    """Corpus statistics in the same terms the paper reports."""
    line_counts: List[int] = []
    total_lines = 0
    for network in networks:
        for text in network.configs.values():
            count = len(text.splitlines())
            line_counts.append(count)
            total_lines += count
    line_counts.sort()

    def percentile(data: List[int], fraction: float) -> float:
        if not data:
            return 0.0
        position = (len(data) - 1) * fraction
        low = int(position)
        high = min(low + 1, len(data) - 1)
        return data[low] + (data[high] - data[low]) * (position - low)

    return {
        "networks": len(networks),
        "routers": len(line_counts),
        "total_lines": total_lines,
        "min_lines": line_counts[0] if line_counts else 0,
        "max_lines": line_counts[-1] if line_counts else 0,
        "p25_lines": percentile(line_counts, 0.25),
        "median_lines": percentile(line_counts, 0.50),
        "p90_lines": percentile(line_counts, 0.90),
        "mean_lines": statistics.mean(line_counts) if line_counts else 0.0,
        "public_range_regexp_networks": sum(
            1 for n in networks if n.spec.use_aspath_range_regexps
        ),
        "private_range_regexp_networks": sum(
            1 for n in networks if n.spec.use_private_range_regexps
        ),
        "alternation_regexp_networks": sum(
            1 for n in networks if n.spec.use_alternation_regexps
        ),
        "community_regexp_networks": sum(
            1
            for n in networks
            if n.spec.use_community_regexps or n.spec.use_community_range_regexps
        ),
        "community_range_regexp_networks": sum(
            1 for n in networks if n.spec.use_community_range_regexps
        ),
        "compartmentalized_networks": sum(
            1 for n in networks if n.spec.compartmentalized
        ),
    }
