"""IOS version dialects: the syntax drift the anonymizer must tolerate.

The paper's dataset spans "over 200 different IOS versions" with "small,
but syntactically significant changes … between versions".  We reproduce
that pressure: a family of version strings is generated combinatorially
(majors x trains x builds easily exceeds 200), and each version string
deterministically selects a :class:`Dialect` — a bundle of syntax knobs the
renderer honors (interface naming, service-line spellings, BGP boilerplate,
banner delimiters, and so on).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Tuple


def all_version_strings() -> List[str]:
    """The full family of synthetic IOS version strings (> 200)."""
    versions = []
    for major, minor in [(11, 1), (11, 2), (11, 3), (12, 0), (12, 1), (12, 2), (12, 3), (12, 4)]:
        for build in (3, 5, 7, 9, 11, 13, 16, 18, 21, 24, 26):
            for train in ("", "T", "S", "E"):
                versions.append("{}.{}({}){}".format(major, minor, build, train))
    return versions


def eos_version_strings() -> List[str]:
    """Synthetic Arista EOS version strings (``4.<minor>.<patch>[FM]``).

    EOS routers rendered by :mod:`repro.iosgen.eos_render` draw from this
    family; the strings are disjoint from the IOS family so a version
    string alone identifies the dialect.
    """
    versions = []
    for minor in (20, 21, 22, 24, 26, 28, 30):
        for patch in (1, 3, 5, 7):
            for train in ("F", "M"):
                versions.append("4.{}.{}{}".format(minor, patch, train))
    return versions


@dataclass(frozen=True)
class Dialect:
    """Syntax knobs keyed off one IOS version string."""

    version: str
    #: interface naming era: 0 = Ethernet0/Serial0, 1 = FastEthernet0/0,
    #: 2 = GigabitEthernet0/1 available
    interface_era: int
    uses_ip_classless: bool
    uses_directed_broadcast: bool        # `no ip directed-broadcast` lines
    timestamps_msec: bool                # `service timestamps ... msec`
    bgp_log_neighbor_changes: bool
    bgp_no_synchronization: bool         # newer IOS drops synchronization
    banner_delimiter: str
    password_encryption: bool            # `service password-encryption`
    subnet_zero: bool                    # `ip subnet-zero`
    vty_count: Tuple[int, int]           # `line vty 0 4` vs `0 15`
    community_new_format: bool           # `ip bgp-community new-format`

    @property
    def major_minor(self) -> Tuple[int, int]:
        major, _, rest = self.version.partition(".")
        minor = rest.split("(")[0]
        return int(major), int(minor)


def dialect_for_version(version: str) -> Dialect:
    """Deterministically derive the syntax bundle for a version string."""
    digest = hashlib.sha256(version.encode()).digest()
    major, _, rest = version.partition(".")
    major = int(major)
    minor = int(rest.split("(")[0])
    modern = (major, minor) >= (12, 0)
    very_modern = (major, minor) >= (12, 2)
    return Dialect(
        version=version,
        interface_era=0 if not modern else (2 if very_modern and digest[0] & 1 else 1),
        uses_ip_classless=modern or bool(digest[1] & 1),
        uses_directed_broadcast=not very_modern,
        timestamps_msec=bool(digest[2] & 1),
        bgp_log_neighbor_changes=modern and bool(digest[3] & 1),
        bgp_no_synchronization=very_modern,
        banner_delimiter="^C" if digest[4] & 1 else "#",
        password_encryption=bool(digest[5] & 1),
        subnet_zero=modern,
        vty_count=(0, 4) if digest[6] & 1 else (0, 15),
        community_new_format=very_modern and bool(digest[7] & 1),
    )


def interface_names(dialect: Dialect) -> Tuple[str, str, str]:
    """(lan_interface_base, wan_interface_base, fast_lan_base) per era."""
    if dialect.interface_era == 0:
        return "Ethernet", "Serial", "Ethernet"
    if dialect.interface_era == 1:
        return "FastEthernet", "Serial", "FastEthernet"
    return "GigabitEthernet", "POS", "GigabitEthernet"
