"""Intermediate network plan model: what the generator decides and the
renderer consumes.

A *plan* is the generator's ground truth about a network: routers, their
interfaces and addresses, routing-protocol assignments, BGP sessions, and
policy objects.  The renderer turns plans into IOS text; the validation
benches compare properties extracted from rendered (and anonymized) text
back against these plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class InterfacePlan:
    name: str
    kind: str  # "loopback" | "lan" | "p2p" | "peer" | "dialer"
    address: Optional[int] = None
    prefix_len: int = 24
    description: Optional[str] = None
    bandwidth: Optional[int] = None
    encapsulation: Optional[str] = None
    point_to_point: bool = False
    extra: List[str] = field(default_factory=list)
    shutdown: bool = False


@dataclass
class BgpNeighborPlan:
    address: int
    remote_as: int
    ebgp: bool
    route_map_in: Optional[str] = None
    route_map_out: Optional[str] = None
    update_source: Optional[str] = None
    next_hop_self: bool = False
    password: Optional[str] = None
    send_community: bool = False
    local_as: Optional[int] = None
    route_reflector_client: bool = False


@dataclass
class BgpPlan:
    asn: int
    router_id: Optional[int] = None
    networks: List[Tuple[int, int]] = field(default_factory=list)  # (addr, len)
    neighbors: List[BgpNeighborPlan] = field(default_factory=list)
    redistribute: List[str] = field(default_factory=list)
    confederation_id: Optional[int] = None
    confederation_peers: List[int] = field(default_factory=list)


@dataclass
class IgpPlan:
    protocol: str  # "ospf" | "rip" | "eigrp"
    process_id: Optional[int] = None  # ospf pid / eigrp AS
    #: (addr, wildcard_or_None, area_or_None): OSPF uses wildcard+area,
    #: RIP/EIGRP use the classful address form.
    networks: List[Tuple[int, Optional[int], Optional[int]]] = field(default_factory=list)
    passive_interfaces: List[str] = field(default_factory=list)
    redistribute: List[str] = field(default_factory=list)
    rip_version: int = 2


@dataclass
class RouteMapClause:
    name: str
    action: str  # "permit" | "deny"
    sequence: int
    matches: List[str] = field(default_factory=list)
    sets: List[str] = field(default_factory=list)


@dataclass
class AccessListEntry:
    number: int
    action: str
    body: str  # everything after permit/deny
    remark: Optional[str] = None


@dataclass
class NamedAclPlan:
    name: str
    entries: List[Tuple[str, str]] = field(default_factory=list)  # (action, body)


@dataclass
class AsPathAclEntry:
    number: int
    action: str
    regex: str


@dataclass
class CommunityListEntry:
    number: int
    action: str
    body: str
    expanded: bool = False


@dataclass
class PrefixListEntry:
    name: str
    sequence: int
    action: str
    prefix: int
    prefix_len: int
    le: Optional[int] = None


@dataclass
class StaticRoute:
    prefix: int
    prefix_len: int
    next_hop: int


@dataclass
class RouterPlan:
    hostname: str
    role: str  # "core" | "agg" | "access" | "border" | "hub" | "branch"
    pop_index: int
    version: str
    interfaces: List[InterfacePlan] = field(default_factory=list)
    igp: Optional[IgpPlan] = None
    bgp: Optional[BgpPlan] = None
    route_maps: List[RouteMapClause] = field(default_factory=list)
    access_lists: List[AccessListEntry] = field(default_factory=list)
    aspath_acls: List[AsPathAclEntry] = field(default_factory=list)
    community_lists: List[CommunityListEntry] = field(default_factory=list)
    named_acls: List[NamedAclPlan] = field(default_factory=list)
    prefix_lists: List[PrefixListEntry] = field(default_factory=list)
    static_routes: List[StaticRoute] = field(default_factory=list)
    #: (pool_name, network_address, prefix_len) DHCP scopes
    dhcp_pools: List[Tuple[str, int, int]] = field(default_factory=list)
    banner: Optional[str] = None
    enable_secret: Optional[str] = None
    usernames: List[Tuple[str, str]] = field(default_factory=list)  # (user, pw)
    snmp_community: Optional[str] = None
    snmp_location: Optional[str] = None
    snmp_contact: Optional[str] = None
    ntp_servers: List[int] = field(default_factory=list)
    logging_hosts: List[int] = field(default_factory=list)
    name_servers: List[int] = field(default_factory=list)
    domain_name: Optional[str] = None
    dialer_number: Optional[str] = None
    vty_password: Optional[str] = None
    extra_global: List[str] = field(default_factory=list)

    def loopback_address(self) -> Optional[int]:
        for interface in self.interfaces:
            if interface.kind == "loopback" and interface.address is not None:
                return interface.address
        return None


@dataclass
class SubnetRecord:
    address: int
    prefix_len: int
    kind: str  # "loopback" | "p2p" | "lan" | "peer"


@dataclass
class NetworkPlan:
    spec: "object"
    routers: Dict[str, RouterPlan] = field(default_factory=dict)
    subnets: List[SubnetRecord] = field(default_factory=list)
    #: (router_a, router_b, subnet, kind) for every internal link
    links: List[Tuple[str, str, SubnetRecord, str]] = field(default_factory=list)
    #: (router, peer_name, peer_asn, subnet) for every EBGP attachment
    peerings: List[Tuple[str, str, int, SubnetRecord]] = field(default_factory=list)
