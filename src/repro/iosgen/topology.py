"""Topology generation: PoP-structured backbones and tree-shaped enterprises.

Uses networkx graphs.  Nodes are router names with ``role`` and ``pop``
attributes; edges carry a ``media`` attribute ("ethernet" for intra-PoP,
"serial" for long-haul / WAN).
"""

from __future__ import annotations

import random
from typing import List

import networkx as nx

from repro.iosgen.naming import NameFactory
from repro.iosgen.spec import NetworkSpec


def build_topology(spec: NetworkSpec, names: NameFactory, rng: random.Random) -> nx.Graph:
    if spec.kind == "backbone":
        return _backbone_topology(spec, names, rng)
    return _enterprise_topology(spec, names, rng)


def _backbone_topology(spec: NetworkSpec, names: NameFactory, rng: random.Random) -> nx.Graph:
    """Classic ISP shape: per-PoP core pair + aggregation + access, PoP
    cores connected in a ring with random chords."""
    graph = nx.Graph()
    pop_cores: List[List[str]] = []
    for pop in range(spec.num_pops):
        cores = []
        for core_index in (1, 2):
            name = names.hostname("cr", core_index, pop)
            graph.add_node(name, role="core", pop=pop)
            cores.append(name)
        graph.add_edge(cores[0], cores[1], media="ethernet")
        pop_cores.append(cores)

        for agg_index in range(1, spec.aggs_per_pop + 1):
            agg = names.hostname("ar", agg_index, pop)
            graph.add_node(agg, role="agg", pop=pop)
            # dual-homed to both cores
            graph.add_edge(agg, cores[0], media="ethernet")
            graph.add_edge(agg, cores[1], media="ethernet")

        aggs = [n for n, d in graph.nodes(data=True) if d["pop"] == pop and d["role"] == "agg"]
        for acc_index in range(1, spec.access_per_pop + 1):
            access = names.hostname("sw", acc_index, pop)
            graph.add_node(access, role="access", pop=pop)
            graph.add_edge(access, rng.choice(aggs or cores), media="ethernet")

    # Ring over PoPs plus chords for larger backbones.
    for pop in range(spec.num_pops):
        nxt = (pop + 1) % spec.num_pops
        if spec.num_pops > 1 and (pop != nxt):
            graph.add_edge(pop_cores[pop][0], pop_cores[nxt][0], media="serial")
            graph.add_edge(pop_cores[pop][1], pop_cores[nxt][1], media="serial")
    chords = max(0, spec.num_pops - 3)
    for _ in range(chords):
        a, b = rng.sample(range(spec.num_pops), 2)
        core_a = rng.choice(pop_cores[a])
        core_b = rng.choice(pop_cores[b])
        if not graph.has_edge(core_a, core_b):
            graph.add_edge(core_a, core_b, media="serial")

    _mark_borders(graph, spec, rng)
    return graph


def _enterprise_topology(spec: NetworkSpec, names: NameFactory, rng: random.Random) -> nx.Graph:
    """Hub-and-spoke: an HQ core pair, distribution at HQ, branch sites
    over WAN serial links."""
    graph = nx.Graph()
    hub1 = names.hostname("gw", 1, 0)
    hub2 = names.hostname("gw", 2, 0)
    graph.add_node(hub1, role="hub", pop=0)
    graph.add_node(hub2, role="hub", pop=0)
    graph.add_edge(hub1, hub2, media="ethernet")

    for agg_index in range(1, spec.aggs_per_pop + 1):
        dist = names.hostname("ds", agg_index, 0)
        graph.add_node(dist, role="agg", pop=0)
        graph.add_edge(dist, hub1, media="ethernet")
        graph.add_edge(dist, hub2, media="ethernet")

    hubs = [hub1, hub2]
    for site in range(1, spec.num_pops):
        branch = names.hostname("br", 1, site)
        graph.add_node(branch, role="branch", pop=site)
        graph.add_edge(branch, hubs[site % 2], media="serial")
        for acc_index in range(1, spec.access_per_pop + 1):
            access = names.hostname("sw", acc_index, site)
            graph.add_node(access, role="access", pop=site)
            graph.add_edge(access, branch, media="ethernet")
    # HQ access layer
    dists = [n for n, d in graph.nodes(data=True) if d["role"] == "agg"]
    for acc_index in range(1, spec.access_per_pop + 1):
        access = names.hostname("sw", acc_index + 10, 0)
        graph.add_node(access, role="access", pop=0)
        graph.add_edge(access, rng.choice(dists or hubs), media="ethernet")

    _mark_borders(graph, spec, rng)
    return graph


def _mark_borders(graph: nx.Graph, spec: NetworkSpec, rng: random.Random) -> None:
    """Pick the routers that terminate EBGP peerings (``is_border``)."""
    candidates = [
        n for n, d in graph.nodes(data=True) if d["role"] in ("core", "hub")
    ]
    if not candidates:
        candidates = list(graph.nodes)
    count = min(len(candidates), max(1, spec.num_ebgp_peers))
    for name in rng.sample(sorted(candidates), count):
        graph.nodes[name]["is_border"] = True
