"""Render a RouterPlan into Cisco-IOS-style configuration text.

The output format follows classic IOS `show running-config` conventions:
one-space indentation inside stanzas, ``!`` separators, banner blocks with
dialect-specific delimiters.  Syntax details vary with the
:class:`~repro.iosgen.dialects.Dialect` so a single network mixes the
"200+ IOS versions" pressure the paper describes.
"""

from __future__ import annotations

import random
from typing import List

from repro.iosgen.dialects import Dialect
from repro.iosgen.plan import RouterPlan
from repro.iosgen.spec import NetworkSpec
from repro.netutil import int_to_ip, mask_for_len


def render_config(
    router: RouterPlan,
    dialect: Dialect,
    names,
    spec: NetworkSpec,
    rng: random.Random,
) -> str:
    lines: List[str] = []
    add = lines.append

    add("!")
    add("version {}".format(dialect.version.split("(")[0]))
    if dialect.timestamps_msec:
        add("service timestamps debug datetime msec")
        add("service timestamps log datetime msec")
    else:
        add("service timestamps log uptime")
    if dialect.password_encryption:
        add("service password-encryption")
    add("service tcp-keepalives-in")
    add("no service pad")
    add("no service udp-small-servers")
    add("no service tcp-small-servers")
    add("!")
    add("hostname {}".format(router.hostname))
    add("!")
    if router.enable_secret:
        add("enable secret 5 {}".format(router.enable_secret))
    for user, password in router.usernames:
        add("username {} password 7 {}".format(user, password))
    add("!")
    if dialect.subnet_zero:
        add("ip subnet-zero")
    if dialect.uses_ip_classless:
        add("ip classless")
    if dialect.community_new_format:
        add("ip bgp-community new-format")
    if router.domain_name:
        add("ip domain-name {}".format(router.domain_name))
    for server in router.name_servers:
        add("ip name-server {}".format(int_to_ip(server)))
    add("ip cef")
    add("no ip http server")
    add("no ip finger")
    add("logging buffered 16384 debugging")
    add("no logging console")
    for extra in router.extra_global:
        add(extra)
    add("!")

    if router.usernames and rng.random() < 0.6:
        add("aaa new-model")
        add("aaa authentication login default group tacacs+ local")
        add("aaa authorization exec default group tacacs+ if-authenticated")
        add("aaa accounting exec default start-stop group tacacs+")
        if router.logging_hosts:
            add("tacacs-server host {}".format(int_to_ip(router.logging_hosts[0])))
        add("tacacs-server key {}".format(names.secret()))
        add("!")

    for pool_name, base, length in router.dhcp_pools:
        add("ip dhcp pool {}".format(pool_name))
        add(" network {} {}".format(int_to_ip(base), int_to_ip(mask_for_len(length))))
        add(" default-router {}".format(int_to_ip(base + 1)))
        if router.ntp_servers:
            add(" dns-server {}".format(int_to_ip(router.ntp_servers[0])))
        add(" lease 7")
    if router.dhcp_pools:
        add("!")

    if router.banner:
        delim = dialect.banner_delimiter
        add("banner motd {}".format(delim))
        lines.extend(router.banner.splitlines())
        add(delim)
        add("!")

    _render_interfaces(router, dialect, add)
    _render_igp(router, add)
    _render_bgp(router, dialect, add)
    _render_statics(router, add)
    _render_acls(router, add)
    _render_named_acls(router, add)
    _render_policy_lists(router, add)
    _render_route_maps(router, add)
    _render_services(router, add)
    _render_lines_section(router, dialect, add)
    add("end")
    return "\n".join(lines) + "\n"


def _render_interfaces(router: RouterPlan, dialect: Dialect, add) -> None:
    for interface in router.interfaces:
        name = interface.name
        if interface.point_to_point and "." not in name:
            add("interface {} point-to-point".format(name))
        else:
            add("interface {}".format(name))
        if interface.description:
            add(" description {}".format(interface.description))
        if interface.bandwidth:
            add(" bandwidth {}".format(interface.bandwidth))
        if interface.encapsulation:
            add(" encapsulation {}".format(interface.encapsulation))
        if interface.address is not None:
            add(
                " ip address {} {}".format(
                    int_to_ip(interface.address), int_to_ip(mask_for_len(interface.prefix_len))
                )
            )
        else:
            add(" no ip address")
        if dialect.uses_directed_broadcast and interface.kind == "lan":
            add(" no ip directed-broadcast")
        if (
            router.igp is not None
            and router.igp.protocol == "isis"
            and interface.address is not None
        ):
            add(" ip router isis")
        for extra in interface.extra:
            add(" " + extra)
        if interface.shutdown:
            add(" shutdown")
        add("!")


def _system_id_from_loopback(address: int) -> str:
    """Conventional IS-IS system id: zero-padded loopback octets regrouped,
    e.g. 6.0.0.3 -> 006.000.000.003 -> 0060.0000.0003."""
    padded = "{:03d}{:03d}{:03d}{:03d}".format(
        (address >> 24) & 0xFF, (address >> 16) & 0xFF,
        (address >> 8) & 0xFF, address & 0xFF,
    )
    return "{}.{}.{}".format(padded[0:4], padded[4:8], padded[8:12])


def _render_igp(router: RouterPlan, add) -> None:
    igp = router.igp
    if igp is None or not igp.networks:
        return
    if igp.protocol == "isis":
        add("router isis")
        loopback = router.loopback_address() or 0
        add(" net 49.0001.{}.00".format(_system_id_from_loopback(loopback)))
        add(" is-type level-2-only")
        add(" metric-style wide")
        for name in igp.passive_interfaces:
            add(" passive-interface {}".format(name))
        for target in igp.redistribute:
            add(" redistribute {}".format(target))
        add("!")
        return
    if igp.protocol == "ospf":
        add("router ospf {}".format(igp.process_id))
        for base, wildcard, area in igp.networks:
            add(
                " network {} {} area {}".format(
                    int_to_ip(base), int_to_ip(wildcard or 0), area
                )
            )
    elif igp.protocol == "rip":
        add("router rip")
        if igp.rip_version == 2:
            add(" version 2")
        for base, _, _ in igp.networks:
            add(" network {}".format(int_to_ip(base)))
    else:
        add("router eigrp {}".format(igp.process_id))
        for base, _, _ in igp.networks:
            add(" network {}".format(int_to_ip(base)))
        add(" no auto-summary")
    for name in igp.passive_interfaces:
        add(" passive-interface {}".format(name))
    for target in igp.redistribute:
        add(" redistribute {}".format(target))
    add("!")


def _render_bgp(router: RouterPlan, dialect: Dialect, add) -> None:
    bgp = router.bgp
    if bgp is None:
        return
    add("router bgp {}".format(bgp.asn))
    if dialect.bgp_no_synchronization:
        add(" no synchronization")
    if dialect.bgp_log_neighbor_changes:
        add(" bgp log-neighbor-changes")
    if bgp.router_id is not None:
        add(" bgp router-id {}".format(int_to_ip(bgp.router_id)))
    if bgp.confederation_id:
        add(" bgp confederation identifier {}".format(bgp.confederation_id))
        if bgp.confederation_peers:
            add(
                " bgp confederation peers {}".format(
                    " ".join(str(p) for p in bgp.confederation_peers)
                )
            )
    for base, length in bgp.networks:
        add(" network {} mask {}".format(int_to_ip(base), int_to_ip(mask_for_len(length))))
    for target in bgp.redistribute:
        add(" redistribute {}".format(target))
    for neighbor in bgp.neighbors:
        peer = int_to_ip(neighbor.address)
        add(" neighbor {} remote-as {}".format(peer, neighbor.remote_as))
        if neighbor.local_as:
            add(" neighbor {} local-as {}".format(peer, neighbor.local_as))
        if neighbor.update_source:
            add(" neighbor {} update-source {}".format(peer, neighbor.update_source))
        if neighbor.next_hop_self:
            add(" neighbor {} next-hop-self".format(peer))
        if neighbor.route_reflector_client:
            add(" neighbor {} route-reflector-client".format(peer))
        if neighbor.password:
            add(" neighbor {} password {}".format(peer, neighbor.password))
        if neighbor.send_community:
            add(" neighbor {} send-community".format(peer))
        if neighbor.route_map_in:
            add(" neighbor {} route-map {} in".format(peer, neighbor.route_map_in))
        if neighbor.route_map_out:
            add(" neighbor {} route-map {} out".format(peer, neighbor.route_map_out))
    add("!")


def _render_statics(router: RouterPlan, add) -> None:
    if not router.static_routes:
        return
    for route in router.static_routes:
        target = "Null0" if route.next_hop == 0 else int_to_ip(route.next_hop)
        add(
            "ip route {} {} {}".format(
                int_to_ip(route.prefix), int_to_ip(mask_for_len(route.prefix_len)), target
            )
        )
    add("!")


def _render_acls(router: RouterPlan, add) -> None:
    if not router.access_lists:
        return
    for entry in router.access_lists:
        if entry.remark:
            add("access-list {} remark {}".format(entry.number, entry.remark))
        add("access-list {} {} {}".format(entry.number, entry.action, entry.body))
    add("!")


def _render_named_acls(router: RouterPlan, add) -> None:
    for acl in router.named_acls:
        add("ip access-list extended {}".format(acl.name))
        for action, body in acl.entries:
            add(" {} {}".format(action, body))
    if router.named_acls:
        add("!")


def _render_policy_lists(router: RouterPlan, add) -> None:
    for entry in router.prefix_lists:
        suffix = " le {}".format(entry.le) if entry.le else ""
        add(
            "ip prefix-list {} seq {} {} {}/{}{}".format(
                entry.name,
                entry.sequence,
                entry.action,
                int_to_ip(entry.prefix),
                entry.prefix_len,
                suffix,
            )
        )
    if router.prefix_lists:
        add("!")
    for entry in router.aspath_acls:
        add(
            "ip as-path access-list {} {} {}".format(
                entry.number, entry.action, entry.regex
            )
        )
    for entry in router.community_lists:
        add(
            "ip community-list {} {} {}".format(entry.number, entry.action, entry.body)
        )
    if router.aspath_acls or router.community_lists:
        add("!")


def _render_route_maps(router: RouterPlan, add) -> None:
    if not router.route_maps:
        return
    for clause in router.route_maps:
        add("route-map {} {} {}".format(clause.name, clause.action, clause.sequence))
        for match in clause.matches:
            add(" match {}".format(match))
        for action in clause.sets:
            add(" set {}".format(action))
    add("!")


def _render_services(router: RouterPlan, add) -> None:
    if router.snmp_community:
        add("snmp-server community {} RO".format(router.snmp_community))
    if router.snmp_location:
        add("snmp-server location {}".format(router.snmp_location))
    if router.snmp_contact:
        add("snmp-server contact {}".format(router.snmp_contact))
    if router.snmp_community:
        add("snmp-server enable traps snmp authentication linkdown linkup coldstart")
        add("snmp-server enable traps config")
        add("snmp-server enable traps bgp")
        for host in router.logging_hosts:
            add("snmp-server host {} {}".format(int_to_ip(host), router.snmp_community))
    for server in router.ntp_servers:
        add("ntp server {}".format(int_to_ip(server)))
    for host in router.logging_hosts:
        add("logging {}".format(int_to_ip(host)))
    if router.dialer_number:
        add("interface Dialer0")
        add(" dialer string {}".format(router.dialer_number))
        add(" dialer-group 1")
        add("!")
    add("!")


def _render_lines_section(router: RouterPlan, dialect: Dialect, add) -> None:
    add("line con 0")
    if router.vty_password:
        add(" password {}".format(router.vty_password))
    add(" login")
    low, high = dialect.vty_count
    add("line vty {} {}".format(low, high))
    if router.vty_password:
        add(" password {}".format(router.vty_password))
    add(" login")
    add("!")
