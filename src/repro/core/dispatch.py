"""Compiled single-pass rule dispatch.

The engine used to ask *every* rule's prefilter gate about *every* line:
28 Python calls per line, each doing its own C-level substring scan.  At
corpus scale (the paper anonymized 4.3M lines) that per-line Python
dispatch dominates the rewrite phase.

:class:`CompiledDispatch` compiles the whole rule set's triggers — the
literal substrings, literal alternatives, and cheap regexes declared on
each :class:`~repro.core.rulebase.Rule` — into one combined scanner at
:class:`~repro.core.engine.Anonymizer` construction.  Classifying a line
is then:

1. a memo lookup keyed on the lowered line (config vocabulary is highly
   repetitive, so most lines are classified by one dict hit);
2. on a miss, **one** C-level ``finditer`` pass of a combined alternation
   regex over the line, folding each matched alternative's rule bitset
   into the candidate mask, plus one ``search`` per *distinct* regex
   trigger (the dotted-quad hint is shared by several rules and scanned
   once, not once per rule).

Correctness contract (enforced by ``tests/test_dispatch.py``): the
candidate set is a **superset** of the rules whose individual
:func:`~repro.core.rulebase.compile_gate` predicates pass.  Candidates
that the per-rule gate would have rejected cost one no-match regex pass
and can never change output — a rule only rewrites where its own pattern
matches.  The superset direction is what matters: a rule that *would*
fire must always be dispatched.

The subtlety is overlapping literal occurrences.  ``finditer`` yields
non-overlapping matches, so in ``set community 701:1`` the alternative
``set community `` consumes the span and the occurrence of ``community ``
starting inside it is never yielded.  The compiler therefore precomputes
an *overlap closure*: for every literal ``A``, the set of literals whose
occurrence can begin inside an occurrence of ``A`` (some prefix of ``B``
matches ``A`` at a nonzero offset, or ``B`` and ``A`` share a start with
one a prefix of the other).  Whenever ``A`` matches, the closure's rule
bits are folded in too.  That over-approximates — which the superset
contract explicitly allows — and keeps the scan single-pass.

The literal scan and its memo operate on the line's *shape*: the lowered
line with every maximal digit run collapsed to ``0``.  Config corpora
are full of lines that differ only in numbers (addresses, ASNs, ACL
ids), and all of them share one shape — so the memo hit rate stays high
on exactly the corpora where per-line classification matters.  The
collapse is occurrence-preserving: if literal ``L`` occurs in line
``S``, then ``shape(L)`` occurs in ``shape(S)`` (``L``'s edge digit
runs are a suffix/prefix of ``S``'s maximal runs, so both collapse to
the same ``0``), keeping the superset contract intact.  Shape collapse
is *not* sound for arbitrary regex triggers (``[0-9a-f]{4}`` can lose
characters), so regex triggers are always searched against the real
lowered line; only their rule bits are combined with the memoized
literal mask.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

from repro.core.rulebase import Rule

__all__ = ["CompiledDispatch"]

#: Default bound on the shape -> literal-mask memo.  Keys are digit-
#: collapsed config lines (tens of bytes each) and values small ints, so
#: the worst case is a few MB per anonymizer.
DEFAULT_MEMO_SIZE = 1 << 17

#: Maximal digit runs, collapsed to "0" by the shape canonicalization.
_DIGIT_RUNS = re.compile(r"[0-9]+")


def _literal_overlap(a: str, b: str) -> bool:
    """True when an occurrence of *b* can start inside (or at the start
    of, hidden behind) a ``finditer``-yielded occurrence of *a*.

    Offset 0 covers the shared-start case: if one literal is a prefix of
    the other, the regex engine reports only one alternative for that
    position.  Offsets 1..len(a)-1 cover occurrences of *b* beginning
    strictly inside *a*'s span — *b* is either contained in *a* or hangs
    off its end, in which case a prefix of *b* must equal a suffix of
    *a*.
    """
    if a == b:
        return False
    for offset in range(len(a)):
        take = min(len(b), len(a) - offset)
        if b[:take] == a[offset : offset + take]:
            return True
    return False


class CompiledDispatch:
    """One-pass candidate-rule classification for a fixed rule list.

    Parameters
    ----------
    rules:
        The rules in mandatory application order; candidate tuples
        preserve this order exactly.
    enabled:
        When False (``rule_prefilter=False``), every line classifies to
        the full rule tuple — the measuring stick the prefilter is
        benchmarked against.
    memo_size:
        Bound on the per-line memo (entries, not bytes).  Once full, new
        lines are still classified in one pass, just not remembered.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        enabled: bool = True,
        memo_size: int = DEFAULT_MEMO_SIZE,
    ):
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self.enabled = enabled
        self._memo_size = memo_size
        #: line shape -> literal candidate mask (regex-trigger bits are
        #: recomputed per line; shape collapse is unsound for them).
        self._memo: Dict[str, int] = {}
        #: candidate bitmask -> rule tuple in application order (shared
        #: across memo entries; distinct masks are few).
        self._mask_sets: Dict[int, Tuple[Rule, ...]] = {}
        self._all = self.rules
        self._always_mask = 0
        self._literal_re = None
        self._group_masks: List[int] = [0]  # group indices are 1-based
        self._regex_triggers: List[Tuple] = []
        if enabled:
            self._compile()

    # -- compilation -----------------------------------------------------

    def _compile(self) -> None:
        literals: List[Tuple[str, int]] = []  # (literal shape, rule bit)
        regex_masks: Dict[str, List] = {}  # pattern text -> [compiled, mask]
        for index, rule in enumerate(self.rules):
            bit = 1 << index
            trigger = rule.trigger
            if trigger is None:
                self._always_mask |= bit
            elif isinstance(trigger, str):
                literals.append((_DIGIT_RUNS.sub("0", trigger.lower()), bit))
            elif isinstance(trigger, (tuple, list, frozenset, set)):
                for literal in trigger:
                    literals.append((_DIGIT_RUNS.sub("0", literal.lower()), bit))
            else:  # a compiled regex: scanned once per distinct pattern
                entry = regex_masks.setdefault(trigger.pattern, [trigger, 0])
                entry[1] |= bit
        self._regex_triggers = [
            (compiled.search, mask) for compiled, mask in regex_masks.values()
        ]

        if not literals:
            return
        # Merge duplicate literals (several rules may share one trigger,
        # and distinct triggers may share one shape).
        by_text: Dict[str, int] = {}
        for text, bit in literals:
            by_text[text] = by_text.get(text, 0) | bit
        # Longest-first so the engine prefers the most specific
        # alternative at a shared start (reduces closure over-approximation).
        ordered = sorted(by_text, key=len, reverse=True)
        closed_masks = [0]
        for text in ordered:
            mask = by_text[text]
            for other in ordered:
                if _literal_overlap(text, other):
                    mask |= by_text[other]
            closed_masks.append(mask)
        self._group_masks = closed_masks
        self._literal_re = re.compile(
            "|".join("(" + re.escape(text) + ")" for text in ordered)
        )

    # -- classification --------------------------------------------------

    def classify(self, lowered: str) -> Tuple[Rule, ...]:
        """Candidate rules for a lowered line, in application order.

        Guaranteed a superset of the rules whose individual gates pass on
        this line; usually exactly that set.
        """
        if not self.enabled:
            return self._all
        shape = _DIGIT_RUNS.sub("0", lowered)
        memo = self._memo
        mask = memo.get(shape)
        if mask is None:
            mask = self._always_mask
            literal_re = self._literal_re
            if literal_re is not None:
                group_masks = self._group_masks
                for match in literal_re.finditer(shape):
                    mask |= group_masks[match.lastindex]
            if len(memo) < self._memo_size:
                memo[shape] = mask
        for search, rmask in self._regex_triggers:
            if (mask & rmask) != rmask and search(lowered) is not None:
                mask |= rmask
        candidates = self._mask_sets.get(mask)
        if candidates is None:
            candidates = tuple(
                rule
                for index, rule in enumerate(self.rules)
                if (mask >> index) & 1
            )
            self._mask_sets[mask] = candidates
        return candidates

    # -- introspection (tests / benchmarks) ------------------------------

    @property
    def memo_entries(self) -> int:
        return len(self._memo)

    def describe(self) -> str:
        literal_count = (
            self._literal_re.groups if self._literal_re is not None else 0
        )
        return (
            "CompiledDispatch(rules={}, literals={}, regex_triggers={}, "
            "enabled={})".format(
                len(self.rules),
                literal_count,
                len(self._regex_triggers),
                self.enabled,
            )
        )
