"""Process exit codes shared by the batch CLI and the service.

One module owns every exit code so the batch ``repro-anonymize`` run, the
``submit`` client, and CI scripts that interpret either agree on what each
number means.  The codes are distinct (no reuse of 1 for several unrelated
failures) so a wrapper can branch on the *kind* of dirtiness:

* ``EXIT_OK`` (0) — clean run: every file written, no leak highlights.
* ``EXIT_NO_INPUT`` (1) — no readable config files were found among the
  given paths (all missing, binary, or unreadable).
* ``EXIT_USAGE`` (2) — usage error (argparse's own convention).
* ``EXIT_LEAKS`` (3) — the leak scanner (or a per-file report) highlighted
  lines for human review.
* ``EXIT_QUARANTINE`` (4) — at least one file was quarantined or failed to
  write; its output was withheld (fail-closed) and the run is incomplete.
* ``EXIT_LEAKS_AND_QUARANTINE`` (5) — both 3 and 4.
* ``EXIT_STATE_ERROR`` (6) — a state file, run manifest, or service
  session could not be used (corrupt, truncated, wrong version, or wrong
  salt).
* ``EXIT_SERVICE_ERROR`` (7) — the anonymization service could not be
  reached or answered with a protocol-level error.
* ``EXIT_RECOVERY_FAILED`` (8) — the service's durable state directory
  could not be read or recovered at startup (``repro-anonymize serve
  --state-dir``); the daemon refuses to start rather than serve sessions
  whose mapping history it cannot trust.
* ``EXIT_JOURNAL_CORRUPT`` (9) — startup recovery found corrupt session
  journals and quarantined them, and ``--strict-recovery`` was set:
  fail-closed, the operator must inspect the quarantined directories
  before serving resumes.
* ``EXIT_PARTIAL_CORPUS`` (10) — a ``submit --corpus`` run *completed*
  (every file was driven to a terminal state) but some files were
  quarantined: their output was withheld after shard failover and the
  deadline budget were exhausted.  Distinct from the all-or-nothing
  0/5 of the batch pipeline so an operator can re-run with ``--resume``
  and only the quarantined files are re-driven.
* ``EXIT_UNKNOWN_PLUGIN`` (11) — ``--plugins`` named a recognizer plugin
  family that is not registered (typo, or the out-of-tree plugin's
  ``REPRO_PLUGINS`` path is missing).  Distinct from ``EXIT_USAGE`` so a
  wrapper can tell a malformed invocation from a missing plugin.
* ``EXIT_BAD_FAULT_PLAN`` (12) — ``REPRO_FAULT_PLAN`` (or a chaos soak's
  ``chaos:`` spec) could not be parsed.  Fault plans exist to *prove*
  failure handling, so a typo'd plan silently injecting nothing — or
  surfacing as a raw traceback mid-run — would defeat the harness; the
  CLI and the daemon refuse to start instead.
"""

from __future__ import annotations

__all__ = [
    "EXIT_OK",
    "EXIT_NO_INPUT",
    "EXIT_USAGE",
    "EXIT_LEAKS",
    "EXIT_QUARANTINE",
    "EXIT_LEAKS_AND_QUARANTINE",
    "EXIT_STATE_ERROR",
    "EXIT_SERVICE_ERROR",
    "EXIT_RECOVERY_FAILED",
    "EXIT_JOURNAL_CORRUPT",
    "EXIT_PARTIAL_CORPUS",
    "EXIT_UNKNOWN_PLUGIN",
    "EXIT_BAD_FAULT_PLAN",
    "exit_code_for",
]

EXIT_OK = 0
EXIT_NO_INPUT = 1
EXIT_USAGE = 2
EXIT_LEAKS = 3
EXIT_QUARANTINE = 4
EXIT_LEAKS_AND_QUARANTINE = 5
EXIT_STATE_ERROR = 6
EXIT_SERVICE_ERROR = 7
EXIT_RECOVERY_FAILED = 8
EXIT_JOURNAL_CORRUPT = 9
EXIT_PARTIAL_CORPUS = 10
EXIT_UNKNOWN_PLUGIN = 11
EXIT_BAD_FAULT_PLAN = 12


def exit_code_for(leaks: bool = False, dirty: bool = False) -> int:
    """The exit code for a completed run.

    ``leaks`` — lines were highlighted for human review; ``dirty`` — at
    least one file's output was withheld (quarantine or write failure).
    Both the batch CLI and the ``submit`` client reduce their outcome to
    these two booleans so their exit codes always agree.
    """
    if leaks and dirty:
        return EXIT_LEAKS_AND_QUARANTINE
    if dirty:
        return EXIT_QUARANTINE
    if leaks:
        return EXIT_LEAKS
    return EXIT_OK
