"""Autonomous System Number anonymization (paper Section 4.4).

Public ASNs (1–64511) are globally unique and publicly mapped to owners, so
they are anonymized with a random permutation.  Private ASNs (64512–65535)
and ASN 0 carry no identity and pass through unchanged.

The permutation is a keyed 4-round Feistel cipher over the 16-bit space,
cycle-walked so that public ASNs map to public ASNs.  Compared with a
shuffled lookup table this is deterministic from the owner secret alone
(no 64 K-entry state to persist or share) and is efficiently invertible,
which the validation suites use to check round-trips.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Union

from repro.core.secrets import derive_key, normalize_salt

#: Inclusive public ASN range (BGPv4, 16-bit ASN era of the paper).
PUBLIC_ASN_MIN = 1
PUBLIC_ASN_MAX = 64511
#: Inclusive private ASN range.
PRIVATE_ASN_MIN = 64512
PRIVATE_ASN_MAX = 65535

_ROUNDS = 4


def is_public_asn(asn: int) -> bool:
    """Whether *asn* is in the public (globally assigned) range."""
    return PUBLIC_ASN_MIN <= asn <= PUBLIC_ASN_MAX


def is_private_asn(asn: int) -> bool:
    """Whether *asn* is in the private-use range."""
    return PRIVATE_ASN_MIN <= asn <= PRIVATE_ASN_MAX


class Feistel16:
    """A keyed permutation of the 16-bit integers (4-round Feistel)."""

    def __init__(self, key: bytes):
        self.key = key

    def _round(self, round_index: int, half: int) -> int:
        material = bytes((round_index, half))
        return hmac.new(self.key, material, hashlib.sha256).digest()[0]

    def encrypt(self, value: int) -> int:
        if not 0 <= value <= 0xFFFF:
            raise ValueError("not a 16-bit value: {!r}".format(value))
        left, right = value >> 8, value & 0xFF
        for round_index in range(_ROUNDS):
            left, right = right, left ^ self._round(round_index, right)
        return (left << 8) | right

    def decrypt(self, value: int) -> int:
        if not 0 <= value <= 0xFFFF:
            raise ValueError("not a 16-bit value: {!r}".format(value))
        left, right = value >> 8, value & 0xFF
        for round_index in reversed(range(_ROUNDS)):
            left, right = right ^ self._round(round_index, left), left
        return (left << 8) | right


class AsnPermutation:
    """The ASN anonymization map: permute publics, pass privates through."""

    def __init__(self, salt: Union[bytes, str] = b""):
        self._feistel = Feistel16(derive_key(normalize_salt(salt), "asn-permutation"))
        self._seen = {}

    def map_asn(self, asn: int) -> int:
        """Anonymize one ASN."""
        if not 0 <= asn <= 0xFFFF:
            raise ValueError("not a 16-bit ASN: {!r}".format(asn))
        if not is_public_asn(asn):
            return asn
        # `_seen` doubles as a memo cache: the Feistel walk costs several
        # HMAC-SHA256 rounds per ASN and corpora repeat the same few ASNs
        # millions of times.
        cached = self._seen.get(asn)
        if cached is not None:
            return cached
        mapped = self._feistel.encrypt(asn)
        # Cycle-walk until the image lands back in the public range; the
        # orbit of a public ASN always contains another public ASN (itself),
        # so this terminates and stays a bijection on the public range.
        while not is_public_asn(mapped):
            mapped = self._feistel.encrypt(mapped)
        self._seen[asn] = mapped
        return mapped

    def unmap_asn(self, asn: int) -> int:
        """Invert :meth:`map_asn` (used by tests and validation only)."""
        if not 0 <= asn <= 0xFFFF:
            raise ValueError("not a 16-bit ASN: {!r}".format(asn))
        if not is_public_asn(asn):
            return asn
        mapped = self._feistel.decrypt(asn)
        while not is_public_asn(mapped):
            mapped = self._feistel.decrypt(mapped)
        return mapped

    @property
    def seen_asns(self):
        """ASNs mapped so far: original -> anonymized.

        Feeds the leak scanner of Section 6.1 ("the anonymizer can record
        all AS numbers it sees before hashing them, and then grep out all
        lines from the anonymized configs that still include any of those
        numbers").
        """
        return dict(self._seen)
