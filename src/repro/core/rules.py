"""The complete 28-rule registry (paper Section 4.2).

"In practice, we have discovered a set of 28 rules that is sufficient for
anonymizing the 200-plus IOS versions we have tested them on."

Taxonomy (matching the paper's accounting):

========  =====  ==================================================
Rules     Count  Purpose
========  =====  ==================================================
R1–R2       2    token segmentation before the pass-list lookup
R3–R5       3    strip comments, descriptions/remarks, banners
R6–R9       4    miscellaneous (phones, SNMP metadata, MACs, domains)
R10–R21    12    locate ASNs and ASN/community regular expressions
R22–R25     4    locate IP addresses in their contexts
R26–R28     3    hash credentials regardless of the pass-list
========  =====  ==================================================

R1–R5 are *structural* rules realized inside the token pass and the
comment stripper; R6–R28 are per-line context rules applied in the order
returned by :func:`build_line_rules` (credentials first, then ASNs, then
IPs, then miscellaneous).
"""

from __future__ import annotations

from typing import List

from repro.core.asn_rules import build_asn_rules
from repro.core.ip_rules import build_ip_rules
from repro.core.misc_rules import build_misc_rules
from repro.core.rulebase import Rule
from repro.core.secret_rules import build_secret_rules

STRUCTURAL_RULES: List[Rule] = [
    Rule(
        "R1",
        "token-segmentation",
        "segmentation",
        "Words are segmented into alphabetic runs and non-alphabetic "
        "remainders, so `Ethernet0/0` is checked as `ethernet` + `0/0` "
        "instead of being hashed whole.",
    ),
    Rule(
        "R2",
        "passlist-or-hash",
        "segmentation",
        "Each alphabetic run is checked against the pass-list; runs not "
        "found are replaced by salted SHA1 digests.  Simple integers are "
        "not anonymized.",
    ),
    Rule(
        "R3",
        "banner-blocks",
        "comment",
        "Multi-line banner blocks (motd/login/exec/...) are removed whole, "
        "tracking the arbitrary delimiter character.",
    ),
    Rule(
        "R4",
        "description-remark-lines",
        "comment",
        "`description` and `remark` free-text lines are removed.",
    ),
    Rule(
        "R5",
        "bang-comments",
        "comment",
        "Text after `!` is removed; the bare `!` section separator stays.",
    ),
]


def build_line_rules() -> List[Rule]:
    """All per-line context rules in mandatory application order.

    Credentials hash first (their arguments could look like anything),
    ASN/community rules next (before the generic IP catch-all can touch
    router-IDs or RDs), then IP rules, then miscellaneous clean-up.
    """
    return (
        build_secret_rules()
        + build_asn_rules()
        + build_ip_rules()
        + build_misc_rules()
    )


def all_rules(include_junos: bool = False) -> List[Rule]:
    """The full registry, structural rules included (for documentation).

    ``include_junos`` appends the J1–J10 extension rules that realize the
    paper's "directly applicable to JunOS" claim.
    """
    rules = STRUCTURAL_RULES + build_line_rules()
    if include_junos:
        from repro.core.junos_rules import build_junos_rules

        rules = rules + build_junos_rules()
    return rules


def rule_inventory(include_junos: bool = True, extra_rules=()) -> str:
    """A formatted inventory of every rule (used by the CLI and docs).

    ``extra_rules`` appends rules contributed by active recognizer
    plugins so ``--inventory`` reflects the composed rule set.
    """
    lines = []
    for rule in list(all_rules(include_junos=include_junos)) + list(extra_rules):
        kind = "structural" if rule.apply is None else "line"
        lines.append(
            "{:<5} {:<28} {:<13} [{}] {}".format(
                rule.rule_id, rule.name, rule.category, kind, rule.description
            )
        )
    return "\n".join(lines)
