"""Segmented config lines: the unit every anonymization rule operates on.

A :class:`SegmentedLine` is a config line split into *frozen* and *live*
segments.  When a context rule rewrites part of a line (say, an ASN inside
``router bgp 1111``) the replacement is marked frozen so later rules and
the final token-hashing pass never touch it again.  This is what makes the
rule pipeline order-safe: an anonymized IP address can never be
re-interpreted as something else by a later rule, and a hash digest can
never be re-hashed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List, Match, Optional, Pattern, Sequence, Tuple

#: A replacement piece: (text, frozen).
Piece = Tuple[str, bool]
#: Rule handlers return the pieces replacing the match, or None to decline.
Handler = Callable[[Match], Optional[Sequence[Piece]]]


@dataclass
class Segment:
    text: str
    frozen: bool


class SegmentedLine:
    """One config line as a sequence of frozen/live segments."""

    def __init__(self, text: str):
        self.segments: List[Segment] = [Segment(text, False)] if text else []

    def render(self) -> str:
        """Reassemble the line."""
        return "".join(segment.text for segment in self.segments)

    def live_text(self) -> str:
        """Concatenation of only the not-yet-frozen text (for diagnostics)."""
        return "".join(s.text for s in self.segments if not s.frozen)

    def apply_rule(self, pattern: Pattern, handler: Handler) -> int:
        """Run one context rule over every live segment.

        For each non-overlapping match of *pattern* inside a live segment,
        *handler* is called with the match object.  It returns the pieces
        that replace the matched span — each piece tagged frozen or live —
        or ``None`` to leave that particular match untouched.

        Returns the number of matches rewritten.
        """
        new_segments: List[Segment] = []
        rewritten = 0
        for segment in self.segments:
            if segment.frozen or not segment.text:
                new_segments.append(segment)
                continue
            cursor = 0
            for match in pattern.finditer(segment.text):
                pieces = handler(match)
                if pieces is None:
                    continue
                if match.start() > cursor:
                    new_segments.append(Segment(segment.text[cursor : match.start()], False))
                for text, frozen in pieces:
                    if text:
                        new_segments.append(Segment(text, frozen))
                cursor = match.end()
                rewritten += 1
            if cursor < len(segment.text):
                new_segments.append(Segment(segment.text[cursor:], False))
            elif cursor == 0 and not segment.text:
                new_segments.append(segment)
        self.segments = new_segments
        return rewritten

    def map_live_tokens(self, mapper: Callable[[str], str]) -> None:
        """Apply *mapper* to every whitespace-delimited word in live segments.

        Whitespace is preserved exactly; frozen segments pass through.  This
        is the hook for the final pass-list/hashing pass.
        """
        for segment in self.segments:
            if segment.frozen or not segment.text:
                continue
            parts = re.split(r"(\s+)", segment.text)
            segment.text = "".join(
                part if part.isspace() or not part else mapper(part) for part in parts
            )

    def map_live_text(self, text_mapper: Callable[[str], str]) -> None:
        """Like :meth:`map_live_tokens`, but hands each live segment's
        whole text to *text_mapper* (which must preserve whitespace).

        Lets :meth:`repro.core.tokens.TokenAnonymizer.anonymize_text`
        memoize at segment granularity — the inter-match residue of
        rewritten lines ("  neighbor ", " remote-as ") repeats heavily.
        """
        for segment in self.segments:
            if segment.frozen or not segment.text:
                continue
            segment.text = text_mapper(segment.text)
