"""Content digests shared by the runner manifest and the service journal.

One module owns the digest format so the batch runner's ``--resume``
manifest (which skips files whose recorded digest still matches the
output on disk) and the service's idempotency keys (which let a client
resubmit a file after an ambiguous failure without it being anonymized
twice) can never drift apart.  The format is pinned by a test
(``tests/test_recovery.py``): changing it silently would break every
existing run manifest's resume path.
"""

from __future__ import annotations

import hashlib

__all__ = ["DIGEST_ALGORITHM", "digest_text", "idempotency_key_for"]

#: The algorithm behind every content digest (manifest + idempotency).
DIGEST_ALGORITHM = "sha256"


def digest_text(text: str) -> str:
    """The canonical content digest of one file's text.

    UTF-8 with backslashreplace so any str — including one decoded with
    U+FFFD replacement from a half-binary config — digests stably.
    """
    return hashlib.sha256(text.encode("utf-8", "backslashreplace")).hexdigest()


def idempotency_key_for(source: str, text: str) -> str:
    """The idempotency key for submitting one file to the service.

    Derived from the per-file content digest *and* the source name (two
    distinct files with identical content must still commit separately),
    with a domain separator so a key can never collide with a bare
    :func:`digest_text` value.  A client that resubmits the same
    (source, text) after an ambiguous failure — connection dropped after
    the server committed — presents the same key and gets the journaled
    result back instead of a second anonymization.
    """
    hasher = hashlib.sha256(b"repro-idempotency\x00")
    hasher.update(source.encode("utf-8", "backslashreplace"))
    hasher.update(b"\x00")
    hasher.update(text.encode("utf-8", "backslashreplace"))
    return hasher.hexdigest()[:32]
