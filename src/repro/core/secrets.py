"""Owner-secret handling and key derivation.

The paper salts the SHA1 hash "with a secret chosen by the network owner"
(Section 6.1).  All randomness in the anonymizer — string hashes, the IP
trie flip bits, the ASN and community permutations — is derived from this
one owner secret, so anonymization is fully deterministic and repeatable
for a given (salt, input) pair, while two different owners' mappings are
cryptographically unrelated.
"""

from __future__ import annotations

import hashlib
import hmac


def normalize_salt(salt) -> bytes:
    """Coerce a user-provided salt (str or bytes) to bytes."""
    if isinstance(salt, bytes):
        return salt
    if isinstance(salt, str):
        return salt.encode("utf-8")
    raise TypeError("salt must be str or bytes, not {}".format(type(salt).__name__))


def derive_key(salt: bytes, purpose: str) -> bytes:
    """Derive an independent subkey for one component of the anonymizer.

    Uses HMAC-SHA256 as a KDF so that, e.g., the ASN permutation key cannot
    be related to the string-hashing key even if one is compromised.
    """
    return hmac.new(salt, purpose.encode("utf-8"), hashlib.sha256).digest()


def derive_seed_int(salt: bytes, purpose: str) -> int:
    """Derive an integer seed (for ``random.Random``) for one component."""
    return int.from_bytes(derive_key(salt, purpose), "big")
