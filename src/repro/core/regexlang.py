"""Anonymizing regular expressions that accept ASNs and communities.

Paper Section 4.4: an ASN may not appear verbatim in the config text yet
still be *accepted* by a policy regexp (``70[1-3]`` accepts 701, 702, 703).
"Since there are only 2^16 ASNs in BGPv4, we can find the language accepted
by the regexp by simply applying the regexp to a list of all 2^16 ASNs and
seeing which it accepts" — then the accepted public ASNs are permuted and
the regexp rewritten as the alternation of the mapped values.

Rewrite strategy, per top-level alternation branch:

1. **Literal branches** (the common case; alternation "can be easily
   handled by anonymizing each ASN individually"): every maximal digit run
   is an ASN literal — map each in place, preserving the branch structure
   (boundaries, anchors, adjacency such as ``_701_1239_``).
2. **Complex branches** (digit ranges, wildcards): brute-force the branch's
   ASN language over the 16-bit universe and rewrite the branch as an
   alternation of ``_N_`` terms for the mapped public members plus the
   unchanged private members — or, with ``style="mindfa"``, as the regexp
   reconstructed from the minimum DFA of the mapped language (the
   polynomial-time compression the paper mentions but did not need).
3. **Digit-free branches** (``.*``, ``^$``) carry no ASN information and
   pass through unchanged.
4. Branches whose language is implausibly large (default > 2048 public
   ASNs) while still mentioning digits are *replaced by an inert
   never-matching pattern* and flagged — the paper's stance is to favor
   anonymity over information wherever a trade-off is forced, with flagged
   lines feeding the iterative rule-refinement loop of Section 6.1.

Community regexps (``701:7[1-5]..``) are handled "using the same method":
each branch is split at its ``:`` literal; the ASN side goes through the
ASN machinery and the value side through the community-value permutation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.automata import ast as rast
from repro.automata.ast import (
    Alt,
    Anchor,
    Boundary,
    CharClass,
    Concat,
    Dot,
    Empty,
    Literal,
    RegexNode,
)
from repro.automata.dfa import dfa_from_strings
from repro.automata.fa2re import dfa_to_regex
from repro.automata.matcher import to_python_regex
from repro.automata.minimize import minimize_dfa
from repro.automata.reparse import RegexParseError, parse_regex
from repro.core.asn import is_public_asn

#: The full 16-bit ASN universe as strings (computed once).
_UNIVERSE: Tuple[str, ...] = tuple(str(n) for n in range(65536))

#: Language-computation memos.  A branch's language is a pure function of
#: its pattern text (and matching mode) — never of any salt — so one
#: brute-force enumeration serves every anonymizer in the process.  Keys
#: are ``(pattern_text, anchored)`` / ``(pattern_text, side, anchored)``.
_NODE_LANG_MEMO: dict = {}
_SIDE_LANG_MEMO: dict = {}

#: A pattern that can never match any subject (used when anonymity forces
#: us to discard a regexp we cannot safely rewrite).
NEVER_MATCH_PATTERN = "^never-match$"


@dataclass
class RewriteOutcome:
    """Result of rewriting one policy regexp."""

    original: str
    rewritten: str
    changed: bool
    warnings: List[str] = field(default_factory=list)
    asns_seen: Set[int] = field(default_factory=set)

    @property
    def flagged(self) -> bool:
        """Whether the line needs human review (Section 6.1 iteration)."""
        return bool(self.warnings)


def asn_language(pattern: str, anchored: bool = False) -> Set[int]:
    """All ASNs whose single-element path the regexp matches.

    Brute force over the 2^16 universe, exactly as the paper describes.
    ``anchored=True`` selects JunOS semantics: the pattern must match the
    whole subject (JunOS as-path regexps are implicitly anchored), versus
    IOS's anywhere-in-the-string search semantics.
    """
    return _node_language(parse_regex(pattern), anchored)


def _node_language(node: RegexNode, anchored: bool = False) -> Set[int]:
    body = to_python_regex(node)
    key = (body, anchored)
    cached = _NODE_LANG_MEMO.get(key)
    if cached is not None:
        return cached
    if anchored:
        compiled = re.compile("^(?:" + body + ")$")
        language = {n for n in range(65536) if compiled.match(_UNIVERSE[n])}
    else:
        compiled = re.compile(body)
        language = {n for n in range(65536) if compiled.search(_UNIVERSE[n])}
    _NODE_LANG_MEMO[key] = language
    return language


def _digit_literal_text(node: RegexNode) -> Optional[str]:
    """The digit string of a branch built only from digit literals
    (``701`` as Concat(Literal('7'), ...)), or ``None``."""
    parts = _flatten_concat(node)
    if not parts or not all(
        isinstance(p, Literal) and p.char.isdigit() for p in parts
    ):
        return None
    return "".join(p.char for p in parts)


def _suffix_language(digits: str) -> Set[int]:
    """``{n in [0, 65535] : str(n).endswith(digits)}`` without regexes.

    Every such n is ``d * 10^len(digits) + int(digits)`` for some leading
    part d >= 1, plus ``int(digits)`` itself when the digit string has no
    leading zero (canonical decimals never do).
    """
    width = len(digits)
    value = int(digits)
    out: Set[int] = set()
    if value <= 65535 and str(value) == digits:
        out.add(value)
    step = 10 ** width
    lead = 1
    while lead * step + value <= 65535:
        out.add(lead * step + value)
        lead += 1
    return out


def _prefix_language(digits: str) -> Set[int]:
    """``{n in [0, 65535] : str(n).startswith(digits)}`` without regexes."""
    if digits.startswith("0"):
        # Canonical decimals start with 0 only for 0 itself.
        return {0} if "0".startswith(digits) else set()
    out: Set[int] = set()
    for extra in range(6 - len(digits)):
        low = int(digits + "0" * extra)
        high = low + 10 ** extra
        out.update(range(low, min(high, 65536)))
    return out


def _mentions_digit(node: RegexNode) -> bool:
    """Whether any atom of *node* can consume a digit with intent.

    Literals and character classes that include digits count; ``.`` alone
    does not (a digit-free ``.*`` carries no ASN information).
    """
    if isinstance(node, Literal):
        return node.char.isdigit()
    if isinstance(node, CharClass):
        if node.negated:
            # A negated class that still admits digits is treated as
            # digit-free unless it was clearly built around digits.
            return False
        return any(c.isdigit() for c in node.chars)
    if isinstance(node, (Concat, Alt)):
        return any(_mentions_digit(p) for p in node.parts)
    if hasattr(node, "child"):
        return _mentions_digit(node.child)
    return False


def _is_literal_branch(node: RegexNode) -> bool:
    """Whether the branch is built only from literals/boundaries/anchors."""
    if isinstance(node, (Literal, Boundary, Anchor, Empty)):
        return True
    if isinstance(node, Concat):
        return all(_is_literal_branch(p) for p in node.parts)
    return False


def _flatten_concat(node: RegexNode) -> List[RegexNode]:
    if isinstance(node, Concat):
        return list(node.parts)
    if isinstance(node, Empty):
        return []
    return [node]


def _map_digit_runs(
    branch: RegexNode, mapper: Callable[[int], int]
) -> Tuple[RegexNode, Set[int], List[str]]:
    """Map every maximal digit run of a literal branch through *mapper*."""
    parts = _flatten_concat(branch)
    out: List[RegexNode] = []
    seen: Set[int] = set()
    warnings: List[str] = []
    run: List[str] = []

    def flush_run() -> None:
        if not run:
            return
        text = "".join(run)
        value = int(text)
        if value > 0xFFFF:
            warnings.append(
                "digit run {!r} exceeds the 16-bit ASN space; left unchanged".format(text)
            )
            out.extend(Literal(c) for c in text)
        else:
            seen.add(value)
            out.extend(Literal(c) for c in str(mapper(value)))
        run.clear()

    for part in parts:
        if isinstance(part, Literal) and part.char.isdigit():
            run.append(part.char)
        else:
            flush_run()
            out.append(part)
    flush_run()
    return rast.concat(*out), seen, warnings


def _language_to_branches(
    language: Sequence[int], style: str, anchored: bool = False
) -> List[RegexNode]:
    """Render a finite ASN language as replacement branch ASTs.

    IOS (search semantics) wraps each member in ``_`` boundaries so the
    rewrite accepts exactly the language; JunOS (anchored semantics) uses
    bare literals, which the implicit anchoring already makes exact.
    """
    strings = [str(n) for n in sorted(language)]
    if style == "mindfa":
        body = dfa_to_regex(minimize_dfa(dfa_from_strings(strings)))
        if body is None:
            return []
        if anchored:
            return [body]
        return [rast.concat(Boundary(), body, Boundary())]
    if anchored:
        return [rast.concat(*(Literal(c) for c in text)) for text in strings]
    return [
        rast.concat(Boundary(), *(Literal(c) for c in text), Boundary())
        for text in strings
    ]


def rewrite_aspath_regex(
    pattern: str,
    asn_mapper: Callable[[int], int],
    style: str = "alternation",
    max_language: int = 2048,
    anchored: bool = False,
) -> RewriteOutcome:
    """Rewrite an AS-path regexp so it accepts the permuted language.

    *asn_mapper* maps one ASN (publics permuted, privates identity).
    *style* is ``"alternation"`` (paper default) or ``"mindfa"``.
    *anchored* selects JunOS whole-subject semantics for the language
    computation and rewrite (IOS search semantics otherwise).
    """
    try:
        tree = parse_regex(pattern)
    except RegexParseError as exc:
        return RewriteOutcome(
            original=pattern,
            rewritten=NEVER_MATCH_PATTERN,
            changed=True,
            warnings=["unparseable regexp replaced: {}".format(exc)],
        )
    branches = list(tree.parts) if isinstance(tree, Alt) else [tree]
    new_branches: List[RegexNode] = []
    warnings: List[str] = []
    seen: Set[int] = set()
    changed = False

    for branch in branches:
        if not _mentions_digit(branch):
            new_branches.append(branch)
            continue
        if _is_literal_branch(branch):
            mapped, branch_seen, branch_warnings = _map_digit_runs(branch, asn_mapper)
            new_branches.append(mapped)
            seen.update(branch_seen)
            warnings.extend(branch_warnings)
            changed = changed or mapped != branch
            continue
        language = _node_language(branch, anchored)
        public = sorted(n for n in language if is_public_asn(n))
        private = sorted(n for n in language if not is_public_asn(n))
        if not public:
            # Only private ASNs (or nothing) accepted: no identity leak.
            new_branches.append(branch)
            continue
        if len(public) > max_language:
            warnings.append(
                "branch {!r} accepts {} public ASNs (> {}); replaced by an "
                "inert pattern for safety".format(
                    branch.to_pattern(), len(public), max_language
                )
            )
            changed = True
            continue
        seen.update(public)
        mapped_language = [asn_mapper(n) for n in public] + private
        new_branches.extend(_language_to_branches(mapped_language, style, anchored))
        changed = True

    if not new_branches:
        return RewriteOutcome(pattern, NEVER_MATCH_PATTERN, True, warnings, seen)
    rewritten = rast.alternate(*new_branches)
    if isinstance(rewritten, Alt):
        text = "(" + rewritten.to_pattern() + ")"
    else:
        text = rewritten.to_pattern()
    return RewriteOutcome(pattern, text, changed or text != pattern, warnings, seen)


def _split_at_colon(branch: RegexNode) -> Optional[Tuple[RegexNode, RegexNode]]:
    """Split a community branch at its top-level ``:`` literal."""
    parts = _flatten_concat(branch)
    for index, part in enumerate(parts):
        if isinstance(part, Literal) and part.char == ":":
            left = rast.concat(*parts[:index])
            right = rast.concat(*parts[index + 1 :])
            return left, right
    return None


def _side_language(node: RegexNode, side: str, anchored: bool = False) -> Set[int]:
    """Values accepted on one side of a community regexp's ``:``.

    The side pattern is tested at the exact position adjacent to the colon:
    for the left side we match ``<pattern>:`` against ``"<value>:"``, for
    the right side ``:<pattern>`` against ``":<value>"``.  With
    ``anchored`` (JunOS) the side must additionally reach the subject edge.
    """
    # Pure digit-literal sides (by far the common case: `_701:1234_`)
    # have closed-form languages — no 2^16 regex probes needed.  The
    # subject for the left side is "<value>:", so an unanchored literal
    # matches exactly the values whose decimal *ends with* it; for the
    # right side ":<value>" it is the values *starting with* it (digits
    # cannot match the colon).  Anchored (JunOS) sides must consume the
    # whole value, so only the exact decimal qualifies.
    digits = _digit_literal_text(node)
    if digits is not None:
        if anchored:
            value = int(digits)
            return {value} if value <= 65535 and str(value) == digits else set()
        return _suffix_language(digits) if side == "left" else _prefix_language(digits)

    pattern_text = to_python_regex(node)
    key = (pattern_text, side, anchored)
    cached = _SIDE_LANG_MEMO.get(key)
    if cached is not None:
        return cached
    if side == "left":
        body = pattern_text + ":"
        if anchored:
            compiled = re.compile("^(?:" + body + ")")
            language = {n for n in range(65536) if compiled.match(_UNIVERSE[n] + ":")}
        else:
            compiled = re.compile(body)
            language = {n for n in range(65536) if compiled.search(_UNIVERSE[n] + ":")}
    else:
        body = ":" + pattern_text
        if anchored:
            compiled = re.compile("(?:" + body + ")$")
            language = {n for n in range(65536) if compiled.search(":" + _UNIVERSE[n])}
        else:
            compiled = re.compile(body)
            language = {n for n in range(65536) if compiled.search(":" + _UNIVERSE[n])}
    _SIDE_LANG_MEMO[key] = language
    return language


def _values_to_node(values: Sequence[int], style: str) -> Optional[RegexNode]:
    strings = [str(v) for v in sorted(values)]
    if not strings:
        return None
    if style == "mindfa":
        return dfa_to_regex(minimize_dfa(dfa_from_strings(strings)))
    if len(strings) == 1:
        return rast.concat(*(Literal(c) for c in strings[0]))
    return rast.alternate(
        *(rast.concat(*(Literal(c) for c in text)) for text in strings)
    )


def rewrite_community_regex(
    pattern: str,
    asn_mapper: Callable[[int], int],
    value_mapper: Callable[[int], int],
    style: str = "alternation",
    max_language: int = 2048,
    anchored: bool = False,
) -> RewriteOutcome:
    """Rewrite a community-list regexp (``ASN:value`` pairs)."""
    try:
        tree = parse_regex(pattern)
    except RegexParseError as exc:
        return RewriteOutcome(
            original=pattern,
            rewritten=NEVER_MATCH_PATTERN,
            changed=True,
            warnings=["unparseable regexp replaced: {}".format(exc)],
        )
    branches = list(tree.parts) if isinstance(tree, Alt) else [tree]
    new_branches: List[RegexNode] = []
    warnings: List[str] = []
    seen: Set[int] = set()
    changed = False

    for branch in branches:
        if not _mentions_digit(branch):
            new_branches.append(branch)
            continue
        split = _split_at_colon(branch)
        if split is None:
            # No colon: the branch constrains ASNs only (e.g. `_701_`);
            # treat it with the AS-path machinery semantics.
            sub = rewrite_aspath_regex(
                branch.to_pattern(), asn_mapper, style, max_language, anchored
            )
            warnings.extend(sub.warnings)
            seen.update(sub.asns_seen)
            changed = changed or sub.changed
            new_branches.append(parse_regex(sub.rewritten))
            continue
        left, right = split

        # Keep any boundary/anchor decorations around the pair.
        left_parts = _flatten_concat(left)
        lead: List[RegexNode] = []
        while left_parts and isinstance(left_parts[0], (Boundary, Anchor)):
            lead.append(left_parts.pop(0))
        right_parts = _flatten_concat(right)
        tail: List[RegexNode] = []
        while right_parts and isinstance(right_parts[-1], (Boundary, Anchor)):
            tail.insert(0, right_parts.pop())
        left_core = rast.concat(*left_parts)
        right_core = rast.concat(*right_parts)

        left_lang = sorted(_side_language(left_core, "left", anchored))
        right_lang = sorted(_side_language(right_core, "right", anchored))
        if not left_lang or not right_lang:
            warnings.append(
                "community branch {!r} has an empty side language; replaced "
                "by an inert pattern".format(branch.to_pattern())
            )
            changed = True
            continue
        if len(left_lang) > max_language or len(right_lang) > max_language:
            warnings.append(
                "community branch {!r} accepts too many values "
                "({} ASNs x {} values); replaced by an inert pattern".format(
                    branch.to_pattern(), len(left_lang), len(right_lang)
                )
            )
            changed = True
            continue
        seen.update(n for n in left_lang if is_public_asn(n))
        mapped_left = [asn_mapper(n) for n in left_lang]
        mapped_right = [value_mapper(v) for v in right_lang]
        left_node = _values_to_node(mapped_left, style)
        right_node = _values_to_node(mapped_right, style)
        new_branches.append(
            rast.concat(*lead, left_node, Literal(":"), right_node, *tail)
        )
        changed = True

    if not new_branches:
        return RewriteOutcome(pattern, NEVER_MATCH_PATTERN, True, warnings, seen)
    rewritten = rast.alternate(*new_branches)
    if isinstance(rewritten, Alt):
        text = "(" + rewritten.to_pattern() + ")"
    else:
        text = rewritten.to_pattern()
    return RewriteOutcome(pattern, text, changed or text != pattern, warnings, seen)
