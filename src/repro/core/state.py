"""Persisting and restoring anonymizer mapping state.

The paper's single-blind workflow is ongoing: an owner uploads anonymized
configs today and again after the next maintenance window, and the two
snapshots must anonymize *consistently* (the same loopback, route-map
name, or peer ASN must map identically across uploads) or longitudinal
research is impossible.

Everything derived purely from the salt (ASN/community Feistel, string
hashes, Crypto-PAn) is automatically consistent.  The IP trie is not: its
flip bits also depend on *insertion order* (that is what enables subnet
shaping), so the trie must be carried forward.  This module serializes the
full mapping state to a JSON document:

    state = export_state(anonymizer)         # dict (JSON-serializable)
    save_state(anonymizer, path)
    anonymizer2 = Anonymizer(config)
    load_state(anonymizer2, path)            # same mappings as anonymizer

The state file contains the trie flip bits and the token-hash cache —
i.e., material that together with the salt reproduces the mapping.  Treat
it with the same secrecy as the salt: it reveals original->anonymized
pairs for everything mapped so far.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.core.engine import Anonymizer

STATE_FORMAT_VERSION = 1


class StateError(ValueError):
    """A mapping-state file cannot be used (corrupt, truncated, wrong
    version, or incompatible with this anonymizer).

    Subclasses :class:`ValueError` so existing callers that catch
    ``ValueError`` keep working; the CLI catches :class:`StateError` to
    turn any of these into a one-line error and a nonzero exit instead of
    a raw traceback.
    """


def export_state(anonymizer: Anonymizer) -> Dict:
    """Capture the mapping state of *anonymizer* as a JSON-able dict."""
    ip_map = anonymizer.ip_map
    state = {
        "format_version": STATE_FORMAT_VERSION,
        "ip_trie": {
            # JSON keys must be strings; "depth:prefix" -> flip bit.
            "{}:{}".format(depth, prefix): flip
            for (depth, prefix), flip in ip_map._flips.items()
        },
        "ip_rng_state": _encode_rng_state(ip_map._rng.getstate()),
        "ip_counters": {
            "collision_walks": ip_map.collision_walks,
            "addresses_mapped": ip_map.addresses_mapped,
        },
        "hash_cache": dict(anonymizer.hasher._cache),
        "seen_asns": sorted(anonymizer.report.seen_asns),
        "hash_length": anonymizer.hasher.length,
        # The recognizer plugin families active when this state was
        # written.  Import refuses a mismatch: mapping state produced
        # under one rule set must not silently serve another.
        "active_plugins": sorted(
            getattr(anonymizer, "active_plugin_families", ())
        ),
    }
    ip6_map = getattr(anonymizer, "ip6_map", None)
    if ip6_map is not None:
        state["ip6_trie"] = {
            "{}:{}".format(depth, prefix): flip
            for (depth, prefix), flip in ip6_map._flips.items()
        }
        state["ip6_rng_state"] = _encode_rng_state(ip6_map._rng.getstate())
        state["ip6_counters"] = {
            "collision_walks": ip6_map.collision_walks,
            "addresses_mapped": ip6_map.addresses_mapped,
        }
    return state


def import_state(anonymizer: Anonymizer, state: Dict) -> None:
    """Restore mapping state captured by :func:`export_state`.

    The anonymizer must have been constructed with the same salt and
    compatible configuration; the salt itself is never stored.
    """
    if not isinstance(state, dict):
        raise StateError(
            "state document must be a JSON object, not {}".format(
                type(state).__name__
            )
        )
    version = state.get("format_version")
    if version != STATE_FORMAT_VERSION:
        raise StateError(
            "unsupported state format version {!r} (expected {})".format(
                version, STATE_FORMAT_VERSION
            )
        )
    if state.get("hash_length") != anonymizer.hasher.length:
        raise StateError(
            "state was written with hash_length={} but this anonymizer "
            "uses {}".format(state.get("hash_length"), anonymizer.hasher.length)
        )
    if "active_plugins" in state:
        # Documents written before the plugin registry existed lack the
        # key and import unchanged; documents that carry it must match.
        try:
            stored_plugins = sorted(str(f) for f in state["active_plugins"])
        except TypeError as exc:
            raise StateError(
                "state document is malformed ({}: {}); was the file "
                "truncated or edited?".format(type(exc).__name__, exc)
            ) from exc
        active = sorted(getattr(anonymizer, "active_plugin_families", ()))
        if stored_plugins != active:
            raise StateError(
                "state was written with plugins {} but this anonymizer "
                "runs {}; re-run with a matching --plugins set".format(
                    stored_plugins or "[]", active or "[]"
                )
            )
    ip6_map = getattr(anonymizer, "ip6_map", None)
    try:
        flips = {
            (int(key.split(":")[0]), int(key.split(":")[1])): int(flip)
            for key, flip in state["ip_trie"].items()
        }
        rng_state = _decode_rng_state(state["ip_rng_state"])
        collision_walks = state["ip_counters"]["collision_walks"]
        addresses_mapped = state["ip_counters"]["addresses_mapped"]
        hash_cache = dict(state["hash_cache"])
        seen_asns = {int(a) for a in state.get("seen_asns", [])}
        ip6 = None
        if ip6_map is not None and "ip6_trie" in state:
            ip6 = (
                {
                    (int(key.split(":")[0]), int(key.split(":")[1])): int(flip)
                    for key, flip in state["ip6_trie"].items()
                },
                _decode_rng_state(state["ip6_rng_state"]),
                int(state["ip6_counters"]["collision_walks"]),
                int(state["ip6_counters"]["addresses_mapped"]),
            )
    except (KeyError, TypeError, ValueError, AttributeError, IndexError) as exc:
        raise StateError(
            "state document is malformed ({}: {}); was the file truncated "
            "or edited?".format(type(exc).__name__, exc)
        ) from exc
    # All fields decoded and validated before any mutation: a malformed
    # document can never leave the anonymizer half-restored.
    ip_map = anonymizer.ip_map
    ip_map._flips = flips
    ip_map.invalidate_cache()  # the trie was replaced wholesale
    ip_map._rng.setstate(rng_state)
    ip_map.collision_walks = collision_walks
    ip_map.addresses_mapped = addresses_mapped
    if ip6 is not None:
        ip6_map._flips = ip6[0]
        ip6_map.invalidate_cache()
        ip6_map._rng.setstate(ip6[1])
        ip6_map.collision_walks = ip6[2]
        ip6_map.addresses_mapped = ip6[3]
    anonymizer.hasher._cache = hash_cache
    anonymizer.report.seen_asns.update(seen_asns)


def export_state_json(anonymizer: Anonymizer) -> str:
    """The anonymizer's mapping state as a JSON string.

    The service's ``GET /sessions/<id>/state`` endpoint returns this so
    an owner can carry a session's mappings across daemon restarts.
    Treat the document with the same secrecy as the salt.
    """
    return json.dumps(export_state(anonymizer), sort_keys=True)


def import_state_json(anonymizer: Anonymizer, text: str) -> None:
    """Restore mapping state from a JSON string (see :func:`export_state_json`).

    Raises :class:`StateError` for anything that is not a valid state
    document — never a raw ``json.JSONDecodeError``.
    """
    try:
        state = json.loads(text)
    except ValueError as exc:
        raise StateError(
            "state document is not valid JSON (corrupt or truncated): "
            "{}".format(exc)
        ) from exc
    import_state(anonymizer, state)


def save_state(anonymizer: Anonymizer, path: str) -> None:
    """Write the anonymizer's mapping state to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump(export_state(anonymizer), handle)


def load_state(anonymizer: Anonymizer, path: str) -> None:
    """Load mapping state previously written by :func:`save_state`.

    Raises :class:`StateError` (never a raw ``json.JSONDecodeError`` or
    ``KeyError`` traceback) for an unreadable, corrupt, truncated, or
    incompatible state file — with the path in the message so the
    operator knows exactly which file to inspect.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            state = json.load(handle)
    except OSError as exc:
        raise StateError("cannot read state file {}: {}".format(path, exc)) from exc
    except ValueError as exc:  # json.JSONDecodeError subclasses ValueError
        raise StateError(
            "state file {} is not valid JSON (corrupt or truncated): "
            "{}".format(path, exc)
        ) from exc
    try:
        import_state(anonymizer, state)
    except StateError as exc:
        raise StateError("state file {}: {}".format(path, exc)) from exc


class StateCursor:
    """A position in an anonymizer's (append-only) mapping state.

    The IP-trie flip dict and the token-hash cache only ever *gain*
    entries (a flip bit or a hash is never rewritten), and CPython dicts
    preserve insertion order — so "everything mapped since cursor" is
    simply the entries past the recorded lengths.  ``seen_asns`` is a
    set (no stable order), so the cursor keeps a frozen copy instead.
    The service journal uses cursors to write per-request state *deltas*
    rather than full state documents.
    """

    __slots__ = ("flips_len", "cache_len", "seen_asns", "ip6_flips_len")

    def __init__(self, anonymizer: Anonymizer):
        self.flips_len = len(anonymizer.ip_map._flips)
        self.cache_len = len(anonymizer.hasher._cache)
        self.seen_asns = frozenset(anonymizer.report.seen_asns)
        ip6_map = getattr(anonymizer, "ip6_map", None)
        self.ip6_flips_len = 0 if ip6_map is None else len(ip6_map._flips)


def state_delta_since(anonymizer: Anonymizer, cursor: StateCursor) -> Dict:
    """Mapping-state changes since *cursor*, as a JSON-able dict.

    Mirrors :func:`export_state` field for field, but carries only new
    trie flips / hash-cache entries / ASNs.  The RNG state is included
    only while the trie is unfrozen (after a freeze, flip bits are a
    pure function of the salt and the RNG is never consulted again), and
    the small absolute counters always travel.  Applying every delta in
    order on top of a snapshot reproduces :func:`export_state` exactly.
    """
    from itertools import islice

    ip_map = anonymizer.ip_map
    flip_items = islice(ip_map._flips.items(), cursor.flips_len, None)
    cache_items = islice(
        anonymizer.hasher._cache.items(), cursor.cache_len, None
    )
    delta: Dict = {
        "ip_trie": {
            "{}:{}".format(depth, prefix): flip
            for (depth, prefix), flip in flip_items
        },
        "hash_cache": dict(cache_items),
        "seen_asns": sorted(anonymizer.report.seen_asns - cursor.seen_asns),
        "ip_counters": {
            "collision_walks": ip_map.collision_walks,
            "addresses_mapped": ip_map.addresses_mapped,
        },
    }
    if not ip_map.frozen:
        delta["ip_rng_state"] = _encode_rng_state(ip_map._rng.getstate())
    ip6_map = getattr(anonymizer, "ip6_map", None)
    if ip6_map is not None:
        ip6_items = islice(ip6_map._flips.items(), cursor.ip6_flips_len, None)
        delta["ip6_trie"] = {
            "{}:{}".format(depth, prefix): flip
            for (depth, prefix), flip in ip6_items
        }
        delta["ip6_counters"] = {
            "collision_walks": ip6_map.collision_walks,
            "addresses_mapped": ip6_map.addresses_mapped,
        }
        if not ip6_map.frozen:
            delta["ip6_rng_state"] = _encode_rng_state(ip6_map._rng.getstate())
    return delta


def apply_state_delta(anonymizer: Anonymizer, delta: Dict) -> None:
    """Apply one :func:`state_delta_since` document (journal replay).

    Like :func:`import_state`, everything is decoded and validated
    before any mutation, so a malformed delta raises :class:`StateError`
    without leaving the anonymizer half-updated.
    """
    if not isinstance(delta, dict):
        raise StateError(
            "state delta must be a JSON object, not {}".format(
                type(delta).__name__
            )
        )
    try:
        flips = {
            (int(key.split(":")[0]), int(key.split(":")[1])): int(flip)
            for key, flip in delta["ip_trie"].items()
        }
        hash_cache = dict(delta["hash_cache"])
        seen_asns = {int(a) for a in delta.get("seen_asns", [])}
        counters = delta["ip_counters"]
        collision_walks = int(counters["collision_walks"])
        addresses_mapped = int(counters["addresses_mapped"])
        rng_state: Optional[tuple] = None
        if "ip_rng_state" in delta:
            rng_state = _decode_rng_state(delta["ip_rng_state"])
        ip6_map = getattr(anonymizer, "ip6_map", None)
        ip6 = None
        if ip6_map is not None and "ip6_trie" in delta:
            ip6_counters = delta["ip6_counters"]
            ip6 = (
                {
                    (int(key.split(":")[0]), int(key.split(":")[1])): int(flip)
                    for key, flip in delta["ip6_trie"].items()
                },
                (
                    _decode_rng_state(delta["ip6_rng_state"])
                    if "ip6_rng_state" in delta
                    else None
                ),
                int(ip6_counters["collision_walks"]),
                int(ip6_counters["addresses_mapped"]),
            )
    except (KeyError, TypeError, ValueError, AttributeError, IndexError) as exc:
        raise StateError(
            "state delta is malformed ({}: {}); was the journal record "
            "truncated or edited?".format(type(exc).__name__, exc)
        ) from exc
    ip_map = anonymizer.ip_map
    ip_map._flips.update(flips)
    # Deltas only ever append nodes the journaling session created, but a
    # replayed key could in principle collide with a locally-created node
    # (pre-freeze RNG draws are position-dependent); drop the raw-map memo
    # so replay can never serve a mapping computed from stale flips.
    ip_map.invalidate_cache()
    if rng_state is not None:
        ip_map._rng.setstate(rng_state)
    ip_map.collision_walks = collision_walks
    ip_map.addresses_mapped = addresses_mapped
    if ip6 is not None:
        ip6_map._flips.update(ip6[0])
        ip6_map.invalidate_cache()
        if ip6[1] is not None:
            ip6_map._rng.setstate(ip6[1])
        ip6_map.collision_walks = ip6[2]
        ip6_map.addresses_mapped = ip6[3]
    anonymizer.hasher._cache.update(hash_cache)
    anonymizer.report.seen_asns.update(seen_asns)


def _encode_rng_state(state):
    """random.Random state -> JSON-able (nested tuples become lists)."""
    kind, internal, gauss = state
    return [kind, list(internal), gauss]


def _decode_rng_state(encoded):
    kind, internal, gauss = encoded
    return (kind, tuple(int(v) for v in internal), gauss)
