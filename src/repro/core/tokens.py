"""Token segmentation and the basic hash-everything-unknown pass.

This implements the paper's "basic method" (Section 4.1) plus the two
segmentation rules of Section 4.2:

* **R1** — words are segmented into maximal alphabetic runs and
  non-alphabetic remainders, so ``Ethernet0/0`` is looked up as
  ``ethernet`` (pass-list hit) plus ``0/0`` (kept), instead of being
  hashed whole and destroying the interface-type information.
* **R2** — each alphabetic run is checked against the pass-list
  (case-insensitively); runs not found are hashed with salted SHA1.
  Non-alphabetic runs (numbers, punctuation, IP addresses already mapped
  by earlier rules) are never touched here.

Per-run hashing preserves referential integrity *and* structure: the
route-map name ``UUNET-import`` becomes ``<digest>-import`` everywhere it
appears, keeping the privileged part hidden while the innocuous part stays
readable.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Tuple

from repro.core.passlist import PassList
from repro.core.strings import StringHasher

_ALPHA_RUN = re.compile(r"[A-Za-z]+|[^A-Za-z]+")

#: Whitespace splitter shared with the engine's token pass (must mirror
#: :meth:`repro.core.line.SegmentedLine.map_live_tokens` exactly).
_WS_SPLIT = re.compile(r"(\s+)")

#: Bound on the text-span memo (entries).  Keys are whole line/segment
#: texts, so unlike the word cache this one is explicitly capped.
_TEXT_CACHE_MAX = 1 << 16


def segment_word(word: str) -> List[Tuple[str, bool]]:
    """Split *word* into runs; each item is ``(run, is_alphabetic)``."""
    return [(run, run[0].isalpha()) for run in _ALPHA_RUN.findall(word)]


class TokenAnonymizer:
    """The final per-word pass: pass-list lookup + salted hashing.

    Whole words memoize: config vocabulary is tiny relative to corpus size
    (the same ``Ethernet0/0``, ``ip``, ``255`` tokens repeat millions of
    times), so each distinct word is segmented and looked up once and the
    cache replays the result — including its contribution to the
    ``tokens_seen`` / ``tokens_hashed`` counters, which therefore stay
    exact occurrence counts.
    """

    def __init__(self, passlist: PassList, hasher: StringHasher):
        self.passlist = passlist
        self.hasher = hasher
        self.tokens_seen = 0
        self.tokens_hashed = 0
        #: word -> (anonymized word, tokens_seen delta, tokens_hashed delta)
        self._word_cache = {}
        #: text span -> (anonymized span, seen delta, hashed delta); spans
        #: are whole lines / live segments, which repeat heavily in config
        #: corpora ("!", " exit", " no ip directed-broadcast", the
        #: inter-match residue of rewritten lines).  Bounded; derived
        #: purely from the word cache, so it needs no separate snapshot.
        self._text_cache = {}

    def _compute_word(self, word: str):
        out = []
        seen = hashed = 0
        for run, is_alpha in segment_word(word):
            if not is_alpha:
                out.append(run)
                continue
            seen += 1
            if run in self.passlist:
                out.append(run)
            else:
                hashed += 1
                out.append(self.hasher.hash_token(run))
        entry = ("".join(out), seen, hashed)
        self._word_cache[word] = entry
        return entry

    def anonymize_word(self, word: str) -> str:
        """Anonymize one whitespace-delimited word."""
        entry = self._word_cache.get(word)
        if entry is None:
            entry = self._compute_word(word)
        result, seen, hashed = entry
        self.tokens_seen += seen
        self.tokens_hashed += hashed
        return result

    def anonymize_text(self, text: str) -> str:
        """Anonymize every word of a text span, whitespace preserved.

        Byte-identical to mapping :meth:`anonymize_word` over a
        ``(\\s+)``-captured split (the counters replay exactly, as with the
        word cache), collapsed to one dict hit for repeated spans.
        """
        entry = self._text_cache.get(text)
        if entry is None:
            out = []
            seen = hashed = 0
            word_cache = self._word_cache
            for part in _WS_SPLIT.split(text):
                if not part or part[0].isspace():
                    out.append(part)
                    continue
                wentry = word_cache.get(part)
                if wentry is None:
                    wentry = self._compute_word(part)
                out.append(wentry[0])
                seen += wentry[1]
                hashed += wentry[2]
            entry = ("".join(out), seen, hashed)
            if len(self._text_cache) < _TEXT_CACHE_MAX:
                self._text_cache[text] = entry
        self.tokens_seen += entry[1]
        self.tokens_hashed += entry[2]
        return entry[0]

    def warm(self, word: str) -> None:
        """Pre-compute *word*'s anonymization without counting it.

        Used by the mapping-freeze phase: the salted hash of every
        distinct word is computed up front so the rewrite phase (and every
        parallel worker shipped the warmed cache) only does dict lookups.
        """
        if word not in self._word_cache:
            self._compute_word(word)

    def iter_unknown_runs(self, text: str) -> Iterator[str]:
        """Yield the alphabetic runs in *text* that are not on the pass-list."""
        for word in text.split():
            for run, is_alpha in segment_word(word):
                if is_alpha and run not in self.passlist:
                    yield run
