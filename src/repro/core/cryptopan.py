"""Cryptography-based prefix-preserving anonymization (Xu et al. style).

The paper (Section 4.3) contrasts two prefix-preserving schemes: Xu's
cryptographic construction, whose flip bits are a keyed pseudorandom
function of the address prefix (so "very little state must be shared to
consistently map addresses, making it amenable to parallelization"), and
Minshall's data-structure scheme, which the paper adopts because a stored
trie can be *shaped* to honor class preservation and subnet-address
preservation.

This module implements the Xu-style scheme as the comparison point: the
flip bit at depth *i* is ``HMAC(key, first-i-bits) & 1``.  It is stateless
(two processes with the key produce identical mappings with no
coordination) and supports class preservation (a static constraint) but
*not* subnet-address shaping (which requires insertion-order state) — the
trade-off benchmarked in experiment E13.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional, Union

from repro.core.ipanon import SpecialAddresses
from repro.core.secrets import derive_key, normalize_salt
from repro.netutil import IPV4_MAX, int_to_ip, ip_to_int


class CryptoPanMap:
    """Stateless keyed prefix-preserving IPv4 map."""

    _CLASS_NODES = frozenset((depth, (1 << depth) - 1) for depth in range(4))

    def __init__(
        self,
        salt: Union[bytes, str] = b"",
        class_preserving: bool = True,
        preserve_specials: bool = True,
        specials: Optional[SpecialAddresses] = None,
        collision_policy: str = "allow",
    ) -> None:
        self.collision_policy = collision_policy
        self.key = derive_key(normalize_salt(salt), "cryptopan-flip-prf")
        self.class_preserving = class_preserving
        self.preserve_specials = preserve_specials
        self.specials = specials if specials is not None else SpecialAddresses()
        self.collision_walks = 0
        self._flip_cache = {}

    def _flip(self, depth: int, prefix: int) -> int:
        if self.class_preserving and (depth, prefix) in self._CLASS_NODES:
            return 0
        key = (depth, prefix)
        cached = self._flip_cache.get(key)
        if cached is None:
            material = depth.to_bytes(1, "big") + prefix.to_bytes(4, "big")
            digest = hmac.new(self.key, material, hashlib.sha256).digest()
            cached = digest[0] & 1
            self._flip_cache[key] = cached
        return cached

    def raw_map(self, value: int) -> int:
        if not 0 <= value <= IPV4_MAX:
            raise ValueError("not a 32-bit address: {!r}".format(value))
        output = 0
        for depth in range(32):
            prefix = value >> (32 - depth)
            bit = (value >> (31 - depth)) & 1
            output = (output << 1) | (bit ^ self._flip(depth, prefix))
        return output

    def map_int(self, value: int) -> int:
        if self.preserve_specials and value in self.specials:
            return value
        mapped = self.raw_map(value)
        if self.preserve_specials and mapped in self.specials:
            if self.collision_policy == "allow":
                return mapped
            while mapped in self.specials:
                self.collision_walks += 1
                mapped = self.raw_map(mapped)
        return mapped

    def map_address(self, text: str) -> str:
        return int_to_ip(self.map_int(ip_to_int(text)))
