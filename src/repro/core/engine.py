"""The anonymization engine: ties the rule pipeline together.

Per config file::

    text -> lines -> [comment stripper R3-R5]
         -> per line: [secret rules R26-R28] -> [ASN rules R10-R21]
                      -> [IP rules R22-R25] -> [misc rules R6-R9]
                      -> [token pass R1-R2]
         -> text

One :class:`Anonymizer` instance holds the mapping state shared by all the
files of one network, which is what preserves cross-file relationships
(the same loopback address, route-map name, or peer ASN anonymizes
identically everywhere it appears in the network).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.asn import AsnPermutation
from repro.core.comments import CommentStripper
from repro.core.community import CommunityAnonymizer
from repro.core.config import AnonymizerConfig
from repro.core.context import RuleContext
from repro.core.ipanon import PrefixPreservingMap
from repro.core.line import SegmentedLine
from repro.core.report import AnonymizationReport
from repro.core.junos_rules import build_junos_rules
from repro.core.rulebase import Rule
from repro.core.rules import build_line_rules
from repro.configmodel.junos_parser import looks_like_junos
from repro.core.strings import StringHasher
from repro.core.tokens import TokenAnonymizer
from repro.netutil import ip_to_int


@dataclass
class AnonymizedNetwork:
    """Result of anonymizing all the configs of one network."""

    configs: Dict[str, str]
    report: AnonymizationReport
    name_map: Dict[str, str] = field(default_factory=dict)


class Anonymizer:
    """Structure-preserving config anonymizer (the paper's contribution)."""

    def __init__(self, config: Optional[AnonymizerConfig] = None, **kwargs):
        if config is None:
            config = AnonymizerConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a config object or keyword options, not both")
        self.config = config
        salt = config.salt

        self.ip_map = PrefixPreservingMap(
            salt,
            class_preserving=config.class_preserving,
            subnet_shaping=config.subnet_shaping,
            preserve_specials=config.preserve_specials,
            collision_policy=config.ip_collision_policy,
        )
        self.asn_map = AsnPermutation(salt)
        self.community = CommunityAnonymizer(salt, asn_map=self.asn_map)
        self.hasher = StringHasher(salt, length=config.hash_length)
        self.token_anon = TokenAnonymizer(config.passlist, self.hasher)
        self._ios_stripper = CommentStripper(junos=False)
        self._junos_stripper = CommentStripper(junos=True)
        ios_rules = [
            rule
            for rule in build_line_rules()
            if rule.rule_id not in config.disabled_rules
        ]
        junos_extra = [
            rule
            for rule in build_junos_rules()
            if rule.rule_id not in config.disabled_rules
        ]
        self.rules: List[Rule] = ios_rules
        self._junos_rules: List[Rule] = junos_extra + ios_rules
        self.report = AnonymizationReport()

    def _syntax_for(self, text: str) -> str:
        if self.config.syntax != "auto":
            return self.config.syntax
        return "junos" if looks_like_junos(text) else "ios"

    def _make_context(self, source: str) -> RuleContext:
        """A rule context bound to this anonymizer's shared maps."""
        return RuleContext(
            config=self.config,
            ip_map=self.ip_map,
            asn_map=self.asn_map,
            community=self.community,
            hasher=self.hasher,
            token_anon=self.token_anon,
            report=AnonymizationReport(),
            source=source,
        )

    # -- public API ------------------------------------------------------

    def anonymize_text(self, text: str, source: str = "<config>") -> str:
        """Anonymize one config file's text."""
        lines = text.splitlines()
        syntax = self._syntax_for(text)
        rules = self._junos_rules if syntax == "junos" else self.rules
        stripper = self._junos_stripper if syntax == "junos" else self._ios_stripper
        file_report = AnonymizationReport()
        file_report.lines_in = len(lines)
        ctx = RuleContext(
            config=self.config,
            ip_map=self.ip_map,
            asn_map=self.asn_map,
            community=self.community,
            hasher=self.hasher,
            token_anon=self.token_anon,
            report=file_report,
            source=source,
        )

        if self.config.strip_comments:
            lines, comment_stats = stripper.strip(lines)
            file_report.words_in = comment_stats.total_words
            file_report.comment_words_removed = comment_stats.comment_words
            file_report.comment_lines_removed = comment_stats.comment_lines
            file_report.banners_removed = comment_stats.banners
            file_report.record_rule_hit("R3", comment_stats.banners)
            file_report.record_rule_hit("R4+R5", comment_stats.comment_lines)
            for message in comment_stats.flagged:
                file_report.flag(source, 0, "R3", message)
        else:
            file_report.words_in = sum(len(line.split()) for line in lines)

        out_lines: List[str] = []
        hashed_before = self.token_anon.tokens_hashed
        seen_before = self.token_anon.tokens_seen
        for line_number, raw_line in enumerate(lines, start=1):
            ctx.line_number = line_number
            line = SegmentedLine(raw_line)
            for rule in rules:
                hits = rule.apply(line, ctx)
                file_report.record_rule_hit(rule.rule_id, hits)
            line.map_live_tokens(self.token_anon.anonymize_word)
            out_lines.append(line.render())
        file_report.tokens_hashed = self.token_anon.tokens_hashed - hashed_before
        file_report.tokens_seen = self.token_anon.tokens_seen - seen_before
        file_report.lines_out = len(out_lines)

        self.report.merge(file_report)
        result = "\n".join(out_lines)
        if text.endswith("\n"):
            result += "\n"
        return result

    def preload_addresses(self, configs: Dict[str, str]) -> int:
        """First pass of two-pass anonymization: pre-insert every address.

        The paper's subnet-address shaping is best-effort because it
        depends on insertion order ("whenever they are inserted before
        colliding hosts").  Scanning the whole corpus first and inserting
        addresses most-trailing-zeros-first guarantees every subnet
        address is shaped, and makes the IP mapping independent of file
        processing order (so files can then be anonymized in any order —
        the property the paper attributes to Xu's stateless scheme).

        Returns the number of distinct addresses preloaded.
        """
        import re as _re

        from repro.netutil import is_ipv4, trailing_zero_bits

        quad = _re.compile(r"\b(\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3})\b")
        seen = set()
        for text in configs.values():
            for match in quad.finditer(text):
                if is_ipv4(match.group(1)):
                    seen.add(ip_to_int(match.group(1)))
        ordered = sorted(seen, key=lambda v: (-trailing_zero_bits(v), v))
        for value in ordered:
            self.ip_map.map_int(value)
        return len(seen)

    def anonymize_network(
        self, configs: Dict[str, str], two_pass: bool = False
    ) -> AnonymizedNetwork:
        """Anonymize every config of a network with shared mapping state.

        File names themselves usually embed hostnames, so the returned
        mapping renames each file by hashing the alphabetic runs of its
        name through the same token pass.

        ``two_pass=True`` runs :meth:`preload_addresses` first so subnet
        shaping is guaranteed rather than best-effort.
        """
        if two_pass:
            self.preload_addresses(configs)
        out: Dict[str, str] = {}
        name_map: Dict[str, str] = {}
        for name in sorted(configs):
            anonymized = self.anonymize_text(configs[name], source=name)
            # Hash per dot-label, exactly like the hostname/domain rule
            # (R9), so a renamed file still matches its hashed hostname.
            new_name = ".".join(
                self.hasher.hash_token(label) for label in name.split(".")
            )
            name_map[name] = new_name
            out[new_name] = anonymized
        return AnonymizedNetwork(configs=out, report=self.report, name_map=name_map)
