"""The anonymization engine: ties the rule pipeline together.

Per config file::

    text -> lines -> [comment stripper R3-R5]
         -> per line: [rule prefilter gates]
                      [secret rules R26-R28] -> [ASN rules R10-R21]
                      -> [IP rules R22-R25] -> [misc rules R6-R9]
                      -> [token pass R1-R2]
         -> text

One :class:`Anonymizer` instance holds the mapping state shared by all the
files of one network, which is what preserves cross-file relationships
(the same loopback address, route-map name, or peer ASN anonymizes
identically everywhere it appears in the network).

Two pipeline shapes are supported:

* **One-pass (default)** — files are rewritten in sorted order; the IP
  trie grows as addresses are first seen, so subnet shaping is
  best-effort and the mapping depends on file order.
* **Freeze-then-rewrite** (``two_pass=True``, and always when
  ``jobs > 1``) — :meth:`Anonymizer.freeze_mappings` scans the whole
  corpus once, preloading every address (most-trailing-zeros-first, so
  subnet shaping is guaranteed), pre-hashing the corpus vocabulary, and
  pre-mapping ASNs/communities; the IP trie is then *frozen* (future flip
  bits become a pure function of the owner secret).  After the freeze, a
  file's anonymized bytes depend only on (salt, file text) — not on which
  other files exist, their order, or which process rewrites them — which
  is what lets :mod:`repro.core.parallel` fan rewriting out over worker
  processes with byte-identical results.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.asn import AsnPermutation
from repro.core.comments import CommentStripper
from repro.core.community import CommunityAnonymizer
from repro.core.config import AnonymizerConfig
from repro.core.context import RuleContext
from repro.core.faults import build_fault_plan
from repro.core.ipanon import PrefixPreservingMap
from repro.core.line import SegmentedLine
from repro.core.dispatch import CompiledDispatch
from repro.core.report import AnonymizationReport
from repro.core.junos_rules import build_junos_rules
from repro.core.rulebase import Rule
from repro.core.rules import build_line_rules
from repro.configmodel.junos_parser import looks_like_junos
from repro.core.strings import StringHasher
from repro.core.tokens import TokenAnonymizer
from repro.netutil import ip_to_int
from repro.plugins.base import FinalLine
from repro.plugins.registry import resolve_active_plugins

#: Dotted-quad scanner used by the corpus preload (compiled once at import;
#: it is the hot pattern of the freeze phase).
DOTTED_QUAD_RE = re.compile(r"\b(\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3})\b")

#: Decimal-ASN contexts warmed by the freeze phase (a best-effort union of
#: the R10-R21/J1 locating contexts; warming is a pure cache fill, so
#: missing a context costs speed, never correctness).
_ASN_CONTEXT_RE = re.compile(
    r"\b(?:router bgp|remote-as|local-as|peer-as|autonomous-system|"
    r"bgp confederation identifier|set origin egp) (\d+)\b",
    re.IGNORECASE,
)

#: Community-shaped tokens warmed by the freeze phase.
_COMMUNITY_TOKEN_RE = re.compile(r"\b\d{1,5}:\d{1,5}\b")



@dataclass
class AnonymizedNetwork:
    """Result of anonymizing all the configs of one network."""

    configs: Dict[str, str]
    report: AnonymizationReport
    name_map: Dict[str, str] = field(default_factory=dict)


@dataclass
class FreezeStats:
    """What :meth:`Anonymizer.freeze_mappings` preloaded."""

    addresses: int = 0
    system_ids: int = 0
    words_warmed: int = 0
    asns_warmed: int = 0
    communities_warmed: int = 0
    #: Distinct IPv6 addresses preloaded by the ``ipv6`` plugin's freeze
    #: scan (0 when that family is inactive).
    ipv6_addresses: int = 0


class Anonymizer:
    """Structure-preserving config anonymizer (the paper's contribution)."""

    def __init__(self, config: Optional[AnonymizerConfig] = None, **kwargs):
        if config is None:
            config = AnonymizerConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a config object or keyword options, not both")
        self.config = config
        salt = config.salt

        self.ip_map = PrefixPreservingMap(
            salt,
            class_preserving=config.class_preserving,
            subnet_shaping=config.subnet_shaping,
            preserve_specials=config.preserve_specials,
            collision_policy=config.ip_collision_policy,
        )
        self.asn_map = AsnPermutation(salt)
        self.community = CommunityAnonymizer(salt, asn_map=self.asn_map)
        self.hasher = StringHasher(salt, length=config.hash_length)
        self.token_anon = TokenAnonymizer(config.passlist, self.hasher)
        self._ios_stripper = CommentStripper(junos=False)
        self._junos_stripper = CommentStripper(junos=True)
        ios_rules = [
            rule
            for rule in build_line_rules()
            if rule.rule_id not in config.disabled_rules
        ]
        junos_extra = [
            rule
            for rule in build_junos_rules()
            if rule.rule_id not in config.disabled_rules
        ]
        # Compose the active recognizer plugin set (see
        # :mod:`repro.plugins`).  Plugin line rules run *before* the
        # builtin rules — vendor-specific secret formats must not be
        # half-consumed by the generic patterns — and plugin rules with
        # ``apply=None`` are structural (realized by block filters), so
        # they stay out of the line pipeline just like R1-R5.
        self.ip6_map = None
        self.plugins = resolve_active_plugins(config.plugins)
        self.active_plugin_families: Tuple[str, ...] = tuple(
            plugin.family for plugin in self.plugins
        )
        self._block_filters = []
        plugin_rules: List[Rule] = []
        plugin_words: List[str] = []
        for plugin in self.plugins:
            plugin.setup(self)
            plugin_rules.extend(
                rule
                for rule in plugin.build_rules()
                if rule.apply is not None
                and rule.rule_id not in config.disabled_rules
            )
            block_filter = plugin.block_filter()
            if block_filter is not None:
                self._block_filters.append(block_filter)
            plugin_words.extend(plugin.passlist_words())
        if plugin_words:
            # Union into a fresh PassList: the configured pass-list (often
            # the shared module default) is never mutated, so engines
            # running without these plugins keep pre-plugin byte identity.
            from repro.core.passlist import PassList

            self.token_anon.passlist = self.token_anon.passlist.union(
                PassList(plugin_words)
            )
        ios_rules = plugin_rules + ios_rules
        self.rules: List[Rule] = ios_rules
        self._junos_rules: List[Rule] = junos_extra + ios_rules
        # The compiled dispatch layer: all rule triggers combined into one
        # scanner per syntax, so each line is classified into its
        # candidate-rule tuple in a single C-level pass (see
        # :mod:`repro.core.dispatch`).  ``rule_prefilter=False`` keeps the
        # objects but makes them classify every line to the full rule set.
        self._dispatch_ios = CompiledDispatch(
            ios_rules, enabled=config.rule_prefilter
        )
        self._dispatch_junos = CompiledDispatch(
            self._junos_rules, enabled=config.rule_prefilter
        )
        #: Memo for AS-path / community regexp rewriting outcomes; a pure
        #: function of (salt, config, pattern), so one rewrite serves
        #: every repeat of the same policy regexp across the corpus.
        self._regex_memo: Dict = {}
        self.report = AnonymizationReport()
        self.fault_plan = build_fault_plan(config)
        #: Stats of the last :meth:`freeze_mappings` call (``None`` until
        #: a freeze runs); the service's session-info endpoint reports it.
        self.last_freeze_stats: Optional[FreezeStats] = None

    def _syntax_for(self, text: str) -> str:
        if self.config.syntax != "auto":
            return self.config.syntax
        return "junos" if looks_like_junos(text) else "ios"

    def _make_context(self, source: str) -> RuleContext:
        """A rule context bound to this anonymizer's shared maps."""
        return RuleContext(
            config=self.config,
            ip_map=self.ip_map,
            asn_map=self.asn_map,
            community=self.community,
            hasher=self.hasher,
            token_anon=self.token_anon,
            report=AnonymizationReport(),
            source=source,
            regex_memo=self._regex_memo,
            ip6_map=self.ip6_map,
        )

    # -- public API ------------------------------------------------------

    def anonymize_text(self, text: str, source: str = "<config>") -> str:
        """Anonymize one config file's text."""
        result, file_report = self.anonymize_file(text, source)
        self.report.merge(file_report)
        return result

    def anonymize_file(
        self, text: str, source: str = "<config>"
    ) -> Tuple[str, AnonymizationReport]:
        """Anonymize one file, returning ``(text, per-file report)``.

        Unlike :meth:`anonymize_text` this does *not* fold the file's
        counters into :attr:`report`; the parallel pipeline uses it to
        collect per-file reports from workers and merge them in a
        deterministic order.
        """
        lines = text.splitlines()
        syntax = self._syntax_for(text)
        dispatch = self._dispatch_junos if syntax == "junos" else self._dispatch_ios
        stripper = self._junos_stripper if syntax == "junos" else self._ios_stripper
        file_report = AnonymizationReport()
        file_report.lines_in = len(lines)
        ctx = RuleContext(
            config=self.config,
            ip_map=self.ip_map,
            asn_map=self.asn_map,
            community=self.community,
            hasher=self.hasher,
            token_anon=self.token_anon,
            report=file_report,
            source=source,
            regex_memo=self._regex_memo,
            ip6_map=self.ip6_map,
        )

        if self.config.strip_comments:
            lines, comment_stats = stripper.strip(lines)
            file_report.words_in = comment_stats.total_words
            file_report.comment_words_removed = comment_stats.comment_words
            file_report.comment_lines_removed = comment_stats.comment_lines
            file_report.banners_removed = comment_stats.banners
            file_report.record_rule_hit("R3", comment_stats.banners)
            file_report.record_rule_hit("R4+R5", comment_stats.comment_lines)
            for message in comment_stats.flagged:
                file_report.flag(source, 0, "R3", message)
        else:
            file_report.words_in = sum(len(line.split()) for line in lines)

        # Plugin block filters: multi-line recognizers (certificate
        # blobs, ...) replace whole blocks with placeholder FinalLines
        # before the per-line pipeline sees them.
        for block_filter in self._block_filters:
            lines = block_filter(lines, ctx)

        out_lines: List[str] = []
        token_anon = self.token_anon
        anonymize_text = token_anon.anonymize_text
        hashed_before = token_anon.tokens_hashed
        seen_before = token_anon.tokens_seen
        fault_plan = self.fault_plan
        classify = dispatch.classify
        record_rule_hit = file_report.record_rule_hit
        for line_number, raw_line in enumerate(lines, start=1):
            ctx.line_number = line_number
            if isinstance(raw_line, FinalLine):
                # A block filter already anonymized this line end-to-end
                # (it is a salted-digest placeholder): emit it verbatim.
                out_lines.append(str(raw_line))
                continue
            # Fail-closed guarantee: if anything below raises, the whole
            # line is replaced by a salted-hash placeholder.  The raw line
            # never reaches the output, and the report records the event.
            try:
                candidates = classify(raw_line.lower())
                if candidates:
                    line = SegmentedLine(raw_line)
                    for rule in candidates:
                        hits = rule.apply(line, ctx)
                        if hits:
                            record_rule_hit(rule.rule_id, hits)
                            if fault_plan is not None:
                                fault_plan.on_rule_hits(rule.rule_id, hits)
                    line.map_live_text(anonymize_text)
                    rendered = line.render()
                else:
                    # No rule can match this line: only the token pass
                    # applies — one memo hit for the whole line in the
                    # common (repeated-line) case, byte-identical to the
                    # segmented path, without building segment objects.
                    rendered = anonymize_text(raw_line)
            except Exception as exc:
                rendered = self.fail_closed_placeholder(raw_line)
                file_report.lines_failed_closed += 1
                file_report.record_rule_hit("FAIL-CLOSED")
                # Only the exception class name: its message may quote the
                # raw line, and flags travel in shareable report JSON.
                file_report.flag(
                    source,
                    line_number,
                    "FAIL-CLOSED",
                    "line replaced by fail-closed placeholder after "
                    "{}".format(type(exc).__name__),
                )
            out_lines.append(rendered)
        file_report.tokens_hashed = token_anon.tokens_hashed - hashed_before
        file_report.tokens_seen = token_anon.tokens_seen - seen_before
        file_report.lines_out = len(out_lines)

        result = "\n".join(out_lines)
        if text.endswith("\n"):
            result += "\n"
        return result, file_report

    def fail_closed_placeholder(self, raw_line: str) -> str:
        """The replacement emitted for a line whose anonymization failed.

        Deterministic (salted SHA-256 of the raw line) so a faulted run
        and its retry agree, and content-free: the digest lets the owner
        locate the original line locally without revealing it.  Computed
        directly rather than through :class:`StringHasher` so the raw line
        never enters the hash cache that rides back from workers.
        """
        digest = hashlib.sha256(
            self.config.salt + raw_line.encode("utf-8", "backslashreplace")
        ).hexdigest()[:16]
        return "! REPRO-FAIL-CLOSED {}".format(digest)

    def preload_addresses(self, configs: Dict[str, str]) -> int:
        """First pass of two-pass anonymization: pre-insert every address.

        The paper's subnet-address shaping is best-effort because it
        depends on insertion order ("whenever they are inserted before
        colliding hosts").  Scanning the whole corpus first and inserting
        addresses most-trailing-zeros-first guarantees every subnet
        address is shaped, and makes the IP mapping independent of file
        processing order (so files can then be anonymized in any order —
        the property the paper attributes to Xu's stateless scheme).

        Returns the number of distinct addresses preloaded.
        """
        seen = self._scan_addresses(configs)
        self._insert_addresses(seen)
        return len(seen)

    def _scan_addresses(self, configs: Dict[str, str]) -> set:
        """Every distinct valid dotted-quad value in the corpus."""
        # Dedupe the *texts* first: the same handful of addresses repeats
        # thousands of times per corpus, and parsing each occurrence was
        # the bulk of the scan's cost.
        texts = set()
        for text in configs.values():
            texts.update(DOTTED_QUAD_RE.findall(text))
        seen = set()
        for quad in texts:
            try:
                seen.add(ip_to_int(quad))
            except ValueError:
                continue  # octet out of range: not an address
        return seen

    def _scan_system_ids(self, configs: Dict[str, str]) -> set:
        """Every address encoded in a decodable IS-IS NET system id."""
        from repro.core.ip_rules import ISIS_NET_RE, decode_system_id

        seen = set()
        for text in configs.values():
            for line in text.splitlines():
                match = ISIS_NET_RE.match(line)
                if match is not None:
                    value = decode_system_id(match.group(3))
                    if value is not None:
                        seen.add(value)
        return seen

    def _insert_addresses(self, values: set) -> None:
        """Insert addresses most-trailing-zeros-first (shaping guarantee)."""
        from repro.netutil import trailing_zero_bits

        ordered = sorted(values, key=lambda v: (-trailing_zero_bits(v), v))
        for value in ordered:
            self.ip_map.map_int(value)

    def freeze_mappings(self, configs: Dict[str, str]) -> FreezeStats:
        """Scan the whole corpus once and freeze all shared mapping state.

        Generalizes :meth:`preload_addresses`: in one pass over the raw
        text it

        1. preloads every dotted-quad address *and* every address encoded
           in an IS-IS NET system id into the IP trie
           (most-trailing-zeros-first, so subnet shaping is guaranteed),
        2. pre-hashes the corpus vocabulary whose anonymization involves
           no salted hashing (pure pass-list words, numbers, punctuation)
           into the whole-word memo cache,
        3. pre-maps every ASN and community token it can locate, warming
           the Feistel memo caches,

        and then calls :meth:`PrefixPreservingMap.freeze` so any address
        the scan missed still gets an order-independent mapping.  After
        this returns, rewriting a file performs only read-only lookups on
        the shared maps (plus pure-function cache fills), so files may be
        rewritten in any order — or in parallel worker processes — with
        byte-identical output.
        """
        stats = FreezeStats()
        addresses = self._scan_addresses(configs)
        system_ids = self._scan_system_ids(configs) - addresses
        stats.addresses = len(addresses)
        stats.system_ids = len(system_ids)
        self._insert_addresses(addresses | system_ids)

        # Pre-hash the vocabulary.  Only words whose anonymization touches
        # no salted hash are warmed: warming a hashable word would record
        # it in `hasher.hashed_inputs` even when comment stripping removes
        # it before the token pass, and the leak scanner treats that
        # record as ground truth.
        token_anon = self.token_anon
        passlist = token_anon.passlist
        from repro.core.tokens import segment_word

        words = set()
        for text in configs.values():
            words.update(text.split())
        for word in words:
            if all(
                not is_alpha or run in passlist
                for run, is_alpha in segment_word(word)
            ):
                token_anon.warm(word)
                stats.words_warmed += 1

        # Warm the ASN / community permutation caches (best-effort: these
        # are pure keyed permutations, so a missed context just maps
        # lazily during the rewrite).
        for text in configs.values():
            for match in _ASN_CONTEXT_RE.finditer(text):
                asn = int(match.group(1))
                if asn <= 0xFFFF:
                    self.asn_map.map_asn(asn)
                    stats.asns_warmed += 1
            for match in _COMMUNITY_TOKEN_RE.finditer(text):
                self.community.map_community(match.group(0))
                stats.communities_warmed += 1

        # Plugin freeze scans (e.g. the IPv6 trie preload) run before the
        # freeze point so their insertions are order-guaranteed too.
        for plugin in self.plugins:
            plugin.freeze_scan(self, configs, stats)

        self.mark_frozen()
        self.last_freeze_stats = stats
        return stats

    def mark_frozen(self) -> None:
        """Freeze every mapping trie (the v4 map and any plugin maps).

        The replay/restore paths use this instead of touching
        ``ip_map.freeze()`` directly so plugin-contributed address
        families freeze in lockstep with the builtin one.
        """
        self.ip_map.freeze()
        if self.ip6_map is not None:
            self.ip6_map.freeze()

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze_mappings` has frozen the IP trie, i.e.
        every future mapping is a pure function of (salt, input) and the
        anonymizer may serve files in any order with byte-identical
        output."""
        return self.ip_map.frozen

    def anonymize_network(
        self,
        configs: Dict[str, str],
        two_pass: Optional[bool] = None,
        jobs: Optional[int] = None,
    ) -> AnonymizedNetwork:
        """Anonymize every config of a network with shared mapping state.

        File names themselves usually embed hostnames, so the returned
        mapping renames each file by hashing the alphabetic runs of its
        name through the same token pass.

        ``two_pass=True`` runs :meth:`freeze_mappings` first so subnet
        shaping is guaranteed rather than best-effort and the mapping is
        independent of file processing order.  ``jobs > 1`` fans the
        rewrite phase out over that many worker processes (which implies
        the freeze); output is byte-identical for every worker count.
        Both default to the values in :class:`AnonymizerConfig`.
        """
        if two_pass is None:
            two_pass = self.config.two_pass
        if jobs is None:
            jobs = self.config.jobs
        if jobs > 1:
            from repro.core.parallel import anonymize_network_parallel

            return anonymize_network_parallel(self, configs, jobs=jobs)
        if two_pass:
            self.freeze_mappings(configs)
        out: Dict[str, str] = {}
        name_map: Dict[str, str] = {}
        for name in sorted(configs):
            anonymized = self.anonymize_text(configs[name], source=name)
            new_name = self.anonymize_file_name(name)
            name_map[name] = new_name
            out[new_name] = anonymized
        return AnonymizedNetwork(configs=out, report=self.report, name_map=name_map)

    def anonymize_file_name(self, name: str) -> str:
        """Hash a file name per dot-label, exactly like the hostname/domain
        rule (R9), so a renamed file still matches its hashed hostname."""
        return ".".join(self.hasher.hash_token(label) for label in name.split("."))
