"""Parallel network anonymization with frozen mapping state.

The paper's corpus was 4.3M lines; the sequential pipeline processes
files one at a time because the prefix-preserving trie's flip bits are
drawn from an insertion-order-dependent RNG stream.  This module fans the
rewrite phase out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping the headline guarantee:

    **parallel output is byte-identical to sequential output for any
    worker count**, because all mapping state is frozen before any
    rewriting happens.

The pipeline:

1. **Freeze** — :meth:`Anonymizer.freeze_mappings` scans the whole corpus
   once, preloads every address into the IP trie
   (most-trailing-zeros-first, guaranteeing subnet shaping), pre-hashes
   the vocabulary, pre-maps ASNs/communities, and freezes the trie (any
   address the scan missed maps through a pure keyed hash instead of the
   RNG stream, so even a scanner gap cannot introduce order dependence).
2. **Snapshot** — the frozen shared maps are captured in a picklable
   :class:`FrozenSnapshot` and shipped to each worker exactly once (via
   the pool initializer, not per task).
3. **Rewrite** — each worker reconstructs an :class:`Anonymizer` from the
   snapshot (rules are rebuilt in-process; compiled regexes and closures
   never cross the process boundary) and rewrites whole files.
4. **Merge** — per-file :class:`AnonymizationReport`\\ s and hash-cache
   deltas are folded into the parent in sorted-file-name order — the same
   order the sequential pipeline uses — so the combined report equals the
   sequential one and the leak scanner sees every hashed token.

With ``jobs=1`` everything runs in-process through the very same
freeze-then-rewrite code path, which is what the byte-identity tests
compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import AnonymizerConfig
from repro.core.engine import AnonymizedNetwork, Anonymizer
from repro.core.report import AnonymizationReport

__all__ = [
    "FrozenSnapshot",
    "anonymize_files",
    "anonymize_network_parallel",
]


@dataclass
class FrozenSnapshot:
    """Read-only mapping state shipped to every worker process.

    Everything here is either a pure function of the owner secret
    (reconstructed from ``config.salt`` in the worker) or a plain dict of
    already-computed mappings.  Workers never send state to each other;
    determinism comes from the freeze, not from synchronization.
    """

    config: AnonymizerConfig
    ip_flips: Dict[Tuple[int, int], int]
    ip_frozen: bool
    hash_cache: Dict[str, str]
    word_cache: Dict[str, Tuple[str, int, int]]
    asn_cache: Dict[int, int]
    community_cache: Dict[str, str]

    @classmethod
    def capture(cls, anonymizer: Anonymizer) -> "FrozenSnapshot":
        return cls(
            config=anonymizer.config,
            ip_flips=dict(anonymizer.ip_map._flips),
            ip_frozen=anonymizer.ip_map.frozen,
            hash_cache=dict(anonymizer.hasher._cache),
            word_cache=dict(anonymizer.token_anon._word_cache),
            asn_cache=dict(anonymizer.asn_map._seen),
            community_cache=dict(anonymizer.community._cache),
        )

    def restore(self) -> Anonymizer:
        """Build a worker-local Anonymizer over this frozen state."""
        anonymizer = Anonymizer(self.config)
        anonymizer.ip_map._flips = dict(self.ip_flips)
        if self.ip_frozen:
            anonymizer.ip_map.freeze()
        anonymizer.hasher._cache = dict(self.hash_cache)
        anonymizer.token_anon._word_cache = dict(self.word_cache)
        anonymizer.asn_map._seen = dict(self.asn_cache)
        anonymizer.community._cache = dict(self.community_cache)
        return anonymizer


#: One worker's Anonymizer, built once per process by :func:`_init_worker`.
_WORKER_ANONYMIZER: Optional[Anonymizer] = None


def _init_worker(snapshot: FrozenSnapshot) -> None:
    global _WORKER_ANONYMIZER
    _WORKER_ANONYMIZER = snapshot.restore()


def _rewrite_one(task: Tuple[str, str]):
    """Worker task: anonymize one file against the frozen snapshot.

    Returns ``(name, text, per-file report, new hash-cache entries)``.
    The hash-cache delta (tokens first hashed while rewriting this file)
    rides back so the parent's ``hashed_inputs`` record — the leak
    scanner's ground truth — stays as complete as a sequential run's.
    New entries append to the end of the dict (insertion order), so the
    delta is a cheap slice.
    """
    name, text = task
    anonymizer = _WORKER_ANONYMIZER
    cache = anonymizer.hasher._cache
    cache_size_before = len(cache)
    out, file_report = anonymizer.anonymize_file(text, source=name)
    if len(cache) > cache_size_before:
        items = list(cache.items())
        hashed_delta = dict(items[cache_size_before:])
    else:
        hashed_delta = {}
    return name, out, file_report, hashed_delta


def anonymize_files(
    anonymizer: Anonymizer, configs: Dict[str, str], jobs: int = 1
) -> Dict[str, str]:
    """Rewrite every file of an already-frozen corpus, possibly in parallel.

    Returns ``{original name: anonymized text}`` and folds every per-file
    report into ``anonymizer.report`` in sorted-name order (the sequential
    pipeline's order, so the merged report is identical).  The caller is
    responsible for having run :meth:`Anonymizer.freeze_mappings` when
    ``jobs > 1`` — without the freeze, parallel output would depend on
    which worker first saw each address.
    """
    names = sorted(configs)
    if jobs <= 1 or len(names) <= 1:
        return {
            name: anonymizer.anonymize_text(configs[name], source=name)
            for name in names
        }

    from concurrent.futures import ProcessPoolExecutor

    snapshot = FrozenSnapshot.capture(anonymizer)
    results: Dict[str, Tuple[str, AnonymizationReport, Dict[str, str]]] = {}
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(names)),
        initializer=_init_worker,
        initargs=(snapshot,),
    ) as pool:
        tasks = [(name, configs[name]) for name in names]
        for name, out, file_report, hashed_delta in pool.map(
            _rewrite_one, tasks, chunksize=max(1, len(tasks) // (jobs * 4))
        ):
            results[name] = (out, file_report, hashed_delta)

    outputs: Dict[str, str] = {}
    for name in names:  # merge in the sequential pipeline's order
        out, file_report, hashed_delta = results[name]
        outputs[name] = out
        anonymizer.report.merge(file_report)
        for token, digest in hashed_delta.items():
            anonymizer.hasher._cache.setdefault(token, digest)
    return outputs


def anonymize_network_parallel(
    anonymizer: Anonymizer, configs: Dict[str, str], jobs: int = 1
) -> AnonymizedNetwork:
    """Freeze-then-rewrite :meth:`Anonymizer.anonymize_network`.

    Byte-identical to ``anonymize_network(configs, two_pass=True)`` for
    every ``jobs`` value (enforced by ``tests/test_parallel.py``).
    """
    anonymizer.freeze_mappings(configs)
    outputs = anonymize_files(anonymizer, configs, jobs=jobs)
    out: Dict[str, str] = {}
    name_map: Dict[str, str] = {}
    for name in sorted(outputs):
        new_name = anonymizer.anonymize_file_name(name)
        name_map[name] = new_name
        out[new_name] = outputs[name]
    return AnonymizedNetwork(
        configs=out, report=anonymizer.report, name_map=name_map
    )
