"""Parallel network anonymization with frozen mapping state.

The paper's corpus was 4.3M lines; the sequential pipeline processes
files one at a time because the prefix-preserving trie's flip bits are
drawn from an insertion-order-dependent RNG stream.  This module fans the
rewrite phase out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping the headline guarantee:

    **parallel output is byte-identical to sequential output for any
    worker count**, because all mapping state is frozen before any
    rewriting happens.

The pipeline:

1. **Freeze** — :meth:`Anonymizer.freeze_mappings` scans the whole corpus
   once, preloads every address into the IP trie
   (most-trailing-zeros-first, guaranteeing subnet shaping), pre-hashes
   the vocabulary, pre-maps ASNs/communities, and freezes the trie (any
   address the scan missed maps through a pure keyed hash instead of the
   RNG stream, so even a scanner gap cannot introduce order dependence).
2. **Snapshot** — the frozen shared maps are captured in a
   :class:`FrozenSnapshot` and made visible to every worker **once**, via
   a *snapshot transport*:

   - ``fork`` (the default where available) — the snapshot is published
     in a module global and worker processes are forked, inheriting it
     through copy-on-write pages: zero serialization, zero copies.
   - ``shm`` — the snapshot is pickled **once** into a
     :mod:`multiprocessing.shared_memory` segment; each worker attaches
     to the segment by name and deserializes from the shared buffer (one
     parent-side pickle total, instead of one per worker).
   - ``pickle`` — the legacy path: the snapshot travels in the pool
     initializer's arguments.

3. **Rewrite** — each worker builds an :class:`Anonymizer` *around* the
   snapshot's dicts (``restore(share=True)``: rules and compiled regexes
   are rebuilt in-process, the frozen dicts are adopted, not copied) and
   rewrites whole files.  Files are batched into **chunked tasks** so
   submit/result overhead is amortized over many small configs; failure
   isolation stays per-file (a chunk catches each file's exceptions
   individually).
4. **Merge** — per-file :class:`AnonymizationReport`\\ s and hash-cache
   deltas are folded into the parent in sorted-file-name order — the same
   order the sequential pipeline uses — so the combined report equals the
   sequential one and the leak scanner sees every hashed token.

With ``jobs=1`` everything runs in-process through the very same
freeze-then-rewrite code path, which is what the byte-identity tests
compare against.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import AnonymizerConfig
from repro.core.engine import AnonymizedNetwork, Anonymizer
from repro.core.report import AnonymizationReport

__all__ = [
    "FrozenSnapshot",
    "SNAPSHOT_TRANSPORTS",
    "anonymize_files",
    "anonymize_network_parallel",
    "resolve_transport",
]

#: Recognized snapshot transports (``auto`` resolves at run time).
SNAPSHOT_TRANSPORTS = ("auto", "fork", "shm", "pickle")


@dataclass
class FrozenSnapshot:
    """Read-only mapping state shipped to every worker process.

    Everything here is either a pure function of the owner secret
    (reconstructed from ``config.salt`` in the worker) or a plain dict of
    already-computed mappings.  Workers never send state to each other;
    determinism comes from the freeze, not from synchronization.
    """

    config: AnonymizerConfig
    ip_flips: Dict[Tuple[int, int], int]
    ip_frozen: bool
    hash_cache: Dict[str, str]
    word_cache: Dict[str, Tuple[str, int, int]]
    asn_cache: Dict[int, int]
    community_cache: Dict[str, str]
    #: The resolved recognizer-plugin families active at capture time.
    #: Restore pins the worker's config to exactly this set, so a worker
    #: can never compose a different rule pipeline than the parent did
    #: (e.g. when the parent resolved a ``plugins=None`` default against
    #: environment variables the worker might not share).
    active_plugins: Optional[Tuple[str, ...]] = None
    ip6_flips: Optional[Dict[Tuple[int, int], int]] = None
    ip6_frozen: bool = False

    @classmethod
    def capture(cls, anonymizer: Anonymizer) -> "FrozenSnapshot":
        ip6_map = getattr(anonymizer, "ip6_map", None)
        return cls(
            config=anonymizer.config,
            ip_flips=dict(anonymizer.ip_map._flips),
            ip_frozen=anonymizer.ip_map.frozen,
            hash_cache=dict(anonymizer.hasher._cache),
            word_cache=dict(anonymizer.token_anon._word_cache),
            asn_cache=dict(anonymizer.asn_map._seen),
            community_cache=dict(anonymizer.community._cache),
            active_plugins=tuple(
                getattr(anonymizer, "active_plugin_families", ())
            ),
            ip6_flips=None if ip6_map is None else dict(ip6_map._flips),
            ip6_frozen=False if ip6_map is None else ip6_map.frozen,
        )

    def restore(self, share: bool = False) -> Anonymizer:
        """Build a worker-local Anonymizer over this frozen state.

        ``share=False`` (the default, for arbitrary callers) copies every
        dict so the snapshot stays pristine.  ``share=True`` adopts the
        snapshot's dicts directly — the right choice whenever the
        snapshot exists solely to back one restore: a forked worker
        (adopting touches copy-on-write pages, never the parent), a
        worker that just unpickled its own private snapshot, or the
        in-process retry tail (one local anonymizer for the whole tail).
        Restores sharing one snapshot see each other's cache *additions*;
        every addition is a pure function of the salt, so outputs are
        unaffected — only ``share=False`` guarantees the snapshot's dicts
        never grow.
        """
        config = self.config
        if self.active_plugins is not None and config.plugins != self.active_plugins:
            # Pin the worker to the parent's resolved plugin set: a
            # `plugins=None` default would re-resolve against the
            # worker's environment, which may differ.
            from dataclasses import replace

            config = replace(config, plugins=self.active_plugins)
        anonymizer = Anonymizer(config)
        if share:
            anonymizer.ip_map._flips = self.ip_flips
            anonymizer.hasher._cache = self.hash_cache
            anonymizer.token_anon._word_cache = self.word_cache
            anonymizer.asn_map._seen = self.asn_cache
            anonymizer.community._cache = self.community_cache
            if self.ip6_flips is not None and anonymizer.ip6_map is not None:
                anonymizer.ip6_map._flips = self.ip6_flips
        else:
            anonymizer.ip_map._flips = dict(self.ip_flips)
            anonymizer.hasher._cache = dict(self.hash_cache)
            anonymizer.token_anon._word_cache = dict(self.word_cache)
            anonymizer.asn_map._seen = dict(self.asn_cache)
            anonymizer.community._cache = dict(self.community_cache)
            if self.ip6_flips is not None and anonymizer.ip6_map is not None:
                anonymizer.ip6_map._flips = dict(self.ip6_flips)
        if self.ip_frozen:
            anonymizer.ip_map.freeze()
        if self.ip6_frozen and anonymizer.ip6_map is not None:
            anonymizer.ip6_map.freeze()
        return anonymizer


def resolve_transport(requested: str = "auto") -> str:
    """Resolve a snapshot transport name to a concrete strategy."""
    if requested not in SNAPSHOT_TRANSPORTS:
        raise ValueError(
            "snapshot transport must be one of {}, not {!r}".format(
                "/".join(SNAPSHOT_TRANSPORTS), requested
            )
        )
    if requested != "auto":
        return requested
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "shm"


#: One worker's Anonymizer, built once per process by the initializers.
_WORKER_ANONYMIZER: Optional[Anonymizer] = None

#: True only in pool worker processes (set by the initializers).  The
#: ``worker-exit`` fault consults it so an injected crash can never kill
#: the parent when a task falls back to in-process rewriting.
_IN_WORKER = False

#: The snapshot published for fork-transport workers; children inherit it
#: through copy-on-write, so it is never serialized at all.
_FORK_SNAPSHOT: Optional[FrozenSnapshot] = None


def _adopt_snapshot(snapshot: FrozenSnapshot) -> None:
    global _WORKER_ANONYMIZER, _IN_WORKER
    _WORKER_ANONYMIZER = snapshot.restore(share=True)
    _IN_WORKER = True


def _init_worker(snapshot: FrozenSnapshot) -> None:
    """Legacy ``pickle`` transport: the snapshot rode in the initargs."""
    _adopt_snapshot(snapshot)


def _init_worker_fork() -> None:
    """``fork`` transport: the snapshot was inherited copy-on-write."""
    _adopt_snapshot(_FORK_SNAPSHOT)


def _init_worker_shm(segment_name: str, payload_size: int) -> None:
    """``shm`` transport: deserialize from the shared-memory segment."""
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=segment_name)
    try:
        snapshot = pickle.loads(bytes(segment.buf[:payload_size]))
    finally:
        segment.close()
        _untrack_shm(segment_name)
    _adopt_snapshot(snapshot)


def _untrack_shm(name: str) -> None:
    """Undo the attach-side resource-tracker registration (< 3.13).

    Before Python 3.13 every ``SharedMemory`` attach registers the
    segment with the process's resource tracker, which would then try to
    unlink it again when the worker exits; the parent owns the segment's
    lifecycle, so the duplicate registration is dropped.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


class _SnapshotPools:
    """Process-pool factory whose workers attach to one shared snapshot.

    Publishes the snapshot once according to the transport (module global
    for ``fork``, a single pickle into shared memory for ``shm``, nothing
    for ``pickle``), builds any number of pools against it, and tears the
    shared resources down on exit.
    """

    def __init__(self, snapshot: FrozenSnapshot, transport: str):
        self.transport = transport
        self._snapshot = snapshot
        self._shm = None
        self._payload_size = 0

    def __enter__(self) -> "_SnapshotPools":
        if self.transport == "fork":
            global _FORK_SNAPSHOT
            _FORK_SNAPSHOT = self._snapshot
        elif self.transport == "shm":
            from multiprocessing import shared_memory

            payload = pickle.dumps(
                self._snapshot, protocol=pickle.HIGHEST_PROTOCOL
            )
            self._payload_size = len(payload)
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(1, len(payload))
            )
            self._shm.buf[: len(payload)] = payload
        return self

    def make_pool(self, max_workers: int):
        from concurrent.futures import ProcessPoolExecutor

        if self.transport == "fork":
            import multiprocessing

            return ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_init_worker_fork,
            )
        if self.transport == "shm":
            return ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_init_worker_shm,
                initargs=(self._shm.name, self._payload_size),
            )
        return ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(self._snapshot,),
        )

    def __exit__(self, *exc_info) -> bool:
        if self.transport == "fork":
            global _FORK_SNAPSHOT
            _FORK_SNAPSHOT = None
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None
        return False


def _rewrite_with(anonymizer: Anonymizer, name: str, text: str):
    """Anonymize one file, returning its result and hash-cache delta.

    Returns ``(name, text, per-file report, new hash-cache entries)``.
    The hash-cache delta (tokens first hashed while rewriting this file)
    rides back so the parent's ``hashed_inputs`` record — the leak
    scanner's ground truth — stays as complete as a sequential run's.
    The hasher tracks new keys incrementally, so extracting the delta is
    O(new tokens) rather than O(cache): at corpus scale the cache holds
    the whole warmed vocabulary, and materializing it per file was the
    dominant per-task cost.
    """
    hasher = anonymizer.hasher
    hasher.begin_cache_delta()
    out, file_report = anonymizer.anonymize_file(text, source=name)
    return name, out, file_report, hasher.take_cache_delta()


def _maybe_kill_worker(anonymizer: Anonymizer, name: str) -> None:
    plan = anonymizer.fault_plan
    if plan is not None and _IN_WORKER and plan.should_kill_worker(name):
        import os

        os._exit(87)  # simulate a hard worker death (segfault / OOM-kill)


def _rewrite_one(task: Tuple[str, str]):
    """Worker task: anonymize one file against the frozen snapshot."""
    name, text = task
    anonymizer = _WORKER_ANONYMIZER
    _maybe_kill_worker(anonymizer, name)
    return _rewrite_with(anonymizer, name, text)


def _rewrite_chunk(tasks: Sequence[Tuple[str, str]]):
    """Worker task: anonymize a batch of files against the snapshot.

    Chunking amortizes submit/result/pickling overhead over many small
    files while keeping failure isolation per-file: each file's
    exceptions are caught individually, so one poisoned file quarantines
    itself, not its chunk-mates.  (A hard worker death still takes the
    whole chunk down; the caller's retry pass settles those per-file.)
    """
    anonymizer = _WORKER_ANONYMIZER
    outcomes = []
    for name, text in tasks:
        _maybe_kill_worker(anonymizer, name)
        try:
            outcomes.append(("ok", _rewrite_with(anonymizer, name, text)))
        except Exception as exc:
            outcomes.append(("err", (name, _quarantine_reason(exc))))
    return outcomes


def _quarantine_reason(exc: BaseException) -> str:
    """A shareable reason string: class name only, never message text
    (exception messages can quote raw config lines)."""
    return type(exc).__name__


def _chunk_names(names: List[str], jobs: int, chunk_files: int) -> List[List[str]]:
    """Batch sorted file names into chunked tasks.

    ``chunk_files <= 0`` picks a size automatically: about four chunks
    per worker (so a slow chunk cannot serialize the pool) capped at 32
    files (so one chunk's results never balloon a single IPC message).
    """
    if chunk_files <= 0:
        chunk_files = max(1, min(32, -(-len(names) // (jobs * 4))))
    return [
        names[index : index + chunk_files]
        for index in range(0, len(names), chunk_files)
    ]


def anonymize_files(
    anonymizer: Anonymizer,
    configs: Dict[str, str],
    jobs: int = 1,
    transport: Optional[str] = None,
    chunk_files: Optional[int] = None,
) -> Dict[str, str]:
    """Rewrite every file of an already-frozen corpus, possibly in parallel.

    Returns ``{original name: anonymized text}`` and folds every per-file
    report into ``anonymizer.report`` in sorted-name order (the sequential
    pipeline's order, so the merged report is identical).  The caller is
    responsible for having run :meth:`Anonymizer.freeze_mappings` when
    ``jobs > 1`` — without the freeze, parallel output would depend on
    which worker first saw each address.

    ``transport`` picks how the frozen snapshot reaches the workers (one
    of :data:`SNAPSHOT_TRANSPORTS`) and ``chunk_files`` how many files
    ride in one worker task; both default to the anonymizer's config.
    Output is byte-identical across every transport, chunk size, and
    worker count.

    Failure isolation is per file and fail-closed: a file whose rewrite
    raises — or whose worker process dies, surfacing as
    ``BrokenProcessPool`` — is *quarantined*: it is absent from the
    returned dict and recorded in ``anonymizer.report.quarantined_files``,
    while every other file still completes.  After a pool break the pool
    is respawned exactly once and the unfinished files are retried one at
    a time, so the poisoned file is identified definitively instead of
    taking innocent pending tasks down with it.
    """
    names = sorted(configs)
    outputs: Dict[str, str] = {}
    if jobs <= 1 or len(names) <= 1:
        for name in names:
            try:
                out, file_report = anonymizer.anonymize_file(
                    configs[name], source=name
                )
            except Exception as exc:
                anonymizer.report.quarantine(name, _quarantine_reason(exc))
                continue
            anonymizer.report.merge(file_report)
            outputs[name] = out
        return outputs

    from concurrent.futures.process import BrokenProcessPool

    config = anonymizer.config
    if transport is None:
        transport = config.snapshot_transport
    transport = resolve_transport(transport)
    if chunk_files is None:
        chunk_files = config.chunk_files

    snapshot = FrozenSnapshot.capture(anonymizer)
    results: Dict[str, Tuple[str, AnonymizationReport, Dict[str, str]]] = {}
    quarantined: Dict[str, str] = {}
    unfinished: List[str] = []
    chunks = _chunk_names(names, jobs, chunk_files)

    with _SnapshotPools(snapshot, transport) as pools:
        with pools.make_pool(min(jobs, len(chunks))) as pool:
            futures = [
                (
                    chunk,
                    pool.submit(
                        _rewrite_chunk, [(name, configs[name]) for name in chunk]
                    ),
                )
                for chunk in chunks
            ]
            for chunk, future in futures:
                try:
                    outcomes = future.result()
                except BrokenProcessPool:
                    # The dying worker poisons every unfinished future;
                    # which file actually killed it is settled by the
                    # per-file retry below.
                    unfinished.extend(chunk)
                except Exception as exc:
                    for name in chunk:
                        quarantined[name] = _quarantine_reason(exc)
                else:
                    for status, payload in outcomes:
                        if status == "ok":
                            name, out, file_report, hashed_delta = payload
                            results[name] = (out, file_report, hashed_delta)
                        else:
                            name, reason = payload
                            quarantined[name] = reason

        if unfinished:
            # Respawn the pool once and retry with a single file in
            # flight at a time: if the pool breaks again, the in-flight
            # file *is* the poisoned one.  Files after it finish
            # in-process (the snapshot restore is exactly what a worker
            # would have run).
            in_process_from = len(unfinished)
            with pools.make_pool(1) as retry_pool:
                for index, name in enumerate(unfinished):
                    try:
                        _, out, file_report, hashed_delta = retry_pool.submit(
                            _rewrite_one, (name, configs[name])
                        ).result()
                    except BrokenProcessPool as exc:
                        quarantined[name] = _quarantine_reason(exc)
                        in_process_from = index + 1
                        break
                    except Exception as exc:
                        quarantined[name] = _quarantine_reason(exc)
                    else:
                        results[name] = (out, file_report, hashed_delta)
            remaining = unfinished[in_process_from:]
            if remaining:
                # One worker-equivalent anonymizer finishes the whole
                # tail, adopting the snapshot's dicts instead of copying
                # them per file (a pool worker reuses its anonymizer
                # across files the same way).
                local = snapshot.restore(share=True)
                for name in remaining:
                    try:
                        _, out, file_report, hashed_delta = _rewrite_with(
                            local, name, configs[name]
                        )
                    except Exception as exc:
                        quarantined[name] = _quarantine_reason(exc)
                    else:
                        results[name] = (out, file_report, hashed_delta)

    for name in names:  # merge in the sequential pipeline's order
        if name in quarantined:
            anonymizer.report.quarantine(name, quarantined[name])
            continue
        out, file_report, hashed_delta = results[name]
        outputs[name] = out
        anonymizer.report.merge(file_report)
        for token, digest in hashed_delta.items():
            anonymizer.hasher._cache.setdefault(token, digest)
    return outputs


def anonymize_network_parallel(
    anonymizer: Anonymizer, configs: Dict[str, str], jobs: int = 1
) -> AnonymizedNetwork:
    """Freeze-then-rewrite :meth:`Anonymizer.anonymize_network`.

    Byte-identical to ``anonymize_network(configs, two_pass=True)`` for
    every ``jobs`` value (enforced by ``tests/test_parallel.py``).
    """
    anonymizer.freeze_mappings(configs)
    outputs = anonymize_files(anonymizer, configs, jobs=jobs)
    out: Dict[str, str] = {}
    name_map: Dict[str, str] = {}
    for name in sorted(outputs):
        new_name = anonymizer.anonymize_file_name(name)
        name_map[name] = new_name
        out[new_name] = outputs[name]
    return AnonymizedNetwork(
        configs=out, report=anonymizer.report, name_map=name_map
    )
