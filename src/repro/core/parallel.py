"""Parallel network anonymization with frozen mapping state.

The paper's corpus was 4.3M lines; the sequential pipeline processes
files one at a time because the prefix-preserving trie's flip bits are
drawn from an insertion-order-dependent RNG stream.  This module fans the
rewrite phase out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping the headline guarantee:

    **parallel output is byte-identical to sequential output for any
    worker count**, because all mapping state is frozen before any
    rewriting happens.

The pipeline:

1. **Freeze** — :meth:`Anonymizer.freeze_mappings` scans the whole corpus
   once, preloads every address into the IP trie
   (most-trailing-zeros-first, guaranteeing subnet shaping), pre-hashes
   the vocabulary, pre-maps ASNs/communities, and freezes the trie (any
   address the scan missed maps through a pure keyed hash instead of the
   RNG stream, so even a scanner gap cannot introduce order dependence).
2. **Snapshot** — the frozen shared maps are captured in a picklable
   :class:`FrozenSnapshot` and shipped to each worker exactly once (via
   the pool initializer, not per task).
3. **Rewrite** — each worker reconstructs an :class:`Anonymizer` from the
   snapshot (rules are rebuilt in-process; compiled regexes and closures
   never cross the process boundary) and rewrites whole files.
4. **Merge** — per-file :class:`AnonymizationReport`\\ s and hash-cache
   deltas are folded into the parent in sorted-file-name order — the same
   order the sequential pipeline uses — so the combined report equals the
   sequential one and the leak scanner sees every hashed token.

With ``jobs=1`` everything runs in-process through the very same
freeze-then-rewrite code path, which is what the byte-identity tests
compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import AnonymizerConfig
from repro.core.engine import AnonymizedNetwork, Anonymizer
from repro.core.report import AnonymizationReport

__all__ = [
    "FrozenSnapshot",
    "anonymize_files",
    "anonymize_network_parallel",
]


@dataclass
class FrozenSnapshot:
    """Read-only mapping state shipped to every worker process.

    Everything here is either a pure function of the owner secret
    (reconstructed from ``config.salt`` in the worker) or a plain dict of
    already-computed mappings.  Workers never send state to each other;
    determinism comes from the freeze, not from synchronization.
    """

    config: AnonymizerConfig
    ip_flips: Dict[Tuple[int, int], int]
    ip_frozen: bool
    hash_cache: Dict[str, str]
    word_cache: Dict[str, Tuple[str, int, int]]
    asn_cache: Dict[int, int]
    community_cache: Dict[str, str]

    @classmethod
    def capture(cls, anonymizer: Anonymizer) -> "FrozenSnapshot":
        return cls(
            config=anonymizer.config,
            ip_flips=dict(anonymizer.ip_map._flips),
            ip_frozen=anonymizer.ip_map.frozen,
            hash_cache=dict(anonymizer.hasher._cache),
            word_cache=dict(anonymizer.token_anon._word_cache),
            asn_cache=dict(anonymizer.asn_map._seen),
            community_cache=dict(anonymizer.community._cache),
        )

    def restore(self) -> Anonymizer:
        """Build a worker-local Anonymizer over this frozen state."""
        anonymizer = Anonymizer(self.config)
        anonymizer.ip_map._flips = dict(self.ip_flips)
        if self.ip_frozen:
            anonymizer.ip_map.freeze()
        anonymizer.hasher._cache = dict(self.hash_cache)
        anonymizer.token_anon._word_cache = dict(self.word_cache)
        anonymizer.asn_map._seen = dict(self.asn_cache)
        anonymizer.community._cache = dict(self.community_cache)
        return anonymizer


#: One worker's Anonymizer, built once per process by :func:`_init_worker`.
_WORKER_ANONYMIZER: Optional[Anonymizer] = None

#: True only in pool worker processes (set by the initializer).  The
#: ``worker-exit`` fault consults it so an injected crash can never kill
#: the parent when a task falls back to in-process rewriting.
_IN_WORKER = False


def _init_worker(snapshot: FrozenSnapshot) -> None:
    global _WORKER_ANONYMIZER, _IN_WORKER
    _WORKER_ANONYMIZER = snapshot.restore()
    _IN_WORKER = True


def _rewrite_with(anonymizer: Anonymizer, name: str, text: str):
    """Anonymize one file, returning its result and hash-cache delta.

    Returns ``(name, text, per-file report, new hash-cache entries)``.
    The hash-cache delta (tokens first hashed while rewriting this file)
    rides back so the parent's ``hashed_inputs`` record — the leak
    scanner's ground truth — stays as complete as a sequential run's.
    New entries append to the end of the dict (insertion order), so the
    delta is a cheap slice.
    """
    cache = anonymizer.hasher._cache
    cache_size_before = len(cache)
    out, file_report = anonymizer.anonymize_file(text, source=name)
    if len(cache) > cache_size_before:
        items = list(cache.items())
        hashed_delta = dict(items[cache_size_before:])
    else:
        hashed_delta = {}
    return name, out, file_report, hashed_delta


def _rewrite_one(task: Tuple[str, str]):
    """Worker task: anonymize one file against the frozen snapshot."""
    name, text = task
    anonymizer = _WORKER_ANONYMIZER
    plan = anonymizer.fault_plan
    if plan is not None and _IN_WORKER and plan.should_kill_worker(name):
        import os

        os._exit(87)  # simulate a hard worker death (segfault / OOM-kill)
    return _rewrite_with(anonymizer, name, text)


def _quarantine_reason(exc: BaseException) -> str:
    """A shareable reason string: class name only, never message text
    (exception messages can quote raw config lines)."""
    return type(exc).__name__


def anonymize_files(
    anonymizer: Anonymizer, configs: Dict[str, str], jobs: int = 1
) -> Dict[str, str]:
    """Rewrite every file of an already-frozen corpus, possibly in parallel.

    Returns ``{original name: anonymized text}`` and folds every per-file
    report into ``anonymizer.report`` in sorted-name order (the sequential
    pipeline's order, so the merged report is identical).  The caller is
    responsible for having run :meth:`Anonymizer.freeze_mappings` when
    ``jobs > 1`` — without the freeze, parallel output would depend on
    which worker first saw each address.

    Failure isolation is per file and fail-closed: a file whose rewrite
    raises — or whose worker process dies, surfacing as
    ``BrokenProcessPool`` — is *quarantined*: it is absent from the
    returned dict and recorded in ``anonymizer.report.quarantined_files``,
    while every other file still completes.  After a pool break the pool
    is respawned exactly once and the unfinished files are retried one at
    a time, so the poisoned file is identified definitively instead of
    taking innocent pending tasks down with it.
    """
    names = sorted(configs)
    outputs: Dict[str, str] = {}
    if jobs <= 1 or len(names) <= 1:
        for name in names:
            try:
                out, file_report = anonymizer.anonymize_file(
                    configs[name], source=name
                )
            except Exception as exc:
                anonymizer.report.quarantine(name, _quarantine_reason(exc))
                continue
            anonymizer.report.merge(file_report)
            outputs[name] = out
        return outputs

    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    snapshot = FrozenSnapshot.capture(anonymizer)
    results: Dict[str, Tuple[str, AnonymizationReport, Dict[str, str]]] = {}
    quarantined: Dict[str, str] = {}
    unfinished: List[str] = []

    with ProcessPoolExecutor(
        max_workers=min(jobs, len(names)),
        initializer=_init_worker,
        initargs=(snapshot,),
    ) as pool:
        futures = [
            (name, pool.submit(_rewrite_one, (name, configs[name])))
            for name in names
        ]
        for name, future in futures:
            try:
                _, out, file_report, hashed_delta = future.result()
            except BrokenProcessPool:
                # The dying worker poisons every unfinished future; which
                # file actually killed it is settled by the retry below.
                unfinished.append(name)
            except Exception as exc:
                quarantined[name] = _quarantine_reason(exc)
            else:
                results[name] = (out, file_report, hashed_delta)

    if unfinished:
        # Respawn the pool once and retry with a single task in flight at
        # a time: if the pool breaks again, the in-flight file *is* the
        # poisoned one.  Files after it finish in-process (the snapshot
        # restore is exactly what a worker would have run).
        in_process_from = len(unfinished)
        with ProcessPoolExecutor(
            max_workers=1, initializer=_init_worker, initargs=(snapshot,)
        ) as retry_pool:
            for index, name in enumerate(unfinished):
                try:
                    _, out, file_report, hashed_delta = retry_pool.submit(
                        _rewrite_one, (name, configs[name])
                    ).result()
                except BrokenProcessPool as exc:
                    quarantined[name] = _quarantine_reason(exc)
                    in_process_from = index + 1
                    break
                except Exception as exc:
                    quarantined[name] = _quarantine_reason(exc)
                else:
                    results[name] = (out, file_report, hashed_delta)
        for name in unfinished[in_process_from:]:
            local = snapshot.restore()
            try:
                _, out, file_report, hashed_delta = _rewrite_with(
                    local, name, configs[name]
                )
            except Exception as exc:
                quarantined[name] = _quarantine_reason(exc)
            else:
                results[name] = (out, file_report, hashed_delta)

    for name in names:  # merge in the sequential pipeline's order
        if name in quarantined:
            anonymizer.report.quarantine(name, quarantined[name])
            continue
        out, file_report, hashed_delta = results[name]
        outputs[name] = out
        anonymizer.report.merge(file_report)
        for token, digest in hashed_delta.items():
            anonymizer.hasher._cache.setdefault(token, digest)
    return outputs


def anonymize_network_parallel(
    anonymizer: Anonymizer, configs: Dict[str, str], jobs: int = 1
) -> AnonymizedNetwork:
    """Freeze-then-rewrite :meth:`Anonymizer.anonymize_network`.

    Byte-identical to ``anonymize_network(configs, two_pass=True)`` for
    every ``jobs`` value (enforced by ``tests/test_parallel.py``).
    """
    anonymizer.freeze_mappings(configs)
    outputs = anonymize_files(anonymizer, configs, jobs=jobs)
    out: Dict[str, str] = {}
    name_map: Dict[str, str] = {}
    for name in sorted(outputs):
        new_name = anonymizer.anonymize_file_name(name)
        name_map[name] = new_name
        out[new_name] = outputs[name]
    return AnonymizedNetwork(
        configs=out, report=anonymizer.report, name_map=name_map
    )
