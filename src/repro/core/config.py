"""Anonymizer policy configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.passlist import DEFAULT_PASSLIST, PassList


@dataclass
class AnonymizerConfig:
    """All policy knobs of the anonymizer, with paper-faithful defaults.

    Attributes
    ----------
    salt:
        The owner secret that salts every hash and keys every permutation
        (Section 6.1).  Choose a fresh, strong secret per network owner.
    hash_length:
        Hex characters of SHA1 digest kept for hashed tokens.
    passlist:
        The pass-list of unprivileged tokens (Section 4.1).  Defaults to
        the library's curated IOS command-reference vocabulary; extend it
        with :meth:`repro.core.passlist.PassList.from_text` over additional
        documentation corpora.
    class_preserving / subnet_shaping / preserve_specials:
        The three IP-mapping extensions of Section 4.3.
    regex_style:
        ``"alternation"`` (the paper's rewrite) or ``"mindfa"`` (the
        minimum-DFA compression the paper notes as possible future work).
    max_regex_language:
        Branch languages larger than this are judged ASN-uninformative or
        unsafe and handled per the policy in :mod:`repro.core.regexlang`.
    strip_comments:
        Remove descriptions, remarks, ! comments, and banners (Section 4.2).
        Disable only for debugging — comments are a known identity leak.
    anonymize_private_asns:
        The paper leaves private ASNs alone (they are not globally unique);
        set True for an even more conservative policy.
    rule_prefilter:
        Gate each context rule behind its cheap per-line trigger so rules
        that cannot match a line are skipped without running their regex.
        Never changes which rules fire (the trigger is a necessary
        condition of the pattern); disable only to measure its effect.
    jobs:
        Default worker count for :meth:`Anonymizer.anonymize_network`.
        ``jobs > 1`` fans per-file rewriting out over a process pool and
        implies the mapping-freeze phase (see ``two_pass``).
    two_pass:
        Default for the freeze-then-rewrite pipeline: scan the whole
        corpus once, pre-populating every shared map, before any file is
        rewritten.  Guarantees subnet shaping and makes the output
        independent of file processing order.
    """

    salt: Union[bytes, str] = b""
    hash_length: int = 16
    passlist: Optional[PassList] = None
    class_preserving: bool = True
    subnet_shaping: bool = True
    preserve_specials: bool = True
    #: "allow" (default): mapped outputs may equal special *values*, which
    #: keeps prefix relations exact everywhere; "walk": the paper's
    #: recursive remap (sacrifices walked addresses' prefix relations).
    ip_collision_policy: str = "allow"
    regex_style: str = "alternation"
    max_regex_language: int = 2048
    strip_comments: bool = True
    anonymize_private_asns: bool = False
    rule_prefilter: bool = True
    jobs: int = 1
    two_pass: bool = False
    #: Rule ids to disable (used by the iterative-closure experiment of
    #: Section 6.1 to start from a deliberately incomplete rule set).
    disabled_rules: frozenset = frozenset()
    #: Config language: "ios", "junos", or "auto" (sniff per file).  The
    #: paper implements IOS and notes direct applicability to JunOS; the
    #: JunOS rule extensions (J1-J9) realize that claim.
    syntax: str = "auto"
    #: How the frozen mapping snapshot reaches pool workers: "fork"
    #: (copy-on-write inheritance, zero serialization), "shm" (pickled
    #: once into a shared-memory segment every worker attaches to),
    #: "pickle" (legacy: a copy rides in each pool's initargs), or
    #: "auto" (fork where the platform supports it, else shm).  Output
    #: is byte-identical across all of them.
    snapshot_transport: str = "auto"
    #: Files per worker task when ``jobs > 1``.  ``0`` (default) sizes
    #: chunks automatically (~4 chunks per worker, at most 32 files);
    #: ``1`` restores one-file-per-task.  Chunking amortizes task
    #: submit/result overhead over small files without weakening
    #: per-file failure isolation.
    chunk_files: int = 0
    #: Deterministic fault-injection plan (see :mod:`repro.core.faults`);
    #: ``None`` falls back to the ``REPRO_FAULT_PLAN`` environment
    #: variable.  Test-only: never set on a run whose output you publish.
    fault_plan: Optional[str] = None
    #: Recognizer plugin families to activate (see :mod:`repro.plugins`).
    #: ``None`` (default) activates every discovered builtin family minus
    #: any named in the ``REPRO_PLUGINS_DISABLE`` environment variable; an
    #: explicit sequence (possibly empty) activates exactly those families
    #: and nothing else.  Unknown names raise
    #: :class:`repro.plugins.UnknownPluginError` at engine construction.
    plugins: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.passlist is None:
            self.passlist = DEFAULT_PASSLIST
        if self.syntax not in ("ios", "junos", "auto"):
            raise ValueError(
                "syntax must be 'ios', 'junos', or 'auto', not {!r}".format(self.syntax)
            )
        if self.regex_style not in ("alternation", "mindfa"):
            raise ValueError(
                "regex_style must be 'alternation' or 'mindfa', not {!r}".format(
                    self.regex_style
                )
            )
        if isinstance(self.salt, str):
            self.salt = self.salt.encode("utf-8")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1, not {!r}".format(self.jobs))
        if self.snapshot_transport not in ("auto", "fork", "shm", "pickle"):
            raise ValueError(
                "snapshot_transport must be 'auto', 'fork', 'shm', or "
                "'pickle', not {!r}".format(self.snapshot_transport)
            )
        if self.chunk_files < 0:
            raise ValueError(
                "chunk_files must be >= 0, not {!r}".format(self.chunk_files)
            )
        if self.plugins is not None:
            if isinstance(self.plugins, str):
                raise ValueError(
                    "plugins must be a sequence of family names, not a "
                    "bare string: {!r}".format(self.plugins)
                )
            self.plugins = tuple(str(name) for name in self.plugins)
