"""Prefix-preserving IP address anonymization (paper Section 4.3).

The mapping is the data-structure-based scheme the paper extends from
Minshall's tcpdpriv ``-a50``: a binary trie in which every node carries a
*flip bit* chosen when the node is first created.  Mapping an address walks
its bits MSB-first; output bit *i* is input bit *i* XOR the flip bit of the
node reached by the first *i* input bits.  Because the flip bit is a pure
function of the input prefix, two addresses sharing a k-bit prefix map to
two addresses sharing a k-bit prefix and vice versa — the
*prefix-preserving* property that keeps the ``subnet contains``
relationship intact across a whole network's configs.

The paper's three extensions, realized by "controlling how new entries are
added to the data-structure":

* **Class preservation** — the flip bits of the nodes along the all-ones
  path at depths 0–3 are pinned to zero, so the classful-prefix bits
  (0 / 10 / 110 / 1110 / 1111) pass through unchanged and a class-A address
  always maps to a class-A address (old classful commands such as RIP
  ``network`` statements stay meaningful).
* **Special addresses pass through unchanged** — netmasks
  (``255.255.255.0``), inverse masks (``0.0.0.255``), multicast/reserved
  (224/3) and loopback addresses are fixed points.  When a *non*-special
  address happens to map onto a special value, ``collision_policy``
  decides what happens:

  - ``"walk"`` — the paper's behavior: recursively re-map until the value
    leaves the special set.  The paper claims this "maintains the
    structure-preserving property"; in strict pairwise terms it cannot —
    every walked address loses its prefix relations, and because some /8
    must map onto 0/8 (where the inverse masks live), a network that uses
    that unlucky /8 gets a *cluster* of walked addresses and its
    validation suites genuinely diverge (observed on the synthetic corpus;
    see bench E6).
  - ``"allow"`` (default) — outputs are permitted to *equal* special
    values.  Input specials still pass through unchanged (all that config
    semantics requires), prefix relations stay exact everywhere, and the
    only cost is cosmetic: an anonymized host address may happen to look
    like a wildcard value.  Occurrences are counted in
    ``collision_allowed`` for review.
* **Subnet-address shaping** — when a new trie node is created along a
  suffix of all-zero input bits (the host part of a subnet address such as
  ``10.1.1.0``), its flip bit is pinned to zero, so subnet addresses map to
  subnet addresses whenever they are inserted before conflicting hosts
  (best-effort, exactly as the paper describes: a readability aid, not a
  security property).
"""

from __future__ import annotations

import hashlib
import hmac
import random
from typing import Optional, Union

from repro.core.secrets import derive_key, derive_seed_int, normalize_salt
from repro.netutil import (
    IPV4_MAX,
    IPV6_MAX,
    int_to_ip,
    int_to_ip6,
    ip6_to_int,
    ip_to_int,
    mask_for_len,
    trailing_zero_bits,
    trailing_zero_bits128,
)


class SpecialAddresses:
    """The set of addresses with special meaning that must not be remapped.

    Membership is tested by value (the paper: "all special IP addresses
    (e.g., netmasks, multicast) are passed through unchanged").
    """

    def __init__(
        self,
        include_masks: bool = True,
        include_inverse_masks: bool = True,
        include_multicast: bool = True,
        include_loopback: bool = False,
        extra=(),
    ) -> None:
        # Loopback is OFF by default, deliberately: the paper's special set
        # is "netmasks, multicast".  With class preservation, ordinary
        # config addresses essentially never collide with that set (masks
        # live in class E, multicast in class D, inverse masks are 33 exact
        # values), so the recursive-remap path almost never fires and
        # pairwise prefix preservation stays exact.  Declaring all of
        # 127/8 special would make ~0.8% of class-A mappings cycle-walk,
        # each walk sacrificing that address's prefix relations.
        self._exact = set(int(v) for v in extra)
        # 0.0.0.0 and 255.255.255.255 are members of both mask families.
        if include_masks:
            self._exact.update(mask_for_len(n) for n in range(33))
        if include_inverse_masks:
            self._exact.update(mask_for_len(n) ^ IPV4_MAX for n in range(33))
        self.include_multicast = include_multicast
        self.include_loopback = include_loopback

    def __contains__(self, value: int) -> bool:
        if value in self._exact:
            return True
        if self.include_multicast and value >= 0xE0000000:  # 224.0.0.0 and up
            return True
        if self.include_loopback and (value >> 24) == 127:
            return True
        return False

    def why_special(self, value: int) -> Optional[str]:
        """Human-readable reason a value is special (None if it is not)."""
        if value in self._exact:
            return "mask-or-configured"
        if self.include_multicast and value >= 0xE0000000:
            return "multicast-or-reserved"
        if self.include_loopback and (value >> 24) == 127:
            return "loopback"
        return None


class PrefixPreservingMap:
    """Stateful prefix-preserving IPv4 anonymization map.

    Parameters
    ----------
    salt:
        Owner secret; all flip-bit randomness derives from it, so the map
        is deterministic for a fixed (salt, insertion order) pair.
    class_preserving:
        Pin the classful-prefix bits (default True, per the paper).
    subnet_shaping:
        Map subnet addresses to subnet addresses, best-effort
        (default True, per the paper).
    preserve_specials:
        Pass special addresses through unchanged and cycle-walk collisions
        (default True, per the paper).
    specials:
        A :class:`SpecialAddresses` instance (a default one is built when
        omitted).
    """

    #: Trie nodes at these (depth, path) positions are pinned to flip=0 so
    #: classful prefixes survive: paths "", "1", "11", "111".
    _CLASS_NODES = frozenset((depth, (1 << depth) - 1) for depth in range(4))

    def __init__(
        self,
        salt: Union[bytes, str] = b"",
        class_preserving: bool = True,
        subnet_shaping: bool = True,
        preserve_specials: bool = True,
        specials: Optional[SpecialAddresses] = None,
        subnet_shaping_min_zeros: int = 2,
        collision_policy: str = "allow",
    ) -> None:
        if collision_policy not in ("allow", "walk"):
            raise ValueError(
                "collision_policy must be 'allow' or 'walk', not {!r}".format(
                    collision_policy
                )
            )
        self.collision_policy = collision_policy
        salt = normalize_salt(salt)
        self._rng = random.Random(derive_seed_int(salt, "ip-trie-flip-bits"))
        self._flips = {}
        # value -> raw_map(value) memo.  A trie node's flip bit never
        # changes once created, so the mapping of a given value is stable
        # for the life of the trie and the 32-level walk (32 dict probes
        # plus a keyed hash per fresh node) collapses to one dict hit for
        # every repeat — the common case, since the freeze phase preloads
        # every corpus address before the rewrite starts.  Invalidated
        # only when `_flips` is *replaced* wholesale (state import).
        self._raw_cache = {}
        # dotted-quad text -> rule-level outcome memo, owned by
        # RuleContext.map_ip_text (stored here so it shares this trie's
        # lifecycle: same stability argument, same invalidation).
        self._text_cache = {}
        self._frozen = False
        self._frozen_flip_key = derive_key(salt, "ip-trie-frozen-flip-bits")
        self.class_preserving = class_preserving
        self.subnet_shaping = subnet_shaping
        self.preserve_specials = preserve_specials
        self.subnet_shaping_min_zeros = subnet_shaping_min_zeros
        self.specials = specials if specials is not None else SpecialAddresses()
        self.collision_walks = 0
        self.collision_allowed = 0
        self.addresses_mapped = 0

    # -- raw trie walk ---------------------------------------------------

    def raw_map(self, value: int) -> int:
        """The pure trie permutation (no special handling)."""
        cached = self._raw_cache.get(value)
        if cached is not None:
            return cached
        if not 0 <= value <= IPV4_MAX:
            raise ValueError("not a 32-bit address: {!r}".format(value))
        output = 0
        flips = self._flips
        shapeable = -1  # lazily computed, shared by every node of this walk
        for depth in range(32):
            prefix = value >> (32 - depth)
            key = (depth, prefix)
            flip = flips.get(key)
            if flip is None:
                if shapeable < 0:
                    shapeable = self._shapeable_zeros(value)
                flip = self._new_flip(depth, prefix, value, shapeable)
                flips[key] = flip
            bit = (value >> (31 - depth)) & 1
            output = (output << 1) | (bit ^ flip)
        self._raw_cache[value] = output
        return output

    def invalidate_cache(self) -> None:
        """Drop the mapping memos (call after replacing ``_flips``)."""
        self._raw_cache.clear()
        self._text_cache.clear()

    def freeze(self) -> None:
        """Detach any *future* flip bits from the RNG stream.

        Before freezing, flip bits are drawn from a salted RNG stream, so
        the trie depends on insertion order (that is what enables subnet
        shaping, and what forces sequential file processing).  After
        :meth:`freeze`, a node created for a previously-unseen prefix gets
        its flip bit from a keyed hash of ``(depth, prefix)`` — a pure
        function of the owner secret, independent of when or in which
        process the node is created.  The mapping-freeze phase preloads
        every address it can find and then calls this, so that even an
        address the corpus scan missed maps identically in every worker
        and in the sequential pipeline.

        Freezing is one-way for a given instance; already-created nodes
        keep their RNG-drawn bits.
        """
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    def _new_flip(
        self, depth: int, prefix: int, value: int, shapeable: int = -1
    ) -> int:
        if self._frozen:
            # Post-freeze flip bits are a pure function of (secret, depth,
            # prefix) — never of `value` or of RNG position — so a node
            # gets the same bit no matter which address creates it first,
            # in which process.  The subnet-shaping pin is deliberately
            # NOT applied here: it depends on the creating address's zero
            # suffix, which would reintroduce order dependence.  Shaping
            # is best-effort for addresses the freeze scan missed (per the
            # paper), and exact for everything it preloaded.
            material = b"%d:%d" % (depth, prefix)
            digest = hmac.new(self._frozen_flip_key, material, hashlib.sha256)
            if self.class_preserving and (depth, prefix) in self._CLASS_NODES:
                return 0
            return digest.digest()[0] & 1
        # Draw first so the RNG stream advances identically whether or not
        # a shaping constraint pins this node (keeps unrelated subtrees
        # independent of shaping decisions).
        drawn = self._rng.getrandbits(1)
        if self.class_preserving and (depth, prefix) in self._CLASS_NODES:
            return 0
        if self.subnet_shaping:
            remaining = value & ((1 << (32 - depth)) - 1)
            zero_suffix_len = 32 - depth
            if remaining == 0:
                if shapeable < 0:
                    shapeable = self._shapeable_zeros(value)
                if zero_suffix_len <= shapeable:
                    return 0
        return drawn

    def _shapeable_zeros(self, value: int) -> int:
        """How many trailing zeros of *value* qualify for shaping."""
        zeros = trailing_zero_bits(value)
        if zeros >= self.subnet_shaping_min_zeros:
            return zeros
        return 0

    # -- public mapping --------------------------------------------------

    def map_int(self, value: int) -> int:
        """Map one 32-bit address, honoring special-address passthrough."""
        self.addresses_mapped += 1
        if self.preserve_specials and value in self.specials:
            return value
        mapped = self.raw_map(value)
        if self.preserve_specials and mapped in self.specials:
            if self.collision_policy == "allow":
                self.collision_allowed += 1
                return mapped
            # Cycle-walk (paper behavior): raw_map is a permutation and the
            # orbit of `value` returns to the non-special `value` itself,
            # so some element of the orbit after `mapped` is non-special
            # and the loop terminates — at the cost of this address's
            # prefix relations.
            while mapped in self.specials:
                self.collision_walks += 1
                mapped = self.raw_map(mapped)
        return mapped

    def map_address(self, text: str) -> str:
        """Map a dotted-quad string."""
        return int_to_ip(self.map_int(ip_to_int(text)))

    def map_prefix(self, text: str) -> str:
        """Map ``a.b.c.d/len`` notation, keeping the length."""
        addr_text, slash, len_text = text.partition("/")
        if not slash:
            raise ValueError("missing /len in {!r}".format(text))
        return "{}/{}".format(self.map_address(addr_text), len_text)

    @property
    def nodes_created(self) -> int:
        return len(self._flips)


class Prefix6PreservingMap:
    """Stateful prefix-preserving IPv6 anonymization map.

    The 128-bit analog of :class:`PrefixPreservingMap`, contributed by the
    ``ipv6`` recognizer plugin: the same per-node flip-bit trie, the same
    freeze contract (pre-freeze bits from a salted RNG stream, post-freeze
    bits a keyed hash of ``(depth, prefix)``), the same text-cache slot for
    :class:`~repro.core.context.RuleContext` memoization — so it rides the
    existing snapshot/journal/state machinery with only field additions.

    Differences from the IPv4 map, all deliberate:

    * **No class preservation.**  IPv6 has no classful addressing; there
      is nothing to pin.
    * **Specials** are the unspecified address (``::``), loopback
      (``::1``) and multicast (``ff00::/8``) — fixed points, same spirit
      as the paper's "netmasks, multicast" passthrough.  IPv6 configs
      carry prefix lengths, not dotted masks, so there is no mask family.
    * **Subnet shaping** pins all-zero interface-ID suffixes (at least
      ``subnet_shaping_min_zeros`` trailing zeros) exactly as for IPv4 —
      ``2001:db8:1::/48``-style subnet anchors keep their zero tails.

    Key material uses distinct derivation domains (``ip6-trie-*``), so the
    v6 permutation is cryptographically independent of the v4 one under
    the same owner secret.
    """

    def __init__(
        self,
        salt: Union[bytes, str] = b"",
        subnet_shaping: bool = True,
        preserve_specials: bool = True,
        subnet_shaping_min_zeros: int = 2,
        collision_policy: str = "allow",
    ) -> None:
        if collision_policy not in ("allow", "walk"):
            raise ValueError(
                "collision_policy must be 'allow' or 'walk', not {!r}".format(
                    collision_policy
                )
            )
        self.collision_policy = collision_policy
        salt = normalize_salt(salt)
        self._rng = random.Random(derive_seed_int(salt, "ip6-trie-flip-bits"))
        self._flips = {}
        self._raw_cache = {}
        # IPv6 text -> rule-level outcome memo, owned by
        # RuleContext.map_ip6_text (same lifecycle as the v4 text cache).
        self._text_cache = {}
        self._frozen = False
        self._frozen_flip_key = derive_key(salt, "ip6-trie-frozen-flip-bits")
        self.subnet_shaping = subnet_shaping
        self.preserve_specials = preserve_specials
        self.subnet_shaping_min_zeros = subnet_shaping_min_zeros
        self.collision_walks = 0
        self.collision_allowed = 0
        self.addresses_mapped = 0

    # -- special set -----------------------------------------------------

    @staticmethod
    def is_special(value: int) -> bool:
        return value <= 1 or (value >> 120) == 0xFF

    # -- raw trie walk ---------------------------------------------------

    def raw_map(self, value: int) -> int:
        """The pure 128-level trie permutation (no special handling)."""
        cached = self._raw_cache.get(value)
        if cached is not None:
            return cached
        if not 0 <= value <= IPV6_MAX:
            raise ValueError("not a 128-bit address: {!r}".format(value))
        output = 0
        flips = self._flips
        shapeable = -1
        for depth in range(128):
            prefix = value >> (128 - depth)
            key = (depth, prefix)
            flip = flips.get(key)
            if flip is None:
                if shapeable < 0:
                    shapeable = self._shapeable_zeros(value)
                flip = self._new_flip(depth, prefix, value, shapeable)
                flips[key] = flip
            bit = (value >> (127 - depth)) & 1
            output = (output << 1) | (bit ^ flip)
        self._raw_cache[value] = output
        return output

    def invalidate_cache(self) -> None:
        self._raw_cache.clear()
        self._text_cache.clear()

    def freeze(self) -> None:
        """Detach future flip bits from the RNG stream (see
        :meth:`PrefixPreservingMap.freeze`; the contract is identical)."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    def _new_flip(
        self, depth: int, prefix: int, value: int, shapeable: int = -1
    ) -> int:
        if self._frozen:
            material = b"%d:%d" % (depth, prefix)
            digest = hmac.new(self._frozen_flip_key, material, hashlib.sha256)
            return digest.digest()[0] & 1
        drawn = self._rng.getrandbits(1)
        if self.subnet_shaping:
            remaining = value & ((1 << (128 - depth)) - 1)
            zero_suffix_len = 128 - depth
            if remaining == 0:
                if shapeable < 0:
                    shapeable = self._shapeable_zeros(value)
                if zero_suffix_len <= shapeable:
                    return 0
        return drawn

    def _shapeable_zeros(self, value: int) -> int:
        zeros = trailing_zero_bits128(value)
        if zeros >= self.subnet_shaping_min_zeros:
            return zeros
        return 0

    # -- public mapping --------------------------------------------------

    def map_int(self, value: int) -> int:
        """Map one 128-bit address, honoring special-address passthrough."""
        self.addresses_mapped += 1
        if self.preserve_specials and self.is_special(value):
            return value
        mapped = self.raw_map(value)
        if self.preserve_specials and self.is_special(mapped):
            if self.collision_policy == "allow":
                self.collision_allowed += 1
                return mapped
            while self.is_special(mapped):
                self.collision_walks += 1
                mapped = self.raw_map(mapped)
        return mapped

    def map_address(self, text: str) -> str:
        """Map IPv6 text, rendering RFC 5952 canonical output."""
        return int_to_ip6(self.map_int(ip6_to_int(text)))

    def map_prefix(self, text: str) -> str:
        """Map ``addr/len`` notation, keeping the length."""
        addr_text, slash, len_text = text.partition("/")
        if not slash:
            raise ValueError("missing /len in {!r}".format(text))
        return "{}/{}".format(self.map_address(addr_text), len_text)

    @property
    def nodes_created(self) -> int:
        return len(self._flips)
