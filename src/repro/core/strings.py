"""Salted SHA1 hashing of privileged strings (paper Section 4.1).

Every non-numeric token not found on the pass-list is replaced by a salted
SHA1 digest.  Equal inputs produce equal outputs under one salt, which is
what maintains referential integrity (the ``uses`` relationship between a
``route-map UUNET-import`` reference and its definition survives because
both occurrences hash to the same digest).
"""

from __future__ import annotations

import hashlib
from types import MappingProxyType
from typing import Dict, Mapping


class StringHasher:
    """Deterministic salted-SHA1 token hashing.

    Parameters
    ----------
    salt:
        Owner secret (bytes).  Different salts give unrelated digests.
    length:
        Number of hex digest characters to keep.  The paper uses full SHA1
        digests; shorter prefixes keep anonymized configs readable.  With
        the default of 16 hex chars (64 bits) collisions are negligible at
        config-corpus scale.
    """

    def __init__(self, salt: bytes, length: int = 16):
        if length < 4 or length > 40:
            raise ValueError("hash length must be between 4 and 40 hex chars")
        self.salt = salt
        self.length = length
        # One dict does double duty: memo cache for repeat lookups AND the
        # leak-scanner record of every token hashed so far.  (They held
        # identical key/value pairs when kept separately, which doubled
        # memory on large corpora.)
        self._cache: Dict[str, str] = {}
        # When delta tracking is on (parallel workers), every *new* cache
        # key is appended here so "tokens first hashed since X" is O(new
        # tokens), not O(cache) — at corpus scale the cache holds the
        # whole vocabulary and slicing it per file was quadratic.
        self._delta_keys = None

    def hash_token(self, token: str) -> str:
        """Return the anonymized form of *token*.

        The output never looks like a plain integer (a leading ``h`` is
        prepended when the digest prefix happens to be all digits) so that
        downstream passes cannot mistake a hash for an ASN or other number.
        """
        cached = self._cache.get(token)
        if cached is not None:
            return cached
        digest = hashlib.sha1(self.salt + token.encode("utf-8")).hexdigest()
        out = digest[: self.length]
        if out.isdigit():
            out = "h" + out[:-1]
        self._cache[token] = out
        if self._delta_keys is not None:
            self._delta_keys.append(token)
        return out

    def begin_cache_delta(self) -> None:
        """Start (or restart) tracking newly-hashed tokens incrementally."""
        self._delta_keys = []

    def take_cache_delta(self) -> Dict[str, str]:
        """The tokens first hashed since :meth:`begin_cache_delta`.

        Returns them as a ``{token: digest}`` dict and resets the
        tracker, so consecutive calls partition the new entries.  Safe to
        call only while tracking is active.
        """
        cache = self._cache
        delta = {token: cache[token] for token in self._delta_keys}
        self._delta_keys = []
        return delta

    @property
    def hashed_inputs(self) -> Mapping[str, str]:
        """Read-only mapping of every original token hashed so far.

        Used by the leak scanner (Section 6.1): after anonymization, no
        original token recorded here may appear verbatim in the output.
        The view is live (it reflects later hashing) and cannot be
        mutated by callers.
        """
        return MappingProxyType(self._cache)
