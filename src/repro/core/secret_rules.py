"""Credential-hashing rules — R26 through R28.

Secrets (passwords, SNMP community strings, usernames) must be hashed even
when they happen to be pass-list words: ``snmp-server community public``
would otherwise survive and hand an attacker a working credential.  These
rules run *first* so no other rule can misinterpret credential material.
"""

from __future__ import annotations

import re
from typing import List

from repro.core.rulebase import Rule

#: Words that follow `key` as a sub-keyword rather than key material.
_KEY_KEYWORDS = frozenset({"chain", "config-key", "generate", "zeroize"})


def build_secret_rules() -> List[Rule]:
    rules: List[Rule] = []

    password_re = re.compile(
        r"(\b(?:password|secret|key-string|md5)\b)( [0-7])?( )(\S+)", re.IGNORECASE
    )

    def apply_password(line, ctx):
        def handler(match):
            return [
                (match.group(1), True),
                (match.group(2) or "", True),
                (match.group(3), True),
                (ctx.hash_secret(match.group(4)), True),
            ]

        return line.apply_rule(password_re, handler)

    rules.append(
        Rule(
            "R26",
            "passwords-and-keys",
            "secret",
            "The argument of password/secret/key-string/md5 commands "
            "(enable secret, neighbor password, ntp/ospf md5 keys, ...) is "
            "always hashed, pass-list or not; the optional encryption-type "
            "digit is kept.",
            apply_password,
            trigger=("password", "secret", "key-string", "md5"),
        )
    )

    key_re = re.compile(r"(\b(?:tacacs-server|radius-server) key )(\S+)", re.IGNORECASE)

    def apply_key(line, ctx):
        def handler(match):
            word = match.group(2)
            if word.lower() in _KEY_KEYWORDS:
                return None
            return [(match.group(1), True), (ctx.hash_secret(word), True)]

        return line.apply_rule(key_re, handler)

    rules.append(
        Rule(
            "R27",
            "aaa-server-keys",
            "secret",
            "TACACS+/RADIUS shared secrets, plus `snmp-server community` "
            "strings (handled together: both are working credentials).",
            apply_key,
            trigger=("tacacs-server", "radius-server"),
        )
    )

    snmp_comm_re = re.compile(r"(\bsnmp-server community )(\S+)", re.IGNORECASE)
    snmp_host_re = re.compile(r"(\bsnmp-server host )(\S+)( )(\S+)", re.IGNORECASE)

    def apply_snmp_comm(line, ctx):
        def handler(match):
            return [(match.group(1), True), (ctx.hash_secret(match.group(2)), True)]

        def host_handler(match):
            # The host address stays live for the IP rules; the trailing
            # community string is a credential and is hashed.
            return [
                (match.group(1), True),
                (match.group(2), False),
                (match.group(3), True),
                (ctx.hash_secret(match.group(4)), True),
            ]

        return line.apply_rule(snmp_comm_re, handler) + line.apply_rule(
            snmp_host_re, host_handler
        )

    # R27 covers AAA keys; SNMP community strings share its intent but need
    # their own pattern, and usernames are R28.
    rules.append(
        Rule(
            "R27b",
            "snmp-community-string",
            "secret",
            "(companion pattern to R27) `snmp-server community <string>`.",
            apply_snmp_comm,
            trigger="snmp-server ",
        )
    )

    username_re = re.compile(r"^(\s*username )(\S+)", re.IGNORECASE)

    def apply_username(line, ctx):
        def handler(match):
            return [(match.group(1), True), (ctx.hash_secret(match.group(2)), True)]

        return line.apply_rule(username_re, handler)

    rules.append(
        Rule(
            "R28",
            "usernames",
            "secret",
            "Local account names in `username <name> ...` are hashed even "
            "when they are dictionary words.",
            apply_username,
            trigger="username ",
        )
    )

    return rules
