"""Deterministic fault injection for the fail-closed runner.

An anonymizer's worst failure mode is a *partial* failure: an exception
mid-run that leaves some output written and some raw, or a crashed worker
that aborts the whole corpus with no indication of the poisoned file.  To
prove the runner's fail-closed guarantees hold (``tests/test_faults.py``),
this module injects faults at three seams, deterministically:

* ``rule:<rule_id>[:<nth>]`` — the named rule raises on its *nth* hit
  (default: the first).  The engine must respond by replacing the entire
  line with a hashed placeholder, never by passing the raw line through.
* ``worker-exit:<match>[:<code>]`` — a pool worker calls :func:`os._exit`
  when it starts rewriting a file whose name contains *match* (simulating
  a segfault / OOM-kill).  The parallel layer must quarantine that file,
  respawn the pool once, and finish the rest of the corpus.
* ``write-fail:<match>`` — the atomic writer raises :class:`OSError` the
  first time it writes a file whose name contains *match*.  No partial
  output file may remain observable.

Four service-scoped faults exercise the daemon's crash-safety seams
(``tests/test_recovery.py``):

* ``journal-kill:<match>`` — the daemon process dies (``os._exit``)
  *mid*-journal-append for a source containing *match*: half the record
  is on disk, no response was sent.  Restart recovery must discard the
  torn tail, and the retrying client's resubmission must converge.
* ``journal-torn:<match>`` — same torn append, but the process survives:
  the handler fails that one request with the journal exception.  The
  next recovery must treat the torn trailing record as unacknowledged.
* ``drop-pre-commit:<match>`` — the handler drops the connection before
  the session commits anything.  A retry re-runs the work (no journaled
  result exists).
* ``drop-post-commit:<match>`` — the handler commits the journal record
  and *then* drops the connection without responding — the ambiguous
  failure.  A retry presenting the same idempotency key must get the
  journaled result back, not a second anonymization.

Two disk-fault kinds exercise the graceful-degradation path (a full or
failing disk, not a crash):

* ``journal-enospc:<match>`` — the journal append for a source
  containing *match* fails once with ``OSError(ENOSPC)`` *before* any
  bytes reach the file.  The daemon must answer 507 + Retry-After with
  the session parked read-only — never a torn ack, never a 500 — and
  recover as soon as an append succeeds again.
* ``snapshot-eio:<match>`` — the atomic snapshot write fails once with
  ``OSError(EIO)``.  Snapshot failure is non-fatal: the journal record
  already committed, so the daemon counts the failure, skips rotation,
  and retries at the next snapshot boundary.  Use the fault source
  ``snapshot`` (spec ``snapshot-eio:snapshot``) to target it.

One liveness fault exercises the supervisor's hung-worker watchdog:

* ``worker-hang:<match>`` — the handler for a source containing *match*
  wedges the worker's serve loops without exiting (a live-lock, not a
  crash).  The worker stops refreshing its heartbeat; the supervisor
  must notice within ``--watchdog-timeout``, SIGKILL it, and respawn in
  place under the existing budget.

Finally, ``chaos:<seed>:<rate>[:<kinds>]`` is the *seeded chaos
scheduler*: instead of naming one deterministic trigger it composes the
fault kinds above probabilistically from a PRNG seeded with ``<seed>``.
Every trigger point rolls the dice once (probability ``<rate>``, a float
in ``(0, 1]``), so a long soak run injects an arbitrary interleaving of
faults — yet the whole schedule is reproducible by re-running with the
printed seed.  ``<kinds>`` is an optional ``+``-separated subset; the
default set is the in-process faults (torn, ENOSPC, EIO, connection
drops).  The process-killing kinds (``journal-kill``, ``worker-exit``,
``worker-hang``) must be opted into explicitly.

A plan is a ``;``-separated list of specs, taken from
``AnonymizerConfig.fault_plan`` or the ``REPRO_FAULT_PLAN`` environment
variable (config wins).  Hit counters live on the plan instance, so each
worker process — which rebuilds its anonymizer, and with it its plan —
counts independently; that keeps injection deterministic per process.
A malformed plan raises :class:`FaultPlanError`; entry points catch it
and exit with ``EXIT_BAD_FAULT_PLAN`` instead of a traceback.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "FAULT_PLAN_ENV",
    "ChaosSchedule",
    "FaultInjected",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "build_fault_plan",
    "parse_env_fault_plan",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_KINDS = (
    "rule",
    "worker-exit",
    "worker-hang",
    "write-fail",
    "journal-kill",
    "journal-torn",
    "journal-enospc",
    "drop-pre-commit",
    "drop-post-commit",
    "snapshot-eio",
)

#: Chaos-mode composition: the safe default set (faults the process
#: survives) and the full opt-in set.
_CHAOS_DEFAULT_KINDS = (
    "journal-torn",
    "journal-enospc",
    "snapshot-eio",
    "drop-pre-commit",
    "drop-post-commit",
)
_CHAOS_ALLOWED_KINDS = _CHAOS_DEFAULT_KINDS + (
    "journal-kill",
    "worker-exit",
    "worker-hang",
)


class FaultInjected(RuntimeError):
    """Raised by an injected ``rule`` fault (never by production code)."""


class FaultPlanError(ValueError):
    """A fault-plan spec cannot be parsed.

    Subclasses :class:`ValueError` so existing callers (the service's
    session-options validation) keep treating it as a 400; the CLI entry
    points catch it explicitly and exit ``EXIT_BAD_FAULT_PLAN``.
    """


class ChaosSchedule:
    """The seeded probabilistic fault composer behind ``chaos:`` mode.

    Every trigger point asks :meth:`roll` whether to inject its fault
    kind; each enabled-kind query burns exactly one PRNG draw, so the
    schedule is a pure function of (seed, sequence of queries) — re-run
    the same workload with the same seed and the same faults fire at
    the same points.
    """

    def __init__(self, seed: str, rate: float, kinds: Tuple[str, ...]):
        self.seed = seed
        self.rate = rate
        self.kinds = frozenset(kinds)
        self._rng = random.Random("repro-chaos\x00" + seed)
        #: Injection counts per kind, for soak-run reporting.
        self.injected: Dict[str, int] = {}

    def roll(self, kind: str, source: str) -> bool:
        if kind not in self.kinds:
            return False
        if self._rng.random() >= self.rate:
            return False
        self.injected[kind] = self.injected.get(kind, 0) + 1
        return True

    def __str__(self) -> str:
        return "chaos:{}:{}:{}".format(
            self.seed, self.rate, "+".join(sorted(self.kinds))
        )


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: what to break, where, and when."""

    kind: str  # "rule" | "worker-exit" | "write-fail"
    target: str  # rule id, or a substring of the file name
    nth: int = 1  # rule faults: raise on the nth hit

    def __str__(self) -> str:
        if self.kind == "rule":
            return "{}:{}:{}".format(self.kind, self.target, self.nth)
        return "{}:{}".format(self.kind, self.target)


class FaultPlan:
    """A parsed fault plan plus its per-process trigger state."""

    def __init__(
        self,
        specs: Tuple[FaultSpec, ...],
        chaos: Optional[ChaosSchedule] = None,
    ):
        self.specs = specs
        self.chaos = chaos
        self._rule_hits: Dict[str, int] = {}
        self._rules_fired: Set[str] = set()
        self._writes_failed: Set[str] = set()
        self._once_fired: Set[str] = set()

    @classmethod
    def _parse_chaos(cls, chunk: str, parts: List[str]) -> ChaosSchedule:
        if len(parts) < 3 or not parts[1].strip() or not parts[2].strip():
            raise FaultPlanError(
                "bad chaos spec {!r}: expected "
                "chaos:<seed>:<rate>[:<kind>+<kind>...]".format(chunk)
            )
        seed = parts[1].strip()
        try:
            rate = float(parts[2])
        except ValueError:
            raise FaultPlanError(
                "chaos rate must be a float in (0, 1], got {!r} in "
                "{!r}".format(parts[2], chunk)
            ) from None
        if not 0.0 < rate <= 1.0:
            raise FaultPlanError(
                "chaos rate must be in (0, 1], got {} in {!r}".format(
                    rate, chunk
                )
            )
        kinds: Tuple[str, ...] = _CHAOS_DEFAULT_KINDS
        if len(parts) >= 4 and parts[3].strip():
            requested = tuple(
                kind.strip().lower().replace("_", "-")
                for kind in parts[3].split("+")
                if kind.strip()
            )
            unknown = [k for k in requested if k not in _CHAOS_ALLOWED_KINDS]
            if unknown or not requested:
                raise FaultPlanError(
                    "chaos kinds {!r} not composable; pick from {}".format(
                        unknown or parts[3],
                        "/".join(_CHAOS_ALLOWED_KINDS),
                    )
                )
            kinds = requested
        return ChaosSchedule(seed, rate, kinds)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``kind:target[:nth]`` / ``chaos:seed:rate`` specs
        separated by ``;``.

        A malformed plan raises :class:`FaultPlanError` — a typo'd fault
        plan silently injecting nothing would defeat the tests that rely
        on it.
        """
        specs: List[FaultSpec] = []
        chaos: Optional[ChaosSchedule] = None
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            kind = parts[0].strip().lower().replace("_", "-")
            if kind == "chaos":
                if chaos is not None:
                    raise FaultPlanError(
                        "fault plan {!r} has more than one chaos "
                        "spec".format(text)
                    )
                chaos = cls._parse_chaos(chunk, parts)
                continue
            if kind not in _KINDS or len(parts) < 2 or not parts[1].strip():
                raise FaultPlanError(
                    "bad fault spec {!r}: expected kind:target[:nth] with "
                    "kind in {} (or chaos:<seed>:<rate>)".format(
                        chunk, "/".join(_KINDS)
                    )
                )
            target = parts[1].strip()
            nth = 1
            if len(parts) >= 3 and parts[2].strip():
                try:
                    nth = int(parts[2])
                except ValueError:
                    raise FaultPlanError(
                        "fault nth must be an integer in {!r}".format(chunk)
                    ) from None
                if nth < 1:
                    raise FaultPlanError(
                        "fault nth must be >= 1 in {!r}".format(chunk)
                    )
            specs.append(FaultSpec(kind=kind, target=target, nth=nth))
        if not specs and chaos is None:
            raise FaultPlanError(
                "fault plan {!r} contains no specs".format(text)
            )
        return cls(tuple(specs), chaos=chaos)

    def describe(self) -> str:
        parts = [str(spec) for spec in self.specs]
        if self.chaos is not None:
            parts.append(str(self.chaos))
        return "; ".join(parts)

    def _chaos_roll(self, kind: str, source: str) -> bool:
        return self.chaos is not None and self.chaos.roll(kind, source)

    # -- trigger points ---------------------------------------------------

    def on_rule_hits(self, rule_id: str, hits: int) -> None:
        """Called by the engine after *rule_id* rewrote *hits* matches.

        Raises :class:`FaultInjected` exactly once per plan instance when
        the cumulative hit count first reaches the spec's ``nth``.
        """
        for spec in self.specs:
            if spec.kind != "rule" or spec.target != rule_id:
                continue
            count = self._rule_hits.get(rule_id, 0) + hits
            self._rule_hits[rule_id] = count
            if count >= spec.nth and rule_id not in self._rules_fired:
                self._rules_fired.add(rule_id)
                raise FaultInjected(
                    "injected fault: rule {} hit #{}".format(rule_id, spec.nth)
                )

    def should_kill_worker(self, source: str) -> bool:
        """True if a worker rewriting *source* must die (``os._exit``)."""
        return any(
            spec.kind == "worker-exit" and spec.target in source
            for spec in self.specs
        ) or self._chaos_roll("worker-exit", source)

    def _fire_once(self, kind: str, name: str) -> bool:
        """True exactly once per (matching spec, name) for *kind*."""
        for spec in self.specs:
            if spec.kind != kind or spec.target not in name:
                continue
            key = "{}\x00{}\x00{}".format(kind, spec.target, name)
            if key not in self._once_fired:
                self._once_fired.add(key)
                return True
        return False

    def should_kill_journal(self, source: str) -> bool:
        """True if the process must die mid-journal-append for *source*.

        No one-shot bookkeeping: the process does not survive to count.
        """
        return any(
            spec.kind == "journal-kill" and spec.target in source
            for spec in self.specs
        ) or self._chaos_roll("journal-kill", source)

    def torn_append_once(self, source: str) -> bool:
        """True exactly once: the journal append for *source* must be
        torn (half the record written, then the append fails)."""
        return self._fire_once("journal-torn", source) or self._chaos_roll(
            "journal-torn", source
        )

    def enospc_append_once(self, source: str) -> bool:
        """True exactly once: the journal append for *source* must fail
        with ``OSError(ENOSPC)`` before writing any bytes (full disk)."""
        return self._fire_once("journal-enospc", source) or self._chaos_roll(
            "journal-enospc", source
        )

    def snapshot_eio_once(self, source: str) -> bool:
        """True exactly once: the snapshot write for *source* must fail
        with ``OSError(EIO)`` (failing disk; journal stays intact)."""
        return self._fire_once("snapshot-eio", source) or self._chaos_roll(
            "snapshot-eio", source
        )

    def drop_connection_once(self, stage: str, source: str) -> bool:
        """True exactly once per (stage, source): the service handler
        must drop the connection without responding.  *stage* is
        ``"pre-commit"`` or ``"post-commit"``."""
        if stage not in ("pre-commit", "post-commit"):
            raise ValueError("unknown drop stage {!r}".format(stage))
        return self._fire_once(
            "drop-{}".format(stage), source
        ) or self._chaos_roll("drop-{}".format(stage), source)

    def hang_worker_once(self, source: str) -> bool:
        """True exactly once: the worker handling *source* must wedge its
        serve loops without exiting (a live-lock the watchdog must
        detect)."""
        return self._fire_once("worker-hang", source) or self._chaos_roll(
            "worker-hang", source
        )

    def fail_write_once(self, name: str) -> bool:
        """True exactly once per matching *name*: the write must fail now."""
        for spec in self.specs:
            if spec.kind != "write-fail" or spec.target not in name:
                continue
            key = "{}\x00{}".format(spec.target, name)
            if key not in self._writes_failed:
                self._writes_failed.add(key)
                return True
        return False


def build_fault_plan(config) -> Optional[FaultPlan]:
    """The plan for an :class:`AnonymizerConfig` (or None when unfaulted).

    ``config.fault_plan`` wins; otherwise the ``REPRO_FAULT_PLAN``
    environment variable seeds the plan, so the CLI and worker processes
    (which inherit the environment) can be faulted without code changes.
    """
    text = getattr(config, "fault_plan", None)
    if text is None:
        text = os.environ.get(FAULT_PLAN_ENV)
    if not text:
        return None
    return FaultPlan.parse(text)


def parse_env_fault_plan() -> Optional[FaultPlan]:
    """Parse ``REPRO_FAULT_PLAN`` from the environment, or None if unset.

    Entry points (batch CLI, ``serve``, the supervisor) call this before
    doing any work so a malformed plan is reported once, clearly, with
    ``EXIT_BAD_FAULT_PLAN`` — not as a traceback from deep inside the
    first anonymizer construction.
    """
    text = os.environ.get(FAULT_PLAN_ENV)
    if not text:
        return None
    return FaultPlan.parse(text)
