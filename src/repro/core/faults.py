"""Deterministic fault injection for the fail-closed runner.

An anonymizer's worst failure mode is a *partial* failure: an exception
mid-run that leaves some output written and some raw, or a crashed worker
that aborts the whole corpus with no indication of the poisoned file.  To
prove the runner's fail-closed guarantees hold (``tests/test_faults.py``),
this module injects faults at three seams, deterministically:

* ``rule:<rule_id>[:<nth>]`` — the named rule raises on its *nth* hit
  (default: the first).  The engine must respond by replacing the entire
  line with a hashed placeholder, never by passing the raw line through.
* ``worker-exit:<match>[:<code>]`` — a pool worker calls :func:`os._exit`
  when it starts rewriting a file whose name contains *match* (simulating
  a segfault / OOM-kill).  The parallel layer must quarantine that file,
  respawn the pool once, and finish the rest of the corpus.
* ``write-fail:<match>`` — the atomic writer raises :class:`OSError` the
  first time it writes a file whose name contains *match*.  No partial
  output file may remain observable.

Four service-scoped faults exercise the daemon's crash-safety seams
(``tests/test_recovery.py``):

* ``journal-kill:<match>`` — the daemon process dies (``os._exit``)
  *mid*-journal-append for a source containing *match*: half the record
  is on disk, no response was sent.  Restart recovery must discard the
  torn tail, and the retrying client's resubmission must converge.
* ``journal-torn:<match>`` — same torn append, but the process survives:
  the handler fails that one request with the journal exception.  The
  next recovery must treat the torn trailing record as unacknowledged.
* ``drop-pre-commit:<match>`` — the handler drops the connection before
  the session commits anything.  A retry re-runs the work (no journaled
  result exists).
* ``drop-post-commit:<match>`` — the handler commits the journal record
  and *then* drops the connection without responding — the ambiguous
  failure.  A retry presenting the same idempotency key must get the
  journaled result back, not a second anonymization.

Two disk-fault kinds exercise the graceful-degradation path (a full or
failing disk, not a crash):

* ``journal-enospc:<match>`` — the journal append for a source
  containing *match* fails once with ``OSError(ENOSPC)`` *before* any
  bytes reach the file.  The daemon must answer 507 + Retry-After with
  the session parked read-only — never a torn ack, never a 500 — and
  recover as soon as an append succeeds again.
* ``snapshot-eio:<match>`` — the atomic snapshot write fails once with
  ``OSError(EIO)``.  Snapshot failure is non-fatal: the journal record
  already committed, so the daemon counts the failure, skips rotation,
  and retries at the next snapshot boundary.  Use the fault source
  ``snapshot`` (spec ``snapshot-eio:snapshot``) to target it.

A plan is a ``;``-separated list of specs, taken from
``AnonymizerConfig.fault_plan`` or the ``REPRO_FAULT_PLAN`` environment
variable (config wins).  Hit counters live on the plan instance, so each
worker process — which rebuilds its anonymizer, and with it its plan —
counts independently; that keeps injection deterministic per process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "build_fault_plan",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_KINDS = (
    "rule",
    "worker-exit",
    "write-fail",
    "journal-kill",
    "journal-torn",
    "journal-enospc",
    "drop-pre-commit",
    "drop-post-commit",
    "snapshot-eio",
)


class FaultInjected(RuntimeError):
    """Raised by an injected ``rule`` fault (never by production code)."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: what to break, where, and when."""

    kind: str  # "rule" | "worker-exit" | "write-fail"
    target: str  # rule id, or a substring of the file name
    nth: int = 1  # rule faults: raise on the nth hit

    def __str__(self) -> str:
        if self.kind == "rule":
            return "{}:{}:{}".format(self.kind, self.target, self.nth)
        return "{}:{}".format(self.kind, self.target)


class FaultPlan:
    """A parsed fault plan plus its per-process trigger state."""

    def __init__(self, specs: Tuple[FaultSpec, ...]):
        self.specs = specs
        self._rule_hits: Dict[str, int] = {}
        self._rules_fired: Set[str] = set()
        self._writes_failed: Set[str] = set()
        self._once_fired: Set[str] = set()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``kind:target[:nth]`` specs separated by ``;``.

        A malformed plan raises :class:`ValueError` — a typo'd fault plan
        silently injecting nothing would defeat the tests that rely on it.
        """
        specs: List[FaultSpec] = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            kind = parts[0].strip().lower().replace("_", "-")
            if kind not in _KINDS or len(parts) < 2 or not parts[1].strip():
                raise ValueError(
                    "bad fault spec {!r}: expected kind:target[:nth] with "
                    "kind in {}".format(chunk, "/".join(_KINDS))
                )
            target = parts[1].strip()
            nth = 1
            if len(parts) >= 3 and parts[2].strip():
                nth = int(parts[2])
                if nth < 1:
                    raise ValueError("fault nth must be >= 1 in {!r}".format(chunk))
            specs.append(FaultSpec(kind=kind, target=target, nth=nth))
        if not specs:
            raise ValueError("fault plan {!r} contains no specs".format(text))
        return cls(tuple(specs))

    def describe(self) -> str:
        return "; ".join(str(spec) for spec in self.specs)

    # -- trigger points ---------------------------------------------------

    def on_rule_hits(self, rule_id: str, hits: int) -> None:
        """Called by the engine after *rule_id* rewrote *hits* matches.

        Raises :class:`FaultInjected` exactly once per plan instance when
        the cumulative hit count first reaches the spec's ``nth``.
        """
        for spec in self.specs:
            if spec.kind != "rule" or spec.target != rule_id:
                continue
            count = self._rule_hits.get(rule_id, 0) + hits
            self._rule_hits[rule_id] = count
            if count >= spec.nth and rule_id not in self._rules_fired:
                self._rules_fired.add(rule_id)
                raise FaultInjected(
                    "injected fault: rule {} hit #{}".format(rule_id, spec.nth)
                )

    def should_kill_worker(self, source: str) -> bool:
        """True if a worker rewriting *source* must die (``os._exit``)."""
        return any(
            spec.kind == "worker-exit" and spec.target in source
            for spec in self.specs
        )

    def _fire_once(self, kind: str, name: str) -> bool:
        """True exactly once per (matching spec, name) for *kind*."""
        for spec in self.specs:
            if spec.kind != kind or spec.target not in name:
                continue
            key = "{}\x00{}\x00{}".format(kind, spec.target, name)
            if key not in self._once_fired:
                self._once_fired.add(key)
                return True
        return False

    def should_kill_journal(self, source: str) -> bool:
        """True if the process must die mid-journal-append for *source*.

        No one-shot bookkeeping: the process does not survive to count.
        """
        return any(
            spec.kind == "journal-kill" and spec.target in source
            for spec in self.specs
        )

    def torn_append_once(self, source: str) -> bool:
        """True exactly once: the journal append for *source* must be
        torn (half the record written, then the append fails)."""
        return self._fire_once("journal-torn", source)

    def enospc_append_once(self, source: str) -> bool:
        """True exactly once: the journal append for *source* must fail
        with ``OSError(ENOSPC)`` before writing any bytes (full disk)."""
        return self._fire_once("journal-enospc", source)

    def snapshot_eio_once(self, source: str) -> bool:
        """True exactly once: the snapshot write for *source* must fail
        with ``OSError(EIO)`` (failing disk; journal stays intact)."""
        return self._fire_once("snapshot-eio", source)

    def drop_connection_once(self, stage: str, source: str) -> bool:
        """True exactly once per (stage, source): the service handler
        must drop the connection without responding.  *stage* is
        ``"pre-commit"`` or ``"post-commit"``."""
        if stage not in ("pre-commit", "post-commit"):
            raise ValueError("unknown drop stage {!r}".format(stage))
        return self._fire_once("drop-{}".format(stage), source)

    def fail_write_once(self, name: str) -> bool:
        """True exactly once per matching *name*: the write must fail now."""
        for spec in self.specs:
            if spec.kind != "write-fail" or spec.target not in name:
                continue
            key = "{}\x00{}".format(spec.target, name)
            if key not in self._writes_failed:
                self._writes_failed.add(key)
                return True
        return False


def build_fault_plan(config) -> Optional[FaultPlan]:
    """The plan for an :class:`AnonymizerConfig` (or None when unfaulted).

    ``config.fault_plan`` wins; otherwise the ``REPRO_FAULT_PLAN``
    environment variable seeds the plan, so the CLI and worker processes
    (which inherit the environment) can be faulted without code changes.
    """
    text = getattr(config, "fault_plan", None)
    if text is None:
        text = os.environ.get(FAULT_PLAN_ENV)
    if not text:
        return None
    return FaultPlan.parse(text)
