"""BGP community attribute anonymization (paper Section 4.5).

A community attribute ``701:1234`` is two 16-bit integers: the left half is
an ASN (anonymized with the ASN permutation of Section 4.4) and the right
half an arbitrary value.  The paper is conservative: "we must assume that
even the integer part of the attributes … are publicly known and
sufficiently distinctive to identify the network owner", so the value half
goes through its own keyed 16-bit permutation — a deliberate loss of
information in favor of anonymity.

Well-known community keywords (``no-export``, ``no-advertise``,
``local-AS``, ``internet``) have standardized meanings and pass through.
"""

from __future__ import annotations

from typing import Union

from repro.core.asn import AsnPermutation, Feistel16
from repro.core.secrets import derive_key, normalize_salt

WELL_KNOWN_COMMUNITIES = frozenset(
    {"internet", "local-as", "no-advertise", "no-export", "gshut"}
)


class CommunityAnonymizer:
    """Anonymize ``ASN:value`` community attributes consistently."""

    def __init__(self, salt: Union[bytes, str] = b"", asn_map: AsnPermutation = None):
        salt = normalize_salt(salt)
        self.asn_map = asn_map if asn_map is not None else AsnPermutation(salt)
        self._value_feistel = Feistel16(derive_key(salt, "community-value-permutation"))
        # Memo cache: community vocabularies are small and the Feistel
        # rounds behind each mapping are HMAC-SHA256 calls.
        self._cache = {}

    def map_value(self, value: int) -> int:
        """Anonymize the 16-bit value half of a community."""
        if not 0 <= value <= 0xFFFF:
            raise ValueError("not a 16-bit community value: {!r}".format(value))
        return self._value_feistel.encrypt(value)

    def unmap_value(self, value: int) -> int:
        """Invert :meth:`map_value` (tests/validation only)."""
        return self._value_feistel.decrypt(value)

    def map_community(self, text: str) -> str:
        """Anonymize one community token.

        Accepts ``ASN:value`` notation, a well-known keyword, or a bare
        32-bit decimal community (old-style notation); anything else is
        returned unchanged (it is not a community).
        """
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        mapped = self._map_community_uncached(text)
        self._cache[text] = mapped
        return mapped

    def _map_community_uncached(self, text: str) -> str:
        lowered = text.lower()
        if lowered in WELL_KNOWN_COMMUNITIES:
            return text
        if ":" in text:
            left_text, _, right_text = text.partition(":")
            if not (left_text.isdigit() and right_text.isdigit()):
                return text
            left, right = int(left_text), int(right_text)
            if left > 0xFFFF or right > 0xFFFF:
                return text
            return "{}:{}".format(self.asn_map.map_asn(left), self.map_value(right))
        if text.isdigit():
            raw = int(text)
            if raw > 0xFFFFFFFF:
                return text
            left, right = raw >> 16, raw & 0xFFFF
            mapped = (self.asn_map.map_asn(left) << 16) | self.map_value(right)
            return str(mapped)
        return text
