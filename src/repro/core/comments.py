"""Comment and banner stripping — rules R3, R4, R5 (paper Section 4.2).

"Although all unsafe words in comments would be hashed by our basic method,
the arrangement of pass-list words in comments can still leak information
… Since there is no means short of human inspection to reliably find these
leaks, we use three rules to strip out all comments, including multi-line
comments like the banner."

* **R3** — ``banner <kind> <delim> … <delim>`` multi-line blocks are removed
  entirely (motd/login/exec/incoming, arbitrary delimiter, same-line or
  multi-line body).
* **R4** — free-text lines: ``description …`` on interfaces and
  ``remark …`` in access lists are removed.
* **R5** — ``!`` comment lines keep their bare ``!`` separator (the ``!``
  structure delimits config sections) but lose any trailing text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List

_BANNER_RE = re.compile(
    r"^\s*banner\s+(motd|login|exec|incoming|slip-ppp|prompt-timeout)\s+(.*)$",
    re.IGNORECASE,
)
_DESCRIPTION_RE = re.compile(
    r"^\s*(?:access-list \d+\s+)?(description|remark)\s+(.*)$", re.IGNORECASE
)
_BANG_RE = re.compile(r"^(\s*!)\s*(.*)$")


@dataclass
class CommentStats:
    total_words: int = 0
    comment_words: int = 0
    comment_lines: int = 0
    banners: int = 0
    flagged: List[str] = field(default_factory=list)


_JUNOS_BLOCK_COMMENT_OPEN = re.compile(r"^\s*/\*")
_JUNOS_HASH_COMMENT = re.compile(r"^\s*#")
_JUNOS_ANNOTATION = re.compile(r"\s*##.*$")


class CommentStripper:
    """Strips all comment content from a config's line stream.

    ``junos=True`` switches to JunOS comment forms: ``/* ... */`` blocks,
    ``#`` comment lines, trailing ``## ...`` annotations, and no banner
    handling (JunOS login messages are quoted statements handled by rule
    J5a instead).
    """

    def __init__(self, junos: bool = False):
        self.junos = junos

    def strip(self, lines: List[str]) -> "tuple[List[str], CommentStats]":
        if self.junos:
            return self._strip_junos(lines)
        return self._strip_ios(lines)

    def _strip_junos(self, lines: List[str]) -> "tuple[List[str], CommentStats]":
        stats = CommentStats()
        out: List[str] = []
        in_block = False
        for line in lines:
            stats.total_words += len(line.split())
            if in_block:
                stats.comment_words += len(line.split())
                stats.comment_lines += 1
                if "*/" in line:
                    in_block = False
                continue
            if _JUNOS_BLOCK_COMMENT_OPEN.match(line):
                stats.comment_words += len(line.split())
                stats.comment_lines += 1
                if "*/" not in line:
                    in_block = True
                continue
            if _JUNOS_HASH_COMMENT.match(line):
                stats.comment_words += len(line.split())
                stats.comment_lines += 1
                continue
            description = _DESCRIPTION_RE.match(line)
            if description is not None:
                stats.comment_words += len(description.group(2).split())
                stats.comment_lines += 1
                continue
            stripped = _JUNOS_ANNOTATION.sub("", line)
            if stripped != line:
                stats.comment_words += len(line.split()) - len(stripped.split())
                stats.comment_lines += 1
            out.append(stripped)
        if in_block:
            stats.flagged.append("unterminated /* comment block")
        return out, stats

    def _strip_ios(self, lines: List[str]) -> "tuple[List[str], CommentStats]":
        """Return (surviving lines, stats).

        Counts every whitespace-delimited word of the input toward
        ``total_words`` so the comment-fraction statistic of Section 4.2
        (avg 1.5 %, P90 6 %) can be reproduced.
        """
        stats = CommentStats()
        out: List[str] = []
        index = 0
        while index < len(lines):
            line = lines[index]
            stats.total_words += len(line.split())

            banner = _BANNER_RE.match(line)
            if banner is not None:
                index = self._consume_banner(lines, index, banner, stats)
                continue

            description = _DESCRIPTION_RE.match(line)
            if description is not None:
                stats.comment_words += len(description.group(2).split())
                stats.comment_lines += 1
                index += 1
                continue

            bang = _BANG_RE.match(line)
            if bang is not None:
                trailing = bang.group(2)
                if trailing:
                    stats.comment_words += len(trailing.split())
                    stats.comment_lines += 1
                out.append(bang.group(1))
                index += 1
                continue

            out.append(line)
            index += 1
        return out, stats

    def _consume_banner(self, lines, index, match, stats) -> int:
        """Remove a banner block; returns the index of the next line."""
        rest = match.group(2)
        stats.banners += 1
        stats.comment_lines += 1
        if not rest:
            # Malformed banner with no delimiter: drop just this line.
            stats.flagged.append(lines[index])
            return index + 1
        # The delimiter is the first token after the banner kind.  IOS
        # treats "^C" as the caret-C escape for ETX; accept either the
        # two-character sequence or any single character.
        delimiter = "^C" if rest.startswith("^C") else rest[0]
        body = rest[len(delimiter):]
        stats.comment_words += len(body.replace(delimiter, " ").split())
        if delimiter in body:
            return index + 1  # single-line banner
        index += 1
        while index < len(lines):
            words = len(lines[index].replace(delimiter, " ").split())
            stats.total_words += words
            stats.comment_words += words
            stats.comment_lines += 1
            if delimiter in lines[index]:
                return index + 1
            index += 1
        stats.flagged.append("unterminated banner block")
        return index
