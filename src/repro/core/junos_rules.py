"""JunOS-specific context rules — J1 through J8.

The paper implements for Cisco IOS and notes the techniques are "directly
applicable to JunOS and other router configuration languages".  These
rules are the JunOS counterparts of the IOS rule families; everything
value-level (the IP trie, the ASN/community permutations, the hashing, the
regexp language machinery) is shared, only the *locating patterns* differ.

Enabled via ``AnonymizerConfig(syntax="junos")``; the IOS rules still run
(their patterns simply never fire on JunOS text, with the useful exception
of generic ones such as prefix notation and bare dotted quads).
"""

from __future__ import annotations

import re
from typing import List

from repro.core.asn_rules import _map_community_tokens, _map_number_group, _map_number_list
from repro.core.rulebase import Rule


def build_junos_rules() -> List[Rule]:
    rules: List[Rule] = []

    secret_re = re.compile(
        r"(\b(?:encrypted-password|authentication-key|pre-shared-key|md5) )\"([^\"]*)\"",
        re.IGNORECASE,
    )

    def apply_secret(line, ctx):
        def handler(match):
            return [
                (match.group(1), True),
                ('"' + ctx.hash_secret(match.group(2)) + '"', True),
            ]

        return line.apply_rule(secret_re, handler)

    rules.append(
        Rule(
            "J6",
            "junos-quoted-secrets",
            "secret",
            "Quoted credentials (encrypted-password, authentication-key, "
            "pre-shared-key) are hashed, quotes preserved.",
            apply_secret,
            trigger=("encrypted-password", "authentication-key", "pre-shared-key", "md5"),
        )
    )

    asn_re = re.compile(r"\b(peer-as|autonomous-system|local-as) (\d+)", re.IGNORECASE)

    def apply_asn(line, ctx):
        return line.apply_rule(asn_re, lambda m: _map_number_group(ctx, m, 2))

    rules.append(
        Rule(
            "J1",
            "junos-asn-statements",
            "asn",
            "`peer-as N`, `autonomous-system N`, and `local-as N`.",
            apply_asn,
            trigger=("peer-as ", "autonomous-system ", "local-as "),
        )
    )

    aspath_re = re.compile(r"(\bas-path (\S+) )\"([^\"]*)\"", re.IGNORECASE)

    def apply_aspath(line, ctx):
        def handler(match):
            # JunOS as-path regexps match the whole path (anchored);
            # memoized per anonymizer like the IOS R14 rewrite.
            outcome = ctx.rewrite_aspath_cached(match.group(3), anchored=True)
            ctx.report.seen_asns.update(outcome.asns_seen)
            if outcome.changed:
                ctx.report.regexps_rewritten += 1
            for warning in outcome.warnings:
                ctx.flag("J2", warning)
            return [
                (match.group(1), False),
                ('"' + outcome.rewritten + '"', True),
            ]

        return line.apply_rule(aspath_re, handler)

    rules.append(
        Rule(
            "J2",
            "junos-aspath-regexp",
            "asn",
            "`as-path <name> \"<regexp>\"` definitions: language-permuted "
            "rewrite, same machinery as IOS rule R14.",
            apply_aspath,
            trigger="as-path ",
        )
    )

    comm_regex_re = re.compile(r"(\bcommunity (\S+) members )\"([^\"]*)\"", re.IGNORECASE)
    comm_list_re = re.compile(
        r"(\bcommunity (?:add|set|delete|\S+) members )\[([^\]]*)\]", re.IGNORECASE
    )
    comm_inline_re = re.compile(
        r"(\bcommunity (?:add|set|delete) )\[([^\]]*)\]", re.IGNORECASE
    )

    def apply_community(line, ctx):
        def regex_handler(match):
            # JunOS community regexps are anchored; memoized rewrite.
            outcome = ctx.rewrite_community_cached(match.group(3), anchored=True)
            ctx.report.seen_asns.update(outcome.asns_seen)
            if outcome.changed:
                ctx.report.regexps_rewritten += 1
            for warning in outcome.warnings:
                ctx.flag("J3", warning)
            return [
                (match.group(1), False),
                ('"' + outcome.rewritten + '"', True),
            ]

        def members_handler(match):
            pieces = [(match.group(1), False), ("[", True)]
            pieces.extend(_map_community_tokens(ctx, "", match.group(2)))
            pieces.append(("]", True))
            return pieces

        hits = line.apply_rule(comm_regex_re, regex_handler)
        hits += line.apply_rule(comm_list_re, members_handler)
        hits += line.apply_rule(comm_inline_re, members_handler)
        return hits

    rules.append(
        Rule(
            "J3",
            "junos-community-members",
            "asn",
            "`community <name> members [...]` value lists and quoted "
            "member regexps (IOS rules R15/R16 equivalents).",
            apply_community,
            trigger="community ",
        )
    )

    prepend_re = re.compile(r"(\bas-path-prepend )\"((?:\d+ ?)+)\"", re.IGNORECASE)

    def apply_prepend(line, ctx):
        def handler(match):
            pieces = [(match.group(1), False), ('"', True)]
            pieces.extend(_map_number_list(ctx, "", match.group(2)))
            pieces.append(('"', True))
            return pieces

        return line.apply_rule(prepend_re, handler)

    rules.append(
        Rule(
            "J7",
            "junos-aspath-prepend",
            "asn",
            "ASNs inside `as-path-prepend \"...\"` (IOS rule R13 equivalent).",
            apply_prepend,
            trigger="as-path-prepend ",
        )
    )

    rd_re = re.compile(
        r"(\b(?:route-distinguisher|vrf-target target:) ?)(\d+):(\d+)", re.IGNORECASE
    )

    def apply_rd(line, ctx):
        def handler(match):
            mapped = ctx.map_community_text(match.group(2) + ":" + match.group(3))
            return [(match.group(1), False), (mapped, True)]

        return line.apply_rule(rd_re, handler)

    rules.append(
        Rule(
            "J8",
            "junos-rd-vrf-target",
            "asn",
            "ASN:value pairs in `route-distinguisher` / `vrf-target` "
            "(IOS rule R18 equivalent).",
            apply_rd,
            trigger=("route-distinguisher", "vrf-target"),
        )
    )

    snmp_comm_re = re.compile(r"^(\s*community )(\S+)( \{?\s*)$")

    def apply_snmp_comm(line, ctx):
        def handler(match):
            return [
                (match.group(1), True),
                (ctx.hash_secret(match.group(2)), True),
                (match.group(3), False),
            ]

        return line.apply_rule(snmp_comm_re, handler)

    rules.append(
        Rule(
            "J4",
            "junos-snmp-community",
            "secret",
            "SNMP community block headers `community <string> {` "
            "(IOS rule R27b equivalent).",
            apply_snmp_comm,
            trigger="community ",
        )
    )

    meta_re = re.compile(r"^(\s*(?:location|contact|message) )\"[^\"]*\"", re.IGNORECASE)

    def apply_meta(line, ctx):
        return line.apply_rule(meta_re, lambda m: [(m.group(1), True), ('""', True)])

    rules.append(
        Rule(
            "J5a",
            "junos-location-contact-message",
            "misc",
            "Quoted free text in snmp location/contact and login message "
            "is removed (IOS rule R7 / banner equivalent).",
            apply_meta,
            trigger=("location ", "contact ", "message "),
        )
    )

    hostname_re = re.compile(
        r"(\b(?:host-name|domain-name) )([^\s;]+)(;?)", re.IGNORECASE
    )

    def apply_hostname(line, ctx):
        def handler(match):
            labels = match.group(2).split(".")
            hashed = ".".join(ctx.hasher.hash_token(label) for label in labels)
            return [(match.group(1), False), (hashed, True), (match.group(3), True)]

        return line.apply_rule(hostname_re, handler)

    rules.append(
        Rule(
            "J5",
            "junos-hostname-domain",
            "misc",
            "host-name/domain-name labels hashed unconditionally "
            "(IOS rule R9 equivalent).",
            apply_hostname,
            trigger=("host-name ", "domain-name "),
        )
    )

    area_re = re.compile(r"^(\s*area )(\d+\.\d+\.\d+\.\d+)( \{\s*)$")

    def apply_area(line, ctx):
        # OSPF area identifiers are written in dotted-quad form but are
        # *identifiers*, not addresses (the paper leaves simple integers
        # alone); freeze them before the IP catch-all can remap them.
        return line.apply_rule(
            area_re,
            lambda m: [(m.group(1), True), (m.group(2), True), (m.group(3), False)],
        )

    rules.append(
        Rule(
            "J10",
            "junos-ospf-area-ids",
            "ip",
            "Dotted-quad OSPF area identifiers pass through unchanged "
            "(identifiers, not addresses).",
            apply_area,
            trigger="area ",
        )
    )

    user_re = re.compile(r"^(\s*user )(\S+)( \{?\s*)$")

    def apply_user(line, ctx):
        def handler(match):
            return [
                (match.group(1), True),
                (ctx.hash_secret(match.group(2)), True),
                (match.group(3), False),
            ]

        return line.apply_rule(user_re, handler)

    rules.append(
        Rule(
            "J9",
            "junos-login-users",
            "secret",
            "Login account names `user <name> {` (IOS rule R28 equivalent).",
            apply_user,
            trigger="user ",
        )
    )

    return rules
