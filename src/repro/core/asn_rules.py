"""The 12 ASN-locating rules — R10 through R21 (paper Section 4.4).

"The first [challenge] is to correctly identify every appearance of an ASN
in the configuration file … A list of 12 rules is used to locate all the
ASNs and ASN regular expressions in the configuration files — this is the
most fragile part of our method since ASNs are syntactically
indistinguishable from simple integers."

Each rule establishes enough grammatical context to be confident a number
is an ASN (or a community containing one) and rewrites exactly that span,
freezing the replacement so no later pass touches it.
"""

from __future__ import annotations

import re
from typing import List, Match, Optional, Sequence, Tuple

from repro.core.context import RuleContext
from repro.core.rulebase import Rule

Piece = Tuple[str, bool]

_COMMUNITY_TOKEN = re.compile(r"^\d{1,5}:\d{1,5}$")
_WELL_KNOWN = {"internet", "local-as", "no-advertise", "no-export", "additive", "gshut", "none"}


def _map_number_group(ctx: RuleContext, match: Match, group: int) -> Sequence[Piece]:
    """Replace one numeric group with its mapped ASN, freezing it."""
    pieces: List[Piece] = []
    start = match.start()
    text = match.group(0)
    g_start, g_end = match.start(group) - start, match.end(group) - start
    pieces.append((text[:g_start], False))
    pieces.append((ctx.map_asn_text(match.group(group)), True))
    pieces.append((text[g_end:], False))
    return pieces


def _map_number_list(ctx: RuleContext, prefix: str, numbers_text: str) -> Sequence[Piece]:
    """Map every decimal token in *numbers_text* (e.g. a prepend list)."""
    pieces: List[Piece] = [(prefix, False)]
    for part in re.split(r"(\s+)", numbers_text):
        if part.isdigit():
            pieces.append((ctx.map_asn_text(part), True))
        else:
            pieces.append((part, False))
    return pieces


def _map_community_tokens(ctx: RuleContext, prefix: str, rest: str) -> Sequence[Piece]:
    """Map community-valued tokens, leaving unknown words live (hashable)."""
    pieces: List[Piece] = [(prefix, False)]
    for part in re.split(r"(\s+)", rest):
        if not part or part.isspace():
            pieces.append((part, False))
        elif _COMMUNITY_TOKEN.match(part) or part.isdigit():
            pieces.append((ctx.map_community_text(part), True))
        elif part.lower() in _WELL_KNOWN:
            pieces.append((part, True))
        else:
            pieces.append((part, False))
    return pieces


def _rewrite_aspath(ctx: RuleContext, rule_id: str, pattern_text: str) -> str:
    # Memoized per anonymizer: the outcome is a pure function of
    # (salt, config, pattern), and the report bookkeeping below replays
    # identically for every repeat of the same regexp.
    outcome = ctx.rewrite_aspath_cached(pattern_text)
    ctx.report.seen_asns.update(outcome.asns_seen)
    if outcome.changed:
        ctx.report.regexps_rewritten += 1
    for warning in outcome.warnings:
        ctx.flag(rule_id, warning)
    return outcome.rewritten


def _rewrite_community(ctx: RuleContext, rule_id: str, pattern_text: str) -> str:
    outcome = ctx.rewrite_community_cached(pattern_text)
    ctx.report.seen_asns.update(outcome.asns_seen)
    if outcome.changed:
        ctx.report.regexps_rewritten += 1
    for warning in outcome.warnings:
        ctx.flag(rule_id, warning)
    return outcome.rewritten


def build_asn_rules() -> List[Rule]:
    """Construct R10–R21 in application order."""
    rules: List[Rule] = []

    def simple(rule_id, name, description, pattern, group=1, trigger=None):
        compiled = re.compile(pattern, re.IGNORECASE)

        def apply(line, ctx):
            return line.apply_rule(compiled, lambda m: _map_number_group(ctx, m, group))

        rules.append(Rule(rule_id, name, "asn", description, apply, trigger=trigger))

    simple(
        "R10",
        "router-bgp-asn",
        "The local AS in `router bgp <asn>` (Figure 1 line 16).",
        r"^(\s*router bgp )(\d+)\s*$",
        group=2,
        trigger="router bgp ",
    )
    simple(
        "R11",
        "neighbor-remote-as",
        "The peer AS in `neighbor <peer> remote-as <asn>` (Figure 1 line 18).",
        r"\bremote-as (\d+)",
        trigger="remote-as ",
    )
    simple(
        "R12",
        "neighbor-local-as",
        "The AS in `neighbor <peer> local-as <asn>`.",
        r"\blocal-as (\d+)",
        trigger="local-as ",
    )

    prepend_re = re.compile(r"(\bset as-path prepend )((?:\d+ ?)+)", re.IGNORECASE)

    def apply_prepend(line, ctx):
        return line.apply_rule(
            prepend_re, lambda m: _map_number_list(ctx, m.group(1), m.group(2))
        )

    rules.append(
        Rule(
            "R13",
            "as-path-prepend",
            "asn",
            "Every AS in `set as-path prepend <asn>...`.",
            apply_prepend,
            trigger="as-path prepend ",
        )
    )

    aspath_acl_re = re.compile(
        r"^(\s*ip as-path access-list \d+ (?:permit|deny) )(\S.*?)\s*$", re.IGNORECASE
    )

    def apply_aspath_acl(line, ctx):
        def handler(match):
            rewritten = _rewrite_aspath(ctx, "R14", match.group(2))
            return [(match.group(1), False), (rewritten, True)]

        return line.apply_rule(aspath_acl_re, handler)

    rules.append(
        Rule(
            "R14",
            "as-path-access-list-regexp",
            "asn",
            "The regexp body of `ip as-path access-list N permit <regexp>` "
            "(Figure 1 line 32); rewritten via language permutation.",
            apply_aspath_acl,
            trigger="as-path access-list ",
        )
    )

    # Community lists: numbered 1-99 are standard (value tokens), numbered
    # 100-500 and `expanded` are regexps; named `standard` lists take values.
    comm_list_re = re.compile(
        r"^(\s*ip community-list )"
        r"(?:(\d+)|standard (\S+)|expanded (\S+))"
        r"( (?:permit|deny) )(\S.*?)\s*$",
        re.IGNORECASE,
    )

    def apply_comm_list(line, ctx):
        def handler(match):
            number, std_name, exp_name = match.group(2), match.group(3), match.group(4)
            body = match.group(6)
            is_expanded = exp_name is not None or (
                number is not None and int(number) >= 100
            )
            if number is not None:
                head = [(match.group(1) + number, False)]
            elif std_name is not None:
                head = [(match.group(1) + "standard ", False), (std_name, False)]
            else:
                head = [(match.group(1) + "expanded ", False), (exp_name, False)]
            middle = [(match.group(5), False)]
            if is_expanded:
                rewritten = _rewrite_community(ctx, "R15", body)
                return head + middle + [(rewritten, True)]
            return head + middle + list(_map_community_tokens(ctx, "", body))

        return line.apply_rule(comm_list_re, handler)

    rules.append(
        Rule(
            "R15",
            "community-list",
            "asn",
            "`ip community-list` bodies: value tokens for standard lists, "
            "regexp rewriting for expanded lists (Figure 1 line 31).",
            apply_comm_list,
            trigger="community-list ",
        )
    )

    set_comm_re = re.compile(r"(\bset community )(\S.*?)\s*$", re.IGNORECASE)

    def apply_set_comm(line, ctx):
        return line.apply_rule(
            set_comm_re, lambda m: _map_community_tokens(ctx, m.group(1), m.group(2))
        )

    rules.append(
        Rule(
            "R16",
            "set-community",
            "asn",
            "Community values in `set community <a:b>... [additive]` "
            "(Figure 1 line 28).",
            apply_set_comm,
            trigger="set community ",
        )
    )

    ext_comm_re = re.compile(
        r"(\bset extcommunity (?:rt|soo) )(\S.*?)\s*$", re.IGNORECASE
    )

    def apply_ext_comm(line, ctx):
        return line.apply_rule(
            ext_comm_re, lambda m: _map_community_tokens(ctx, m.group(1), m.group(2))
        )

    rules.append(
        Rule(
            "R17",
            "set-extcommunity",
            "asn",
            "Extended communities in `set extcommunity rt|soo <a:b>`.",
            apply_ext_comm,
            trigger="set extcommunity ",
        )
    )

    rt_re = re.compile(
        r"(\b(?:route-target (?:import|export|both)|rd) )(\d+):(\d+)", re.IGNORECASE
    )

    def apply_rt(line, ctx):
        def handler(match):
            mapped = ctx.map_community_text(match.group(2) + ":" + match.group(3))
            return [(match.group(1), False), (mapped, True)]

        return line.apply_rule(rt_re, handler)

    rules.append(
        Rule(
            "R18",
            "route-target-rd",
            "asn",
            "ASN:value pairs in VRF `route-target` and `rd` statements "
            "(IP-form RDs are left for the IP rules).",
            apply_rt,
            trigger=("route-target ", "rd "),
        )
    )

    simple(
        "R19",
        "confederation-identifier",
        "The AS in `bgp confederation identifier <asn>`.",
        r"\bbgp confederation identifier (\d+)",
        trigger="confederation identifier ",
    )

    confed_peers_re = re.compile(r"(\bbgp confederation peers )((?:\d+ ?)+)", re.IGNORECASE)

    def apply_confed_peers(line, ctx):
        return line.apply_rule(
            confed_peers_re, lambda m: _map_number_list(ctx, m.group(1), m.group(2))
        )

    rules.append(
        Rule(
            "R20",
            "confederation-peers",
            "asn",
            "Every AS in `bgp confederation peers <asn>...`.",
            apply_confed_peers,
            trigger="confederation peers ",
        )
    )

    simple(
        "R21",
        "set-origin-egp",
        "The AS in the archaic `set origin egp <asn>` route-map action.",
        r"\bset origin egp (\d+)",
        trigger="set origin egp ",
    )

    return rules
