"""The pass-list of unprivileged tokens (paper Section 4.1).

The paper built its pass-list with "a web-walker that string scraped the
Cisco IOS command reference guides": any token appearing in public
documentation is either an IOS keyword or a word too common to leak
identity.  Tokens *not* on the list are hashed.

This module provides:

* :class:`PassList` — the lookup structure (case-insensitive).
* :data:`BASE_KEYWORDS` — a curated embedded keyword corpus covering the
  command vocabulary our synthetic configs (and common real configs) use.
* :data:`DEFAULT_PASSLIST` — the ready-to-use default.

:mod:`repro.iosgen.corpus` reproduces the *construction method*: it renders
synthetic "command reference" documents and scrapes them into a PassList.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set


class PassList:
    """A case-insensitive set of tokens that never need anonymization."""

    def __init__(self, tokens: Iterable[str] = ()):
        self._tokens: Set[str] = set()
        self.update(tokens)

    def update(self, tokens: Iterable[str]) -> None:
        for token in tokens:
            token = token.strip().lower()
            if token:
                self._tokens.add(token)

    def add(self, token: str) -> None:
        self.update([token])

    def __contains__(self, token: str) -> bool:
        return token.lower() in self._tokens

    def __len__(self) -> int:
        return len(self._tokens)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._tokens))

    def union(self, other: "PassList") -> "PassList":
        merged = PassList()
        merged._tokens = self._tokens | other._tokens
        return merged

    @classmethod
    def from_text(cls, text: str) -> "PassList":
        """Scrape every alphabetic token out of *text* (the web-walker rule).

        Mixed tokens such as ``Ethernet0/0`` contribute their alphabetic
        runs (``ethernet``); pure numbers and punctuation are ignored.
        """
        passlist = cls()
        run = []
        for char in text + "\n":
            if char.isalpha():
                run.append(char)
            else:
                if len(run) > 1:  # single letters are not useful keywords
                    passlist.add("".join(run))
                run = []
        return passlist


#: Curated IOS command-reference vocabulary.  Grouped roughly by subsystem;
#: includes the common English words that pervade Cisco documentation (and
#: which, per the paper, "are so common they cannot leak information").
BASE_KEYWORDS = """
aaa absolute accept access access-class access-group access-list accounting
acknowledge action activate activation active add additive address
address-family adjacency admin administrative administratively advertise
advertisement aes aggregate aggregate-address aging alarm alias all allow
allowas-in allowed alternate always any area arp as-path as-set async atm
attach attempts attribute authentication authentication-key authorization
auto auto-cost auto-summary autonomous autonomous-system auxiliary backbone
backup bandwidth banner bgp bgp-policy bidirectional binding bits boot
bootp bootflash border both bridge broadcast buffer buffers cable cache
call callback called caller calling cam card carrier cdp cef cell channel
channel-group channelized chap chat-script checksum circuit clns class
class-map classless clear client clock cluster cluster-id cns command
community community-list compress compression confederation config
configuration configure congestion connect connected connection console
contact control controller cos cost count counter counters crc crypto
customer databits database datagram dampening dce dead dead-interval
debug default default-information default-metric default-originate delay
delete demand dense description designated dest destination detail
deterministic dhcp dial dialer dialer-group dialer-list digest directed
disable disconnect discovery distance distribute distribute-list domain
domain-name dot1q down downstream drop dscp dsl dte duplex duplicate
dynamic ebgp ebgp-multihop echo edge egress eigrp enable encapsulation
encryption end enforce-first-as engine entry error errors established
ethernet event events exact exceed exclude exec exit expanded expire
export extcommunity extended external fabric fail failure fair-queue
fallback fast fast-switching fastethernet fddi feasible fifo filter
filter-list firewall flap flash flood flow flowcontrol forced format
forward forwarding fragment fragments frame frame-relay framing frequency
ftp full fullduplex gateway gigabitethernet global graceful grace group
group-async half half-duplex hardware hash hello hello-interval help
high history hold hold-time holdtime hop hops host hostname hssi http
hub hunt icmp identifier idle ifindex igmp igp igrp import in inactivity
inbound include incoming index information ingress input inside inspect
install integrated interface interfaces interval invalid inverse ios ip
ipc ipv4 ipv6 irb isdn isis isl keepalive kerberos key key-string keyed
lan lapb last lease level level-1 level-2 limit line link linkcode list
listen lmi load load-balancing load-interval local local-as local-preference
location log log-adjacency-changes log-input log-neighbor-changes logging
login logout loop loopback low lsa mac mac-address mainframe management
map map-class map-group mask match max max-metric maximum maximum-paths
maximum-prefix mdix med media medium member memory mesh message metric
metric-type mib minimal minimum mirror mismatch missing mls mode modem
monitor mop motd mpls mroute mtu multicast multihop multilink multipoint
multiprotocol name nameif named nat native nbma neighbor neighbors net
netbios netflow netmask network next next-hop next-hop-self nexthop nhrp
no node non-broadcast nonegotiate none normal not-advertise notification
ntp null number odr on-demand one open optional options origin
originate ospf out outbound outgoing output outside overload pack packet
packets pad paging parity parser part partial passive passive-interface
passphrase password path paths pause peer peer-group peers penalty
periodic permanent permit persistent phone physical pim ping pixel point
point-to-multipoint point-to-point police policy policy-map pool port
portfast pos post ppp pps pre-shared precedence preempt prefer preference
prefix prefix-list prepend pri primary priority priority-group private
privilege probe process process-id prompt propagate protocol proxy pulse
pvc qos quality query queue queue-limit queueing quit radius random
random-detect range rate rate-limit reachability read read-only
read-write receive received recursive redirect redirects redistribute
redistributed redundancy reference reference-bandwidth reflector reflect
refresh register registration reject relay release reliability reload
remark remote remote-as remove remove-private-as rep replace reply
request required reserved reset response restart retain retransmit
retries retry reverse revision ring rip ripv2 rj45 roaming rotary route
route-cache route-map route-reflector-client route-target routed router
router-id routes routing rsa rsvp rtp rx said sampler scheduler scheme
scope secondary seconds secret security selection send sequence serial
server servers service service-policy session sessions set setup severity
shape shaping shared show shutdown signal signaling silent simplex single
site slip slot smtp snapshot snmp snmp-server soft soft-reconfiguration
soo source source-interface spanning spanning-tree spd speed split
split-horizon spoofing ssh stack standard standby startup state static
station statistics status stop stopbits storm stp stub sub-interface
subinterface subnet subnets summary summary-address summary-only
supernet suppress suppressed switch switching switchport sync
synchronization syslog system table tacacs tacacs-server tag tagged
tcp tdm telnet template terminal test tftp threshold throttle time
time-range timeout timer timers timestamp timestamps token tos totally
traceroute track traffic traffic-shape transceiver transit translate
translation transmit transparent transport trap traps trigger trunk
trust trusted ttl tunnel tx type udp unequal unicast unique unit unnumbered
unreachable unreachables unsuppress until untrusted up update updates
uplink upstream usage use user username users valid validation value
variance verify version violation virtual virtual-link vlan voice vpn
vrf vty wait warning warnings watch wccp weight weighted wildcard window
wired wireless wred write xauth xconnect zone
deny area nssa default-cost ge le eq neq lt gt www bootps bootpc
snmptrap isakmp echo-reply time-exceeded packet-too-big
port-unreachable host-unreachable net-unreachable new-format new
format zero subnet-zero definition ibgp always wide notifications
regexp seq sequence-number distances ranges internet exterior
cef finger keepalives tcp-keepalives-in udp-small-servers
tcp-small-servers small servers debugging buffered helper
helper-address uptime datetime msec new-model if-authenticated
start-stop linkdown linkup coldstart default-router dns-server
excluded-address lease dot1q rt soo ro rw chain keys
host-name root-authentication encrypted-password super-user
vlan-tagging vlan-id autonomous-system router-id peer-as
policy-statement as-path-prepend next-hop discard
route-distinguisher vrf-target pre-shared-key juniper
fe ge so lo dl em ae xe inet notice targeted protocols services
members term internal is-type level-2-only level-1-2 metric-style
and are awaiting because been before being between but can cannot
case command commands common configured contains could current data
default defaults define defined describes device devices displays does
each either enables enabled enter entered example examples field fields
file files first following for from function functions guide has have
how however indicates instance keyword keywords manual many may might
more most must need not note number numbers occurs off once one only
optionally other otherwise parameter parameters per possible present
prompt reference references releases removes required result see
selects shows some specific specified specifies specify such supported
syntax than that the then these this through troubleshooting under
unless usage used useful uses using value values want what when where
whether which will with within without word words you your
january february march april may june july august september october
november december monday tuesday wednesday thursday friday saturday
sunday
"""

_BASE_TOKENS = tuple(BASE_KEYWORDS.split())

#: The default pass-list built from the curated corpus.  Hyphenated keywords
#: also contribute their hyphen-separated parts (the token segmenter splits
#: on non-alphabetic characters, so ``route-map`` is looked up as ``route``
#: and ``map``).
DEFAULT_PASSLIST = PassList(_BASE_TOKENS)
for _kw in _BASE_TOKENS:
    if "-" in _kw:
        DEFAULT_PASSLIST.update(part for part in _kw.split("-"))
