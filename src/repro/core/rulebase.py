"""The Rule record shared by all rule modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Pattern, Sequence, Union

from repro.core.context import RuleContext
from repro.core.line import SegmentedLine

#: A line rule: rewrites matches in-place, returns the number of rewrites.
RuleApply = Callable[[SegmentedLine, RuleContext], int]

#: A rule trigger: a cheap precondition on the raw (lowercased) line text.
#: ``str`` — a literal substring that must be present; ``Sequence[str]`` —
#: any one of several literals; ``Pattern`` — a cheap combined regex.
Trigger = Union[str, Sequence[str], Pattern]

#: A compiled gate: lowered-line -> "could this rule possibly match?".
Gate = Callable[[str], bool]


@dataclass
class Rule:
    """One of the anonymizer's 28 context rules.

    ``apply`` is ``None`` for *structural* rules realized outside the
    per-line pipeline (token segmentation runs inside the final token pass;
    comment rules run in the multi-line comment stripper) — they still
    appear in the registry so the complete rule inventory of the paper
    (Section 4.2: 28 rules across 200+ IOS versions) is visible and
    documentable in one place.

    ``trigger`` is an optional prefilter: a condition that is *necessary*
    (never sufficient) for the rule's pattern to match anywhere in a line.
    The engine compiles triggers into a dispatch gate and skips a rule
    entirely on lines where its gate fails — a C-level substring scan in
    place of a full regex pass over every live segment.  Correctness
    contract: every replacement piece a rule emits as *live* text is a
    substring of the original line, so gating on the raw line can never
    skip a rule that a later rewrite would have made matchable.
    """

    rule_id: str
    name: str
    category: str
    description: str
    apply: Optional[RuleApply] = None
    trigger: Optional[Trigger] = None


def compile_gate(trigger: Optional[Trigger]) -> Optional[Gate]:
    """Compile a rule trigger into a fast line predicate (or ``None``).

    The predicate receives the *lowercased* line text (rule patterns are
    case-insensitive, so literal triggers are lowercased too).
    """
    if trigger is None:
        return None
    if isinstance(trigger, str):
        literal = trigger.lower()
        return lambda lowered: literal in lowered
    if isinstance(trigger, (tuple, list, frozenset, set)):
        literals = tuple(t.lower() for t in trigger)
        if len(literals) == 1:
            only = literals[0]
            return lambda lowered: only in lowered
        return lambda lowered: any(t in lowered for t in literals)
    search = trigger.search  # a compiled regex
    return lambda lowered: search(lowered) is not None
