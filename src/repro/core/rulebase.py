"""The Rule record shared by all rule modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.context import RuleContext
from repro.core.line import SegmentedLine

#: A line rule: rewrites matches in-place, returns the number of rewrites.
RuleApply = Callable[[SegmentedLine, RuleContext], int]


@dataclass
class Rule:
    """One of the anonymizer's 28 context rules.

    ``apply`` is ``None`` for *structural* rules realized outside the
    per-line pipeline (token segmentation runs inside the final token pass;
    comment rules run in the multi-line comment stripper) — they still
    appear in the registry so the complete rule inventory of the paper
    (Section 4.2: 28 rules across 200+ IOS versions) is visible and
    documentable in one place.
    """

    rule_id: str
    name: str
    category: str
    description: str
    apply: Optional[RuleApply] = None
